
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/query_generator.cpp" "src/datagen/CMakeFiles/wre_datagen.dir/query_generator.cpp.o" "gcc" "src/datagen/CMakeFiles/wre_datagen.dir/query_generator.cpp.o.d"
  "/root/repo/src/datagen/record_generator.cpp" "src/datagen/CMakeFiles/wre_datagen.dir/record_generator.cpp.o" "gcc" "src/datagen/CMakeFiles/wre_datagen.dir/record_generator.cpp.o.d"
  "/root/repo/src/datagen/vocabulary.cpp" "src/datagen/CMakeFiles/wre_datagen.dir/vocabulary.cpp.o" "gcc" "src/datagen/CMakeFiles/wre_datagen.dir/vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-threadsan/src/sql/CMakeFiles/wre_sql.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/util/CMakeFiles/wre_util.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/storage/CMakeFiles/wre_storage.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/crypto/CMakeFiles/wre_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
