
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/ast.cpp" "src/sql/CMakeFiles/wre_sql.dir/ast.cpp.o" "gcc" "src/sql/CMakeFiles/wre_sql.dir/ast.cpp.o.d"
  "/root/repo/src/sql/database.cpp" "src/sql/CMakeFiles/wre_sql.dir/database.cpp.o" "gcc" "src/sql/CMakeFiles/wre_sql.dir/database.cpp.o.d"
  "/root/repo/src/sql/parser.cpp" "src/sql/CMakeFiles/wre_sql.dir/parser.cpp.o" "gcc" "src/sql/CMakeFiles/wre_sql.dir/parser.cpp.o.d"
  "/root/repo/src/sql/schema.cpp" "src/sql/CMakeFiles/wre_sql.dir/schema.cpp.o" "gcc" "src/sql/CMakeFiles/wre_sql.dir/schema.cpp.o.d"
  "/root/repo/src/sql/table.cpp" "src/sql/CMakeFiles/wre_sql.dir/table.cpp.o" "gcc" "src/sql/CMakeFiles/wre_sql.dir/table.cpp.o.d"
  "/root/repo/src/sql/value.cpp" "src/sql/CMakeFiles/wre_sql.dir/value.cpp.o" "gcc" "src/sql/CMakeFiles/wre_sql.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-threadsan/src/storage/CMakeFiles/wre_storage.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/crypto/CMakeFiles/wre_crypto.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/util/CMakeFiles/wre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
