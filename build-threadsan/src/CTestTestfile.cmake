# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-threadsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("storage")
subdirs("sql")
subdirs("datagen")
subdirs("core")
subdirs("attack")
