
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/wre_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/wre_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/aes_ctr.cpp" "src/crypto/CMakeFiles/wre_crypto.dir/aes_ctr.cpp.o" "gcc" "src/crypto/CMakeFiles/wre_crypto.dir/aes_ctr.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/crypto/CMakeFiles/wre_crypto.dir/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/wre_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/crypto/hkdf.cpp" "src/crypto/CMakeFiles/wre_crypto.dir/hkdf.cpp.o" "gcc" "src/crypto/CMakeFiles/wre_crypto.dir/hkdf.cpp.o.d"
  "/root/repo/src/crypto/hmac_sha256.cpp" "src/crypto/CMakeFiles/wre_crypto.dir/hmac_sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/wre_crypto.dir/hmac_sha256.cpp.o.d"
  "/root/repo/src/crypto/keys.cpp" "src/crypto/CMakeFiles/wre_crypto.dir/keys.cpp.o" "gcc" "src/crypto/CMakeFiles/wre_crypto.dir/keys.cpp.o.d"
  "/root/repo/src/crypto/prf.cpp" "src/crypto/CMakeFiles/wre_crypto.dir/prf.cpp.o" "gcc" "src/crypto/CMakeFiles/wre_crypto.dir/prf.cpp.o.d"
  "/root/repo/src/crypto/prs.cpp" "src/crypto/CMakeFiles/wre_crypto.dir/prs.cpp.o" "gcc" "src/crypto/CMakeFiles/wre_crypto.dir/prs.cpp.o.d"
  "/root/repo/src/crypto/secure_random.cpp" "src/crypto/CMakeFiles/wre_crypto.dir/secure_random.cpp.o" "gcc" "src/crypto/CMakeFiles/wre_crypto.dir/secure_random.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/wre_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/wre_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-threadsan/src/util/CMakeFiles/wre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
