
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bptree.cpp" "src/storage/CMakeFiles/wre_storage.dir/bptree.cpp.o" "gcc" "src/storage/CMakeFiles/wre_storage.dir/bptree.cpp.o.d"
  "/root/repo/src/storage/buffer_pool.cpp" "src/storage/CMakeFiles/wre_storage.dir/buffer_pool.cpp.o" "gcc" "src/storage/CMakeFiles/wre_storage.dir/buffer_pool.cpp.o.d"
  "/root/repo/src/storage/disk_manager.cpp" "src/storage/CMakeFiles/wre_storage.dir/disk_manager.cpp.o" "gcc" "src/storage/CMakeFiles/wre_storage.dir/disk_manager.cpp.o.d"
  "/root/repo/src/storage/heap_file.cpp" "src/storage/CMakeFiles/wre_storage.dir/heap_file.cpp.o" "gcc" "src/storage/CMakeFiles/wre_storage.dir/heap_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-threadsan/src/util/CMakeFiles/wre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
