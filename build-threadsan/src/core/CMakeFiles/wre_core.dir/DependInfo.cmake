
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/distribution.cpp" "src/core/CMakeFiles/wre_core.dir/distribution.cpp.o" "gcc" "src/core/CMakeFiles/wre_core.dir/distribution.cpp.o.d"
  "/root/repo/src/core/encrypted_client.cpp" "src/core/CMakeFiles/wre_core.dir/encrypted_client.cpp.o" "gcc" "src/core/CMakeFiles/wre_core.dir/encrypted_client.cpp.o.d"
  "/root/repo/src/core/ingest_pipeline.cpp" "src/core/CMakeFiles/wre_core.dir/ingest_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/wre_core.dir/ingest_pipeline.cpp.o.d"
  "/root/repo/src/core/manifest.cpp" "src/core/CMakeFiles/wre_core.dir/manifest.cpp.o" "gcc" "src/core/CMakeFiles/wre_core.dir/manifest.cpp.o.d"
  "/root/repo/src/core/range.cpp" "src/core/CMakeFiles/wre_core.dir/range.cpp.o" "gcc" "src/core/CMakeFiles/wre_core.dir/range.cpp.o.d"
  "/root/repo/src/core/salts.cpp" "src/core/CMakeFiles/wre_core.dir/salts.cpp.o" "gcc" "src/core/CMakeFiles/wre_core.dir/salts.cpp.o.d"
  "/root/repo/src/core/wre_scheme.cpp" "src/core/CMakeFiles/wre_core.dir/wre_scheme.cpp.o" "gcc" "src/core/CMakeFiles/wre_core.dir/wre_scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-threadsan/src/sql/CMakeFiles/wre_sql.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/crypto/CMakeFiles/wre_crypto.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/util/CMakeFiles/wre_util.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/storage/CMakeFiles/wre_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
