
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_ingest_test.cpp" "tests/CMakeFiles/parallel_ingest_test.dir/parallel_ingest_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_ingest_test.dir/parallel_ingest_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-threadsan/src/attack/CMakeFiles/wre_attack.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/core/CMakeFiles/wre_core.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/datagen/CMakeFiles/wre_datagen.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/sql/CMakeFiles/wre_sql.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/storage/CMakeFiles/wre_storage.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/crypto/CMakeFiles/wre_crypto.dir/DependInfo.cmake"
  "/root/repo/build-threadsan/src/util/CMakeFiles/wre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
