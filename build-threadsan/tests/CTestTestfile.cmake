# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-threadsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-threadsan/tests/util_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/crypto_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/storage_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/sql_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/datagen_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/core_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/attack_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/property_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/manifest_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/range_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/lifecycle_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/golden_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/parallel_ingest_test[1]_include.cmake")
include("/root/repo/build-threadsan/tests/concurrency_stress_test[1]_include.cmake")
