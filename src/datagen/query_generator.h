// SPARTA-like query generator: equality queries with controlled result-set
// sizes. The paper's evaluation runs "over 1,000 queries ... consisting of a
// mix of queries that returned result sizes between 1 and 10,000 records"
// (Section VI-A); this generator reproduces that mix from the observed
// column histograms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/datagen/record_generator.h"
#include "src/util/rng.h"

namespace wre::datagen {

/// One equality query: column = value, expected to match `expected_count`
/// rows of the loaded database.
struct EqualityQuery {
  std::string column;
  std::string value;
  uint64_t expected_count = 0;
};

/// Options for the query mix.
struct QueryGeneratorOptions {
  uint64_t seed = 0x51554552ULL;  // "QUER"
  /// Result-size strata: each pair is an inclusive [lo, hi] band; queries
  /// are drawn round-robin across bands that have eligible values.
  std::vector<std::pair<uint64_t, uint64_t>> bands = {
      {1, 1}, {2, 10}, {11, 100}, {101, 1000}, {1001, 10000}};
};

/// Draws equality queries from a histogram of loaded data.
class QueryGenerator {
 public:
  QueryGenerator(const ColumnHistogram& histogram,
                 std::vector<std::string> columns,
                 QueryGeneratorOptions options = {});

  /// Generates `n` queries mixed across the configured result-size bands.
  /// Bands with no eligible (column, value) pairs are skipped.
  std::vector<EqualityQuery> generate(size_t n);

 private:
  struct Candidate {
    std::string column;
    std::string value;
    uint64_t count;
  };

  std::vector<std::vector<Candidate>> per_band_;
  Xoshiro256 rng_;
};

}  // namespace wre::datagen
