// Weighted vocabularies with census-like frequency shapes.
//
// The paper evaluates on data from the MIT-LL SPARTA framework, whose
// generator produces records with "realistic statistics based on real data
// from the US Census and Project Gutenberg". SPARTA itself is not
// redistributable here, so this module synthesizes the property the
// evaluation actually depends on: *low-entropy columns with heavy-tailed
// (Zipf-like) value frequencies*, which is what makes deterministic
// encryption fall to frequency analysis and what WRE must smooth.
//
// Each vocabulary is a head list of real, hand-embedded values with
// census-plausible relative weights, extended with synthesized name-like
// values following a Zipf tail.
#pragma once

#include <string>
#include <vector>

#include "src/util/rng.h"

namespace wre::datagen {

/// A finite distribution over strings with O(1) sampling (alias method).
class WeightedVocabulary {
 public:
  /// `values` and `weights` must be equal-length and non-empty; weights must
  /// be positive. Weights are normalized internally.
  WeightedVocabulary(std::vector<std::string> values,
                     std::vector<double> weights);

  /// Draws a value according to the weights.
  const std::string& sample(Xoshiro256& rng) const;

  size_t size() const { return values_.size(); }
  const std::vector<std::string>& values() const { return values_; }

  /// Normalized probability of value i.
  double probability(size_t i) const { return probabilities_[i]; }

 private:
  void build_alias_table();

  std::vector<std::string> values_;
  std::vector<double> probabilities_;
  // Walker alias tables.
  std::vector<double> accept_;
  std::vector<size_t> alias_;
};

/// Builders. `size` is the total vocabulary size; values beyond the embedded
/// head are synthesized with a Zipf(s) tail. `size = 0` keeps just the head.
WeightedVocabulary census_first_names(size_t size = 0);
WeightedVocabulary census_last_names(size_t size = 0);
WeightedVocabulary us_cities(size_t size = 0);
WeightedVocabulary us_states();
WeightedVocabulary zip_codes(size_t size);

/// Synthesizes a pronounceable name-like string for tail rank `rank`
/// (deterministic in `rank` and `salt`).
std::string synth_name(uint64_t rank, uint64_t salt);

}  // namespace wre::datagen
