#include "src/datagen/query_generator.h"

#include <algorithm>

namespace wre::datagen {

QueryGenerator::QueryGenerator(const ColumnHistogram& histogram,
                               std::vector<std::string> columns,
                               QueryGeneratorOptions options)
    : rng_(options.seed) {
  per_band_.resize(options.bands.size());
  for (const std::string& column : columns) {
    for (const auto& [value, count] : histogram.counts(column)) {
      for (size_t b = 0; b < options.bands.size(); ++b) {
        if (count >= options.bands[b].first &&
            count <= options.bands[b].second) {
          per_band_[b].push_back(Candidate{column, value, count});
          break;
        }
      }
    }
  }
  // Deterministic candidate order regardless of hash-map iteration.
  for (auto& band : per_band_) {
    std::sort(band.begin(), band.end(),
              [](const Candidate& a, const Candidate& b) {
                return std::tie(a.column, a.value) < std::tie(b.column, b.value);
              });
  }
}

std::vector<EqualityQuery> QueryGenerator::generate(size_t n) {
  std::vector<EqualityQuery> out;
  out.reserve(n);
  size_t band = 0;
  size_t attempts = 0;
  while (out.size() < n && attempts < n + per_band_.size()) {
    const auto& candidates = per_band_[band % per_band_.size()];
    ++band;
    if (candidates.empty()) {
      ++attempts;
      continue;
    }
    const Candidate& c =
        candidates[static_cast<size_t>(rng_.next_below(candidates.size()))];
    out.push_back(EqualityQuery{c.column, c.value, c.count});
  }
  return out;
}

}  // namespace wre::datagen
