// SPARTA-like record generator: 23-column person records with realistic
// low-entropy column distributions, matching the table shape of the paper's
// evaluation (Section VI-A). Deterministic given a seed.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/datagen/vocabulary.h"
#include "src/sql/schema.h"
#include "src/util/rng.h"

namespace wre::datagen {

/// Knobs for the generated population.
struct GeneratorOptions {
  uint64_t seed = 0x53504152544121ULL;  // "SPARTA!"
  /// Distinct-value counts for the heavy-tailed columns. Defaults scale to
  /// databases of ~10^5..10^6 rows.
  size_t first_name_vocab = 1200;
  size_t last_name_vocab = 4000;
  size_t city_vocab = 1500;
  size_t zip_vocab = 3000;
  /// Total bytes of filler across the three notes columns; the paper's
  /// plaintext rows average ~1.1 KB. Set small (e.g. 30) in unit tests.
  size_t notes_bytes = 850;
};

/// Generates the SPARTA-like `main` table.
class RecordGenerator {
 public:
  explicit RecordGenerator(GeneratorOptions options = {});

  /// Schema of the generated table: 23 columns, `id` INTEGER PRIMARY KEY
  /// first, including the five searchable columns the paper encrypts
  /// (fname, lname, ssn, city, zip).
  static sql::Schema schema();

  /// Names of the columns the paper's evaluation encrypts with WRE.
  static const std::vector<std::string>& encrypted_columns();

  /// Generates the record with primary key `id` (ids should be issued
  /// sequentially from 0; the stream of records is deterministic in the
  /// seed regardless of call interleaving, because each record is derived
  /// from (seed, id)).
  sql::Row record(int64_t id) const;

  /// Exact per-column vocabularies, exposed so callers can compute true
  /// plaintext distributions without scanning generated data.
  const WeightedVocabulary& first_names() const { return first_names_; }
  const WeightedVocabulary& last_names() const { return last_names_; }
  const WeightedVocabulary& cities() const { return cities_; }
  const WeightedVocabulary& zips() const { return zips_; }

  const GeneratorOptions& options() const { return options_; }

 private:
  GeneratorOptions options_;
  WeightedVocabulary first_names_;
  WeightedVocabulary last_names_;
  WeightedVocabulary cities_;
  WeightedVocabulary states_;
  WeightedVocabulary zips_;
};

/// Observed value frequencies per column, accumulated while loading a
/// database. Used by the query generator and by WRE distribution estimation.
class ColumnHistogram {
 public:
  void add(const std::string& column, const std::string& value);

  /// value -> count for `column` (empty map if unseen).
  const std::unordered_map<std::string, uint64_t>& counts(
      const std::string& column) const;

  uint64_t total(const std::string& column) const;

 private:
  std::unordered_map<std::string,
                     std::unordered_map<std::string, uint64_t>>
      per_column_;
  std::unordered_map<std::string, uint64_t> totals_;
};

}  // namespace wre::datagen
