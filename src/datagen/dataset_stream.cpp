#include "src/datagen/dataset_stream.h"

#include <algorithm>

#include "src/util/error.h"

namespace wre::datagen {

DatasetStream::DatasetStream(const GeneratorOptions& options, int64_t total,
                             int64_t start, size_t chunk_records)
    : generator_(options),
      total_(total),
      position_(start),
      chunk_records_(chunk_records) {
  if (total < 0 || start < 0 || start > total) {
    throw Error("DatasetStream: invalid range [" + std::to_string(start) +
                ", " + std::to_string(total) + ")");
  }
  if (chunk_records == 0) {
    throw Error("DatasetStream: chunk_records must be positive");
  }
}

bool DatasetStream::next_chunk(std::vector<sql::Row>* chunk) {
  chunk->clear();
  if (position_ >= total_) return false;
  int64_t n = std::min<int64_t>(static_cast<int64_t>(chunk_records_),
                                total_ - position_);
  chunk->reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    chunk->push_back(generator_.record(position_ + i));
  }
  position_ += n;
  return true;
}

GeneratorOptions tenant_options(const GeneratorOptions& base,
                                uint64_t tenant_id) {
  GeneratorOptions opts = base;
  // SplitMix64 finalizer over (seed, tenant): well-mixed, deterministic,
  // and tenant 0 keeps a distinct stream from the base seed itself.
  uint64_t z = base.seed + (tenant_id + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  opts.seed = z ^ (z >> 31);
  return opts;
}

std::map<std::string, double> vocabulary_distribution(
    const WeightedVocabulary& vocab) {
  std::map<std::string, double> p;
  for (size_t i = 0; i < vocab.size(); ++i) {
    p[vocab.values()[i]] += vocab.probability(i);
  }
  return p;
}

}  // namespace wre::datagen
