#include "src/datagen/vocabulary.h"

#include <cctype>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace wre::datagen {

WeightedVocabulary::WeightedVocabulary(std::vector<std::string> values,
                                       std::vector<double> weights)
    : values_(std::move(values)) {
  if (values_.empty() || values_.size() != weights.size()) {
    throw std::invalid_argument("WeightedVocabulary: bad values/weights");
  }
  double total = 0;
  for (double w : weights) {
    if (w <= 0) throw std::invalid_argument("WeightedVocabulary: weight <= 0");
    total += w;
  }
  probabilities_.reserve(weights.size());
  for (double w : weights) probabilities_.push_back(w / total);
  build_alias_table();
}

void WeightedVocabulary::build_alias_table() {
  // Walker/Vose alias method.
  const size_t n = probabilities_.size();
  accept_.assign(n, 1.0);
  alias_.assign(n, 0);

  std::deque<size_t> small, large;
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = probabilities_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.front();
    small.pop_front();
    size_t l = large.front();
    large.pop_front();
    accept_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers resolve to acceptance probability 1.
  for (size_t i : small) accept_[i] = 1.0;
  for (size_t i : large) accept_[i] = 1.0;
}

const std::string& WeightedVocabulary::sample(Xoshiro256& rng) const {
  size_t i = static_cast<size_t>(rng.next_below(values_.size()));
  return rng.next_double() < accept_[i] ? values_[i] : values_[alias_[i]];
}

std::string synth_name(uint64_t rank, uint64_t salt) {
  static constexpr const char* kOnsets[] = {
      "b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j",  "k",
      "kl", "l",  "m", "n",  "p", "pr", "r", "s", "sh", "st", "t", "th",
      "tr", "v",  "w", "z"};
  static constexpr const char* kVowels[] = {"a",  "e",  "i",  "o",  "u",
                                            "ai", "ea", "ie", "oo", "ou"};
  static constexpr const char* kCodas[] = {"",  "l", "n",  "r",  "s",
                                           "t", "m", "ck", "nd", "th"};

  uint64_t state = rank * 0x9e3779b97f4a7c15ULL + salt;
  std::string out;
  int syllables = 2 + static_cast<int>(splitmix64(state) % 2);
  for (int i = 0; i < syllables; ++i) {
    out += kOnsets[splitmix64(state) % std::size(kOnsets)];
    out += kVowels[splitmix64(state) % std::size(kVowels)];
    out += kCodas[splitmix64(state) % std::size(kCodas)];
  }
  out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  // Rank suffix guarantees uniqueness across the tail.
  return out + std::to_string(rank);
}

namespace {

/// Extends a weighted head list with a Zipf(s) tail of synthesized values up
/// to `size` total entries. The tail's first weight continues smoothly from
/// the head's last weight.
WeightedVocabulary with_zipf_tail(std::vector<std::string> values,
                                  std::vector<double> weights, size_t size,
                                  double s, uint64_t salt) {
  if (size > values.size()) {
    double anchor = weights.back();
    size_t head = values.size();
    for (size_t r = head; r < size; ++r) {
      values.push_back(synth_name(r, salt));
      weights.push_back(anchor *
                        std::pow(static_cast<double>(head) /
                                     static_cast<double>(r + 1),
                                 s));
    }
  }
  return WeightedVocabulary(std::move(values), std::move(weights));
}

}  // namespace

WeightedVocabulary census_first_names(size_t size) {
  // Head of the US census given-name distribution (both sexes merged);
  // weights are approximate per-mille frequencies.
  std::vector<std::string> names = {
      "James",    "Mary",      "John",    "Patricia", "Robert",   "Jennifer",
      "Michael",  "Linda",     "William", "Elizabeth","David",    "Barbara",
      "Richard",  "Susan",     "Joseph",  "Jessica",  "Thomas",   "Sarah",
      "Charles",  "Karen",     "Christopher", "Nancy","Daniel",   "Lisa",
      "Matthew",  "Margaret",  "Anthony", "Betty",    "Mark",     "Sandra",
      "Donald",   "Ashley",    "Steven",  "Dorothy",  "Paul",     "Kimberly",
      "Andrew",   "Emily",     "Joshua",  "Donna",    "Kenneth",  "Michelle",
      "Kevin",    "Carol",     "Brian",   "Amanda",   "George",   "Melissa",
      "Edward",   "Deborah",   "Ronald",  "Stephanie","Timothy",  "Rebecca",
      "Jason",    "Laura",     "Jeffrey", "Sharon",   "Ryan",     "Cynthia",
      "Jacob",    "Kathleen",  "Gary",    "Amy",      "Nicholas", "Shirley",
      "Eric",     "Angela",    "Jonathan","Helen",    "Stephen",  "Anna",
      "Larry",    "Brenda",    "Justin",  "Pamela",   "Scott",    "Nicole",
      "Brandon",  "Emma",      "Benjamin","Samantha", "Samuel",   "Katherine",
      "Gregory",  "Christine", "Frank",   "Debra",    "Alexander","Rachel",
      "Raymond",  "Catherine", "Patrick", "Carolyn",  "Jack",     "Janet",
      "Dennis",   "Ruth",      "Jerry",   "Maria",    "Tyler",    "Heather",
      "Aaron",    "Diane",     "Jose",    "Virginia", "Adam",     "Julie",
      "Henry",    "Joyce",     "Nathan",  "Victoria", "Douglas",  "Olivia",
      "Zachary",  "Kelly",     "Peter",   "Christina","Kyle",     "Lauren",
      "Walter",   "Joan",      "Ethan",   "Evelyn",   "Jeremy",   "Judith",
      "Harold",   "Megan",     "Keith",   "Cheryl",   "Christian","Andrea",
      "Roger",    "Hannah",    "Noah",    "Martha",   "Gerald",   "Jacqueline",
      "Carl",     "Frances",   "Terry",   "Gloria",   "Sean",     "Ann",
      "Austin",   "Teresa",    "Arthur",  "Kathryn",  "Lawrence", "Sara",
      "Jesse",    "Janice",    "Dylan",   "Jean",     "Bryan",    "Alice",
      "Joe",      "Madison",   "Jordan",  "Doris",    "Billy",    "Abigail",
      "Bruce",    "Julia",     "Albert",  "Judy",     "Willie",   "Grace",
      "Gabriel",  "Denise",    "Logan",   "Amber",    "Alan",     "Marilyn",
      "Juan",     "Beverly",   "Wayne",   "Danielle", "Roy",      "Theresa",
      "Ralph",    "Sophia",    "Randy",   "Marie",    "Eugene",   "Diana",
      "Vincent",  "Brittany",  "Russell", "Natalie",  "Elijah",   "Isabella"};
  std::vector<double> weights;
  weights.reserve(names.size());
  // Zipf-ish head: the census given-name head decays roughly like 1/rank^0.9.
  for (size_t r = 0; r < names.size(); ++r) {
    weights.push_back(std::pow(1.0 / static_cast<double>(r + 1), 0.9));
  }
  return with_zipf_tail(std::move(names), std::move(weights), size, 1.05,
                        0x66697273746eULL);
}

WeightedVocabulary census_last_names(size_t size) {
  std::vector<std::string> names = {
      "Smith",    "Johnson",  "Williams", "Brown",    "Jones",    "Garcia",
      "Miller",   "Davis",    "Rodriguez","Martinez", "Hernandez","Lopez",
      "Gonzalez", "Wilson",   "Anderson", "Thomas",   "Taylor",   "Moore",
      "Jackson",  "Martin",   "Lee",      "Perez",    "Thompson", "White",
      "Harris",   "Sanchez",  "Clark",    "Ramirez",  "Lewis",    "Robinson",
      "Walker",   "Young",    "Allen",    "King",     "Wright",   "Scott",
      "Torres",   "Nguyen",   "Hill",     "Flores",   "Green",    "Adams",
      "Nelson",   "Baker",    "Hall",     "Rivera",   "Campbell", "Mitchell",
      "Carter",   "Roberts",  "Gomez",    "Phillips", "Evans",    "Turner",
      "Diaz",     "Parker",   "Cruz",     "Edwards",  "Collins",  "Reyes",
      "Stewart",  "Morris",   "Morales",  "Murphy",   "Cook",     "Rogers",
      "Gutierrez","Ortiz",    "Morgan",   "Cooper",   "Peterson", "Bailey",
      "Reed",     "Kelly",    "Howard",   "Ramos",    "Kim",      "Cox",
      "Ward",     "Richardson","Watson",  "Brooks",   "Chavez",   "Wood",
      "James",    "Bennett",  "Gray",     "Mendoza",  "Ruiz",     "Hughes",
      "Price",    "Alvarez",  "Castillo", "Sanders",  "Patel",    "Myers",
      "Long",     "Ross",     "Foster",   "Jimenez",  "Powell",   "Jenkins",
      "Perry",    "Russell",  "Sullivan", "Bell",     "Coleman",  "Butler",
      "Henderson","Barnes",   "Gonzales", "Fisher",   "Vasquez",  "Simmons",
      "Romero",   "Jordan",   "Patterson","Alexander","Hamilton", "Graham",
      "Reynolds", "Griffin",  "Wallace",  "Moreno",   "West",     "Cole",
      "Hayes",    "Bryant",   "Herrera",  "Gibson",   "Ellis",    "Tran",
      "Medina",   "Aguilar",  "Stevens",  "Murray",   "Ford",     "Castro",
      "Marshall", "Owens",    "Harrison", "Fernandez","McDonald", "Woods",
      "Washington","Kennedy", "Wells",    "Vargas",   "Henry",    "Chen",
      "Freeman",  "Webb",     "Tucker",   "Guzman",   "Burns",    "Crawford",
      "Olson",    "Simpson",  "Porter",   "Hunter",   "Gordon",   "Mendez",
      "Silva",    "Shaw",     "Snyder",   "Mason",    "Dixon",    "Munoz",
      "Hunt",     "Hicks",    "Holmes",   "Palmer",   "Wagner",   "Black",
      "Robertson","Boyd",     "Rose",     "Stone",    "Salazar",  "Fox",
      "Warren",   "Mills",    "Meyer",    "Rice",     "Schmidt",  "Garza",
      "Daniels",  "Ferguson", "Nichols",  "Stephens", "Soto",     "Weaver",
      "Ryan",     "Gardner",  "Payne",    "Grant",    "Dunn",     "Kelley",
      "Spencer",  "Hawkins"};
  std::vector<double> weights;
  weights.reserve(names.size());
  // Surnames are flatter than given names at the head (Smith ~= 1%).
  for (size_t r = 0; r < names.size(); ++r) {
    weights.push_back(std::pow(1.0 / static_cast<double>(r + 1), 0.75));
  }
  return with_zipf_tail(std::move(names), std::move(weights), size, 1.0,
                        0x6c6173746e616dULL);
}

WeightedVocabulary us_cities(size_t size) {
  std::vector<std::string> cities = {
      "New York",     "Los Angeles", "Chicago",      "Houston",
      "Phoenix",      "Philadelphia","San Antonio",  "San Diego",
      "Dallas",       "San Jose",    "Austin",       "Jacksonville",
      "Fort Worth",   "Columbus",    "Charlotte",    "Indianapolis",
      "San Francisco","Seattle",     "Denver",       "Washington",
      "Boston",       "El Paso",     "Nashville",    "Detroit",
      "Oklahoma City","Portland",    "Las Vegas",    "Memphis",
      "Louisville",   "Baltimore",   "Milwaukee",    "Albuquerque",
      "Tucson",       "Fresno",      "Sacramento",   "Mesa",
      "Kansas City",  "Atlanta",     "Omaha",        "Colorado Springs",
      "Raleigh",      "Miami",       "Virginia Beach","Long Beach",
      "Oakland",      "Minneapolis", "Tampa",        "Tulsa",
      "Arlington",    "New Orleans", "Wichita",      "Cleveland",
      "Bakersfield",  "Aurora",      "Anaheim",      "Honolulu",
      "Santa Ana",    "Riverside",   "Corpus Christi","Lexington",
      "Stockton",     "St. Louis",   "Saint Paul",   "Henderson",
      "Pittsburgh",   "Cincinnati",  "Anchorage",    "Greensboro",
      "Plano",        "Newark",      "Lincoln",      "Orlando",
      "Irvine",       "Toledo",      "Jersey City",  "Chula Vista",
      "Durham",       "Fort Wayne",  "St. Petersburg","Laredo",
      "Buffalo",      "Madison",     "Lubbock",      "Chandler",
      "Scottsdale",   "Reno",        "Glendale",     "Norfolk",
      "Winston-Salem","North Las Vegas","Gilbert",   "Chesapeake",
      "Irving",       "Hialeah",     "Garland",      "Fremont",
      "Richmond",     "Boise",       "Baton Rouge",  "Des Moines"};
  std::vector<double> weights;
  weights.reserve(cities.size());
  // City populations follow Zipf's law with s close to 1.
  for (size_t r = 0; r < cities.size(); ++r) {
    weights.push_back(1.0 / static_cast<double>(r + 1));
  }
  return with_zipf_tail(std::move(cities), std::move(weights), size, 1.0,
                        0x63697479ULL);
}

WeightedVocabulary us_states() {
  std::vector<std::string> states = {
      "CA", "TX", "FL", "NY", "PA", "IL", "OH", "GA", "NC", "MI",
      "NJ", "VA", "WA", "AZ", "MA", "TN", "IN", "MO", "MD", "WI",
      "CO", "MN", "SC", "AL", "LA", "KY", "OR", "OK", "CT", "UT",
      "IA", "NV", "AR", "MS", "KS", "NM", "NE", "ID", "WV", "HI",
      "NH", "ME", "RI", "MT", "DE", "SD", "ND", "AK", "VT", "WY"};
  std::vector<double> weights = {
      39.2, 29.5, 21.8, 19.8, 13.0, 12.6, 11.8, 10.8, 10.6, 10.0,
      9.3,  8.6,  7.8,  7.4,  7.0,  7.0,  6.8,  6.2,  6.2,  5.9,
      5.8,  5.7,  5.2,  5.0,  4.6,  4.5,  4.2,  4.0,  3.6,  3.3,
      3.2,  3.1,  3.0,  2.9,  2.9,  2.1,  2.0,  1.9,  1.8,  1.4,
      1.4,  1.4,  1.1,  1.1,  1.0,  0.9,  0.8,  0.7,  0.6,  0.6};
  return WeightedVocabulary(std::move(states), std::move(weights));
}

WeightedVocabulary zip_codes(size_t size) {
  if (size == 0) size = 1000;
  std::vector<std::string> zips;
  std::vector<double> weights;
  zips.reserve(size);
  weights.reserve(size);
  uint64_t state = 0x7a6970636f6465ULL;
  std::unordered_set<uint32_t> seen;
  for (size_t r = 0; r < size; ++r) {
    // Synthesize a plausible 5-digit ZIP, unique across the vocabulary.
    uint32_t z;
    do {
      z = static_cast<uint32_t>(splitmix64(state) % 89999) + 10000;
    } while (!seen.insert(z).second);
    zips.push_back(std::to_string(z));
    weights.push_back(1.0 / std::pow(static_cast<double>(r + 1), 0.8));
  }
  return WeightedVocabulary(std::move(zips), std::move(weights));
}

}  // namespace wre::datagen
