#include "src/datagen/record_generator.h"

#include <array>

namespace wre::datagen {

using sql::Column;
using sql::Row;
using sql::Value;
using sql::ValueType;

RecordGenerator::RecordGenerator(GeneratorOptions options)
    : options_(options),
      first_names_(census_first_names(options.first_name_vocab)),
      last_names_(census_last_names(options.last_name_vocab)),
      cities_(us_cities(options.city_vocab)),
      states_(us_states()),
      zips_(zip_codes(options.zip_vocab)) {}

sql::Schema RecordGenerator::schema() {
  return sql::Schema({
      Column{"id", ValueType::kInt64, /*primary_key=*/true},
      Column{"fname", ValueType::kText},
      Column{"lname", ValueType::kText},
      Column{"ssn", ValueType::kText},
      Column{"address", ValueType::kText},
      Column{"city", ValueType::kText},
      Column{"state", ValueType::kText},
      Column{"zip", ValueType::kText},
      Column{"dob", ValueType::kText},
      Column{"sex", ValueType::kText},
      Column{"race", ValueType::kText},
      Column{"marital_status", ValueType::kText},
      Column{"language", ValueType::kText},
      Column{"citizenship", ValueType::kText},
      Column{"income", ValueType::kInt64},
      Column{"military_service", ValueType::kText},
      Column{"hours_worked", ValueType::kInt64},
      Column{"weeks_worked", ValueType::kInt64},
      Column{"foo", ValueType::kInt64},
      Column{"last_updated", ValueType::kInt64},
      Column{"notes1", ValueType::kText},
      Column{"notes2", ValueType::kText},
      Column{"notes3", ValueType::kText},
  });
}

const std::vector<std::string>& RecordGenerator::encrypted_columns() {
  static const std::vector<std::string> kColumns = {"fname", "lname", "ssn",
                                                    "city", "zip"};
  return kColumns;
}

namespace {

const std::array<const char*, 2> kSexes = {"M", "F"};
const std::array<const char*, 6> kRaces = {"white", "black", "asian",
                                           "amerindian", "pacific", "other"};
const std::array<double, 6> kRaceWeights = {60.1, 12.2, 5.9, 0.7, 0.2, 20.9};
const std::array<const char*, 5> kMarital = {"single", "married", "divorced",
                                             "widowed", "separated"};
const std::array<double, 5> kMaritalWeights = {34, 48, 11, 5, 2};
const std::array<const char*, 7> kLanguages = {
    "english", "spanish", "chinese", "tagalog", "vietnamese", "french",
    "german"};
const std::array<double, 7> kLanguageWeights = {78.5, 13.2, 1.1, 0.6, 0.5,
                                                0.4, 0.3};
const std::array<const char*, 3> kCitizenship = {"citizen", "naturalized",
                                                 "noncitizen"};
const std::array<double, 3> kCitizenshipWeights = {86, 7, 7};
const std::array<const char*, 2> kMilitary = {"none", "veteran"};
const std::array<double, 2> kMilitaryWeights = {93, 7};

template <size_t N>
const char* weighted_pick(Xoshiro256& rng,
                          const std::array<const char*, N>& values,
                          const std::array<double, N>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  double x = rng.next_double() * total;
  for (size_t i = 0; i < N; ++i) {
    x -= weights[i];
    if (x <= 0) return values[i];
  }
  return values[N - 1];
}

std::string random_digits(Xoshiro256& rng, size_t n) {
  std::string out(n, '0');
  for (char& c : out) c = static_cast<char>('0' + rng.next_below(10));
  return out;
}

/// Filler words with Gutenberg-ish lengths for the notes columns.
std::string filler_text(Xoshiro256& rng, size_t target_bytes) {
  static constexpr const char* kWords[] = {
      "the",   "of",     "and",   "to",     "in",     "that",  "was",
      "he",    "it",     "his",   "her",    "with",   "as",    "had",
      "for",   "she",    "not",   "at",     "but",    "be",    "which",
      "have",  "from",   "this",  "him",    "they",   "were",  "all",
      "one",   "said",   "there", "them",   "been",   "would", "when",
      "upon",  "their",  "what",  "more",   "who",    "if",    "out",
      "so",    "up",     "into",  "no",     "time",   "about", "then",
      "little","great",  "house", "before", "through","never", "against",
      "again", "morning","whole", "between","nothing","should","himself"};
  std::string out;
  out.reserve(target_bytes + 12);
  while (out.size() < target_bytes) {
    if (!out.empty()) out.push_back(' ');
    out += kWords[rng.next_below(std::size(kWords))];
  }
  if (out.size() > target_bytes) out.resize(target_bytes);
  return out;
}

}  // namespace

Row RecordGenerator::record(int64_t id) const {
  // Each record draws from a per-record generator seeded by (seed, id) so
  // records are independent of generation order.
  uint64_t s = options_.seed;
  uint64_t mix = splitmix64(s) ^ (static_cast<uint64_t>(id) *
                                  0x9e3779b97f4a7c15ULL);
  Xoshiro256 rng(mix);

  std::string fname = first_names_.sample(rng);
  std::string lname = last_names_.sample(rng);
  std::string ssn = random_digits(rng, 9);
  std::string address =
      std::to_string(1 + rng.next_below(9999)) + " " +
      last_names_.sample(rng) + (rng.next_below(2) != 0u ? " St" : " Ave");
  std::string city = cities_.sample(rng);
  std::string state = states_.sample(rng);
  std::string zip = zips_.sample(rng);
  std::string dob = std::to_string(1930 + rng.next_below(85)) + "-" +
                    (rng.next_below(12) < 9 ? "0" : "") +
                    std::to_string(1 + rng.next_below(12)) + "-" +
                    (rng.next_below(28) < 9 ? "0" : "") +
                    std::to_string(1 + rng.next_below(28));

  size_t third = options_.notes_bytes / 3;

  return Row{
      Value::int64(id),
      Value::text(std::move(fname)),
      Value::text(std::move(lname)),
      Value::text(std::move(ssn)),
      Value::text(std::move(address)),
      Value::text(std::move(city)),
      Value::text(std::move(state)),
      Value::text(std::move(zip)),
      Value::text(std::move(dob)),
      Value::text(kSexes[rng.next_below(2)]),
      Value::text(weighted_pick(rng, kRaces, kRaceWeights)),
      Value::text(weighted_pick(rng, kMarital, kMaritalWeights)),
      Value::text(weighted_pick(rng, kLanguages, kLanguageWeights)),
      Value::text(weighted_pick(rng, kCitizenship, kCitizenshipWeights)),
      Value::int64(static_cast<int64_t>(12000 + rng.next_below(250000))),
      Value::text(weighted_pick(rng, kMilitary, kMilitaryWeights)),
      Value::int64(static_cast<int64_t>(rng.next_below(81))),
      Value::int64(static_cast<int64_t>(rng.next_below(53))),
      Value::int64(static_cast<int64_t>(rng.next_below(1000000))),
      Value::int64(static_cast<int64_t>(1500000000 + rng.next_below(200000000))),
      Value::text(filler_text(rng, third)),
      Value::text(filler_text(rng, third)),
      Value::text(filler_text(rng, options_.notes_bytes - 2 * third)),
  };
}

void ColumnHistogram::add(const std::string& column, const std::string& value) {
  ++per_column_[column][value];
  ++totals_[column];
}

const std::unordered_map<std::string, uint64_t>& ColumnHistogram::counts(
    const std::string& column) const {
  static const std::unordered_map<std::string, uint64_t> kEmpty;
  auto it = per_column_.find(column);
  return it == per_column_.end() ? kEmpty : it->second;
}

uint64_t ColumnHistogram::total(const std::string& column) const {
  auto it = totals_.find(column);
  return it == totals_.end() ? 0 : it->second;
}

}  // namespace wre::datagen
