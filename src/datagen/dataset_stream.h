// Streaming SPARTA-scale dataset generation: iterate a 10M-record
// population chunk by chunk without ever materializing it.
//
// RecordGenerator derives record `i` purely from (seed, id), so a dataset
// of any size is already a *function*, not a buffer. DatasetStream turns
// that function into a resumable chunked iterator — the shape the bulk
// ingest pipeline wants — with O(chunk) resident memory no matter the
// total:
//
//   DatasetStream stream(options, /*total=*/10'000'000);
//   std::vector<sql::Row> chunk;
//   while (stream.next_chunk(&chunk)) pipeline.ingest(chunk);
//
// Determinism and resume: the records produced depend only on (options,
// total, position), never on chunk size or how many times the stream was
// re-created. stream(seek=K) produces exactly the suffix a fresh stream
// produces after K records — an ingest interrupted at a known offset
// resumes bit-identically (the crash-recovery story for a 10M-row load).
//
// Multi-tenant datasets: tenant_options() derives a per-tenant seed so
// each tenant draws a *different* population from the same vocabulary
// shapes, while vocabulary_distribution() exposes the exact P_M of those
// shapes — the registered distribution stays correct for every tenant
// because they share the vocabularies, only their draws differ.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/datagen/record_generator.h"
#include "src/sql/schema.h"

namespace wre::datagen {

class DatasetStream {
 public:
  /// A stream of `total` records, generated from `options`, starting at
  /// record `start` (0-based) — pass a non-zero start to resume.
  DatasetStream(const GeneratorOptions& options, int64_t total,
                int64_t start = 0, size_t chunk_records = 8192);

  /// Fills `chunk` with the next up-to-chunk_records rows. Returns false
  /// (leaving `chunk` empty) when the stream is exhausted. The chunk's
  /// capacity is reused across calls — memory stays O(chunk).
  bool next_chunk(std::vector<sql::Row>* chunk);

  /// Next record id to be produced (== records consumed so far + start).
  int64_t position() const { return position_; }
  int64_t total() const { return total_; }
  bool exhausted() const { return position_ >= total_; }

  const RecordGenerator& generator() const { return generator_; }

 private:
  RecordGenerator generator_;
  int64_t total_;
  int64_t position_;
  size_t chunk_records_;
};

/// Per-tenant generator options: same vocabulary shapes/sizes, but a seed
/// mixed from (base seed, tenant id) — deterministic, and distinct tenants
/// get distinct populations. Mixing is a SplitMix64 step, so adjacent
/// tenant ids do not produce correlated seeds.
GeneratorOptions tenant_options(const GeneratorOptions& base,
                                uint64_t tenant_id);

/// The exact probability each value of `vocab` is drawn with — P_M for a
/// column generated from it, computed from the vocabulary itself in
/// O(vocab) instead of scanning generated records. Feed the result to
/// core::PlaintextDistribution::from_probabilities.
std::map<std::string, double> vocabulary_distribution(
    const WeightedVocabulary& vocab);

}  // namespace wre::datagen
