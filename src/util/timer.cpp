#include "src/util/timer.h"

// Timer is header-only; this translation unit exists so the util library has
// a stable archive member even if future timing utilities move out of line.
