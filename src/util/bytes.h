// Byte-buffer helpers shared across the library: hex (de)serialization,
// little-endian integer packing, and constant-time comparison.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wre {

/// Owning byte buffer. All crypto and storage interfaces traffic in Bytes or
/// std::span<const uint8_t> views over them.
using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;

/// Encodes `data` as lowercase hex (two characters per byte).
std::string to_hex(ByteView data);

/// Decodes a hex string (upper or lower case). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Reinterprets a string's characters as bytes (no copy avoided; returns an
/// owning buffer so the caller need not keep the string alive).
Bytes to_bytes(std::string_view s);

/// Reinterprets a byte buffer as a std::string.
std::string to_string(ByteView data);

/// Appends `data` to `out`.
void append(Bytes& out, ByteView data);

/// Little-endian packing of fixed-width integers. store_* appends to `out`.
void store_le32(Bytes& out, uint32_t v);
void store_le64(Bytes& out, uint64_t v);

/// Raw-buffer variants for allocation-free hot paths (tag PRF inputs).
void store_le32(uint8_t* out, uint32_t v);
void store_le64(uint8_t* out, uint64_t v);

/// Little-endian unpacking. Preconditions: `data` holds at least the width.
uint32_t load_le32(const uint8_t* data);
uint64_t load_le64(const uint8_t* data);

/// Big-endian helpers (used by SHA-256 and AES-CTR counters).
void store_be32(uint8_t* out, uint32_t v);
void store_be64(uint8_t* out, uint64_t v);
uint32_t load_be32(const uint8_t* data);

/// Constant-time equality: runtime depends only on the lengths, never on the
/// contents. Returns false immediately if the lengths differ.
bool constant_time_equal(ByteView a, ByteView b);

}  // namespace wre
