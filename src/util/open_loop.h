// Open-loop arrival scheduling for load generation, immune to coordinated
// omission.
//
// A closed-loop generator (issue, wait for the reply, issue again) lies
// about tail latency: whenever the system stalls, the generator politely
// stops offering load, so the stall is recorded as ONE slow request
// instead of the dozens that would have arrived in the real world. The
// open-loop fix is to fix the arrival schedule in advance — requests
// arrive when the schedule says, whether or not the previous one finished
// — and to measure each request's latency from its *scheduled* arrival
// time, so queueing delay behind a stall is charged to every request it
// actually delayed.
//
// OpenLoopPacer produces that schedule: Poisson arrivals (exponential
// inter-arrival gaps) at a fixed mean rate, from a seeded PRNG so a run is
// reproducible. next_arrival() returns the scheduled time of the next
// request and sleeps until it — but NEVER skips or re-times a late
// arrival: if the caller is behind, next_arrival() returns immediately
// with the original (past) scheduled time, and the caller's
// latency-from-scheduled-time measurement inflates accordingly. That
// inflation is the point.
//
// Per-thread use: Poisson processes superpose — N independent pacers at
// rate r/N are exactly one Poisson stream at rate r. Give each load thread
// its own pacer (distinct seeds) and divide the target rate.
#pragma once

#include <chrono>
#include <cstdint>

#include "src/util/rng.h"

namespace wre::util {

class OpenLoopPacer {
 public:
  using Clock = std::chrono::steady_clock;

  /// `rate_per_sec` — mean arrival rate (> 0). `start` anchors the
  /// schedule; the first arrival is one exponential gap after it.
  OpenLoopPacer(double rate_per_sec, uint64_t seed,
                Clock::time_point start = Clock::now());

  /// Blocks until the next scheduled arrival (no-op if it is already in
  /// the past) and returns that *scheduled* time — measure latency from
  /// it, not from now().
  Clock::time_point next_arrival();

  /// The schedule alone (advances the stream, never sleeps) — for tests
  /// and for callers with their own waiting strategy.
  Clock::time_point peek_schedule_only();

  /// Arrivals whose scheduled time had already passed when next_arrival()
  /// was called — how far the caller fell behind the offered load.
  uint64_t late_arrivals() const { return late_; }
  uint64_t arrivals() const { return arrivals_; }

 private:
  Clock::time_point advance();

  double rate_;
  Xoshiro256 rng_;
  Clock::time_point next_;
  uint64_t arrivals_ = 0;
  uint64_t late_ = 0;
};

}  // namespace wre::util
