#include "src/util/rng.h"

#include <cmath>

namespace wre {

uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

uint64_t Xoshiro256::operator()() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

uint64_t Xoshiro256::next_below(uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256::next_exponential(double lambda) {
  // Inverse CDF; 1 - U in (0, 1] avoids log(0).
  double u = 1.0 - next_double();
  return -std::log(u) / lambda;
}

}  // namespace wre
