#include "src/util/open_loop.h"

#include <thread>

#include "src/util/error.h"

namespace wre::util {

OpenLoopPacer::OpenLoopPacer(double rate_per_sec, uint64_t seed,
                             Clock::time_point start)
    : rate_(rate_per_sec), rng_(seed), next_(start) {
  if (!(rate_per_sec > 0)) {
    throw Error("OpenLoopPacer: rate must be positive");
  }
  next_ += std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(rng_.next_exponential(rate_)));
}

OpenLoopPacer::Clock::time_point OpenLoopPacer::advance() {
  Clock::time_point scheduled = next_;
  next_ += std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(rng_.next_exponential(rate_)));
  ++arrivals_;
  return scheduled;
}

OpenLoopPacer::Clock::time_point OpenLoopPacer::next_arrival() {
  Clock::time_point scheduled = advance();
  Clock::time_point now = Clock::now();
  if (scheduled > now) {
    std::this_thread::sleep_until(scheduled);
  } else {
    // Behind schedule: do NOT re-time the arrival — returning the past
    // scheduled time is what keeps queueing delay in the measurement.
    ++late_;
  }
  return scheduled;
}

OpenLoopPacer::Clock::time_point OpenLoopPacer::peek_schedule_only() {
  return advance();
}

}  // namespace wre::util
