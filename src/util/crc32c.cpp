#include "src/util/crc32c.h"

#include <array>
#include <mutex>

namespace wre::util {

namespace {

constexpr uint32_t kPolyReflected = 0x82F63B78;  // 0x1EDC6F41 bit-reversed

/// 8 slicing tables, built once. table[0] is the classic byte-at-a-time
/// table; table[k][b] extends a CRC whose low byte is b by k additional zero
/// bytes, which lets the hot loop fold 8 input bytes per iteration.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPolyReflected : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

uint32_t crc32c(const uint8_t* data, size_t len, uint32_t seed) {
  const auto& t = tables().t;
  uint32_t crc = ~seed;
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    crc ^= load_le32(data + i);
    uint32_t hi = load_le32(data + i + 4);
    crc = t[7][crc & 0xff] ^ t[6][(crc >> 8) & 0xff] ^
          t[5][(crc >> 16) & 0xff] ^ t[4][crc >> 24] ^
          t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
  }
  for (; i < len; ++i) {
    crc = t[0][(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t crc32c(ByteView data, uint32_t seed) {
  return crc32c(data.data(), data.size(), seed);
}

}  // namespace wre::util
