// A small fixed-size worker pool for CPU-bound fan-out (bulk-ingest
// encryption). Deliberately minimal: FIFO queue, no futures, no work
// stealing — callers coordinate through wait_idle() or their own state.
//
// Shutdown contract: the destructor stops accepting new work, *finishes*
// every task already queued, then joins the workers. Nothing submitted
// before destruction is ever dropped, so a pipeline that dies mid-flight
// loses no rows (the concurrency stress test pins this down).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wre::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means one per hardware thread (at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains the remaining queue, then joins. See the shutdown contract above.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw — an escaping exception would
  /// terminate the process; wrap fallible work and capture the error.
  /// Throws Error if the pool is shutting down.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Tasks currently queued (excludes running ones); for tests/introspection.
  size_t queued() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;  // wait_idle: queue empty and none running
  std::deque<std::function<void()>> queue_;
  size_t running_ = 0;  // tasks dequeued but not yet finished
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wre::util
