#include "src/util/bytes.h"

#include <stdexcept>

namespace wre {

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(ByteView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_nibble(hex[i]);
    int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView data) {
  return std::string(data.begin(), data.end());
}

void append(Bytes& out, ByteView data) {
  out.insert(out.end(), data.begin(), data.end());
}

void store_le32(Bytes& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void store_le64(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void store_le32(uint8_t* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

void store_le64(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t load_le32(const uint8_t* data) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data[i]) << (8 * i);
  return v;
}

uint64_t load_le64(const uint8_t* data) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[i]) << (8 * i);
  return v;
}

void store_be32(uint8_t* out, uint32_t v) {
  out[0] = static_cast<uint8_t>(v >> 24);
  out[1] = static_cast<uint8_t>(v >> 16);
  out[2] = static_cast<uint8_t>(v >> 8);
  out[3] = static_cast<uint8_t>(v);
}

void store_be64(uint8_t* out, uint64_t v) {
  store_be32(out, static_cast<uint32_t>(v >> 32));
  store_be32(out + 4, static_cast<uint32_t>(v));
}

uint32_t load_be32(const uint8_t* data) {
  return (static_cast<uint32_t>(data[0]) << 24) |
         (static_cast<uint32_t>(data[1]) << 16) |
         (static_cast<uint32_t>(data[2]) << 8) | static_cast<uint32_t>(data[3]);
}

bool constant_time_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

}  // namespace wre
