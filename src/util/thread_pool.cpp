#include "src/util/thread_pool.h"

#include "src/util/error.h"

namespace wre::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) throw Error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
}

size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and the backlog is drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace wre::util
