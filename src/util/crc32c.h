// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected) — the checksum used
// to frame write-ahead-log records. CRC32C is the standard choice for log
// framing (iSCSI, ext4, LevelDB/RocksDB WALs) because single-bit flips and
// short burst errors — the failure modes of torn or partially-persisted log
// tails — are guaranteed detected.
//
// Implementation is slicing-by-8 table lookup: portable, allocation-free,
// and fast enough that log CRCs never show up next to the fsync they guard.
#pragma once

#include <cstdint>

#include "src/util/bytes.h"

namespace wre::util {

/// CRC32C of `data`, continuing from `seed` (0 for a fresh checksum).
/// Chaining: crc32c(b, crc32c(a)) == crc32c(a || b).
uint32_t crc32c(ByteView data, uint32_t seed = 0);

/// Raw-buffer variant.
uint32_t crc32c(const uint8_t* data, size_t len, uint32_t seed = 0);

}  // namespace wre::util
