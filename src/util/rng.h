// Deterministic pseudo-random number generation for simulation and testing.
//
// Security-relevant randomness (keys, nonces, salt draws during encryption)
// must come from crypto::SecureRandom (src/crypto/secure_random.h); the
// xoshiro generator here is for workload generation, sampling in benches and
// reproducible tests only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace wre {

/// splitmix64: used to expand a single 64-bit seed into generator state.
/// Reference: Sebastiano Vigna, public domain.
uint64_t splitmix64(uint64_t& state);

/// xoshiro256** 1.0 — fast, high-quality non-cryptographic PRNG.
/// Satisfies std::uniform_random_bit_generator so it can drive <random>
/// distributions and std::shuffle.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// Seeds all 256 bits of state from `seed` via splitmix64.
  explicit Xoshiro256(uint64_t seed = 0xdeadbeefcafef00dULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform integer in [0, bound) without modulo bias. Precondition:
  /// bound > 0.
  uint64_t next_below(uint64_t bound);

  /// Exponential(lambda) variate via inverse CDF. Precondition: lambda > 0.
  double next_exponential(double lambda);

 private:
  uint64_t s_[4];
};

/// Fisher–Yates shuffle driven by an injected generator; kept here (rather
/// than std::shuffle) so the permutation is stable across standard-library
/// implementations, which matters for golden tests.
template <typename T, typename Rng>
void fisher_yates_shuffle(std::vector<T>& items, Rng& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace wre
