// Library-wide exception hierarchy. Exceptions signal programmer or
// environment errors (bad schema, I/O failure, corrupt page); expected
// conditions (missing row, cache miss) are expressed as optionals / status
// codes at the call site instead.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace wre {

/// Root of all exceptions thrown by the wre library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Storage layer failure: file I/O errors, corrupt pages, page-id bounds.
class StorageError : public Error {
 public:
  using Error::Error;
};

/// On-disk data failed its integrity check (page checksum mismatch). A
/// distinct type so callers can tell "the disk lied" from ordinary I/O
/// failures — corrupted pages must surface loudly, never be served as data.
class CorruptionError : public StorageError {
 public:
  using StorageError::StorageError;
};

/// SQL layer failure: parse errors, unknown tables/columns, type mismatches.
class SqlError : public Error {
 public:
  using Error::Error;
};

/// Crypto layer failure: bad key sizes, malformed ciphertexts.
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// WRE client failure: unknown plaintext distributions, bad parameters.
class WreError : public Error {
 public:
  using Error::Error;
};

/// Network layer failure: socket errors, timeouts, malformed or oversized
/// wire frames, protocol version mismatches.
class NetworkError : public Error {
 public:
  using Error::Error;
};

/// The server shed this request under overload (admission control or a
/// server-side deadline). Always safe to retry after a backoff: the request
/// was rejected before execution, or the retry is deduplicated by its
/// idempotency key.
class OverloadedError : public NetworkError {
 public:
  using NetworkError::NetworkError;
};

/// A client-side retry loop gave up: attempt cap, overall deadline, or
/// retry budget. Carries how many attempts were made and the total elapsed
/// time so callers (and their logs) can see the request's whole history.
class RetriesExhaustedError : public NetworkError {
 public:
  RetriesExhaustedError(const std::string& what, int attempts,
                        uint64_t elapsed_ms)
      : NetworkError(what), attempts_(attempts), elapsed_ms_(elapsed_ms) {}

  int attempts() const { return attempts_; }
  uint64_t elapsed_ms() const { return elapsed_ms_; }

 private:
  int attempts_ = 0;
  uint64_t elapsed_ms_ = 0;
};

}  // namespace wre
