// Library-wide exception hierarchy. Exceptions signal programmer or
// environment errors (bad schema, I/O failure, corrupt page); expected
// conditions (missing row, cache miss) are expressed as optionals / status
// codes at the call site instead.
#pragma once

#include <stdexcept>
#include <string>

namespace wre {

/// Root of all exceptions thrown by the wre library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Storage layer failure: file I/O errors, corrupt pages, page-id bounds.
class StorageError : public Error {
 public:
  using Error::Error;
};

/// SQL layer failure: parse errors, unknown tables/columns, type mismatches.
class SqlError : public Error {
 public:
  using Error::Error;
};

/// Crypto layer failure: bad key sizes, malformed ciphertexts.
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// WRE client failure: unknown plaintext distributions, bad parameters.
class WreError : public Error {
 public:
  using Error::Error;
};

/// Network layer failure: socket errors, timeouts, malformed or oversized
/// wire frames, protocol version mismatches.
class NetworkError : public Error {
 public:
  using Error::Error;
};

}  // namespace wre
