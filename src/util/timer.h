// Wall-clock timing helper for benches and the experiment harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace wre {

/// Monotonic stopwatch. Starts on construction; `elapsed_*` reads without
/// stopping, `restart` resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_millis() const { return elapsed_seconds() * 1e3; }
  double elapsed_micros() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wre
