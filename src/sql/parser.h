// Lexer and recursive-descent parser for the engine's SQL subset.
//
// Grammar (case-insensitive keywords):
//   statement   := create_table | create_index | insert | select
//   create_table:= CREATE TABLE ident '(' coldef (',' coldef)* ')'
//   coldef      := ident type [PRIMARY KEY]
//   type        := INTEGER | BIGINT | INT | TEXT | VARCHAR | BLOB
//   create_index:= CREATE INDEX [ident] ON ident '(' ident ')'
//   insert      := INSERT INTO ident VALUES tuple (',' tuple)*
//   tuple       := '(' literal (',' literal)* ')'
//   select      := SELECT ('*' | COUNT '(' '*' ')' | ident (',' ident)*)
//                  FROM ident [WHERE expr] [LIMIT int]
//   expr        := and_expr (OR and_expr)*
//   and_expr    := primary (AND primary)*
//   primary     := '(' expr ')' | ident '=' literal
//                | ident IN '(' literal (',' literal)* ')'
//   literal     := int | 'string' | X'hex' | NULL
#pragma once

#include <string_view>

#include "src/sql/ast.h"

namespace wre::sql {

/// Parses one SQL statement (an optional trailing ';' is accepted).
/// Throws SqlError with a position-annotated message on syntax errors.
Statement parse_statement(std::string_view sql);

/// Parses a bare WHERE expression (used by tests and the WRE client).
Expr parse_expression(std::string_view sql);

}  // namespace wre::sql
