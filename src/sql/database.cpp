#include "src/sql/database.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "src/columnar/store_manager.h"
#include "src/sql/parser.h"
#include "src/util/error.h"

namespace wre::sql {

namespace {

constexpr const char* kCatalogFile = "catalog.wre";

/// Runs fn(0..n-1) on `pool` and blocks until all complete. Completion is
/// tracked per call (not via ThreadPool::wait_idle), so concurrent SELECTs
/// can share one pool without waiting on each other's tasks. The first
/// exception thrown by any task is rethrown here.
void run_tasks(util::ThreadPool& pool, size_t n,
               const std::function<void(size_t)>& fn) {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = n;
  std::exception_ptr error;

  for (size_t i = 0; i < n; ++i) {
    pool.submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!error) error = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(mu);
      if (--remaining == 0) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return remaining == 0; });
  if (error) std::rethrow_exception(error);
}

/// Splits [0, n) into at most `max_slices` contiguous slices of near-equal
/// size; returns the slice boundaries (size() - 1 slices).
std::vector<size_t> slice_bounds(size_t n, size_t max_slices) {
  size_t slices = std::min(max_slices, n);
  if (slices == 0) slices = 1;
  std::vector<size_t> bounds;
  bounds.reserve(slices + 1);
  for (size_t s = 0; s <= slices; ++s) {
    bounds.push_back(n * s / slices);
  }
  return bounds;
}

ValueType type_from_name(const std::string& t) {
  if (t == "INTEGER") return ValueType::kInt64;
  if (t == "TEXT") return ValueType::kText;
  if (t == "BLOB") return ValueType::kBlob;
  throw SqlError("catalog: unknown type " + t);
}

std::string basename_of(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

bool eval_expr(const Expr& expr, const Schema& schema, const Row& row) {
  switch (expr.kind) {
    case Expr::Kind::kEquals:
    case Expr::Kind::kIn: {
      auto idx = schema.index_of(expr.column);
      if (!idx) throw SqlError("unknown column " + expr.column);
      const Value& cell = row[*idx];
      return std::any_of(expr.values.begin(), expr.values.end(),
                         [&](const Value& v) { return cell.sql_equals(v); });
    }
    case Expr::Kind::kAnd:
      return std::all_of(
          expr.children.begin(), expr.children.end(),
          [&](const Expr& c) { return eval_expr(c, schema, row); });
    case Expr::Kind::kOr:
      return std::any_of(
          expr.children.begin(), expr.children.end(),
          [&](const Expr& c) { return eval_expr(c, schema, row); });
  }
  throw SqlError("eval_expr: corrupt expression");
}

std::optional<std::pair<std::string, std::vector<Value>>>
extract_single_column_disjunction(const Expr& expr) {
  std::string column;
  std::vector<Value> values;

  // Walk the tree; only OR / Equals / In nodes over one column qualify.
  auto walk = [&](const Expr& e, auto&& self) -> bool {
    switch (e.kind) {
      case Expr::Kind::kEquals:
      case Expr::Kind::kIn:
        if (column.empty()) {
          column = e.column;
        } else if (column != e.column) {
          return false;
        }
        values.insert(values.end(), e.values.begin(), e.values.end());
        return true;
      case Expr::Kind::kOr:
        return std::all_of(e.children.begin(), e.children.end(),
                           [&](const Expr& c) { return self(c, self); });
      case Expr::Kind::kAnd:
        return false;
    }
    return false;
  };

  if (!walk(expr, walk) || column.empty()) return std::nullopt;
  return std::make_pair(std::move(column), std::move(values));
}

Database::Database(std::string dir, DatabaseOptions options)
    : dir_(std::move(dir)) {
  // Crash recovery runs first, before any file is opened: a leftover WAL
  // means the previous (durable) instance died without checkpointing, and
  // its committed batches must reach the data files before the catalog and
  // tables are read. This happens even when this open is non-durable — the
  // log's committed writes were acknowledged and must not be lost.
  recovery_stats_ = storage::Wal::recover(dir_ + "/wal", dir_);

  disk_.set_read_latency_micros(options.read_latency_us);
  disk_.set_write_latency_micros(options.write_latency_us);
  pool_ = std::make_unique<storage::BufferPool>(disk_,
                                                options.buffer_pool_pages);
  if (options.durability) {
    storage::WalOptions wal_opts;
    wal_opts.segment_bytes = options.wal_segment_bytes;
    wal_opts.group_window_us = options.wal_group_window_us;
    wal_opts.fsync = options.wal_fsync;
    wal_ = std::make_unique<storage::Wal>(dir_ + "/wal", wal_opts);
    pool_->set_wal_tracking(true);
  }
  load_catalog();
  if (options.query_threads != 1) set_query_threads(options.query_threads);
  columnar_dict_max_ = options.columnar_dict_max;
  columnar_min_rows_ = options.columnar_min_rows;
  if (options.columnar) set_columnar_enabled(true);
}

Database::~Database() {
  if (wal_ != nullptr) {
    try {
      checkpoint();
    } catch (const Error&) {
      // Unflushed committed state stays in the WAL; the next open replays.
    }
  }
}

void Database::set_columnar_enabled(bool on) {
  columnar_enabled_ = on;
  if (on && columnar_mgr_ == nullptr) {
    columnar::ColumnStoreOptions opt;
    opt.dict_max = columnar_dict_max_;
    opt.min_rows = columnar_min_rows_;
    columnar_mgr_ = std::make_unique<columnar::ColumnStoreManager>(opt);
  }
}

void Database::set_query_threads(unsigned n) {
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  query_threads_ = n;
  query_pool_.reset();
  if (n > 1) query_pool_ = std::make_unique<util::ThreadPool>(n);
}

Table& Database::create_table(const std::string& name, Schema schema) {
  std::string lowered = to_lower(name);
  if (tables_.contains(lowered)) {
    throw SqlError("table already exists: " + lowered);
  }
  auto table =
      std::make_unique<Table>(*pool_, dir_, lowered, std::move(schema));
  Table& ref = *table;
  tables_.emplace(lowered, std::move(table));
  save_catalog();
  return ref;
}

void Database::create_index(const std::string& table_name,
                            const std::string& column) {
  table(table_name).create_index(column);
  save_catalog();
}

Table& Database::table(const std::string& name) {
  auto it = tables_.find(to_lower(name));
  if (it == tables_.end()) throw SqlError("unknown table: " + name);
  return *it->second;
}

bool Database::has_table(const std::string& name) const {
  return tables_.contains(to_lower(name));
}

std::vector<int64_t> Database::insert_batch(const std::string& table_name,
                                            const std::vector<Row>& rows) {
  return table(table_name).insert_batch(rows);
}

ResultSet Database::execute(std::string_view sql) {
  Statement stmt = parse_statement(sql);
  return std::visit(
      [&](auto&& s) -> ResultSet {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, CreateTableStmt>) {
          create_table(s.table, Schema(s.columns));
          return ResultSet{};
        } else if constexpr (std::is_same_v<T, CreateIndexStmt>) {
          create_index(s.table, s.column);
          return ResultSet{};
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          return execute_insert(s);
        } else {
          return execute_select(s);
        }
      },
      stmt);
}

ResultSet Database::execute_insert(const InsertStmt& stmt) {
  Table& t = table(stmt.table);
  for (const Row& row : stmt.rows) {
    t.insert(row);
  }
  ResultSet rs;
  rs.rows_affected = stmt.rows.size();
  return rs;
}

namespace {

// Plan-time validation: every column referenced by the predicate must exist,
// even if the scan never evaluates it (e.g. empty tables).
void validate_expr_columns(const Expr& expr, const Schema& schema) {
  switch (expr.kind) {
    case Expr::Kind::kEquals:
    case Expr::Kind::kIn:
      if (!schema.index_of(expr.column)) {
        throw SqlError("unknown column in WHERE clause: " + expr.column);
      }
      return;
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      for (const Expr& c : expr.children) validate_expr_columns(c, schema);
      return;
  }
}

/// Resolves the SELECT list to column positions, appending the output
/// column names to `names`. COUNT(*) yields an empty projection.
std::vector<size_t> resolve_projection(const SelectStmt& stmt,
                                       const Schema& schema,
                                       std::vector<std::string>* names) {
  std::vector<size_t> projection;
  if (stmt.star) {
    for (size_t i = 0; i < schema.column_count(); ++i) {
      projection.push_back(i);
      names->push_back(schema.column(i).name);
    }
  } else if (!stmt.count_star) {
    for (const auto& name : stmt.columns) {
      auto idx = schema.index_of(name);
      if (!idx) throw SqlError("unknown column in SELECT list: " + name);
      projection.push_back(*idx);
      names->push_back(schema.column(*idx).name);
    }
  } else {
    names->push_back("count(*)");
  }
  return projection;
}

/// The planner's probe choice, shared by execute_select and the wire fast
/// path so both agree on when a multi-probe index plan wins:
///  1. the whole WHERE is a single-column disjunction -> probe it (the
///     caller still checks the column is indexed);
///  2. WHERE is a conjunction with at least one indexed such child ->
///     probe the child with the fewest values and recheck the full
///     predicate (`*whole_predicate` = false);
///  3. otherwise no probe -> scan.
std::optional<std::pair<std::string, std::vector<Value>>> choose_probe(
    const SelectStmt& stmt, const Table& t, bool* whole_predicate) {
  *whole_predicate = true;
  if (!stmt.where) return std::nullopt;
  auto probe = extract_single_column_disjunction(*stmt.where);
  if (!probe && stmt.where->kind == Expr::Kind::kAnd) {
    for (const Expr& child : stmt.where->children) {
      auto candidate = extract_single_column_disjunction(child);
      if (!candidate || !t.has_index(candidate->first)) continue;
      if (!probe || candidate->second.size() < probe->second.size()) {
        probe = std::move(candidate);
      }
    }
    *whole_predicate = false;
  }
  return probe;
}

}  // namespace

ResultSet Database::execute_select(const SelectStmt& stmt) {
  Table& t = table(stmt.table);
  const Schema& schema = t.schema();
  if (stmt.where) validate_expr_columns(*stmt.where, schema);
  ResultSet rs;

  std::vector<size_t> projection =
      resolve_projection(stmt, schema, &rs.columns);

  uint64_t limit = stmt.limit.value_or(UINT64_MAX);
  uint64_t count = 0;

  auto emit_row = [&](int64_t pk, const Row* row) -> bool {
    // Returns false once the limit is reached.
    if (count >= limit) return false;
    ++count;
    if (stmt.count_star) return count < limit;
    Row out;
    out.reserve(projection.size());
    for (size_t idx : projection) {
      if (row == nullptr) {
        // Index-only path: the only projectable column is the primary key.
        out.push_back(Value::int64(pk));
      } else {
        out.push_back((*row)[idx]);
      }
    }
    rs.rows.push_back(std::move(out));
    return count < limit;
  };

  // Plan selection (see choose_probe): multi-probe index scan when the
  // predicate offers an indexed probe set, sequential/columnar scan
  // otherwise.
  bool probe_is_whole_predicate = true;
  std::optional<std::pair<std::string, std::vector<Value>>> probe =
      choose_probe(stmt, t, &probe_is_whole_predicate);

  // Columnar routing (DESIGN.md §5.9): with the store enabled and the
  // table above the size floor, a segment serves (a) the scan path
  // outright — vectorized predicate kernels + late materialization — and
  // (b) the record-fetch phase of index-probe plans, replacing the
  // pk-index descent + heap read + record decode per selected row.
  // Results are byte-identical to the row path in both uses: the scan
  // emits heap order like the sequential scan, the fetch emits sorted-pk
  // order like the serial fetch loop.
  const bool columnar_route =
      columnar_enabled_ && columnar_mgr_ != nullptr &&
      t.row_count() >= columnar_min_rows_;

  if (stmt.explain) {
    rs.columns = {"plan"};
    std::string plan;
    if (probe && t.has_index(probe->first)) {
      auto pk_col = schema.primary_key_index();
      bool pk_only =
          !stmt.star && pk_col.has_value() &&
          std::all_of(projection.begin(), projection.end(),
                      [&](size_t i) { return i == *pk_col; });
      bool idx_only =
          (pk_only || stmt.count_star) && probe_is_whole_predicate;
      plan = "multi-probe index scan on " + stmt.table + " using index(" +
             probe->first + "), " + std::to_string(probe->second.size()) +
             " probe(s)";
      if (idx_only) plan += ", index-only";
      if (!probe_is_whole_predicate) plan += ", recheck residual predicate";
      if (!idx_only && columnar_route) plan += ", columnar materialization";
    } else if (columnar_route) {
      plan = "columnar scan on " + stmt.table;
      if (stmt.where) plan += ", filter";
    } else {
      plan = "sequential scan on " + stmt.table;
      if (stmt.where) plan += ", filter";
    }
    if (stmt.limit) plan += ", limit " + std::to_string(*stmt.limit);
    rs.rows.push_back({Value::text(std::move(plan))});
    return rs;
  }

  if (probe && t.has_index(probe->first)) {
    rs.used_index = true;
    auto pk_col = schema.primary_key_index();

    // Deduplicate probe values so `x = 1 OR x = 1` probes once.
    std::vector<Value> values = probe->second;
    std::sort(values.begin(), values.end(), [](const Value& a, const Value& b) {
      return a.to_sql_literal() < b.to_sql_literal();
    });
    values.erase(std::unique(values.begin(), values.end()), values.end());

    // An index probe never needs the heap when the projection touches only
    // the primary-key column (or COUNT(*)). Text-keyed indexes are
    // hash-reduced to 64 bits, so an index-only answer carries a ~2^-64
    // per-pair false-positive probability — the same trade a production
    // hash index makes; projections that materialize rows recheck exactly.
    bool pk_only_projection =
        !stmt.star && pk_col.has_value() &&
        std::all_of(projection.begin(), projection.end(),
                    [&](size_t i) { return i == *pk_col; });
    // A conjunction's residual predicates require the row, so index-only
    // answers are possible only when the probe covers the whole WHERE.
    bool index_only =
        (pk_only_projection || stmt.count_star) && probe_is_whole_predicate;

    // Probe phase. With a worker pool the probes fan out in contiguous
    // value slices; each slice collects its own pks and probe count, and
    // the slice-ordered concatenation below feeds the same sort+unique as
    // the serial path — parallel and serial runs produce identical pk
    // lists. Below the threshold the fan-out overhead beats the win.
    constexpr size_t kMinItemsPerTask = 8;
    std::vector<int64_t> pks;
    if (query_pool_ && values.size() >= 2 * kMinItemsPerTask) {
      auto bounds = slice_bounds(values.size(), query_threads_);
      size_t slices = bounds.size() - 1;
      std::vector<std::vector<int64_t>> slice_pks(slices);
      std::vector<uint64_t> slice_probes(slices, 0);
      run_tasks(*query_pool_, slices, [&](size_t s) {
        for (size_t i = bounds[s]; i < bounds[s + 1]; ++i) {
          const Value& v = values[i];
          if (v.is_null()) continue;
          ++slice_probes[s];
          auto matches = t.probe_index(probe->first, v);
          slice_pks[s].insert(slice_pks[s].end(), matches.begin(),
                              matches.end());
        }
      });
      for (size_t s = 0; s < slices; ++s) {
        rs.index_probes += slice_probes[s];
        pks.insert(pks.end(), slice_pks[s].begin(), slice_pks[s].end());
      }
    } else {
      for (const Value& v : values) {
        if (v.is_null()) continue;
        ++rs.index_probes;
        auto matches = t.probe_index(probe->first, v);
        pks.insert(pks.end(), matches.begin(), matches.end());
      }
    }
    std::sort(pks.begin(), pks.end());
    pks.erase(std::unique(pks.begin(), pks.end()), pks.end());

    if (index_only) {
      for (int64_t pk : pks) {
        if (!emit_row(pk, nullptr)) break;
      }
    } else if (std::shared_ptr<const columnar::TableSegment> seg =
                   columnar_route ? columnar_mgr_->snapshot(t) : nullptr) {
      // Record-fetch phase from the column segment: binary-search the pk,
      // recheck the predicate directly on the compressed columns, and
      // materialize only the projected cells of surviving rows. Same
      // sorted-pk emission order and limit semantics as the loops below.
      rs.used_columnar = true;
      for (int64_t pk : pks) {
        if (count >= limit) break;
        auto row_pos = seg->row_of_pk(pk);
        if (!row_pos) {
          // Defensive only: a fresh segment contains every indexed pk.
          auto row = t.find_by_pk(pk);
          if (!row) continue;
          ++rs.heap_fetches;
          if (!eval_expr(*stmt.where, schema, *row)) continue;
          if (!emit_row(pk, &*row)) break;
          continue;
        }
        if (!seg->row_matches(*stmt.where, *row_pos)) continue;  // recheck
        ++count;
        if (!stmt.count_star) {
          ++rs.columnar_rows;
          rs.rows.push_back(seg->materialize(*row_pos, projection));
        }
      }
    } else if (query_pool_ && limit == UINT64_MAX &&
               pks.size() >= 2 * kMinItemsPerTask) {
      // Record-fetch phase, parallel variant: materialize all rows first
      // (no LIMIT means every pk is needed), then recheck and emit in pk
      // order exactly as the serial loop would.
      std::vector<std::optional<Row>> fetched(pks.size());
      auto bounds = slice_bounds(pks.size(), query_threads_);
      run_tasks(*query_pool_, bounds.size() - 1, [&](size_t s) {
        for (size_t i = bounds[s]; i < bounds[s + 1]; ++i) {
          fetched[i] = t.find_by_pk(pks[i]);
        }
      });
      for (size_t i = 0; i < pks.size(); ++i) {
        if (!fetched[i]) continue;  // cannot happen in the append-only engine
        ++rs.heap_fetches;
        if (!eval_expr(*stmt.where, schema, *fetched[i])) continue;  // recheck
        if (!emit_row(pks[i], &*fetched[i])) break;
      }
    } else {
      for (int64_t pk : pks) {
        auto row = t.find_by_pk(pk);
        if (!row) continue;  // cannot happen in the append-only engine
        ++rs.heap_fetches;
        if (!eval_expr(*stmt.where, schema, *row)) continue;  // recheck
        if (!emit_row(pk, &*row)) break;
      }
    }
  } else if (std::shared_ptr<const columnar::TableSegment> seg =
                 columnar_route ? columnar_mgr_->snapshot(t) : nullptr) {
    // Columnar scan: one vectorized predicate pass over the compressed
    // columns yields the selection vector (ascending row positions = heap
    // order, the sequential scan's emission order); only selected rows are
    // materialized, and COUNT(*) materializes none at all.
    rs.used_columnar = true;
    if (stmt.count_star && !stmt.where) {
      count = std::min<uint64_t>(seg->row_count(), limit);
    } else {
      columnar::Selection sel =
          stmt.where ? seg->select(*stmt.where) : seg->select_all();
      if (sel.size() > limit) sel.resize(limit);
      count = sel.size();
      if (!stmt.count_star) {
        rs.columnar_rows = sel.size();
        seg->materialize_rows(sel, projection, &rs.rows);
      }
    }
  } else {
    // Sequential scan. Table::scan has no early-exit channel; a LIMIT that
    // is hit simply stops emitting.
    t.scan([&](int64_t pk, const Row& row) {
      if (count >= limit) return;
      if (stmt.where && !eval_expr(*stmt.where, schema, row)) return;
      ++rs.heap_fetches;
      emit_row(pk, &row);
    });
  }

  if (stmt.count_star) {
    rs.rows.push_back({Value::int64(static_cast<int64_t>(count))});
  }
  return rs;
}

bool Database::execute_select_wire(const SelectStmt& stmt, Bytes* out) {
  if (stmt.explain || stmt.count_star) return false;
  if (!columnar_enabled_ || columnar_mgr_ == nullptr) return false;
  Table& t = table(stmt.table);
  const Schema& schema = t.schema();
  if (t.row_count() < columnar_min_rows_) return false;
  if (stmt.where) validate_expr_columns(*stmt.where, schema);

  // Only when the planner would scan: an indexed probe set means the
  // multi-probe index plan wins and the caller takes the ResultSet path.
  bool whole_predicate = true;
  auto probe = choose_probe(stmt, t, &whole_predicate);
  if (probe && t.has_index(probe->first)) return false;

  std::shared_ptr<const columnar::TableSegment> seg =
      columnar_mgr_->snapshot(t);
  if (seg == nullptr) return false;

  std::vector<std::string> names;
  std::vector<size_t> projection = resolve_projection(stmt, schema, &names);
  columnar::Selection sel =
      stmt.where ? seg->select(*stmt.where) : seg->select_all();
  uint64_t limit = stmt.limit.value_or(UINT64_MAX);
  if (sel.size() > limit) sel.resize(limit);

  // The result-set envelope, byte-for-byte what net::encode_result_set
  // emits for this plan: column names, rows, then the executor counters a
  // columnar scan reports (no probes, no heap fetches, no index).
  store_le32(*out, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    store_le32(*out, static_cast<uint32_t>(name.size()));
    out->insert(out->end(), name.begin(), name.end());
  }
  store_le32(*out, static_cast<uint32_t>(sel.size()));
  seg->wire_encode_rows(sel, projection, out);
  store_le64(*out, 0);  // rows_affected
  store_le64(*out, 0);  // index_probes
  store_le64(*out, 0);  // heap_fetches
  out->push_back(0);    // used_index
  return true;
}

bool Database::execute_sql_wire(std::string_view sql, Bytes* out) {
  if (!columnar_enabled_ || columnar_mgr_ == nullptr) return false;
  Statement stmt = parse_statement(sql);
  auto* select = std::get_if<SelectStmt>(&stmt);
  if (select == nullptr) return false;
  return execute_select_wire(*select, out);
}

void Database::clear_cache() {
  // Under WAL, clear_cache's flush would push unlogged mutations into the
  // data files; commit first so log-before-data holds. The barrier also
  // waits out earlier in-flight commit groups (a concurrent writer may
  // still be waiting on its handle outside the write lock), whose frames
  // are no-steal until their fsync lands.
  if (wal_ != nullptr) {
    commit();
    wal_->sync();
  }
  pool_->clear_cache();
  // Cold means cold: the next columnar scan rebuilds its segment from the
  // (now uncached) heap, mirroring the paper's drop_caches procedure.
  if (columnar_mgr_ != nullptr) columnar_mgr_->drop_all();
}

storage::CommitHandle Database::commit_async() {
  if (wal_ == nullptr) return {};

  storage::WalCommitRequest req;
  auto dirty = pool_->collect_wal_dirty();
  std::set<storage::FileId> touched;
  req.pages.reserve(dirty.images.size());
  for (auto& [id, bytes] : dirty.images) {
    touched.insert(id.file);
    req.pages.push_back(storage::WalPageImage{
        basename_of(disk_.file_path(id.file)), id.page, std::move(bytes)});
  }
  // Extents let replay ftruncate away uncommitted physical growth: the heap
  // scan trusts the file's page count, so a crash between allocate_page and
  // commit must not leave phantom pages behind.
  for (storage::FileId f : touched) {
    req.extents.push_back(storage::WalFileExtent{
        basename_of(disk_.file_path(f)), disk_.page_count(f)});
  }
  bool had_catalog = catalog_dirty_;
  if (catalog_dirty_) {
    req.catalog = catalog_text();
    catalog_dirty_ = false;
  }
  if (req.pages.empty() && req.extents.empty() && !req.catalog.has_value()) {
    return {};  // nothing to make durable; handle is already ready
  }
  // The collected frames stay no-steal until the log-writer reports this
  // batch's group fsync complete — callers wait on the handle outside the
  // write lock, so concurrent reads (and their evictions) overlap the
  // pending fsync. The pool outlives the WAL (member order), so the
  // callback's pool pointer is valid for every writer-thread invocation.
  storage::BufferPool* pool = pool_.get();
  uint64_t epoch = dirty.epoch;
  req.on_durable = [pool, epoch] { pool->wal_durable(epoch); };
  try {
    return wal_->commit(std::move(req));
  } catch (...) {
    // Nothing was enqueued: the images are unlogged again. Re-mark the
    // frames (and the catalog) so they stay no-steal and a later commit
    // re-collects them.
    pool_->wal_abort(epoch);
    catalog_dirty_ = had_catalog || catalog_dirty_;
    throw;
  }
}

void Database::commit() { commit_async().wait(); }

void Database::checkpoint() {
  // Staleness sweep: a checkpoint is the durability path's natural segment
  // boundary, so drop any column segment whose build version no longer
  // matches its table (fresh ones stay — the server checkpoints on a
  // timer, and dropping valid segments would cold-start every scan).
  if (columnar_mgr_ != nullptr) {
    for (const auto& [name, t] : tables_) {
      columnar_mgr_->prune(name, t->mutation_version());
    }
  }
  if (wal_ == nullptr) {
    pool_->flush_all();
    return;
  }
  // Fuzzy checkpoint: (1) pending mutations become durable in the log,
  // (2) every committed page reaches its data file, (3) the data files and
  // catalog are fsync'd, and only then (4) the log is truncated. A crash
  // between any two steps recovers correctly: before (4) the log still
  // holds everything, and replay is idempotent.
  //
  // The barrier after commit() is load-bearing: commit() only waits for
  // THIS call's batch (and waits for nothing when nothing is newly dirty),
  // but a concurrent writer that released the write lock may still be
  // waiting on its own handle. Until that group's fdatasync lands, its
  // frames are no-steal — flush_all would skip them — yet its records live
  // in the segments step (4) deletes. sync() drains the queue, so by
  // flush_all every committed frame is flushable.
  commit();
  wal_->sync();
  pool_->flush_all();
  disk_.fsync_all();
  write_catalog_file(catalog_text());
  wal_->truncate_all();
}

uint64_t Database::data_size_bytes() const {
  uint64_t total = 0;
  for (const auto& [name, t] : tables_) total += t->data_size_bytes();
  return total;
}

uint64_t Database::index_size_bytes() const {
  uint64_t total = 0;
  for (const auto& [name, t] : tables_) total += t->index_size_bytes();
  return total;
}

std::string Database::catalog_text() const {
  std::ostringstream out;
  for (const auto& [name, t] : tables_) {
    out << "table " << name << " " << t->schema().column_count() << "\n";
    for (const Column& c : t->schema().columns()) {
      out << "col " << c.name << " " << type_name(c.type) << " "
          << (c.primary_key ? 1 : 0) << "\n";
    }
    for (const std::string& col : t->indexed_columns()) {
      out << "index " << name << " " << col << "\n";
    }
  }
  return out.str();
}

void Database::write_catalog_file(const std::string& text) {
  // Atomic replace: write + fsync a sibling, rename over the target, fsync
  // the directory. A crash leaves either the old or the new catalog — never
  // a torn one.
  const std::string final_path = dir_ + "/" + kCatalogFile;
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc | std::ios::binary);
    if (!out) throw SqlError("cannot write catalog in " + dir_);
    out << text;
    out.flush();
    if (!out) throw SqlError("cannot write catalog in " + dir_);
  }
  int fd = ::open(tmp_path.c_str(), O_RDONLY);
  if (fd < 0) throw SqlError("cannot reopen catalog tmp in " + dir_);
  bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) throw SqlError("cannot fsync catalog in " + dir_);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw SqlError("cannot install catalog in " + dir_);
  }
  int dir_fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

void Database::save_catalog() {
  if (wal_ != nullptr) {
    // Deferred: the file write would be data-before-log. The next commit
    // carries the catalog text; checkpoint/recovery write the real file.
    catalog_dirty_ = true;
    return;
  }
  write_catalog_file(catalog_text());
}

void Database::load_catalog() {
  std::ifstream in(dir_ + "/" + kCatalogFile);
  if (!in) return;  // fresh database
  std::string word;
  while (in >> word) {
    if (word == "table") {
      std::string name;
      size_t ncols;
      in >> name >> ncols;
      std::vector<Column> cols;
      for (size_t i = 0; i < ncols; ++i) {
        std::string kw, cname, ctype;
        int pk;
        in >> kw >> cname >> ctype >> pk;
        if (kw != "col") throw SqlError("catalog: corrupt column entry");
        cols.push_back(Column{cname, type_from_name(ctype), pk != 0});
      }
      tables_.emplace(name, std::make_unique<Table>(*pool_, dir_, name,
                                                    Schema(std::move(cols))));
    } else if (word == "index") {
      std::string tname, col;
      in >> tname >> col;
      table(tname).attach_index(col);
    } else {
      throw SqlError("catalog: unknown entry " + word);
    }
  }
}

}  // namespace wre::sql
