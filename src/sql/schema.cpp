#include "src/sql/schema.h"

#include <cctype>

#include "src/util/error.h"

namespace wre::sql {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].name = to_lower(columns_[i].name);
    if (columns_[i].primary_key) {
      if (pk_index_.has_value()) {
        throw SqlError("Schema: multiple PRIMARY KEY columns");
      }
      if (columns_[i].type != ValueType::kInt64) {
        throw SqlError("Schema: PRIMARY KEY must be an INTEGER column");
      }
      pk_index_ = i;
    }
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      if (columns_[i].name == columns_[j].name) {
        throw SqlError("Schema: duplicate column name " + columns_[i].name);
      }
    }
  }
}

std::optional<size_t> Schema::index_of(std::string_view name) const {
  std::string lowered = to_lower(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == lowered) return i;
  }
  return std::nullopt;
}

void Schema::check_row(const Row& row) const {
  if (row.size() != columns_.size()) {
    throw SqlError("row arity mismatch: expected " +
                   std::to_string(columns_.size()) + " values, got " +
                   std::to_string(row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      if (columns_[i].primary_key) {
        throw SqlError("NULL in PRIMARY KEY column " + columns_[i].name);
      }
      continue;
    }
    if (row[i].type() != columns_[i].type) {
      throw SqlError("type mismatch in column " + columns_[i].name +
                     ": expected " + type_name(columns_[i].type) + ", got " +
                     type_name(row[i].type()));
    }
  }
}

Bytes Schema::encode_row(const Row& row) const {
  check_row(row);
  Bytes out;
  for (const Value& v : row) {
    out.push_back(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt64:
        store_le64(out, static_cast<uint64_t>(v.as_int64()));
        break;
      case ValueType::kText: {
        const std::string& s = v.as_text();
        store_le32(out, static_cast<uint32_t>(s.size()));
        append(out, to_bytes(s));
        break;
      }
      case ValueType::kBlob: {
        const Bytes& b = v.as_blob();
        store_le32(out, static_cast<uint32_t>(b.size()));
        append(out, b);
        break;
      }
    }
  }
  return out;
}

Row Schema::decode_row(ByteView record) const {
  Row row;
  row.reserve(columns_.size());
  size_t pos = 0;
  auto need = [&](size_t n) {
    if (pos + n > record.size()) throw SqlError("decode_row: truncated record");
  };
  for (size_t i = 0; i < columns_.size(); ++i) {
    need(1);
    auto t = static_cast<ValueType>(record[pos++]);
    switch (t) {
      case ValueType::kNull:
        row.push_back(Value::null());
        break;
      case ValueType::kInt64: {
        need(8);
        row.push_back(Value::int64(
            static_cast<int64_t>(load_le64(record.data() + pos))));
        pos += 8;
        break;
      }
      case ValueType::kText: {
        need(4);
        uint32_t len = load_le32(record.data() + pos);
        pos += 4;
        need(len);
        row.push_back(Value::text(std::string(
            reinterpret_cast<const char*>(record.data() + pos), len)));
        pos += len;
        break;
      }
      case ValueType::kBlob: {
        need(4);
        uint32_t len = load_le32(record.data() + pos);
        pos += 4;
        need(len);
        row.push_back(Value::blob(
            Bytes(record.data() + pos, record.data() + pos + len)));
        pos += len;
        break;
      }
      default:
        throw SqlError("decode_row: corrupt type tag");
    }
  }
  if (pos != record.size()) throw SqlError("decode_row: trailing bytes");
  return row;
}

void Schema::wire_encode(Bytes& out) const {
  store_le32(out, static_cast<uint32_t>(columns_.size()));
  for (const Column& col : columns_) {
    store_le32(out, static_cast<uint32_t>(col.name.size()));
    append(out, to_bytes(col.name));
    out.push_back(static_cast<uint8_t>(col.type));
    out.push_back(col.primary_key ? 1 : 0);
  }
}

Schema Schema::wire_decode(ByteView data, size_t& pos) {
  auto need = [&](size_t n) {
    if (n > data.size() || pos > data.size() - n) {
      throw SqlError("Schema: truncated wire encoding");
    }
  };
  need(4);
  uint32_t ncols = load_le32(data.data() + pos);
  pos += 4;
  // Each column occupies at least 6 bytes; an inflated count must not
  // translate into an unbounded reserve.
  if (ncols > (data.size() - pos) / 6) {
    throw SqlError("Schema: column count overruns frame");
  }
  std::vector<Column> columns;
  columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    need(4);
    uint32_t len = load_le32(data.data() + pos);
    pos += 4;
    need(len);
    std::string name(reinterpret_cast<const char*>(data.data() + pos), len);
    pos += len;
    need(2);
    uint8_t type = data[pos++];
    if (type > static_cast<uint8_t>(ValueType::kBlob)) {
      throw SqlError("Schema: unknown column type byte " +
                     std::to_string(type));
    }
    uint8_t pk = data[pos++];
    columns.push_back(
        Column{std::move(name), static_cast<ValueType>(type), pk != 0});
  }
  return Schema(std::move(columns));
}

}  // namespace wre::sql
