// A table: heap file + primary-key index + secondary indexes.
//
// Index organization follows the InnoDB model: secondary indexes map a
// column key to the row's primary key, and a clustered primary-key index
// maps primary key to the heap record id. Consequently an equality probe
// that only projects the primary key ("SELECT id FROM main WHERE tag = ...")
// is satisfied from the secondary index alone, while "SELECT *" must chase
// primary keys through the PK index into heap pages — exactly the
// index-scan vs record-fetch split the paper's Figures 4-7 measure.
//
// Index keys are 64-bit: INTEGER values are used directly; TEXT values are
// reduced to the first 8 bytes of their SHA-256. Hash-reduced text keys make
// text indexes equality-only (no range scans) and carry a 2^-64 collision
// probability per pair; the executor rechecks the predicate whenever it
// fetches the full row anyway.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/sql/schema.h"
#include "src/storage/bptree.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/heap_file.h"

namespace wre::sql {

/// Derives the 64-bit index key for a non-NULL value.
uint64_t index_key_for(const Value& v);

class Table {
 public:
  /// Opens (or creates) the table's heap file `<dir>/<name>.tbl`. Existing
  /// secondary indexes are reattached by the Database catalog, not here.
  Table(storage::BufferPool& pool, std::string dir, std::string name,
        Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Inserts a row; returns its primary key. For tables without a declared
  /// PRIMARY KEY a hidden monotonically increasing key is assigned. Throws
  /// SqlError on duplicate explicit primary keys.
  int64_t insert(const Row& row);

  /// Bulk-load fast path: inserts `rows` in order and returns their primary
  /// keys. Produces the same table contents as calling insert() per row, but
  /// amortizes the per-row costs: every row is validated up front (on error
  /// nothing is written), heap appends share one metadata write, and each
  /// secondary index receives its keys as one sorted run, so consecutive
  /// B+-tree descents revisit hot pages instead of ping-ponging across the
  /// key space.
  std::vector<int64_t> insert_batch(const std::vector<Row>& rows);

  /// Fetches the row with the given primary key. Thread-safe against other
  /// readers (index probes, scans); writers require exclusion.
  std::optional<Row> find_by_pk(int64_t pk) const;

  /// Creates (and backfills) a secondary index on `column_name`.
  /// Throws SqlError if the column is unknown or already indexed.
  void create_index(const std::string& column_name);

  /// Reattaches an existing index file (used when reopening a database).
  void attach_index(const std::string& column_name);

  bool has_index(const std::string& column_name) const;

  /// Primary keys of rows whose `column_name` equals `v` according to the
  /// index (text keys may, with probability ~2^-64, include a hash-collision
  /// false positive; callers that fetch rows recheck). Thread-safe against
  /// other readers — the executor fans probes of one query across threads.
  std::vector<int64_t> probe_index(const std::string& column_name,
                                   const Value& v) const;

  /// Full scan in heap order: fn(primary_key, row). Thread-safe against
  /// other readers.
  void scan(const std::function<void(int64_t, const Row&)>& fn) const;

  uint64_t row_count() const { return heap_->record_count(); }

  /// On-disk sizes, for the Table I reproduction.
  uint64_t data_size_bytes() const;
  uint64_t index_size_bytes() const;

  /// Names of columns with secondary indexes.
  std::vector<std::string> indexed_columns() const;

  /// Monotonic mutation counter: bumped by every insert, batch insert and
  /// index build. The columnar store compares it against a segment's build
  /// version to decide freshness (DESIGN.md §5.9); it does not persist —
  /// a reopened table restarts at 0 with no segments in existence.
  uint64_t mutation_version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  void bump_version() { version_.fetch_add(1, std::memory_order_release); }

  std::string index_path(const std::string& column_name) const;
  const storage::BPlusTree& index_for(const std::string& column_name) const;
  storage::BPlusTree& index_for(const std::string& column_name);

  storage::BufferPool& pool_;
  std::string dir_;
  std::string name_;
  Schema schema_;
  std::unique_ptr<storage::HeapFile> heap_;
  std::unique_ptr<storage::BPlusTree> pk_index_;  // pk -> packed RecordId
  std::map<std::string, std::unique_ptr<storage::BPlusTree>> indexes_;
  int64_t next_hidden_pk_ = 0;
  std::atomic<uint64_t> version_{0};
};

}  // namespace wre::sql
