#include "src/sql/value.h"

#include "src/util/error.h"

namespace wre::sql {

const char* type_name(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64: return "INTEGER";
    case ValueType::kText: return "TEXT";
    case ValueType::kBlob: return "BLOB";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(data_.index());
}

int64_t Value::as_int64() const {
  if (const auto* v = std::get_if<int64_t>(&data_)) return *v;
  throw SqlError(std::string("Value: expected INTEGER, got ") +
                 type_name(type()));
}

const std::string& Value::as_text() const {
  if (const auto* v = std::get_if<std::string>(&data_)) return *v;
  throw SqlError(std::string("Value: expected TEXT, got ") +
                 type_name(type()));
}

const Bytes& Value::as_blob() const {
  if (const auto* v = std::get_if<Bytes>(&data_)) return *v;
  throw SqlError(std::string("Value: expected BLOB, got ") +
                 type_name(type()));
}

bool Value::sql_equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  return data_ == other.data_;
}

std::string Value::to_sql_literal() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kText: {
      const std::string& s = std::get<std::string>(data_);
      std::string out = "'";
      for (char c : s) {
        out.push_back(c);
        if (c == '\'') out.push_back('\'');  // SQL doubling escape
      }
      out.push_back('\'');
      return out;
    }
    case ValueType::kBlob:
      return "X'" + to_hex(std::get<Bytes>(data_)) + "'";
  }
  return "NULL";
}

void Value::wire_encode(Bytes& out) const {
  out.push_back(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      store_le64(out, static_cast<uint64_t>(std::get<int64_t>(data_)));
      break;
    case ValueType::kText: {
      const std::string& s = std::get<std::string>(data_);
      store_le32(out, static_cast<uint32_t>(s.size()));
      append(out, to_bytes(s));
      break;
    }
    case ValueType::kBlob: {
      const Bytes& b = std::get<Bytes>(data_);
      store_le32(out, static_cast<uint32_t>(b.size()));
      append(out, b);
      break;
    }
  }
}

namespace {

void need(ByteView data, size_t pos, size_t n) {
  if (n > data.size() || pos > data.size() - n) {
    throw SqlError("Value: truncated wire encoding");
  }
}

}  // namespace

Value Value::wire_decode(ByteView data, size_t& pos) {
  need(data, pos, 1);
  uint8_t type = data[pos++];
  switch (static_cast<ValueType>(type)) {
    case ValueType::kNull:
      return Value::null();
    case ValueType::kInt64: {
      need(data, pos, 8);
      int64_t v = static_cast<int64_t>(load_le64(data.data() + pos));
      pos += 8;
      return Value::int64(v);
    }
    case ValueType::kText:
    case ValueType::kBlob: {
      need(data, pos, 4);
      uint32_t len = load_le32(data.data() + pos);
      pos += 4;
      // The length check also bounds the allocation below by the frame size.
      need(data, pos, len);
      const uint8_t* begin = data.data() + pos;
      pos += len;
      if (static_cast<ValueType>(type) == ValueType::kText) {
        return Value::text(std::string(begin, begin + len));
      }
      return Value::blob(Bytes(begin, begin + len));
    }
  }
  throw SqlError("Value: unknown wire type byte " + std::to_string(type));
}

}  // namespace wre::sql
