#include "src/sql/value.h"

#include "src/util/error.h"

namespace wre::sql {

const char* type_name(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64: return "INTEGER";
    case ValueType::kText: return "TEXT";
    case ValueType::kBlob: return "BLOB";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(data_.index());
}

int64_t Value::as_int64() const {
  if (const auto* v = std::get_if<int64_t>(&data_)) return *v;
  throw SqlError(std::string("Value: expected INTEGER, got ") +
                 type_name(type()));
}

const std::string& Value::as_text() const {
  if (const auto* v = std::get_if<std::string>(&data_)) return *v;
  throw SqlError(std::string("Value: expected TEXT, got ") +
                 type_name(type()));
}

const Bytes& Value::as_blob() const {
  if (const auto* v = std::get_if<Bytes>(&data_)) return *v;
  throw SqlError(std::string("Value: expected BLOB, got ") +
                 type_name(type()));
}

bool Value::sql_equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  return data_ == other.data_;
}

std::string Value::to_sql_literal() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kText: {
      const std::string& s = std::get<std::string>(data_);
      std::string out = "'";
      for (char c : s) {
        out.push_back(c);
        if (c == '\'') out.push_back('\'');  // SQL doubling escape
      }
      out.push_back('\'');
      return out;
    }
    case ValueType::kBlob:
      return "X'" + to_hex(std::get<Bytes>(data_)) + "'";
  }
  return "NULL";
}

}  // namespace wre::sql
