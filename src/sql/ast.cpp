#include "src/sql/ast.h"

namespace wre::sql {

Expr Expr::equals(std::string column, Value v) {
  Expr e;
  e.kind = Kind::kEquals;
  e.column = to_lower(column);
  e.values.push_back(std::move(v));
  return e;
}

Expr Expr::in_list(std::string column, std::vector<Value> vs) {
  Expr e;
  e.kind = Kind::kIn;
  e.column = to_lower(column);
  e.values = std::move(vs);
  return e;
}

Expr Expr::conjunction(std::vector<Expr> children) {
  if (children.size() == 1) return std::move(children.front());
  Expr e;
  e.kind = Kind::kAnd;
  e.children = std::move(children);
  return e;
}

Expr Expr::disjunction(std::vector<Expr> children) {
  if (children.size() == 1) return std::move(children.front());
  Expr e;
  e.kind = Kind::kOr;
  e.children = std::move(children);
  return e;
}

}  // namespace wre::sql
