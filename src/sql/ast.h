// Abstract syntax for the SQL subset the engine accepts.
//
// The subset is exactly what an easily-deployable encryption client needs
// from a legacy relational server (Section IV of the paper): DDL, inserts,
// and equality SELECTs whose WHERE clause is a boolean combination of
// `column = literal` and `column IN (...)` predicates — the shape produced
// by the WRE Search algorithm (t = t1 OR t = t2 OR ...).
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/sql/schema.h"
#include "src/sql/value.h"

namespace wre::sql {

/// Boolean predicate tree over one table's columns.
struct Expr {
  enum class Kind { kEquals, kIn, kAnd, kOr };

  Kind kind = Kind::kEquals;
  std::string column;          // kEquals, kIn
  std::vector<Value> values;   // kEquals: exactly one; kIn: one or more
  std::vector<Expr> children;  // kAnd, kOr: two or more

  static Expr equals(std::string column, Value v);
  static Expr in_list(std::string column, std::vector<Value> vs);
  static Expr conjunction(std::vector<Expr> children);
  static Expr disjunction(std::vector<Expr> children);
};

struct CreateTableStmt {
  std::string table;
  std::vector<Column> columns;
};

struct CreateIndexStmt {
  std::string index_name;  // optional, informational only
  std::string table;
  std::string column;
};

struct InsertStmt {
  std::string table;
  std::vector<Row> rows;  // multi-row VALUES lists
};

struct SelectStmt {
  bool star = false;
  bool count_star = false;
  bool explain = false;  // EXPLAIN SELECT ...: report the plan, don't run
  std::vector<std::string> columns;  // when !star && !count_star
  std::string table;
  std::optional<Expr> where;
  std::optional<uint64_t> limit;
};

using Statement =
    std::variant<CreateTableStmt, CreateIndexStmt, InsertStmt, SelectStmt>;

}  // namespace wre::sql
