// Typed SQL values. The engine supports the column types the paper's
// evaluation needs: 64-bit integers (search tags, ids, zip codes), text
// (plaintext columns) and blobs (AES-CTR ciphertexts).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "src/util/bytes.h"

namespace wre::sql {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kText = 2,
  kBlob = 3,
};

/// Returns a human-readable type name ("INTEGER", "TEXT", ...).
const char* type_name(ValueType t);

/// A dynamically typed SQL value with value semantics.
class Value {
 public:
  Value() : data_(std::monostate{}) {}

  static Value null() { return Value(); }
  static Value int64(int64_t v) { return Value(v); }
  /// Bit-casts an unsigned 64-bit tag into the INTEGER domain.
  static Value tag(uint64_t v) { return Value(static_cast<int64_t>(v)); }
  static Value text(std::string v) { return Value(std::move(v)); }
  static Value blob(Bytes v) { return Value(std::move(v)); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors. Throw SqlError on type mismatch.
  int64_t as_int64() const;
  uint64_t as_tag() const { return static_cast<uint64_t>(as_int64()); }
  const std::string& as_text() const;
  const Bytes& as_blob() const;

  /// SQL equality: NULL never equals anything (including NULL).
  bool sql_equals(const Value& other) const;

  /// Renders the value as a SQL literal (NULL, 42, 'escaped text', X'hex').
  std::string to_sql_literal() const;

  /// Appends the wire encoding to `out`: a type byte, then for kInt64 the
  /// 8-byte little-endian value, for kText/kBlob a 32-bit little-endian
  /// length followed by the raw bytes (kNull has no payload). This is the
  /// row serialization the network protocol (src/net/wire.h) traffics in.
  void wire_encode(Bytes& out) const;

  /// Decodes one value starting at `data[pos]`, advancing `pos` past it.
  /// Every read is bounds-checked against `data`; throws SqlError on a
  /// truncated buffer, an unknown type byte, or a length that overruns the
  /// input — a malformed frame must never read out of bounds or over-alloc.
  static Value wire_decode(ByteView data, size_t& pos);

  /// Exact structural comparison (used by tests and containers).
  friend bool operator==(const Value&, const Value&) = default;

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(Bytes v) : data_(std::move(v)) {}

  std::variant<std::monostate, int64_t, std::string, Bytes> data_;
};

}  // namespace wre::sql
