#include "src/sql/parser.h"

#include <cctype>
#include <charconv>

#include "src/util/error.h"

namespace wre::sql {

namespace {

enum class TokenKind {
  kIdent,
  kInteger,
  kString,
  kBlob,
  kSymbol,  // one of ( ) , = * ;
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier (lower-cased) or symbol
  int64_t number = 0; // kInteger
  Bytes blob;         // kBlob
  size_t pos = 0;     // offset in the input, for error messages
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw SqlError("SQL parse error at offset " +
                   std::to_string(current_.pos) + ": " + message);
  }

 private:
  void advance() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    current_.pos = pos_;
    if (pos_ >= input_.size()) {
      current_.kind = TokenKind::kEnd;
      return;
    }

    char c = input_[pos_];

    // Blob literal X'hex' (must be checked before identifiers).
    if ((c == 'x' || c == 'X') && pos_ + 1 < input_.size() &&
        input_[pos_ + 1] == '\'') {
      size_t start = pos_ + 2;
      size_t end = input_.find('\'', start);
      if (end == std::string_view::npos) fail_at(pos_, "unterminated blob literal");
      current_.kind = TokenKind::kBlob;
      try {
        current_.blob = from_hex(input_.substr(start, end - start));
      } catch (const std::invalid_argument& e) {
        fail_at(start, std::string("bad blob literal: ") + e.what());
      }
      pos_ = end + 1;
      return;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokenKind::kIdent;
      current_.text = to_lower(input_.substr(start, pos_ - start));
      return;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      current_.kind = TokenKind::kInteger;
      auto text = input_.substr(start, pos_ - start);
      auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                       current_.number);
      if (ec != std::errc{} || ptr != text.data() + text.size()) {
        fail_at(start, "integer literal out of range");
      }
      return;
    }

    if (c == '\'') {
      ++pos_;
      std::string out;
      for (;;) {
        if (pos_ >= input_.size()) fail_at(current_.pos, "unterminated string");
        char ch = input_[pos_++];
        if (ch == '\'') {
          if (pos_ < input_.size() && input_[pos_] == '\'') {
            out.push_back('\'');  // doubled quote escape
            ++pos_;
            continue;
          }
          break;
        }
        out.push_back(ch);
      }
      current_.kind = TokenKind::kString;
      current_.text = std::move(out);
      return;
    }

    if (c == '(' || c == ')' || c == ',' || c == '=' || c == '*' || c == ';') {
      current_.kind = TokenKind::kSymbol;
      current_.text = std::string(1, c);
      ++pos_;
      return;
    }

    fail_at(pos_, std::string("unexpected character '") + c + "'");
  }

  [[noreturn]] void fail_at(size_t pos, const std::string& message) const {
    throw SqlError("SQL parse error at offset " + std::to_string(pos) + ": " +
                   message);
  }

  std::string_view input_;
  size_t pos_ = 0;
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view input) : lexer_(input) {}

  Statement parse_statement() {
    const Token& t = lexer_.peek();
    if (t.kind != TokenKind::kIdent) lexer_.fail("expected a statement");
    Statement stmt = [&]() -> Statement {
      if (t.text == "create") return parse_create();
      if (t.text == "insert") return parse_insert();
      if (t.text == "select") return parse_select();
      if (t.text == "explain") {
        lexer_.take();
        SelectStmt s = parse_select();
        s.explain = true;
        return s;
      }
      lexer_.fail("unknown statement '" + t.text + "'");
    }();
    accept_symbol(";");
    expect_end();
    return stmt;
  }

  Expr parse_bare_expression() {
    Expr e = parse_expr();
    expect_end();
    return e;
  }

 private:
  Statement parse_create() {
    expect_keyword("create");
    const Token& t = lexer_.peek();
    if (t.kind == TokenKind::kIdent && t.text == "table") {
      return parse_create_table();
    }
    if (t.kind == TokenKind::kIdent && t.text == "index") {
      return parse_create_index();
    }
    lexer_.fail("expected TABLE or INDEX after CREATE");
  }

  CreateTableStmt parse_create_table() {
    expect_keyword("table");
    CreateTableStmt stmt;
    stmt.table = expect_ident("table name");
    expect_symbol("(");
    for (;;) {
      Column col;
      col.name = expect_ident("column name");
      col.type = parse_type();
      if (accept_keyword("primary")) {
        expect_keyword("key");
        col.primary_key = true;
      }
      stmt.columns.push_back(std::move(col));
      if (!accept_symbol(",")) break;
    }
    expect_symbol(")");
    return stmt;
  }

  ValueType parse_type() {
    std::string t = expect_ident("column type");
    if (t == "integer" || t == "bigint" || t == "int") return ValueType::kInt64;
    if (t == "text" || t == "varchar") return ValueType::kText;
    if (t == "blob") return ValueType::kBlob;
    lexer_.fail("unknown column type '" + t + "'");
  }

  CreateIndexStmt parse_create_index() {
    expect_keyword("index");
    CreateIndexStmt stmt;
    // Optional index name.
    if (lexer_.peek().kind == TokenKind::kIdent && lexer_.peek().text != "on") {
      stmt.index_name = expect_ident("index name");
    }
    expect_keyword("on");
    stmt.table = expect_ident("table name");
    expect_symbol("(");
    stmt.column = expect_ident("column name");
    expect_symbol(")");
    return stmt;
  }

  InsertStmt parse_insert() {
    expect_keyword("insert");
    expect_keyword("into");
    InsertStmt stmt;
    stmt.table = expect_ident("table name");
    expect_keyword("values");
    for (;;) {
      expect_symbol("(");
      Row row;
      for (;;) {
        row.push_back(parse_literal());
        if (!accept_symbol(",")) break;
      }
      expect_symbol(")");
      stmt.rows.push_back(std::move(row));
      if (!accept_symbol(",")) break;
    }
    return stmt;
  }

  SelectStmt parse_select() {
    expect_keyword("select");
    SelectStmt stmt;
    if (accept_symbol("*")) {
      stmt.star = true;
    } else if (lexer_.peek().kind == TokenKind::kIdent &&
               lexer_.peek().text == "count") {
      lexer_.take();
      expect_symbol("(");
      expect_symbol("*");
      expect_symbol(")");
      stmt.count_star = true;
    } else {
      for (;;) {
        stmt.columns.push_back(expect_ident("column name"));
        if (!accept_symbol(",")) break;
      }
    }
    expect_keyword("from");
    stmt.table = expect_ident("table name");
    if (accept_keyword("where")) {
      stmt.where = parse_expr();
    }
    if (accept_keyword("limit")) {
      const Token t = lexer_.take();
      if (t.kind != TokenKind::kInteger || t.number < 0) {
        lexer_.fail("expected a non-negative integer after LIMIT");
      }
      stmt.limit = static_cast<uint64_t>(t.number);
    }
    return stmt;
  }

  Expr parse_expr() {
    std::vector<Expr> terms;
    terms.push_back(parse_and_expr());
    while (accept_keyword("or")) {
      terms.push_back(parse_and_expr());
    }
    return Expr::disjunction(std::move(terms));
  }

  Expr parse_and_expr() {
    std::vector<Expr> terms;
    terms.push_back(parse_primary());
    while (accept_keyword("and")) {
      terms.push_back(parse_primary());
    }
    return Expr::conjunction(std::move(terms));
  }

  Expr parse_primary() {
    if (accept_symbol("(")) {
      Expr e = parse_expr();
      expect_symbol(")");
      return e;
    }
    std::string column = expect_ident("column name");
    if (accept_symbol("=")) {
      return Expr::equals(std::move(column), parse_literal());
    }
    if (accept_keyword("in")) {
      expect_symbol("(");
      std::vector<Value> values;
      for (;;) {
        values.push_back(parse_literal());
        if (!accept_symbol(",")) break;
      }
      expect_symbol(")");
      return Expr::in_list(std::move(column), std::move(values));
    }
    lexer_.fail("expected '=' or IN after column '" + column + "'");
  }

  Value parse_literal() {
    Token t = lexer_.take();
    switch (t.kind) {
      case TokenKind::kInteger:
        return Value::int64(t.number);
      case TokenKind::kString:
        return Value::text(std::move(t.text));
      case TokenKind::kBlob:
        return Value::blob(std::move(t.blob));
      case TokenKind::kIdent:
        if (t.text == "null") return Value::null();
        [[fallthrough]];
      default:
        lexer_.fail("expected a literal");
    }
  }

  // --- token helpers ---

  bool accept_symbol(std::string_view s) {
    if (lexer_.peek().kind == TokenKind::kSymbol && lexer_.peek().text == s) {
      lexer_.take();
      return true;
    }
    return false;
  }

  void expect_symbol(std::string_view s) {
    if (!accept_symbol(s)) lexer_.fail("expected '" + std::string(s) + "'");
  }

  bool accept_keyword(std::string_view kw) {
    if (lexer_.peek().kind == TokenKind::kIdent && lexer_.peek().text == kw) {
      lexer_.take();
      return true;
    }
    return false;
  }

  void expect_keyword(std::string_view kw) {
    if (!accept_keyword(kw)) {
      lexer_.fail("expected keyword " + std::string(kw));
    }
  }

  std::string expect_ident(const std::string& what) {
    Token t = lexer_.take();
    if (t.kind != TokenKind::kIdent) lexer_.fail("expected " + what);
    return t.text;
  }

  void expect_end() {
    if (lexer_.peek().kind != TokenKind::kEnd) {
      lexer_.fail("trailing input after statement");
    }
  }

  Lexer lexer_;
};

}  // namespace

Statement parse_statement(std::string_view sql) {
  return Parser(sql).parse_statement();
}

Expr parse_expression(std::string_view sql) {
  return Parser(sql).parse_bare_expression();
}

}  // namespace wre::sql
