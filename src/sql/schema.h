// Table schemas and row (de)serialization for the heap file.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sql/value.h"
#include "src/util/bytes.h"

namespace wre::sql {

/// Declared column type. kInt64 columns may carry PRIMARY KEY.
struct Column {
  std::string name;
  ValueType type = ValueType::kText;
  bool primary_key = false;
};

/// A materialized row.
using Row = std::vector<Value>;

/// Ordered column list. Column names are case-insensitive and stored
/// lower-cased.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t column_count() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of `name` (case-insensitive), or nullopt.
  std::optional<size_t> index_of(std::string_view name) const;

  /// Index of the PRIMARY KEY column, or nullopt if none was declared.
  std::optional<size_t> primary_key_index() const { return pk_index_; }

  /// Validates that `row` matches the schema (arity and per-column type;
  /// NULL allowed in non-PK columns). Throws SqlError on mismatch.
  void check_row(const Row& row) const;

  /// Serializes a row for heap storage.
  Bytes encode_row(const Row& row) const;

  /// Parses a heap record back into a row. Throws SqlError on corruption.
  Row decode_row(ByteView record) const;

  /// Appends the wire encoding (column count, then per column: name,
  /// type byte, primary-key flag) to `out` — how CREATE TABLE requests and
  /// schema responses travel in the network protocol (src/net/wire.h).
  void wire_encode(Bytes& out) const;

  /// Decodes a schema starting at `data[pos]`, advancing `pos`. All reads
  /// are bounds-checked; throws SqlError on truncation or invalid content
  /// (Schema's own constructor invariants also apply).
  static Schema wire_decode(ByteView data, size_t& pos);

 private:
  std::vector<Column> columns_;
  std::optional<size_t> pk_index_;
};

/// Lower-cases an identifier (ASCII).
std::string to_lower(std::string_view s);

}  // namespace wre::sql
