// The embedded relational database: catalog, SQL entry point, planner and
// executor. This is the "legacy server" of the paper's deployment model —
// the WRE client talks to it exclusively through SQL text plus the generic
// table APIs, never through anything encryption-specific.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/sql/ast.h"
#include "src/sql/table.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"
#include "src/storage/wal.h"
#include "src/util/thread_pool.h"

namespace wre::columnar {
class ColumnStoreManager;
}

namespace wre::sql {

/// Result of a SELECT (other statements return an empty set with
/// `rows_affected` filled in).
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  uint64_t rows_affected = 0;

  /// Executor counters for the run that produced this result.
  uint64_t index_probes = 0;   // B+-tree equality probes issued
  uint64_t heap_fetches = 0;   // full rows materialized from the heap
  bool used_index = false;     // false = sequential scan
  /// Columnar-path counters (local only; not wire-encoded — the network
  /// protocol's ResultSet layout is unchanged).
  bool used_columnar = false;   // scan/fetch served from the column store
  uint64_t columnar_rows = 0;   // rows materialized from a column segment
};

/// Tuning and simulation knobs for a Database.
struct DatabaseOptions {
  /// Buffer-pool capacity in 4 KiB pages (default 64 MiB).
  size_t buffer_pool_pages = 16384;
  /// Synthetic per-page read latency in microseconds (models disk seeks;
  /// see DiskManager). Zero = off.
  uint32_t read_latency_us = 0;
  uint32_t write_latency_us = 0;
  /// Worker threads for multi-probe index scans (WRE's `tag IN (t1..tn)`
  /// queries fan out up to thousands of probes). 1 = serial executor;
  /// 0 = one per hardware thread. See set_query_threads().
  unsigned query_threads = 1;
  /// Write-ahead logging (DESIGN.md §5.5). When true, every mutation is
  /// buffered in memory until commit()/commit_async() logs its page
  /// after-images; a crash loses at most the uncommitted tail. Off by
  /// default: embedded experiments that never crash keep the old
  /// flush-on-checkpoint behaviour and pay zero logging cost.
  bool durability = false;
  /// WAL segment rotation size (durability only).
  uint64_t wal_segment_bytes = 16ull << 20;
  /// Group-commit linger window in microseconds (0 = natural batching).
  uint32_t wal_group_window_us = 0;
  /// fdatasync each commit group. Tests may disable to isolate logic from
  /// I/O latency; production durability requires true.
  bool wal_fsync = true;
  /// In-memory columnar ciphertext store (DESIGN.md §5.9). When true, full
  /// scans and non-indexed predicates run against dictionary-compressed
  /// column segments, and index-probe plans materialize selected rows from
  /// them instead of chasing the heap. Results stay byte-identical to the
  /// row path; segments rebuild lazily after mutations. Off by default.
  bool columnar = false;
  /// Per-column dictionary cardinality cap for column segments; columns
  /// with more distinct values fall back to the plain dense layout.
  size_t columnar_dict_max = size_t{1} << 16;
  /// Tables with fewer rows never get a segment (row path instead).
  uint64_t columnar_min_rows = 0;
};

/// An embedded relational database rooted at a directory.
///
/// Concurrency: any number of threads may run SELECTs concurrently (the
/// storage layer latches pages; the executor additionally fans large
/// multi-probe scans over an internal worker pool). Statements that write
/// (CREATE/INSERT) or mutate cache state (clear_cache, checkpoint,
/// set_query_threads) require exclusion from all other calls — the engine's
/// single-writer rule.
class Database {
 public:
  /// Opens (or creates) the database in `dir`. The directory must exist.
  /// Any leftover WAL from a crashed durable instance is replayed first
  /// (see recovery_stats()); then an existing catalog is reloaded,
  /// reattaching tables and indexes.
  explicit Database(std::string dir, DatabaseOptions options = {});

  /// Best-effort checkpoint when durable (storage errors are swallowed; a
  /// crash before the checkpoint lands is what the WAL is for).
  ~Database();

  /// Parses and executes one SQL statement.
  ResultSet execute(std::string_view sql);

  /// Programmatic fast paths (used for bulk load; equivalent to SQL).
  Table& create_table(const std::string& name, Schema schema);
  void create_index(const std::string& table, const std::string& column);
  Table& table(const std::string& name);
  bool has_table(const std::string& name) const;

  /// Batched insert entry point (see Table::insert_batch): equivalent to one
  /// INSERT per row but with per-row parsing, heap-metadata and B+-tree
  /// descent costs amortized across the batch. Returns the primary keys.
  std::vector<int64_t> insert_batch(const std::string& table,
                                    const std::vector<Row>& rows);

  /// Executes a parsed SELECT (lets clients pre-build ASTs).
  ResultSet execute_select(const SelectStmt& stmt);

  /// Wire-protocol fast path (late materialization to the network): when
  /// `stmt` would plan as a columnar scan, appends the result set's wire
  /// encoding — byte-identical to net::encode_result_set applied to
  /// execute_select(stmt) — straight from the packed column segment to
  /// `*out` and returns true. No sql::Value or Row is materialized. Returns
  /// false, leaving `*out` untouched, whenever the columnar store is off,
  /// an index plan wins, or the statement is EXPLAIN/COUNT(*) — callers
  /// fall back to execute_select(). Same locking rules as execute_select.
  bool execute_select_wire(const SelectStmt& stmt, Bytes* out);

  /// execute_select_wire over SQL text; non-SELECT statements return false.
  bool execute_sql_wire(std::string_view sql, Bytes* out);

  /// Drops every cached page: the next query runs cold. Reproduces the
  /// paper's drop_caches + server-restart procedure.
  void clear_cache();

  /// Resizes the multi-probe worker pool (0 = one thread per hardware
  /// thread, 1 = serial). Must not race with in-flight queries. Parallel
  /// and serial executions of the same SELECT return identical results in
  /// identical order — the merge is deterministic.
  void set_query_threads(unsigned n);
  unsigned query_threads() const { return query_threads_; }

  /// Toggles the columnar scan path at runtime (requires write exclusion,
  /// like set_query_threads). Enabling creates the store manager on first
  /// use; disabling keeps built segments cached but stops routing to them.
  void set_columnar_enabled(bool on);
  bool columnar_enabled() const { return columnar_enabled_; }

  /// The column store manager, or null when columnar was never enabled.
  /// Exposed for stats and tests.
  columnar::ColumnStoreManager* column_store() { return columnar_mgr_.get(); }

  /// Durability boundary (no-op unless opened with durability=true).
  /// Collects every page dirtied since the previous commit, enqueues one
  /// WAL batch, and returns a handle that becomes ready when the batch is
  /// fsync'd. Call under the engine's write exclusion; wait() on the handle
  /// AFTER releasing it so concurrent writers' fsyncs batch (group commit).
  /// A write must not be acknowledged before its handle is ready.
  storage::CommitHandle commit_async();

  /// commit_async() + wait.
  void commit();

  bool durable() const { return wal_ != nullptr; }
  storage::Wal* wal() { return wal_.get(); }

  /// What crash recovery replayed when this instance opened.
  const storage::WalRecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }

  /// Flushes all dirty pages to disk. When durable, this is a full fuzzy
  /// checkpoint: commit pending mutations, flush + fsync the data files,
  /// write the catalog, then truncate the WAL — bounding the replay work a
  /// later crash would pay. Requires write exclusion (readers may proceed:
  /// flushing clean state does not mutate pages).
  void checkpoint();

  /// Heap bytes across all tables (the paper's "DB Size").
  uint64_t data_size_bytes() const;
  /// Index bytes across all tables ("DB + Indexes" minus data).
  uint64_t index_size_bytes() const;

  storage::BufferPool& buffer_pool() { return *pool_; }
  storage::DiskManager& disk() { return disk_; }

 private:
  void save_catalog();
  void load_catalog();
  std::string catalog_text() const;
  void write_catalog_file(const std::string& text);

  ResultSet execute_insert(const InsertStmt& stmt);

  std::string dir_;
  storage::DiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<storage::Wal> wal_;  // null unless durability=true
  storage::WalRecoveryStats recovery_stats_;
  // Under WAL the catalog file write is deferred: save_catalog() marks this
  // and the next commit carries the catalog text in the log (log-before-
  // data applies to the catalog too). Checkpoint/recovery write the file.
  bool catalog_dirty_ = false;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  unsigned query_threads_ = 1;
  std::unique_ptr<util::ThreadPool> query_pool_;  // null when serial
  std::unique_ptr<columnar::ColumnStoreManager> columnar_mgr_;
  bool columnar_enabled_ = false;
  size_t columnar_dict_max_ = size_t{1} << 16;
  uint64_t columnar_min_rows_ = 0;
};

/// Evaluates a predicate against a row. Unknown columns raise SqlError.
bool eval_expr(const Expr& expr, const Schema& schema, const Row& row);

/// If `expr` is a disjunction of equality/IN predicates on one single
/// column, returns (column, values); otherwise nullopt. This is the planner
/// pattern that turns WRE search queries into multi-probe index scans.
std::optional<std::pair<std::string, std::vector<Value>>>
extract_single_column_disjunction(const Expr& expr);

}  // namespace wre::sql
