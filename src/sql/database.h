// The embedded relational database: catalog, SQL entry point, planner and
// executor. This is the "legacy server" of the paper's deployment model —
// the WRE client talks to it exclusively through SQL text plus the generic
// table APIs, never through anything encryption-specific.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/sql/ast.h"
#include "src/sql/table.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"
#include "src/util/thread_pool.h"

namespace wre::sql {

/// Result of a SELECT (other statements return an empty set with
/// `rows_affected` filled in).
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  uint64_t rows_affected = 0;

  /// Executor counters for the run that produced this result.
  uint64_t index_probes = 0;   // B+-tree equality probes issued
  uint64_t heap_fetches = 0;   // full rows materialized from the heap
  bool used_index = false;     // false = sequential scan
};

/// Tuning and simulation knobs for a Database.
struct DatabaseOptions {
  /// Buffer-pool capacity in 4 KiB pages (default 64 MiB).
  size_t buffer_pool_pages = 16384;
  /// Synthetic per-page read latency in microseconds (models disk seeks;
  /// see DiskManager). Zero = off.
  uint32_t read_latency_us = 0;
  uint32_t write_latency_us = 0;
  /// Worker threads for multi-probe index scans (WRE's `tag IN (t1..tn)`
  /// queries fan out up to thousands of probes). 1 = serial executor;
  /// 0 = one per hardware thread. See set_query_threads().
  unsigned query_threads = 1;
};

/// An embedded relational database rooted at a directory.
///
/// Concurrency: any number of threads may run SELECTs concurrently (the
/// storage layer latches pages; the executor additionally fans large
/// multi-probe scans over an internal worker pool). Statements that write
/// (CREATE/INSERT) or mutate cache state (clear_cache, checkpoint,
/// set_query_threads) require exclusion from all other calls — the engine's
/// single-writer rule.
class Database {
 public:
  /// Opens (or creates) the database in `dir`. The directory must exist.
  /// An existing catalog is reloaded, reattaching tables and indexes.
  explicit Database(std::string dir, DatabaseOptions options = {});

  /// Parses and executes one SQL statement.
  ResultSet execute(std::string_view sql);

  /// Programmatic fast paths (used for bulk load; equivalent to SQL).
  Table& create_table(const std::string& name, Schema schema);
  void create_index(const std::string& table, const std::string& column);
  Table& table(const std::string& name);
  bool has_table(const std::string& name) const;

  /// Batched insert entry point (see Table::insert_batch): equivalent to one
  /// INSERT per row but with per-row parsing, heap-metadata and B+-tree
  /// descent costs amortized across the batch. Returns the primary keys.
  std::vector<int64_t> insert_batch(const std::string& table,
                                    const std::vector<Row>& rows);

  /// Executes a parsed SELECT (lets clients pre-build ASTs).
  ResultSet execute_select(const SelectStmt& stmt);

  /// Drops every cached page: the next query runs cold. Reproduces the
  /// paper's drop_caches + server-restart procedure.
  void clear_cache();

  /// Resizes the multi-probe worker pool (0 = one thread per hardware
  /// thread, 1 = serial). Must not race with in-flight queries. Parallel
  /// and serial executions of the same SELECT return identical results in
  /// identical order — the merge is deterministic.
  void set_query_threads(unsigned n);
  unsigned query_threads() const { return query_threads_; }

  /// Flushes all dirty pages to disk.
  void checkpoint();

  /// Heap bytes across all tables (the paper's "DB Size").
  uint64_t data_size_bytes() const;
  /// Index bytes across all tables ("DB + Indexes" minus data).
  uint64_t index_size_bytes() const;

  storage::BufferPool& buffer_pool() { return *pool_; }
  storage::DiskManager& disk() { return disk_; }

 private:
  void save_catalog();
  void load_catalog();

  ResultSet execute_insert(const InsertStmt& stmt);

  std::string dir_;
  storage::DiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  unsigned query_threads_ = 1;
  std::unique_ptr<util::ThreadPool> query_pool_;  // null when serial
};

/// Evaluates a predicate against a row. Unknown columns raise SqlError.
bool eval_expr(const Expr& expr, const Schema& schema, const Row& row);

/// If `expr` is a disjunction of equality/IN predicates on one single
/// column, returns (column, values); otherwise nullopt. This is the planner
/// pattern that turns WRE search queries into multi-probe index scans.
std::optional<std::pair<std::string, std::vector<Value>>>
extract_single_column_disjunction(const Expr& expr);

}  // namespace wre::sql
