#include "src/sql/table.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/crypto/sha256.h"
#include "src/util/error.h"

namespace wre::sql {

uint64_t index_key_for(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return static_cast<uint64_t>(v.as_int64());
    case ValueType::kText: {
      auto digest = crypto::Sha256::digest(to_bytes(v.as_text()));
      return load_le64(digest.data());
    }
    case ValueType::kBlob: {
      auto digest = crypto::Sha256::digest(v.as_blob());
      return load_le64(digest.data());
    }
    case ValueType::kNull:
      throw SqlError("index_key_for: NULL is not indexable");
  }
  throw SqlError("index_key_for: bad value type");
}

Table::Table(storage::BufferPool& pool, std::string dir, std::string name,
             Schema schema)
    : pool_(pool),
      dir_(std::move(dir)),
      name_(std::move(name)),
      schema_(std::move(schema)) {
  storage::FileId heap_file = pool_.disk().open_file(dir_ + "/" + name_ + ".tbl");
  heap_ = std::make_unique<storage::HeapFile>(pool_, heap_file);
  storage::FileId pk_file =
      pool_.disk().open_file(dir_ + "/" + name_ + ".pk.idx");
  pk_index_ = std::make_unique<storage::BPlusTree>(pool_, pk_file);
  next_hidden_pk_ = static_cast<int64_t>(heap_->record_count());
}

std::string Table::index_path(const std::string& column_name) const {
  return dir_ + "/" + name_ + "." + to_lower(column_name) + ".idx";
}

int64_t Table::insert(const Row& row) {
  schema_.check_row(row);

  int64_t pk;
  if (auto pk_col = schema_.primary_key_index()) {
    pk = row[*pk_col].as_int64();
    if (!pk_index_->find(static_cast<uint64_t>(pk)).empty()) {
      throw SqlError("duplicate primary key " + std::to_string(pk) +
                     " in table " + name_);
    }
  } else {
    pk = next_hidden_pk_++;
  }

  storage::RecordId rid = heap_->append(schema_.encode_row(row));
  pk_index_->insert(static_cast<uint64_t>(pk), rid.pack());

  for (auto& [col, tree] : indexes_) {
    size_t idx = *schema_.index_of(col);
    if (row[idx].is_null()) continue;
    tree->insert(index_key_for(row[idx]), static_cast<uint64_t>(pk));
  }
  bump_version();
  return pk;
}

std::vector<int64_t> Table::insert_batch(const std::vector<Row>& rows) {
  std::vector<int64_t> pks;
  pks.reserve(rows.size());
  auto pk_col = schema_.primary_key_index();

  // Validate everything before writing anything, so a bad row cannot leave a
  // half-applied batch behind. Hidden keys are assigned from a local cursor
  // that is committed only after validation succeeds.
  int64_t hidden = next_hidden_pk_;
  std::unordered_set<int64_t> batch_pks;
  for (const Row& row : rows) {
    schema_.check_row(row);
    int64_t pk;
    if (pk_col) {
      pk = row[*pk_col].as_int64();
      if (!batch_pks.insert(pk).second ||
          !pk_index_->find(static_cast<uint64_t>(pk)).empty()) {
        throw SqlError("duplicate primary key " + std::to_string(pk) +
                       " in table " + name_);
      }
    } else {
      pk = hidden++;
    }
    pks.push_back(pk);
  }
  next_hidden_pk_ = hidden;

  std::vector<Bytes> encoded;
  encoded.reserve(rows.size());
  for (const Row& row : rows) encoded.push_back(schema_.encode_row(row));
  std::vector<storage::RecordId> rids = heap_->append_batch(encoded);
  for (size_t i = 0; i < rows.size(); ++i) {
    pk_index_->insert(static_cast<uint64_t>(pks[i]), rids[i].pack());
  }

  // Secondary indexes: one sorted (key, pk) run per index.
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (auto& [col, tree] : indexes_) {
    size_t idx = *schema_.index_of(col);
    entries.clear();
    entries.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i][idx].is_null()) continue;
      entries.emplace_back(index_key_for(rows[i][idx]),
                           static_cast<uint64_t>(pks[i]));
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& [key, pk] : entries) tree->insert(key, pk);
  }
  if (!rows.empty()) bump_version();
  return pks;
}

std::optional<Row> Table::find_by_pk(int64_t pk) const {
  auto rids = pk_index_->find(static_cast<uint64_t>(pk));
  if (rids.empty()) return std::nullopt;
  Bytes record = heap_->read(storage::RecordId::unpack(rids.front()));
  return schema_.decode_row(record);
}

void Table::create_index(const std::string& column_name) {
  std::string col = to_lower(column_name);
  auto idx = schema_.index_of(col);
  if (!idx) throw SqlError("create_index: unknown column " + col);
  if (indexes_.contains(col)) {
    throw SqlError("create_index: index already exists on " + col);
  }

  storage::FileId file = pool_.disk().open_file(index_path(col));
  auto tree = std::make_unique<storage::BPlusTree>(pool_, file);

  // Backfill from existing rows. Hidden primary keys are assigned in
  // insertion order, which equals heap order in this append-only engine, so
  // they can be recovered positionally.
  size_t column_pos = *idx;
  auto pk_col = schema_.primary_key_index();
  int64_t hidden_pk = 0;
  heap_->scan([&](storage::RecordId, ByteView record) {
    Row row = schema_.decode_row(record);
    int64_t pk = pk_col ? row[*pk_col].as_int64() : hidden_pk++;
    if (row[column_pos].is_null()) return;
    tree->insert(index_key_for(row[column_pos]), static_cast<uint64_t>(pk));
  });

  indexes_.emplace(col, std::move(tree));
  bump_version();
}

void Table::attach_index(const std::string& column_name) {
  std::string col = to_lower(column_name);
  if (!schema_.index_of(col)) {
    throw SqlError("attach_index: unknown column " + col);
  }
  if (indexes_.contains(col)) return;
  storage::FileId file = pool_.disk().open_file(index_path(col));
  indexes_.emplace(col, std::make_unique<storage::BPlusTree>(pool_, file));
}

bool Table::has_index(const std::string& column_name) const {
  return indexes_.contains(to_lower(column_name));
}

const storage::BPlusTree& Table::index_for(const std::string& column_name) const {
  auto it = indexes_.find(to_lower(column_name));
  if (it == indexes_.end()) {
    throw SqlError("no index on column " + column_name);
  }
  return *it->second;
}

storage::BPlusTree& Table::index_for(const std::string& column_name) {
  return const_cast<storage::BPlusTree&>(
      static_cast<const Table*>(this)->index_for(column_name));
}

std::vector<int64_t> Table::probe_index(const std::string& column_name,
                                        const Value& v) const {
  if (v.is_null()) return {};
  auto pks = index_for(column_name).find(index_key_for(v));
  std::vector<int64_t> out;
  out.reserve(pks.size());
  for (uint64_t pk : pks) out.push_back(static_cast<int64_t>(pk));
  return out;
}

void Table::scan(const std::function<void(int64_t, const Row&)>& fn) const {
  auto pk_col = schema_.primary_key_index();
  int64_t hidden_pk = 0;
  heap_->scan([&](storage::RecordId, ByteView record) {
    Row row = schema_.decode_row(record);
    int64_t pk = pk_col ? row[*pk_col].as_int64() : hidden_pk++;
    fn(pk, row);
  });
}

uint64_t Table::data_size_bytes() const {
  return pool_.disk().file_size_bytes(heap_->file());
}

uint64_t Table::index_size_bytes() const {
  uint64_t total = pool_.disk().file_size_bytes(pk_index_->file());
  for (const auto& [col, tree] : indexes_) {
    total += pool_.disk().file_size_bytes(tree->file());
  }
  return total;
}

std::vector<std::string> Table::indexed_columns() const {
  std::vector<std::string> out;
  out.reserve(indexes_.size());
  for (const auto& [col, tree] : indexes_) out.push_back(col);
  return out;
}

}  // namespace wre::sql
