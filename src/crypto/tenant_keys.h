// Per-tenant key derivation for the multi-tenant service shape: one
// wre_server, millions of tenants, one 32-byte service master secret.
//
// Each tenant gets an independent 32-byte tenant secret via HKDF under a
// tenant-scoped info label, and from it the standard WRE KeyBundle
// (KeyBundle::derive), so a tenant behaves exactly like a standalone
// deployment holding that secret: its payload keys, tag-PRF keys and shuffle
// keys share no algebraic relation with any other tenant's. In particular
// two tenants' search tags for the same plaintext are outputs of
// independently-keyed PRFs — tag namespaces are cryptographically disjoint,
// which is what lets tenants share one physical table server-side.
//
// Derivation (locked by golden KATs in tests/multi_tenant_test.cpp — a
// silent change here would orphan every existing tenant's data):
//
//   PRK            = HKDF-Extract(salt = "wre-tenant-keyring-v1",
//                                 ikm  = service master secret)
//   tenant_secret  = HKDF-Expand(PRK, "tenant" || le64(tenant_id), 32)
//   tenant bundle  = KeyBundle::derive(tenant_secret)
//
// The PRK is held as precomputed HMAC midstates (the PR 3 machinery), so a
// tenant derivation costs two SHA-256 compressions per output block and no
// per-call key scheduling; derived bundles are cached so the steady-state
// cost of routing a request to a warm tenant is one map lookup and a
// shared_ptr copy.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/crypto/hmac_sha256.h"
#include "src/crypto/keys.h"
#include "src/util/bytes.h"

namespace wre::crypto {

/// Derives and caches one independent WRE key universe per tenant id.
/// Thread-safe: any number of threads may derive concurrently.
class TenantKeyring {
 public:
  explicit TenantKeyring(ByteView master_secret);

  /// The tenant's 32-byte master secret (see the derivation spec above).
  /// Hand this to an EncryptedConnection and the tenant's tables encrypt,
  /// search and reopen exactly like a single-tenant deployment.
  Bytes tenant_secret(uint64_t tenant_id) const;

  /// The tenant's derived key bundle, cached: the first call per tenant
  /// pays the HKDF expansion, later calls are a lock + shared_ptr copy.
  std::shared_ptr<const KeyBundle> bundle(uint64_t tenant_id) const;

  /// Bundles currently cached (bounded; see kMaxCachedTenants).
  size_t cached_bundles() const;

 private:
  /// Cache bound: past this many distinct tenants the cache is wiped
  /// wholesale (the tag-cache precedent — cheap, and a sweep over more
  /// tenants than this is a batch job, not a serving pattern).
  static constexpr size_t kMaxCachedTenants = 65536;

  HmacSha256::Key prk_;  // midstates of the extracted PRK
  mutable std::mutex mu_;
  mutable std::unordered_map<uint64_t, std::shared_ptr<const KeyBundle>>
      cache_;
};

}  // namespace wre::crypto
