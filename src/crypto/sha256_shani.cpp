// SHA-256 compression via the x86 SHA extensions (SHA-NI). Compiled with
// -msha -msse4.1 -mssse3; only ever called after CpuFeatures reports sha_ni.
// The round structure follows the canonical two-lane formulation: the state
// is split into the (A,B,E,F) and (C,D,G,H) halves that sha256rnds2
// advances, and the message schedule is maintained four words at a time with
// sha256msg1/sha256msg2.
#include "src/crypto/hw_kernels.h"

#ifdef WRE_HAVE_SHANI

#include <immintrin.h>

namespace wre::crypto::detail {

namespace {

// One fully-scheduled four-round group (rounds 12 through 51): consume Ma,
// extend Mb via msg2, pre-mix Md via msg1.
#define WRE_SHA256_QROUND(Ma, Mb, Md, k_hi, k_lo)                   \
  do {                                                              \
    msg = _mm_add_epi32(Ma, _mm_set_epi64x(k_hi, k_lo));            \
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);            \
    tmp = _mm_alignr_epi8(Ma, Md, 4);                               \
    Mb = _mm_add_epi32(Mb, tmp);                                    \
    Mb = _mm_sha256msg2_epu32(Mb, Ma);                              \
    msg = _mm_shuffle_epi32(msg, 0x0E);                             \
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);            \
    Md = _mm_sha256msg1_epu32(Md, Ma);                              \
  } while (0)

}  // namespace

void sha256_compress_shani(uint32_t state[8], const uint8_t* blocks,
                           size_t nblocks) {
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack the linear state words into the rnds2 lane layout.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);                 // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);           // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  __m128i msg, msg0, msg1, msg2, msg3;

  while (nblocks--) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    // Rounds 0-3
    msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 0)),
        kByteSwap);
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7
    msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)),
        kByteSwap);
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)),
        kByteSwap);
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-51: the steady-state schedule.
    msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)),
        kByteSwap);
    WRE_SHA256_QROUND(msg3, msg0, msg2, 0xC19BF1749BDC06A7ULL,
                      0x80DEB1FE72BE5D74ULL);
    WRE_SHA256_QROUND(msg0, msg1, msg3, 0x240CA1CC0FC19DC6ULL,
                      0xEFBE4786E49B69C1ULL);
    WRE_SHA256_QROUND(msg1, msg2, msg0, 0x76F988DA5CB0A9DCULL,
                      0x4A7484AA2DE92C6FULL);
    WRE_SHA256_QROUND(msg2, msg3, msg1, 0xBF597FC7B00327C8ULL,
                      0xA831C66D983E5152ULL);
    WRE_SHA256_QROUND(msg3, msg0, msg2, 0x1429296706CA6351ULL,
                      0xD5A79147C6E00BF3ULL);
    WRE_SHA256_QROUND(msg0, msg1, msg3, 0x53380D134D2C6DFCULL,
                      0x2E1B213827B70A85ULL);
    WRE_SHA256_QROUND(msg1, msg2, msg0, 0x92722C8581C2C92EULL,
                      0x766A0ABB650A7354ULL);
    WRE_SHA256_QROUND(msg2, msg3, msg1, 0xC76C51A3C24B8B70ULL,
                      0xA81A664BA2BFE8A1ULL);
    WRE_SHA256_QROUND(msg3, msg0, msg2, 0x106AA070F40E3585ULL,
                      0xD6990624D192E819ULL);
    WRE_SHA256_QROUND(msg0, msg1, msg3, 0x34B0BCB52748774CULL,
                      0x1E376C0819A4C116ULL);

    // Rounds 52-55 (msg1 pre-mix no longer needed)
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    blocks += 64;
  }

  // Repack back to the linear word order.
  tmp = _mm_shuffle_epi32(state0, 0x1B);        // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);     // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#undef WRE_SHA256_QROUND

}  // namespace wre::crypto::detail

#endif  // WRE_HAVE_SHANI
