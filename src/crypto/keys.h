// Key material for a WRE deployment. Gen (Figure 1) produces two keys: k0
// for the IND-CPA payload encryption and k1 for the tag PRF; the bucketized
// construction additionally needs a key for the pseudo-random shuffle. All
// three are derived from one master secret with HKDF under distinct labels,
// so a deployment stores a single 32-byte secret.
#pragma once

#include "src/crypto/hkdf.h"
#include "src/crypto/secure_random.h"
#include "src/util/bytes.h"

namespace wre::crypto {

/// Per-deployment key bundle.
struct KeyBundle {
  Bytes payload_key;  // k0: AES-256 key for Enc'
  Bytes tag_key;      // k1: HMAC key for the tag PRF F
  Bytes shuffle_key;  // PRS key (bucketized construction)

  /// Derives the bundle from a 32-byte master secret.
  static KeyBundle derive(ByteView master_secret);

  /// Generates a fresh random master secret and derives the bundle.
  static KeyBundle generate(SecureRandom& rng);
};

}  // namespace wre::crypto
