#include "src/crypto/chacha20.h"

#include "src/util/error.h"

namespace wre::crypto {

namespace {

inline uint32_t rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void quarter_round(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

}  // namespace

ChaCha20::ChaCha20(ByteView key, ByteView nonce, uint32_t initial_counter) {
  if (key.size() != kKeySize) throw CryptoError("ChaCha20: key must be 32 bytes");
  if (nonce.size() != kNonceSize) {
    throw CryptoError("ChaCha20: nonce must be 12 bytes");
  }
  // "expand 32-byte k"
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = initial_counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::next_block(uint8_t out[kBlockSize]) {
  std::array<uint32_t, 16> x = state_;
  for (int i = 0; i < 10; ++i) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t v = x[i] + state_[i];
    out[4 * i + 0] = static_cast<uint8_t>(v);
    out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
  ++state_[12];
}

Bytes ChaCha20::transform(ByteView data) {
  Bytes out(data.size());
  uint8_t block[kBlockSize];
  size_t offset = 0;
  while (offset < data.size()) {
    next_block(block);
    size_t n = std::min(data.size() - offset, kBlockSize);
    for (size_t i = 0; i < n; ++i) out[offset + i] = data[offset + i] ^ block[i];
    offset += n;
  }
  return out;
}

}  // namespace wre::crypto
