// ChaCha20 stream cipher core (RFC 8439). Used as the deterministic random
// bit generator behind SecureRandom and the pseudo-random shuffle.
#pragma once

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace wre::crypto {

/// ChaCha20 block function with a 256-bit key and 96-bit nonce. Produces the
/// keystream 64 bytes at a time.
class ChaCha20 {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;
  static constexpr size_t kBlockSize = 64;

  /// Throws CryptoError if key/nonce sizes are wrong.
  ChaCha20(ByteView key, ByteView nonce, uint32_t initial_counter = 0);

  /// Writes the keystream block for the current counter into `out` and
  /// advances the counter.
  void next_block(uint8_t out[kBlockSize]);

  /// XORs `data` with the keystream (encrypt == decrypt).
  Bytes transform(ByteView data);

 private:
  std::array<uint32_t, 16> state_;
};

}  // namespace wre::crypto
