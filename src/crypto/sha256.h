// SHA-256 (FIPS 180-4). Streaming interface plus a one-shot helper.
//
// The compression function is dispatched at runtime: an x86 SHA-NI kernel
// when the CPU supports it (and hardware crypto is not disabled, see
// cpu_features.h), otherwise the portable scalar code. Both produce
// identical digests; dispatch is a throughput decision only.
#pragma once

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace wre::crypto {

/// Incremental SHA-256. Usage: construct, update() any number of times,
/// finish() once. finish() may be called on a fresh object for the empty
/// message. After finish() the object must not be reused.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  /// A captured chaining state at a block boundary. Cloning a hash from a
  /// State replays all absorbed blocks for the cost of a memcpy — the basis
  /// of HMAC midstate caching (the ipad/opad blocks are absorbed once per
  /// key, then every MAC resumes from the saved states).
  struct State {
    uint32_t h[8];
    uint64_t bytes;  // total bytes absorbed; must be a kBlockSize multiple
  };

  Sha256();

  /// Resumes hashing from a captured block-boundary state.
  explicit Sha256(const State& midstate);

  /// Absorbs `data` into the hash state.
  void update(ByteView data);

  /// Captures the current chaining state. Precondition: the total absorbed
  /// length is a multiple of kBlockSize (no buffered partial block); throws
  /// CryptoError otherwise.
  State midstate() const;

  /// Finalizes padding and returns the 32-byte digest.
  std::array<uint8_t, kDigestSize> finish();

  /// One-shot convenience: SHA-256(data).
  static std::array<uint8_t, kDigestSize> digest(ByteView data);

 private:
  /// Compresses `nblocks` consecutive blocks into state_, dispatching to the
  /// accelerated kernel when available.
  void process_blocks(const uint8_t* blocks, size_t nblocks);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace wre::crypto
