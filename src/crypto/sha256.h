// SHA-256 (FIPS 180-4). Streaming interface plus a one-shot helper.
#pragma once

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace wre::crypto {

/// Incremental SHA-256. Usage: construct, update() any number of times,
/// finish() once. finish() may be called on a fresh object for the empty
/// message. After finish() the object must not be reused.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  /// Absorbs `data` into the hash state.
  void update(ByteView data);

  /// Finalizes padding and returns the 32-byte digest.
  std::array<uint8_t, kDigestSize> finish();

  /// One-shot convenience: SHA-256(data).
  static std::array<uint8_t, kDigestSize> digest(ByteView data);

 private:
  void process_block(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace wre::crypto
