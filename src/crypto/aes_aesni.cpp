// AES block encryption/decryption via AES-NI. Compiled with -maes; only
// called after CpuFeatures reports aes_ni. The kernels consume the
// byte-serialized round-key schedules that Aes computes once per key: the
// encryption schedule verbatim, and the equivalent-inverse-cipher schedule
// (reversed, InvMixColumns folded into the middle keys) for decryption —
// exactly the form aesdec/aesdeclast expect.
//
// Blocks in one call are independent (ECB over the caller's counter or data
// blocks), so eight are kept in flight to cover the aesenc latency; AES-CTR
// builds its keystream through this path.
#include "src/crypto/hw_kernels.h"

#ifdef WRE_HAVE_AESNI

#include <immintrin.h>

namespace wre::crypto::detail {

namespace {

constexpr size_t kLanes = 8;

inline __m128i load_key(const uint8_t* round_keys, int r) {
  return _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(round_keys + 16 * r));
}

}  // namespace

void aes_encrypt_blocks_aesni(const uint8_t* round_keys, int rounds,
                              const uint8_t* in, uint8_t* out,
                              size_t nblocks) {
  const __m128i* src = reinterpret_cast<const __m128i*>(in);
  __m128i* dst = reinterpret_cast<__m128i*>(out);

  while (nblocks >= kLanes) {
    __m128i b[kLanes];
    const __m128i k0 = load_key(round_keys, 0);
    for (size_t i = 0; i < kLanes; ++i) {
      b[i] = _mm_xor_si128(_mm_loadu_si128(src + i), k0);
    }
    for (int r = 1; r < rounds; ++r) {
      const __m128i k = load_key(round_keys, r);
      for (size_t i = 0; i < kLanes; ++i) b[i] = _mm_aesenc_si128(b[i], k);
    }
    const __m128i klast = load_key(round_keys, rounds);
    for (size_t i = 0; i < kLanes; ++i) {
      _mm_storeu_si128(dst + i, _mm_aesenclast_si128(b[i], klast));
    }
    src += kLanes;
    dst += kLanes;
    nblocks -= kLanes;
  }

  while (nblocks--) {
    __m128i b = _mm_xor_si128(_mm_loadu_si128(src++), load_key(round_keys, 0));
    for (int r = 1; r < rounds; ++r) {
      b = _mm_aesenc_si128(b, load_key(round_keys, r));
    }
    _mm_storeu_si128(dst++, _mm_aesenclast_si128(b, load_key(round_keys,
                                                             rounds)));
  }
}

void aes_decrypt_blocks_aesni(const uint8_t* round_keys, int rounds,
                              const uint8_t* in, uint8_t* out,
                              size_t nblocks) {
  const __m128i* src = reinterpret_cast<const __m128i*>(in);
  __m128i* dst = reinterpret_cast<__m128i*>(out);

  while (nblocks >= kLanes) {
    __m128i b[kLanes];
    const __m128i k0 = load_key(round_keys, 0);
    for (size_t i = 0; i < kLanes; ++i) {
      b[i] = _mm_xor_si128(_mm_loadu_si128(src + i), k0);
    }
    for (int r = 1; r < rounds; ++r) {
      const __m128i k = load_key(round_keys, r);
      for (size_t i = 0; i < kLanes; ++i) b[i] = _mm_aesdec_si128(b[i], k);
    }
    const __m128i klast = load_key(round_keys, rounds);
    for (size_t i = 0; i < kLanes; ++i) {
      _mm_storeu_si128(dst + i, _mm_aesdeclast_si128(b[i], klast));
    }
    src += kLanes;
    dst += kLanes;
    nblocks -= kLanes;
  }

  while (nblocks--) {
    __m128i b = _mm_xor_si128(_mm_loadu_si128(src++), load_key(round_keys, 0));
    for (int r = 1; r < rounds; ++r) {
      b = _mm_aesdec_si128(b, load_key(round_keys, r));
    }
    _mm_storeu_si128(dst++, _mm_aesdeclast_si128(b, load_key(round_keys,
                                                             rounds)));
  }
}

}  // namespace wre::crypto::detail

#endif  // WRE_HAVE_AESNI
