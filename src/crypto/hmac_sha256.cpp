#include "src/crypto/hmac_sha256.h"

#include <cstring>

namespace wre::crypto {

HmacSha256::Key::Key(ByteView key) {
  std::array<uint8_t, Sha256::kBlockSize> block{};
  if (key.size() > Sha256::kBlockSize) {
    auto digest = Sha256::digest(key);
    std::memcpy(block.data(), digest.data(), digest.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<uint8_t, Sha256::kBlockSize> ipad_key, opad_key;
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad_key[i] = block[i] ^ 0x36;
    opad_key[i] = block[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ipad_key);
  inner_ = inner.midstate();
  Sha256 outer;
  outer.update(opad_key);
  outer_ = outer.midstate();
}

HmacSha256::HmacSha256(const Key& key)
    : inner_(key.inner_), outer_mid_(key.outer_) {}

void HmacSha256::update(ByteView data) { inner_.update(data); }

std::array<uint8_t, HmacSha256::kDigestSize> HmacSha256::finish() {
  auto inner_digest = inner_.finish();
  Sha256 outer(outer_mid_);
  outer.update(inner_digest);
  return outer.finish();
}

std::array<uint8_t, HmacSha256::kDigestSize> HmacSha256::mac(ByteView key,
                                                             ByteView data) {
  HmacSha256 h(key);
  h.update(data);
  return h.finish();
}

std::array<uint8_t, HmacSha256::kDigestSize> HmacSha256::mac(const Key& key,
                                                             ByteView data) {
  HmacSha256 h(key);
  h.update(data);
  return h.finish();
}

}  // namespace wre::crypto
