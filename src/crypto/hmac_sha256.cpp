#include "src/crypto/hmac_sha256.h"

#include <cstring>

namespace wre::crypto {

HmacSha256::HmacSha256(ByteView key) {
  std::array<uint8_t, Sha256::kBlockSize> block{};
  if (key.size() > Sha256::kBlockSize) {
    auto digest = Sha256::digest(key);
    std::memcpy(block.data(), digest.data(), digest.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<uint8_t, Sha256::kBlockSize> ipad_key;
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad_key[i] = block[i] ^ 0x36;
    opad_key_[i] = block[i] ^ 0x5c;
  }
  inner_.update(ipad_key);
}

void HmacSha256::update(ByteView data) { inner_.update(data); }

std::array<uint8_t, HmacSha256::kDigestSize> HmacSha256::finish() {
  auto inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finish();
}

std::array<uint8_t, HmacSha256::kDigestSize> HmacSha256::mac(ByteView key,
                                                             ByteView data) {
  HmacSha256 h(key);
  h.update(data);
  return h.finish();
}

}  // namespace wre::crypto
