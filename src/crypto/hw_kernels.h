// Internal declarations of the hardware-accelerated kernel entry points.
// Each kernel lives in its own translation unit compiled with the matching
// ISA flags (see src/crypto/CMakeLists.txt); the WRE_HAVE_* macros are
// defined only when that unit is part of the build, so dispatch sites guard
// every reference. Callers must additionally check CpuFeatures at runtime —
// these functions execute illegal-instruction faults on CPUs without the
// extension.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wre::crypto::detail {

#ifdef WRE_HAVE_SHANI
/// SHA-256 compression of `nblocks` consecutive 64-byte blocks via SHA-NI.
/// `state` is the 8-word working state in the FIPS 180-4 word order.
void sha256_compress_shani(uint32_t state[8], const uint8_t* blocks,
                           size_t nblocks);
#endif

#ifdef WRE_HAVE_AESNI
/// AES encryption of `nblocks` independent 16-byte blocks via AES-NI,
/// pipelined 8 blocks at a time. `round_keys` is the byte-serialized
/// encryption schedule, 16 bytes per round key, rounds+1 keys.
/// in/out may alias exactly (in == out).
void aes_encrypt_blocks_aesni(const uint8_t* round_keys, int rounds,
                              const uint8_t* in, uint8_t* out, size_t nblocks);

/// AES decryption counterpart. `round_keys` is the byte-serialized
/// equivalent-inverse-cipher schedule (reversed order, InvMixColumns applied
/// to the middle round keys) — the layout Aes already computes for the
/// scalar path.
void aes_decrypt_blocks_aesni(const uint8_t* round_keys, int rounds,
                              const uint8_t* in, uint8_t* out, size_t nblocks);
#endif

}  // namespace wre::crypto::detail
