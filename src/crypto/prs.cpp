#include "src/crypto/prs.h"

#include <numeric>

#include "src/crypto/chacha20.h"
#include "src/crypto/hmac_sha256.h"
#include "src/crypto/secure_random.h"

namespace wre::crypto {

PseudoRandomShuffle::PseudoRandomShuffle(ByteView key, ByteView context) {
  Bytes input = to_bytes("wre-prs-v1");
  append(input, context);
  auto mac = HmacSha256::mac(key, input);
  derived_key_.assign(mac.begin(), mac.end());
}

std::vector<size_t> PseudoRandomShuffle::permutation(size_t n) const {
  // Deterministic ChaCha20-backed generator keyed by the derived key; the
  // same (key, context, n) always yields the same permutation, which is what
  // lets the client recompute salt buckets at query time.
  SecureRandom rng{ByteView(derived_key_)};
  std::vector<size_t> p(n);
  std::iota(p.begin(), p.end(), size_t{0});
  for (size_t i = n; i > 1; --i) {
    size_t j = static_cast<size_t>(rng.next_below(i));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

}  // namespace wre::crypto
