// Cryptographically strong randomness: a ChaCha20-based DRBG seeded from the
// operating system. Tests may seed it explicitly for reproducibility.
#pragma once

#include <cstdint>
#include <span>

#include "src/crypto/chacha20.h"
#include "src/util/bytes.h"

namespace wre::crypto {

/// ChaCha20-backed deterministic random bit generator. The default
/// constructor seeds from std::random_device (OS entropy); the seeded
/// constructor yields a reproducible stream for tests and simulations.
class SecureRandom {
 public:
  /// Seeds from OS entropy.
  SecureRandom();

  /// Deterministic stream derived from a 32-byte seed. Throws CryptoError on
  /// other sizes.
  explicit SecureRandom(ByteView seed);

  /// Convenience: derives a 32-byte seed from a 64-bit test seed.
  static SecureRandom for_testing(uint64_t seed);

  /// Fills `out` with random bytes.
  void fill(std::span<uint8_t> out);

  /// Returns `n` random bytes.
  Bytes bytes(size_t n);

  uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. Precondition: bound > 0.
  uint64_t next_below(uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Exponential(lambda) variate. Precondition: lambda > 0.
  double next_exponential(double lambda);

 private:
  ChaCha20 stream_;
  uint8_t buffer_[ChaCha20::kBlockSize];
  size_t buffer_pos_ = ChaCha20::kBlockSize;  // force refill on first use
};

}  // namespace wre::crypto
