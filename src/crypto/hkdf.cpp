#include "src/crypto/hkdf.h"

#include "src/crypto/hmac_sha256.h"
#include "src/util/error.h"

namespace wre::crypto {

Bytes hkdf_extract(ByteView salt, ByteView ikm) {
  auto prk = HmacSha256::mac(salt, ikm);
  return Bytes(prk.begin(), prk.end());
}

Bytes hkdf_expand(const HmacSha256::Key& prk, ByteView info, size_t length) {
  constexpr size_t kHashLen = HmacSha256::kDigestSize;
  if (length > 255 * kHashLen) {
    throw CryptoError("hkdf_expand: requested length too large");
  }
  Bytes out;
  out.reserve(length);
  Bytes previous;
  uint8_t counter = 1;
  while (out.size() < length) {
    HmacSha256 h(prk);
    h.update(previous);
    h.update(info);
    h.update(ByteView(&counter, 1));
    auto block = h.finish();
    previous.assign(block.begin(), block.end());
    size_t take = std::min(kHashLen, length - out.size());
    out.insert(out.end(), block.begin(), block.begin() + take);
    ++counter;
  }
  return out;
}

Bytes hkdf_expand(ByteView prk, ByteView info, size_t length) {
  return hkdf_expand(HmacSha256::Key(prk), info, length);
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace wre::crypto
