// HKDF-SHA-256 (RFC 5869). Used to derive the independent sub-keys of a WRE
// key pair (payload-encryption key k0, tag-PRF key k1, shuffle key) from a
// single master secret.
#pragma once

#include "src/crypto/hmac_sha256.h"
#include "src/util/bytes.h"

namespace wre::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: derives `length` bytes from `prk` under `info`.
/// Throws CryptoError if length > 255 * 32.
Bytes hkdf_expand(ByteView prk, ByteView info, size_t length);

/// HKDF-Expand from a precomputed HMAC key (the PRK's ipad/opad midstates):
/// bit-identical to the ByteView form, but skips the per-block key schedule
/// — the hot path for bulk per-tenant derivation (TenantKeyring).
Bytes hkdf_expand(const HmacSha256::Key& prk, ByteView info, size_t length);

/// One-shot extract-then-expand.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, size_t length);

}  // namespace wre::crypto
