#include "src/crypto/tenant_keys.h"

#include "src/crypto/hkdf.h"

namespace wre::crypto {

TenantKeyring::TenantKeyring(ByteView master_secret)
    : prk_(hkdf_extract(to_bytes("wre-tenant-keyring-v1"), master_secret)) {}

Bytes TenantKeyring::tenant_secret(uint64_t tenant_id) const {
  // info = "tenant" || le64(tenant_id): the explicit fixed-width id keeps
  // the label space prefix-free, so no two tenants share an info string.
  Bytes info = to_bytes("tenant");
  store_le64(info, tenant_id);
  return hkdf_expand(prk_, info, 32);
}

std::shared_ptr<const KeyBundle> TenantKeyring::bundle(
    uint64_t tenant_id) const {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = cache_.find(tenant_id);
    if (it != cache_.end()) return it->second;
  }
  // Derive outside the lock: concurrent misses for different tenants must
  // not serialize on the HKDF work.
  auto derived =
      std::make_shared<const KeyBundle>(KeyBundle::derive(tenant_secret(tenant_id)));
  std::lock_guard<std::mutex> lk(mu_);
  if (cache_.size() >= kMaxCachedTenants) cache_.clear();
  // On a lost race the first writer's (identical) bundle wins.
  return cache_.emplace(tenant_id, std::move(derived)).first->second;
}

size_t TenantKeyring::cached_bundles() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cache_.size();
}

}  // namespace wre::crypto
