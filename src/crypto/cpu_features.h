// Runtime CPU-feature detection and the hardware-crypto dispatch switch.
//
// The accelerated SHA-256 (SHA-NI) and AES (AES-NI) kernels are compiled
// into separate translation units with the matching -m flags and selected at
// runtime: a kernel runs only when (a) it was compiled in, (b) CPUID reports
// the extension, and (c) the process-wide switch is on. The switch starts
// from the WRE_DISABLE_HWCRYPTO environment variable (any non-empty value
// other than "0" forces the portable scalar code) and can be flipped at
// runtime by tests and benchmarks to exercise both paths in one process.
//
// Hard invariant: every kernel pair is bit-identical. Dispatch must never be
// observable through tags, ciphertexts or digests — only through throughput.
#pragma once

#include <string>

namespace wre::crypto {

/// CPUID-derived feature bits, probed once per process.
struct CpuFeatures {
  bool ssse3 = false;
  bool sse41 = false;
  bool aes_ni = false;
  bool sha_ni = false;
  bool avx2 = false;

  /// The cached probe result for this CPU.
  static const CpuFeatures& get();
};

/// Whether the process-wide hardware-crypto switch is on. Defaults to on
/// unless WRE_DISABLE_HWCRYPTO is set (to anything but "0") at first use.
/// A kernel additionally requires its CPUID bit, so this returning true on
/// a machine without SHA-NI/AES-NI still yields the scalar code.
bool hwcrypto_enabled();

/// Flips the switch; returns the previous value. Thread-safe. Used by tests
/// and benchmarks to compare the accelerated and scalar paths in-process.
bool set_hwcrypto_enabled(bool on);

/// True if this binary contains any accelerated kernels at all (x86-64 build
/// with a compiler that accepts -msha/-maes).
bool hwcrypto_compiled_in();

/// One-line human-readable summary, e.g.
/// "sha_ni=1 aes_ni=1 ssse3=1 sse41=1 avx2=1 compiled=1 enabled=1".
std::string hwcrypto_summary();

}  // namespace wre::crypto
