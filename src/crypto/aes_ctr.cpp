#include "src/crypto/aes_ctr.h"

#include <cstring>

#include "src/util/error.h"

namespace wre::crypto {

Bytes AesCtr::transform(ByteView data, const uint8_t nonce[kNonceSize]) const {
  uint8_t counter[kNonceSize];
  std::memcpy(counter, nonce, kNonceSize);

  Bytes out(data.size());
  // Counter blocks are generated in batches and encrypted through the
  // multi-block path, which pipelines them under AES-NI; the scalar
  // fallback degrades to the same block-at-a-time loop as before.
  constexpr size_t kBatchBlocks = 8;
  uint8_t counters[kBatchBlocks * Aes::kBlockSize];
  uint8_t keystream[kBatchBlocks * Aes::kBlockSize];
  size_t offset = 0;
  while (offset < data.size()) {
    const size_t remaining = data.size() - offset;
    const size_t blocks = std::min(
        kBatchBlocks, (remaining + Aes::kBlockSize - 1) / Aes::kBlockSize);
    for (size_t b = 0; b < blocks; ++b) {
      std::memcpy(counters + b * Aes::kBlockSize, counter, kNonceSize);
      // Increment the counter block as a 128-bit big-endian integer.
      for (int i = kNonceSize - 1; i >= 0; --i) {
        if (++counter[i] != 0) break;
      }
    }
    cipher_.encrypt_blocks(counters, keystream, blocks);
    const size_t n = std::min(remaining, blocks * Aes::kBlockSize);
    for (size_t i = 0; i < n; ++i) {
      out[offset + i] = data[offset + i] ^ keystream[i];
    }
    offset += n;
  }
  return out;
}

Bytes AesCtr::encrypt(ByteView plaintext, SecureRandom& rng) const {
  uint8_t nonce[kNonceSize];
  rng.fill(std::span<uint8_t>(nonce, kNonceSize));
  Bytes body = transform(plaintext, nonce);

  Bytes out;
  out.reserve(kNonceSize + body.size());
  out.insert(out.end(), nonce, nonce + kNonceSize);
  append(out, body);
  return out;
}

Bytes AesCtr::decrypt(ByteView ciphertext) const {
  if (ciphertext.size() < kNonceSize) {
    throw CryptoError("AesCtr::decrypt: ciphertext shorter than nonce");
  }
  return transform(ciphertext.subspan(kNonceSize), ciphertext.data());
}

}  // namespace wre::crypto
