#include "src/crypto/aes_ctr.h"

#include <cstring>

#include "src/util/error.h"

namespace wre::crypto {

Bytes AesCtr::transform(ByteView data, const uint8_t nonce[kNonceSize]) const {
  uint8_t counter[kNonceSize];
  std::memcpy(counter, nonce, kNonceSize);

  Bytes out(data.size());
  uint8_t keystream[Aes::kBlockSize];
  size_t offset = 0;
  while (offset < data.size()) {
    cipher_.encrypt_block(counter, keystream);
    size_t n = std::min(data.size() - offset, Aes::kBlockSize);
    for (size_t i = 0; i < n; ++i) {
      out[offset + i] = data[offset + i] ^ keystream[i];
    }
    offset += n;
    // Increment the counter block as a 128-bit big-endian integer.
    for (int i = kNonceSize - 1; i >= 0; --i) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

Bytes AesCtr::encrypt(ByteView plaintext, SecureRandom& rng) const {
  uint8_t nonce[kNonceSize];
  rng.fill(std::span<uint8_t>(nonce, kNonceSize));
  Bytes body = transform(plaintext, nonce);

  Bytes out;
  out.reserve(kNonceSize + body.size());
  out.insert(out.end(), nonce, nonce + kNonceSize);
  append(out, body);
  return out;
}

Bytes AesCtr::decrypt(ByteView ciphertext) const {
  if (ciphertext.size() < kNonceSize) {
    throw CryptoError("AesCtr::decrypt: ciphertext shorter than nonce");
  }
  return transform(ciphertext.subspan(kNonceSize), ciphertext.data());
}

}  // namespace wre::crypto
