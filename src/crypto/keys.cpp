#include "src/crypto/keys.h"

namespace wre::crypto {

KeyBundle KeyBundle::derive(ByteView master_secret) {
  Bytes salt = to_bytes("wre-key-derivation-v1");
  Bytes prk = hkdf_extract(salt, master_secret);
  KeyBundle bundle;
  bundle.payload_key = hkdf_expand(prk, to_bytes("payload"), 32);
  bundle.tag_key = hkdf_expand(prk, to_bytes("tag-prf"), 32);
  bundle.shuffle_key = hkdf_expand(prk, to_bytes("shuffle"), 32);
  return bundle;
}

KeyBundle KeyBundle::generate(SecureRandom& rng) {
  return derive(rng.bytes(32));
}

}  // namespace wre::crypto
