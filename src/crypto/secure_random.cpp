#include "src/crypto/secure_random.h"

#include <cmath>
#include <cstring>
#include <random>

#include "src/util/error.h"

namespace wre::crypto {

namespace {

Bytes os_seed() {
  std::random_device rd;
  Bytes seed(ChaCha20::kKeySize);
  for (size_t i = 0; i < seed.size(); i += 4) {
    uint32_t v = rd();
    std::memcpy(seed.data() + i, &v, std::min<size_t>(4, seed.size() - i));
  }
  return seed;
}

const uint8_t kZeroNonce[ChaCha20::kNonceSize] = {0};

}  // namespace

SecureRandom::SecureRandom()
    : stream_(os_seed(), ByteView(kZeroNonce, sizeof(kZeroNonce))) {}

SecureRandom::SecureRandom(ByteView seed)
    : stream_(seed, ByteView(kZeroNonce, sizeof(kZeroNonce))) {
  // ChaCha20 constructor validates the seed length (32 bytes).
}

SecureRandom SecureRandom::for_testing(uint64_t seed) {
  Bytes s(ChaCha20::kKeySize, 0);
  for (int i = 0; i < 8; ++i) s[i] = static_cast<uint8_t>(seed >> (8 * i));
  return SecureRandom(s);
}

void SecureRandom::fill(std::span<uint8_t> out) {
  size_t offset = 0;
  while (offset < out.size()) {
    if (buffer_pos_ == ChaCha20::kBlockSize) {
      stream_.next_block(buffer_);
      buffer_pos_ = 0;
    }
    size_t n = std::min(out.size() - offset, ChaCha20::kBlockSize - buffer_pos_);
    std::memcpy(out.data() + offset, buffer_ + buffer_pos_, n);
    buffer_pos_ += n;
    offset += n;
  }
}

Bytes SecureRandom::bytes(size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

uint64_t SecureRandom::next_u64() {
  uint8_t b[8];
  fill(std::span<uint8_t>(b, 8));
  return load_le64(b);
}

uint64_t SecureRandom::next_below(uint64_t bound) {
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double SecureRandom::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double SecureRandom::next_exponential(double lambda) {
  double u = 1.0 - next_double();
  return -std::log(u) / lambda;
}

}  // namespace wre::crypto
