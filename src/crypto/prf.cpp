#include "src/crypto/prf.h"

#include "src/crypto/hmac_sha256.h"

namespace wre::crypto {

Tag TagPrf::tag(uint64_t salt, ByteView message) const {
  Bytes input;
  input.reserve(12 + message.size());
  store_le64(input, salt);
  store_le32(input, static_cast<uint32_t>(message.size()));
  append(input, message);
  auto mac = HmacSha256::mac(key_, input);
  return load_le64(mac.data());
}

Tag TagPrf::range_tag(uint32_t bucket) const {
  Bytes input;
  input.reserve(7);
  append(input, to_bytes("rng"));
  store_le32(input, bucket);
  auto mac = HmacSha256::mac(key_, input);
  return load_le64(mac.data());
}

Tag TagPrf::bucket_tag(uint64_t salt) const {
  Bytes input;
  input.reserve(11);
  append(input, to_bytes("bkt"));
  store_le64(input, salt);
  auto mac = HmacSha256::mac(key_, input);
  return load_le64(mac.data());
}

}  // namespace wre::crypto
