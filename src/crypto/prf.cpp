#include "src/crypto/prf.h"

#include <cstring>

namespace wre::crypto {

namespace {

inline Tag first_tag_bytes(const std::array<uint8_t, 32>& mac) {
  return load_le64(mac.data());
}

}  // namespace

Tag TagPrf::tag(uint64_t salt, ByteView message) const {
  uint8_t prefix[12];
  store_le64(prefix, salt);
  store_le32(prefix + 8, static_cast<uint32_t>(message.size()));
  HmacSha256 h(key_);
  h.update(ByteView(prefix, sizeof(prefix)));
  h.update(message);
  return first_tag_bytes(h.finish());
}

Tag TagPrf::range_tag(uint32_t bucket) const {
  uint8_t input[7] = {'r', 'n', 'g'};
  store_le32(input + 3, bucket);
  return first_tag_bytes(HmacSha256::mac(key_, ByteView(input, sizeof(input))));
}

Tag TagPrf::bucket_tag(uint64_t salt) const {
  uint8_t input[11] = {'b', 'k', 't'};
  store_le64(input + 3, salt);
  return first_tag_bytes(HmacSha256::mac(key_, ByteView(input, sizeof(input))));
}

void TagPrf::tags(const uint64_t* salts, size_t count, ByteView message,
                  Tag* out) const {
  uint8_t prefix[12];
  store_le32(prefix + 8, static_cast<uint32_t>(message.size()));
  for (size_t i = 0; i < count; ++i) {
    store_le64(prefix, salts[i]);
    HmacSha256 h(key_);
    h.update(ByteView(prefix, sizeof(prefix)));
    h.update(message);
    out[i] = first_tag_bytes(h.finish());
  }
}

std::vector<Tag> TagPrf::tags(const std::vector<uint64_t>& salts,
                              ByteView message) const {
  std::vector<Tag> out(salts.size());
  tags(salts.data(), salts.size(), message, out.data());
  return out;
}

void TagPrf::bucket_tags(const uint64_t* salts, size_t count, Tag* out) const {
  uint8_t input[11] = {'b', 'k', 't'};
  for (size_t i = 0; i < count; ++i) {
    store_le64(input + 3, salts[i]);
    out[i] =
        first_tag_bytes(HmacSha256::mac(key_, ByteView(input, sizeof(input))));
  }
}

std::vector<Tag> TagPrf::bucket_tags(const std::vector<uint64_t>& salts) const {
  std::vector<Tag> out(salts.size());
  bucket_tags(salts.data(), salts.size(), out.data());
  return out;
}

}  // namespace wre::crypto
