#include "src/crypto/cpu_features.h"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define WRE_CPUID_AVAILABLE 1
#endif

namespace wre::crypto {

namespace {

CpuFeatures probe() {
  CpuFeatures f;
#ifdef WRE_CPUID_AVAILABLE
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.ssse3 = (ecx >> 9) & 1;
    f.sse41 = (ecx >> 19) & 1;
    f.aes_ni = (ecx >> 25) & 1;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx >> 5) & 1;
    f.sha_ni = (ebx >> 29) & 1;
  }
#endif
  return f;
}

std::atomic<bool>& switch_flag() {
  // First use reads the environment; later set_hwcrypto_enabled() calls
  // override it for the rest of the process.
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("WRE_DISABLE_HWCRYPTO");
    bool disabled = env && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !disabled;
  }();
  return flag;
}

}  // namespace

const CpuFeatures& CpuFeatures::get() {
  static const CpuFeatures f = probe();
  return f;
}

bool hwcrypto_enabled() {
  return switch_flag().load(std::memory_order_relaxed);
}

bool set_hwcrypto_enabled(bool on) {
  return switch_flag().exchange(on, std::memory_order_relaxed);
}

bool hwcrypto_compiled_in() {
#if defined(WRE_HAVE_SHANI) || defined(WRE_HAVE_AESNI)
  return true;
#else
  return false;
#endif
}

std::string hwcrypto_summary() {
  const CpuFeatures& f = CpuFeatures::get();
  auto bit = [](bool b) { return b ? "1" : "0"; };
  std::string out;
  out += "sha_ni=";
  out += bit(f.sha_ni);
  out += " aes_ni=";
  out += bit(f.aes_ni);
  out += " ssse3=";
  out += bit(f.ssse3);
  out += " sse41=";
  out += bit(f.sse41);
  out += " avx2=";
  out += bit(f.avx2);
  out += " compiled=";
  out += bit(hwcrypto_compiled_in());
  out += " enabled=";
  out += bit(hwcrypto_enabled());
  return out;
}

}  // namespace wre::crypto
