// HMAC-SHA-256 (RFC 2104 / FIPS 198-1). This is the PRF used to derive WRE
// search tags (Figure 1 of the paper) and the keystream for the
// pseudo-random shuffle.
//
// Keys can be precomputed into a Key object holding the ipad/opad SHA-256
// midstates. A textbook HMAC of a short message costs four compressions
// (ipad block, inner finalization, opad block, outer finalization); resuming
// from cached midstates drops the two key-block compressions, halving the
// cost for the sub-block messages that dominate tag derivation.
#pragma once

#include <array>

#include "src/crypto/sha256.h"
#include "src/util/bytes.h"

namespace wre::crypto {

/// Incremental HMAC-SHA-256. Keys longer than the block size are hashed
/// first, per the RFC.
class HmacSha256 {
 public:
  static constexpr size_t kDigestSize = Sha256::kDigestSize;

  /// Precomputed ipad/opad midstates for one key. Cheap to copy (two
  /// 40-byte states, no allocation); construct once per key, reuse per MAC.
  class Key {
   public:
    explicit Key(ByteView key);

   private:
    friend class HmacSha256;
    Sha256::State inner_;
    Sha256::State outer_;
  };

  explicit HmacSha256(ByteView key) : HmacSha256(Key(key)) {}
  explicit HmacSha256(const Key& key);

  void update(ByteView data);
  std::array<uint8_t, kDigestSize> finish();

  /// One-shot convenience: HMAC(key, data).
  static std::array<uint8_t, kDigestSize> mac(ByteView key, ByteView data);
  static std::array<uint8_t, kDigestSize> mac(const Key& key, ByteView data);

 private:
  Sha256 inner_;
  Sha256::State outer_mid_;
};

}  // namespace wre::crypto
