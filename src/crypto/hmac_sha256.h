// HMAC-SHA-256 (RFC 2104 / FIPS 198-1). This is the PRF used to derive WRE
// search tags (Figure 1 of the paper) and the keystream for the
// pseudo-random shuffle.
#pragma once

#include <array>

#include "src/crypto/sha256.h"
#include "src/util/bytes.h"

namespace wre::crypto {

/// Incremental HMAC-SHA-256. Keys longer than the block size are hashed
/// first, per the RFC.
class HmacSha256 {
 public:
  static constexpr size_t kDigestSize = Sha256::kDigestSize;

  explicit HmacSha256(ByteView key);

  void update(ByteView data);
  std::array<uint8_t, kDigestSize> finish();

  /// One-shot convenience: HMAC(key, data).
  static std::array<uint8_t, kDigestSize> mac(ByteView key, ByteView data);

 private:
  Sha256 inner_;
  std::array<uint8_t, Sha256::kBlockSize> opad_key_;
};

}  // namespace wre::crypto
