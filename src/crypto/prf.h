// The search-tag PRF F of the WRE construction (Figure 1 of the paper).
//
// Tags are 64-bit integers (the paper stores the tag column as a 64-bit
// integer). A tag for (salt, message) is the first 8 bytes of
//   HMAC-SHA-256(k1, le64(salt) || le32(|m|) || m)
// The explicit length prefix guarantees the paper's requirement that no two
// distinct (salt, message) pairs — including pairs of different message
// lengths — map to the same PRF input. The bucketized construction instead
// tags the salt alone (Section V-C1): first 8 bytes of
//   HMAC-SHA-256(k1, "bkt" || le64(salt)).
#pragma once

#include <cstdint>

#include "src/util/bytes.h"

namespace wre::crypto {

/// 64-bit search tag.
using Tag = uint64_t;

/// Keyed tag PRF. Copyable; holds only the key.
class TagPrf {
 public:
  explicit TagPrf(ByteView key) : key_(key.begin(), key.end()) {}

  /// Tag for salt||message (plain WRE: fixed, proportional, Poisson).
  Tag tag(uint64_t salt, ByteView message) const;

  /// Tag for the salt alone (bucketized Poisson, Section V-C1).
  Tag bucket_tag(uint64_t salt) const;

  /// Tag for a range bucket (the bucketized range-query extension).
  /// Domain-separated from both other tag kinds.
  Tag range_tag(uint32_t bucket) const;

 private:
  Bytes key_;
};

}  // namespace wre::crypto
