// The search-tag PRF F of the WRE construction (Figure 1 of the paper).
//
// Tags are 64-bit integers (the paper stores the tag column as a 64-bit
// integer). A tag for (salt, message) is the first 8 bytes of
//   HMAC-SHA-256(k1, le64(salt) || le32(|m|) || m)
// The explicit length prefix guarantees the paper's requirement that no two
// distinct (salt, message) pairs — including pairs of different message
// lengths — map to the same PRF input. The bucketized construction instead
// tags the salt alone (Section V-C1): first 8 bytes of
//   HMAC-SHA-256(k1, "bkt" || le64(salt)).
//
// The key is held as precomputed HMAC midstates, so each tag costs two
// SHA-256 compressions (down from four with per-call key scheduling) and
// copying a TagPrf — which parallel-ingest workers do per clone — is a small
// allocation-free memcpy. The batched tags()/bucket_tags() entry points
// amortize input assembly across a whole salt set during search-tag
// expansion.
#pragma once

#include <cstdint>
#include <vector>

#include "src/crypto/hmac_sha256.h"
#include "src/util/bytes.h"

namespace wre::crypto {

/// 64-bit search tag.
using Tag = uint64_t;

/// Keyed tag PRF. Copyable; holds only the precomputed HMAC midstates.
class TagPrf {
 public:
  explicit TagPrf(ByteView key) : key_(key) {}

  /// Tag for salt||message (plain WRE: fixed, proportional, Poisson).
  Tag tag(uint64_t salt, ByteView message) const;

  /// Tag for the salt alone (bucketized Poisson, Section V-C1).
  Tag bucket_tag(uint64_t salt) const;

  /// Tag for a range bucket (the bucketized range-query extension).
  /// Domain-separated from both other tag kinds.
  Tag range_tag(uint32_t bucket) const;

  /// Batched tag derivation over a salt set: out[i] = tag(salts[i], message).
  /// `out` must hold `count` tags.
  void tags(const uint64_t* salts, size_t count, ByteView message,
            Tag* out) const;
  std::vector<Tag> tags(const std::vector<uint64_t>& salts,
                        ByteView message) const;

  /// Batched bucket-tag derivation: out[i] = bucket_tag(salts[i]).
  void bucket_tags(const uint64_t* salts, size_t count, Tag* out) const;
  std::vector<Tag> bucket_tags(const std::vector<uint64_t>& salts) const;

 private:
  HmacSha256::Key key_;
};

}  // namespace wre::crypto
