#include "src/crypto/aes.h"

#include <cstring>

#include "src/crypto/cpu_features.h"
#include "src/crypto/hw_kernels.h"
#include "src/util/error.h"

namespace wre::crypto {

namespace {

// The S-box and its inverse are generated at startup from the GF(2^8)
// definition (multiplicative inverse followed by the affine map) rather than
// transcribed as literals; the known-answer tests in tests/crypto_test.cpp
// pin the result to the FIPS 197 vectors.
struct SboxTables {
  uint8_t sbox[256];
  uint8_t inv_sbox[256];

  SboxTables() {
    // Build log/antilog tables over GF(2^8) with generator 3.
    uint8_t pow_tab[256];
    uint8_t log_tab[256] = {0};
    uint8_t x = 1;
    for (int i = 0; i < 256; ++i) {
      pow_tab[i] = x;
      log_tab[x] = static_cast<uint8_t>(i);
      // multiply x by 3 in GF(2^8)
      uint8_t x2 = static_cast<uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
      x = static_cast<uint8_t>(x2 ^ x);
    }
    for (int i = 0; i < 256; ++i) {
      uint8_t inv = (i == 0) ? 0 : pow_tab[255 - log_tab[i]];
      // Affine transform: b ^= rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
      uint8_t b = inv;
      uint8_t s = b;
      for (int r = 1; r <= 4; ++r) {
        b = static_cast<uint8_t>((b << 1) | (b >> 7));
        s ^= b;
      }
      s ^= 0x63;
      sbox[i] = s;
      inv_sbox[s] = static_cast<uint8_t>(i);
    }
  }
};

const SboxTables& tables() {
  static const SboxTables t;
  return t;
}

inline uint8_t xtime(uint8_t a) {
  return static_cast<uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
}

inline uint8_t gmul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

inline uint32_t sub_word(uint32_t w) {
  const auto& t = tables();
  return (static_cast<uint32_t>(t.sbox[(w >> 24) & 0xff]) << 24) |
         (static_cast<uint32_t>(t.sbox[(w >> 16) & 0xff]) << 16) |
         (static_cast<uint32_t>(t.sbox[(w >> 8) & 0xff]) << 8) |
         static_cast<uint32_t>(t.sbox[w & 0xff]);
}

inline uint32_t rot_word(uint32_t w) { return (w << 8) | (w >> 24); }

#ifdef WRE_HAVE_AESNI
inline bool use_aesni() {
  static const bool kHasAesNi = CpuFeatures::get().aes_ni;
  return kHasAesNi && hwcrypto_enabled();
}
#endif

}  // namespace

Aes::Aes(ByteView key) {
  int nk;  // key length in 32-bit words
  switch (key.size()) {
    case 16: nk = 4; rounds_ = 10; break;
    case 24: nk = 6; rounds_ = 12; break;
    case 32: nk = 8; rounds_ = 14; break;
    default:
      throw CryptoError("Aes: key must be 16, 24 or 32 bytes");
  }

  const int total_words = 4 * (rounds_ + 1);
  for (int i = 0; i < nk; ++i) {
    enc_keys_[i] = load_be32(key.data() + 4 * i);
  }
  uint32_t rcon = 0x01000000;
  for (int i = nk; i < total_words; ++i) {
    uint32_t temp = enc_keys_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ rcon;
      rcon = static_cast<uint32_t>(xtime(static_cast<uint8_t>(rcon >> 24)))
             << 24;
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    enc_keys_[i] = enc_keys_[i - nk] ^ temp;
  }

  // Decryption round keys: reversed schedule with InvMixColumns applied to
  // the middle rounds (equivalent-inverse-cipher form).
  for (int i = 0; i < total_words; ++i) {
    dec_keys_[i] = enc_keys_[total_words - 4 - (i / 4) * 4 + (i % 4)];
  }
  for (int round = 1; round < rounds_; ++round) {
    for (int j = 0; j < 4; ++j) {
      uint32_t w = dec_keys_[4 * round + j];
      uint8_t b0 = static_cast<uint8_t>(w >> 24);
      uint8_t b1 = static_cast<uint8_t>(w >> 16);
      uint8_t b2 = static_cast<uint8_t>(w >> 8);
      uint8_t b3 = static_cast<uint8_t>(w);
      uint8_t n0 = gmul(b0, 14) ^ gmul(b1, 11) ^ gmul(b2, 13) ^ gmul(b3, 9);
      uint8_t n1 = gmul(b0, 9) ^ gmul(b1, 14) ^ gmul(b2, 11) ^ gmul(b3, 13);
      uint8_t n2 = gmul(b0, 13) ^ gmul(b1, 9) ^ gmul(b2, 14) ^ gmul(b3, 11);
      uint8_t n3 = gmul(b0, 11) ^ gmul(b1, 13) ^ gmul(b2, 9) ^ gmul(b3, 14);
      dec_keys_[4 * round + j] = (static_cast<uint32_t>(n0) << 24) |
                                 (static_cast<uint32_t>(n1) << 16) |
                                 (static_cast<uint32_t>(n2) << 8) |
                                 static_cast<uint32_t>(n3);
    }
  }

  // Serialize both schedules to the byte layout the AES-NI kernels load
  // (columns in memory order). Cheap and unconditional, so flipping the
  // hardware-crypto switch at runtime needs no per-key rework.
  for (int i = 0; i < total_words; ++i) {
    store_be32(enc_key_bytes_.data() + 4 * i, enc_keys_[i]);
    store_be32(dec_key_bytes_.data() + 4 * i, dec_keys_[i]);
  }
}

void Aes::encrypt_block(const uint8_t in[kBlockSize],
                        uint8_t out[kBlockSize]) const {
  encrypt_blocks(in, out, 1);
}

void Aes::decrypt_block(const uint8_t in[kBlockSize],
                        uint8_t out[kBlockSize]) const {
  decrypt_blocks(in, out, 1);
}

void Aes::encrypt_blocks(const uint8_t* in, uint8_t* out,
                         size_t nblocks) const {
#ifdef WRE_HAVE_AESNI
  if (use_aesni()) {
    detail::aes_encrypt_blocks_aesni(enc_key_bytes_.data(), rounds_, in, out,
                                     nblocks);
    return;
  }
#endif
  for (size_t b = 0; b < nblocks; ++b) {
    encrypt_block_scalar(in + b * kBlockSize, out + b * kBlockSize);
  }
}

void Aes::decrypt_blocks(const uint8_t* in, uint8_t* out,
                         size_t nblocks) const {
#ifdef WRE_HAVE_AESNI
  if (use_aesni()) {
    detail::aes_decrypt_blocks_aesni(dec_key_bytes_.data(), rounds_, in, out,
                                     nblocks);
    return;
  }
#endif
  for (size_t b = 0; b < nblocks; ++b) {
    decrypt_block_scalar(in + b * kBlockSize, out + b * kBlockSize);
  }
}

void Aes::encrypt_block_scalar(const uint8_t in[kBlockSize],
                               uint8_t out[kBlockSize]) const {
  const auto& t = tables();
  uint8_t state[16];
  std::memcpy(state, in, 16);

  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      uint32_t w = enc_keys_[4 * round + c];
      state[4 * c + 0] ^= static_cast<uint8_t>(w >> 24);
      state[4 * c + 1] ^= static_cast<uint8_t>(w >> 16);
      state[4 * c + 2] ^= static_cast<uint8_t>(w >> 8);
      state[4 * c + 3] ^= static_cast<uint8_t>(w);
    }
  };

  add_round_key(0);
  for (int round = 1; round <= rounds_; ++round) {
    // SubBytes
    for (auto& b : state) b = t.sbox[b];
    // ShiftRows: row r (bytes 4c+r) rotated left by r.
    uint8_t tmp;
    tmp = state[1]; state[1] = state[5]; state[5] = state[9];
    state[9] = state[13]; state[13] = tmp;
    std::swap(state[2], state[10]);
    std::swap(state[6], state[14]);
    tmp = state[15]; state[15] = state[11]; state[11] = state[7];
    state[7] = state[3]; state[3] = tmp;
    // MixColumns (skipped in the last round)
    if (round < rounds_) {
      for (int c = 0; c < 4; ++c) {
        uint8_t* col = state + 4 * c;
        uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        uint8_t all = static_cast<uint8_t>(a0 ^ a1 ^ a2 ^ a3);
        col[0] ^= all ^ xtime(static_cast<uint8_t>(a0 ^ a1));
        col[1] ^= all ^ xtime(static_cast<uint8_t>(a1 ^ a2));
        col[2] ^= all ^ xtime(static_cast<uint8_t>(a2 ^ a3));
        col[3] ^= all ^ xtime(static_cast<uint8_t>(a3 ^ a0));
      }
    }
    add_round_key(round);
  }
  std::memcpy(out, state, 16);
}

void Aes::decrypt_block_scalar(const uint8_t in[kBlockSize],
                               uint8_t out[kBlockSize]) const {
  const auto& t = tables();
  uint8_t state[16];
  std::memcpy(state, in, 16);

  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      uint32_t w = dec_keys_[4 * round + c];
      state[4 * c + 0] ^= static_cast<uint8_t>(w >> 24);
      state[4 * c + 1] ^= static_cast<uint8_t>(w >> 16);
      state[4 * c + 2] ^= static_cast<uint8_t>(w >> 8);
      state[4 * c + 3] ^= static_cast<uint8_t>(w);
    }
  };

  add_round_key(0);
  for (int round = 1; round <= rounds_; ++round) {
    // InvSubBytes
    for (auto& b : state) b = t.inv_sbox[b];
    // InvShiftRows: row r rotated right by r.
    uint8_t tmp;
    tmp = state[13]; state[13] = state[9]; state[9] = state[5];
    state[5] = state[1]; state[1] = tmp;
    std::swap(state[2], state[10]);
    std::swap(state[6], state[14]);
    tmp = state[3]; state[3] = state[7]; state[7] = state[11];
    state[11] = state[15]; state[15] = tmp;
    // InvMixColumns (skipped in the last round; round keys already carry it)
    if (round < rounds_) {
      for (int c = 0; c < 4; ++c) {
        uint8_t* col = state + 4 * c;
        uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
        col[1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
        col[2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
        col[3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
      }
    }
    add_round_key(round);
  }
  std::memcpy(out, state, 16);
}

}  // namespace wre::crypto
