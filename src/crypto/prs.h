// Pseudo-Random Shuffle (Definition 6 of the paper): a deterministic, keyed
// permutation of a list, computationally indistinguishable from a uniform
// random shuffle. The bucketized Poisson construction uses it to fix a
// secret ordering of the message space before laying plaintext intervals
// end-to-end on [0, 1] (Algorithm 2, line 11).
//
// Construction: a Fisher–Yates shuffle driven by a ChaCha20 keystream whose
// key is HMAC-SHA-256(k, domain-separation label || context). A PRF-derived
// key plus a PRG-driven Fisher–Yates is the textbook PRS; indistinguishability
// reduces to the PRF/PRG security of HMAC and ChaCha20.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/bytes.h"

namespace wre::crypto {

/// Keyed pseudo-random shuffle.
class PseudoRandomShuffle {
 public:
  /// `key` is the PRS key; `context` binds the permutation to a particular
  /// use (e.g. a column name) so distinct columns get independent shuffles.
  PseudoRandomShuffle(ByteView key, ByteView context);

  /// Returns the permutation of {0, ..., n-1} defined by the key, as a
  /// vector p where p[output_position] = input_index.
  std::vector<size_t> permutation(size_t n) const;

  /// Applies the keyed permutation to `items` in place.
  template <typename T>
  void apply(std::vector<T>& items) const {
    auto p = permutation(items.size());
    std::vector<T> shuffled;
    shuffled.reserve(items.size());
    for (size_t idx : p) shuffled.push_back(std::move(items[idx]));
    items = std::move(shuffled);
  }

 private:
  Bytes derived_key_;
};

}  // namespace wre::crypto
