// AES-128/192/256 block cipher (FIPS 197). The key schedule is computed in
// software once per key; block processing dispatches at runtime between an
// AES-NI kernel (pipelined eight blocks deep for the multi-block path) and
// the portable table-based code. Used in CTR mode as the strongly
// randomized payload encryption Enc' of the WRE construction.
//
// Note on side channels: the scalar fallback is table-based and not
// constant-time with respect to cache timing. The reproduction targets the
// paper's snapshot-adversary model (offline access to the encrypted
// database), where local cache timing is out of scope; on modern x86 the
// AES-NI path is constant-time by construction, and a deployment against
// co-located attackers on other ISAs should swap in a bitsliced
// implementation behind this interface.
#pragma once

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace wre::crypto {

/// AES block cipher with a fixed key. Supports 128-, 192- and 256-bit keys;
/// the key length selects the variant. Throws CryptoError on other sizes.
class Aes {
 public:
  static constexpr size_t kBlockSize = 16;

  explicit Aes(ByteView key);

  /// Encrypts one 16-byte block: out = E_k(in). in/out may alias.
  void encrypt_block(const uint8_t in[kBlockSize],
                     uint8_t out[kBlockSize]) const;

  /// Decrypts one 16-byte block: out = D_k(in). in/out may alias.
  void decrypt_block(const uint8_t in[kBlockSize],
                     uint8_t out[kBlockSize]) const;

  /// Encrypts `nblocks` independent 16-byte blocks (ECB over the caller's
  /// blocks — CTR keystream generation is the intended use). Under AES-NI
  /// the blocks are pipelined eight at a time. in/out may alias exactly.
  void encrypt_blocks(const uint8_t* in, uint8_t* out, size_t nblocks) const;

  /// Decryption counterpart of encrypt_blocks.
  void decrypt_blocks(const uint8_t* in, uint8_t* out, size_t nblocks) const;

  int rounds() const { return rounds_; }

 private:
  void encrypt_block_scalar(const uint8_t in[kBlockSize],
                            uint8_t out[kBlockSize]) const;
  void decrypt_block_scalar(const uint8_t in[kBlockSize],
                            uint8_t out[kBlockSize]) const;

  int rounds_;                              // 10 / 12 / 14
  std::array<uint32_t, 60> enc_keys_;       // round keys, 4*(rounds+1) words
  std::array<uint32_t, 60> dec_keys_;
  // The same schedules serialized to the byte layout AES-NI consumes
  // (16 bytes per round key, dec_key_bytes_ in equivalent-inverse form).
  alignas(16) std::array<uint8_t, 15 * 16> enc_key_bytes_{};
  alignas(16) std::array<uint8_t, 15 * 16> dec_key_bytes_{};
};

}  // namespace wre::crypto
