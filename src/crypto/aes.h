// AES-128/192/256 block cipher (FIPS 197), table-based software
// implementation. Used in CTR mode as the strongly randomized payload
// encryption Enc' of the WRE construction.
//
// Note on side channels: a table-based AES is not constant-time with respect
// to cache timing. The reproduction targets the paper's snapshot-adversary
// model (offline access to the encrypted database), where local cache timing
// is out of scope; a deployment against co-located attackers should swap in
// a bitsliced or hardware-accelerated implementation behind this interface.
#pragma once

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace wre::crypto {

/// AES block cipher with a fixed key. Supports 128-, 192- and 256-bit keys;
/// the key length selects the variant. Throws CryptoError on other sizes.
class Aes {
 public:
  static constexpr size_t kBlockSize = 16;

  explicit Aes(ByteView key);

  /// Encrypts one 16-byte block: out = E_k(in). in/out may alias.
  void encrypt_block(const uint8_t in[kBlockSize],
                     uint8_t out[kBlockSize]) const;

  /// Decrypts one 16-byte block: out = D_k(in). in/out may alias.
  void decrypt_block(const uint8_t in[kBlockSize],
                     uint8_t out[kBlockSize]) const;

  int rounds() const { return rounds_; }

 private:
  int rounds_;                              // 10 / 12 / 14
  std::array<uint32_t, 60> enc_keys_;       // round keys, 4*(rounds+1) words
  std::array<uint32_t, 60> dec_keys_;
};

}  // namespace wre::crypto
