#include "src/crypto/sha256.h"

#include <cstring>

#include "src/crypto/cpu_features.h"
#include "src/crypto/hw_kernels.h"
#include "src/util/error.h"

namespace wre::crypto {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

void compress_scalar(uint32_t state[8], const uint8_t* blocks,
                     size_t nblocks) {
  while (nblocks--) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(blocks + 4 * i);
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
    blocks += Sha256::kBlockSize;
  }
}

}  // namespace

Sha256::Sha256() {
  static constexpr uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                        0xa54ff53a, 0x510e527f, 0x9b05688c,
                                        0x1f83d9ab, 0x5be0cd19};
  std::memcpy(state_, kInit, sizeof(state_));
}

Sha256::Sha256(const State& midstate) : total_len_(midstate.bytes) {
  std::memcpy(state_, midstate.h, sizeof(state_));
}

Sha256::State Sha256::midstate() const {
  if (buffer_len_ != 0) {
    throw CryptoError("Sha256::midstate: not at a block boundary");
  }
  State s;
  std::memcpy(s.h, state_, sizeof(state_));
  s.bytes = total_len_;
  return s;
}

void Sha256::process_blocks(const uint8_t* blocks, size_t nblocks) {
#ifdef WRE_HAVE_SHANI
  static const bool kHasShaNi = CpuFeatures::get().sha_ni;
  if (kHasShaNi && hwcrypto_enabled()) {
    detail::sha256_compress_shani(state_, blocks, nblocks);
    return;
  }
#endif
  compress_scalar(state_, blocks, nblocks);
}

void Sha256::update(ByteView data) {
  total_len_ += data.size();
  size_t offset = 0;

  if (buffer_len_ > 0) {
    size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kBlockSize) {
      process_blocks(buffer_, 1);
      buffer_len_ = 0;
    }
  }

  // Compress the whole block-aligned middle in one dispatched call so the
  // accelerated kernel amortizes its state repacking across blocks.
  if (size_t full = (data.size() - offset) / kBlockSize; full > 0) {
    process_blocks(data.data() + offset, full);
    offset += full * kBlockSize;
  }

  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_, data.data() + offset, buffer_len_);
  }
}

std::array<uint8_t, Sha256::kDigestSize> Sha256::finish() {
  uint64_t bit_len = total_len_ * 8;

  // Padding: 0x80, zeros, then the 64-bit big-endian length.
  uint8_t pad[kBlockSize * 2] = {0x80};
  size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_)
                                      : (kBlockSize + 56 - buffer_len_);
  update(ByteView(pad, pad_len));

  uint8_t len_bytes[8];
  store_be64(len_bytes, bit_len);
  update(ByteView(len_bytes, 8));

  std::array<uint8_t, kDigestSize> out;
  for (int i = 0; i < 8; ++i) store_be32(out.data() + 4 * i, state_[i]);
  return out;
}

std::array<uint8_t, Sha256::kDigestSize> Sha256::digest(ByteView data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

}  // namespace wre::crypto
