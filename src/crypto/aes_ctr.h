// AES in counter (CTR) mode — the IND-CPA-secure payload encryption Enc' of
// the WRE construction (Figure 1). Each cell ciphertext is
//   nonce(16 bytes) || AES-CTR(key, nonce, plaintext)
// with a fresh random nonce per encryption, so equal plaintexts encrypt to
// independent-looking ciphertexts. Keystream blocks are independent, so they
// are generated through Aes::encrypt_blocks, which keeps multiple blocks in
// flight on AES-NI hardware.
#pragma once

#include "src/crypto/aes.h"
#include "src/crypto/secure_random.h"
#include "src/util/bytes.h"

namespace wre::crypto {

/// Stateless CTR-mode wrapper around the AES block cipher.
class AesCtr {
 public:
  static constexpr size_t kNonceSize = Aes::kBlockSize;

  /// Key must be 16, 24 or 32 bytes (AES-128/192/256).
  explicit AesCtr(ByteView key) : cipher_(key) {}

  /// Produces nonce || keystream-xor-plaintext using a fresh nonce drawn
  /// from `rng`.
  Bytes encrypt(ByteView plaintext, SecureRandom& rng) const;

  /// Inverse of encrypt. Throws CryptoError if `ciphertext` is shorter than
  /// the nonce.
  Bytes decrypt(ByteView ciphertext) const;

  /// Raw CTR keystream application with an explicit starting counter block;
  /// exposed for tests against NIST SP 800-38A vectors.
  Bytes transform(ByteView data, const uint8_t nonce[kNonceSize]) const;

 private:
  Aes cipher_;
};

}  // namespace wre::crypto
