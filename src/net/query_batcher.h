// Opt-in cross-tenant query batching (the paper's deployment twist,
// DESIGN.md §5.7): instead of each kTagScan acquiring the database lock on
// its own, concurrent scans arriving within a small window are coalesced
// and executed by one thread under a single shared-lock acquisition.
//
// Why a server near saturation wants this: with thousands of tenants
// issuing point lookups, the per-request overhead (lock hand-off, cache
// refill walking the index from a cold start) dominates the work. A
// window of w milliseconds trades exactly that — each query waits at most
// w ms longer than it had to — for executing as a group: one lock
// hand-off and warm index state amortized over the batch. The latency
// cost is real and intentional; bench_scale measures it (BENCH_scale.json
// reports p50/p99/p999 with the window off and on).
//
// Privacy note: batching never mixes *results* across tenants. Each query
// keeps its own tag list and its own result slot; tenants' tag namespaces
// are cryptographically disjoint (per-tenant PRF keys), so even a shared
// physical table partitions cleanly. What the server-side batch changes is
// only *when* the scans run, which is the same class of information the
// server already sees per-request.
//
// Leader/follower protocol:
//   - the first query to an empty window becomes the leader; it waits up
//     to window_ms for followers (or until max_batch queries have joined),
//     then takes the whole batch and executes it via the caller-supplied
//     callback;
//   - followers enqueue their item and block until the leader marks it
//     done;
//   - a query arriving while a leader is executing simply opens the next
//     window and leads it — batches pipeline, they never queue behind one
//     another.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "src/sql/ast.h"
#include "src/sql/database.h"

namespace wre::net {

class QueryBatcher {
 public:
  struct Options {
    /// How long a batch leader waits for followers, in milliseconds.
    /// 0 disables batching (run() executes immediately, un-batched).
    uint32_t window_ms = 0;
    /// Batch size that closes the window early.
    size_t max_batch = 64;
  };

  /// One query riding in a batch. The caller's execute callback fills
  /// either `result` or `error` for every item it is handed.
  struct Item {
    const sql::SelectStmt* stmt = nullptr;
    sql::ResultSet result;
    std::exception_ptr error;
    bool done = false;
  };

  /// Executes every item in the batch (typically: acquire the database
  /// lock once, then run each item's statement). May throw — the batcher
  /// then propagates that exception to every item in the batch.
  using ExecuteFn = std::function<void(std::vector<Item*>&)>;

  explicit QueryBatcher(const Options& options) : options_(options) {}

  bool enabled() const { return options_.window_ms > 0; }

  /// Submits `stmt` and blocks until it has been executed — by this thread
  /// (leader, or batching disabled) or by another query's leader. Returns
  /// the result set or rethrows the execution error.
  sql::ResultSet run(const sql::SelectStmt& stmt, const ExecuteFn& execute);

  /// Batch executions so far (each covers >= 1 query).
  uint64_t batches() const;
  /// Queries that shared their batch with at least one other query — the
  /// coalescing actually bought something for these.
  uint64_t coalesced() const;

 private:
  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// The currently-open window. The leader swaps it out wholesale.
  std::vector<Item*> pending_;
  bool leader_active_ = false;
  uint64_t batches_ = 0;
  uint64_t coalesced_ = 0;
};

}  // namespace wre::net
