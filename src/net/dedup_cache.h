// Server-side idempotency: a bounded cache from request key to recorded
// response, making "retry a mutation" safe.
//
// The client cannot distinguish "the connection died before the server saw
// my INSERT" from "the server applied it and the ACK was lost". Blind
// re-send risks double-applying; never re-sending turns every blip into a
// failed request. The v2 wire extension (wire.h) stamps each logical
// request with a random 16-byte key that stays constant across retries, and
// this cache gives that key exactly-once semantics server-side:
//
//   * first arrival     — begin() returns true; the session executes the
//     request, then complete() records the response (success *or* error:
//     replaying a deterministic failure is just as important as replaying a
//     success, otherwise a retried bad INSERT would execute twice).
//   * concurrent retry  — begin() finds the key InFlight and blocks until
//     the first execution completes, then returns its recorded response.
//     Two racing retries of one request never execute twice.
//   * later retry       — begin() finds the key Done and returns the
//     recorded response without executing anything.
//
// The cache is bounded (entries and bytes) with LRU eviction of completed
// entries — but entries younger than retain_ms are protected, so any retry
// the client's own deadline still permits will find its key (the client
// gives up long before retain_ms). In-flight entries are never evicted.
// Eviction of an old key degrades gracefully: the retry re-executes, which
// for WRE's insert path surfaces as duplicate rows only if the client
// retries after abandoning its deadline — outside the contract.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "src/net/wire.h"

namespace wre::net {

/// The 16-byte client-generated idempotency key (RequestExt::key).
using IdempotencyKey = std::array<uint8_t, 16>;

/// Cache key: the idempotency key scoped by the tenant that sent it. Keys
/// are CSPRNG output, so collisions across tenants are already negligible —
/// the scoping is about *authority*, not entropy: tenant B must not be able
/// to replay (or pre-poison) a response recorded for tenant A by guessing
/// or observing A's key.
struct DedupKey {
  uint64_t tenant_id = 0;
  IdempotencyKey key{};

  friend bool operator==(const DedupKey& a, const DedupKey& b) {
    return a.tenant_id == b.tenant_id && a.key == b.key;
  }
};

class DedupCache {
 public:
  struct Options {
    /// Max completed entries retained (hard cap counts in-flight too).
    size_t max_entries = 4096;
    /// Max bytes of cached response payloads.
    size_t max_bytes = 32u << 20;
    /// Entries younger than this survive LRU pressure — the replay window
    /// every in-deadline retry is guaranteed to hit.
    uint32_t retain_ms = 15000;
  };

  DedupCache() = default;
  explicit DedupCache(const Options& options) : options_(options) {}

  /// Claims `key`. Returns true if the caller owns the execution and MUST
  /// later call exactly one of complete(key, ...) — also on failure: record
  /// the error frame — or abort(key). Returns false with *out set to the
  /// recorded response when the key was already executed (or finishes while
  /// we wait).
  bool begin(const DedupKey& key, Frame* out);

  /// Records the response for a key claimed via begin() and wakes waiters.
  void complete(const DedupKey& key, const Frame& response);

  /// Releases a claim *without* recording a response — for requests shed
  /// before execution (deadline/overload): the outcome is "never ran", so a
  /// retry must be allowed to execute rather than replay the shed error.
  /// Waiters re-race to claim the key.
  void abort(const DedupKey& key);

  /// Replayed-response count (a retry that did not re-execute).
  uint64_t hits() const;
  /// Entries evicted under bound pressure.
  uint64_t evictions() const;
  size_t entries() const;

 private:
  struct Hash {
    size_t operator()(const DedupKey& k) const;
  };
  struct Entry {
    bool done = false;
    Frame response;
    /// Last-touch time, steady ms; guards the retain window.
    uint64_t touched_ms = 0;
    std::list<DedupKey>::iterator lru_it;
  };

  void evict_locked(uint64_t now_ms);

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<DedupKey, Entry, Hash> map_;
  /// LRU order over *completed* entries only, oldest first.
  std::list<DedupKey> lru_;
  size_t cached_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace wre::net
