// Tag-space sharding: the pure routing rules shared by the scatter-gather
// client (src/net/remote_connection.h) and tooling.
//
// A shard is an ordinary wre_server owning a hash-partition of the tag
// space. WRE search tags are independent PRF outputs, so a multi-probe
// query fans out embarrassingly well: each probe tag names exactly one
// shard, the client scatters the per-shard tag sublists concurrently and
// concatenates the disjoint result sets.
//
// Row placement: a physical WRE row has one search tag per encrypted
// column, so a pure tag partition cannot hold for every column at once.
// The *shard key* is the first `*_tag` column in schema order; rows are
// placed by the hash of its value. Queries probing the shard-key column
// partition their tag list per shard; queries on any other tag column
// broadcast the full list (each shard returns the matches it owns — the
// union is still exact and disjoint). Tables with no tag column (e.g. the
// client's `_wre_manifest`) live wholly on shard 0.
//
// Leakage note (paper §I-A): the shard map is a public deterministic
// function of the tag integer the server already sees, so per-shard tag
// distributions reveal nothing beyond the single-server multi-probe
// profile the paper analyzes — sharding splits the observer, not the
// leakage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sql/schema.h"

namespace wre::net {

/// One shard's address. The position in the endpoint list IS the shard
/// index — every client must use the same ordering (the kShardInfo
/// handshake verifies this).
struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;
};

/// Maps a search tag to its owning shard. Tags go through a splitmix64
/// finalizer before the modulo: PRF tags are already uniform, but
/// bucketized range tags and plaintext benchmark integers are not, and a
/// skewed partition would turn fan-out into a hot shard.
uint32_t shard_for_tag(uint64_t tag, uint32_t shard_count);

/// Parses a "host:port,host:port,..." shard map (list order = shard
/// order). Throws NetworkError on malformed input or an empty list.
std::vector<ShardEndpoint> parse_endpoints(const std::string& spec);

/// Index of the shard-key column: the first `*_tag` column in schema
/// order, or nullopt for tag-less tables (which route to shard 0).
std::optional<size_t> shard_key_index(const sql::Schema& schema);

}  // namespace wre::net
