#include "src/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "src/net/net_fault.h"

namespace wre::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetworkError(what + ": " + std::strerror(errno));
}

void injected_sleep_ms(uint32_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket Socket::connect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetworkError("Socket::connect: not an IPv4 address: " + host);
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("Socket::connect: socket()");
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("Socket::connect: connect to " + host + ":" +
                std::to_string(port));
  }
  // Request/response round-trips are latency-bound; never Nagle-delay them.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

void Socket::send_all(ByteView data) {
  if (NetFaultInjector::instance().armed()) {
    auto plan = NetFaultInjector::instance().on_send(data.size());
    injected_sleep_ms(plan.delay_ms);
    if (plan.torn) {
      // Deliver a strict prefix, then die: the peer observes a frame torn
      // mid-stream — the classic half-delivered mutation a retry must heal.
      ByteView prefix = data.subspan(0, plan.torn_prefix);
      size_t sent = 0;
      while (sent < prefix.size()) {
        ssize_t n = ::send(fd_, prefix.data() + sent, prefix.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0) break;
        sent += static_cast<size_t>(n);
      }
      close();
      throw NetworkError("Socket::send_all: injected torn write (" +
                         std::to_string(sent) + "/" +
                         std::to_string(data.size()) + " bytes)");
    }
    if (plan.reset) {
      close();
      throw NetworkError("Socket::send_all: injected connection reset");
    }
  }
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("Socket::send_all");
    }
    sent += static_cast<size_t>(n);
  }
}

bool Socket::recv_all_or_eof(uint8_t* out, size_t n) {
  if (NetFaultInjector::instance().armed()) {
    auto plan = NetFaultInjector::instance().on_recv();
    injected_sleep_ms(plan.stall_ms);
    if (plan.reset) {
      close();
      throw NetworkError("Socket::recv: injected connection reset");
    }
  }
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, out + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetworkError("Socket::recv: timed out");
      }
      throw_errno("Socket::recv");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw NetworkError("Socket::recv: connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

void Socket::recv_all(uint8_t* out, size_t n) {
  if (!recv_all_or_eof(out, n)) {
    throw NetworkError("Socket::recv: connection closed by peer");
  }
}

void Socket::set_nonblocking(bool on) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("Socket::set_nonblocking: F_GETFL");
  flags = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, flags) < 0) {
    throw_errno("Socket::set_nonblocking: F_SETFL");
  }
}

ssize_t Socket::send_some(ByteView data) {
  if (NetFaultInjector::instance().armed()) {
    auto plan = NetFaultInjector::instance().on_send(data.size());
    injected_sleep_ms(plan.delay_ms);
    if (plan.torn) {
      // Same semantics as send_all: a strict prefix escapes, then the
      // connection dies — the peer sees a frame torn mid-stream.
      ByteView prefix = data.subspan(0, plan.torn_prefix);
      size_t sent = 0;
      while (sent < prefix.size()) {
        ssize_t n = ::send(fd_, prefix.data() + sent, prefix.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0) break;
        sent += static_cast<size_t>(n);
      }
      close();
      throw NetworkError("Socket::send_some: injected torn write (" +
                         std::to_string(sent) + "/" +
                         std::to_string(data.size()) + " bytes)");
    }
    if (plan.reset) {
      close();
      throw NetworkError("Socket::send_some: injected connection reset");
    }
  }
  for (;;) {
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw_errno("Socket::send_some");
  }
}

ssize_t Socket::recv_some(uint8_t* out, size_t n) {
  if (NetFaultInjector::instance().armed()) {
    auto plan = NetFaultInjector::instance().on_recv();
    injected_sleep_ms(plan.stall_ms);
    if (plan.reset) {
      close();
      throw NetworkError("Socket::recv_some: injected connection reset");
    }
  }
  for (;;) {
    ssize_t r = ::recv(fd_, out, n, 0);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw_errno("Socket::recv_some");
  }
}

void Socket::set_recv_timeout_ms(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("Socket::set_recv_timeout_ms");
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(const std::string& host, uint16_t port, int backlog) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetworkError("Listener: not an IPv4 address: " + host);
  }

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("Listener: socket()");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("Listener: bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, backlog) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("Listener: listen()");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("Listener: getsockname()");
  }
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_pipe_) != 0) throw_errno("Listener: pipe()");
}

Listener::~Listener() {
  close();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

std::optional<Socket> Listener::accept() {
  while (!stopping_.load(std::memory_order_acquire)) {
    if (NetFaultInjector::instance().armed() &&
        NetFaultInjector::instance().on_accept()) {
      // Models accept() failing with a transient, resource-exhaustion style
      // error (EMFILE/ENFILE): throwing — not continuing — so the caller's
      // retry/backoff path is what gets exercised.
      throw NetworkError(
          "Listener::accept: injected transient failure "
          "(too many open files)");
    }
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("Listener::accept: poll()");
    }
    if (stopping_.load(std::memory_order_acquire) || fds[1].revents != 0) {
      return std::nullopt;
    }
    if (!(fds[0].revents & POLLIN)) continue;
    int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EBADF || errno == EINVAL) return std::nullopt;
      throw_errno("Listener::accept");
    }
    int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(client);
  }
  return std::nullopt;
}

Listener::AcceptStatus Listener::try_accept(Socket* out) {
  if (stopping_.load(std::memory_order_acquire)) return AcceptStatus::kClosed;
  if (NetFaultInjector::instance().armed() &&
      NetFaultInjector::instance().on_accept()) {
    // Models accept() failing with a transient, resource-exhaustion style
    // error (EMFILE/ENFILE): the caller's backoff path is what gets
    // exercised; pending connections park in the kernel backlog meanwhile.
    return AcceptStatus::kRetryLater;
  }
  if (!nonblocking_) {
    // try_accept is only called by the epoll server, which polls fd()
    // readiness itself — the listening socket must never block it.
    int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    nonblocking_ = true;
  }
  int client = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (client < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return AcceptStatus::kWouldBlock;
    }
    if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
      return AcceptStatus::kRetryLater;
    }
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      return AcceptStatus::kFdExhausted;
    }
    if (errno == EBADF || errno == EINVAL) return AcceptStatus::kClosed;
    throw_errno("Listener::try_accept");
  }
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = Socket(client);
  return AcceptStatus::kAccepted;
}

void Listener::close() {
  // Signal first, then kick both wake-up channels: the kernel stops
  // accepting at shutdown(), and the pipe write covers the window where
  // accept() is already past its stopping_ check.
  stopping_.store(true, std::memory_order_release);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  if (wake_pipe_[1] >= 0) {
    uint8_t byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

ReserveFd::ReserveFd() { reacquire(); }

ReserveFd::~ReserveFd() { release(); }

void ReserveFd::release() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ReserveFd::reacquire() {
  if (fd_ < 0) fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
}

}  // namespace wre::net
