// Minimal RAII wrappers over POSIX TCP sockets: exactly what the wire
// protocol needs — connect, accept, full-buffer send/recv with timeouts —
// and nothing else. All failures surface as NetworkError with errno text.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "src/util/bytes.h"
#include "src/util/error.h"

namespace wre::net {

/// A connected stream socket (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  /// Adopts an already-connected descriptor (Listener::accept()).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Blocking TCP connect. Throws NetworkError on resolution/connect
  /// failure.
  static Socket connect(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends the entire buffer (loops over partial writes). SIGPIPE is
  /// suppressed; a closed peer raises NetworkError instead.
  void send_all(ByteView data);

  /// Receives exactly `n` bytes. Throws NetworkError on error, timeout, or
  /// EOF mid-buffer.
  void recv_all(uint8_t* out, size_t n);

  /// Like recv_all, but a clean EOF *before the first byte* returns false —
  /// how a session loop distinguishes "client hung up between requests"
  /// from "connection died mid-frame".
  bool recv_all_or_eof(uint8_t* out, size_t n);

  /// Bounds how long a recv may block (0 = forever) — the server's idle /
  /// read timeout. Expiry surfaces as NetworkError("...timed out...").
  void set_recv_timeout_ms(int ms);

  /// O_NONBLOCK on/off — the epoll server runs every accepted socket
  /// non-blocking and resumes partial frames on readiness.
  void set_nonblocking(bool on);

  /// Non-blocking single send. Returns bytes written (>= 0), or -1 when the
  /// kernel buffer is full (EAGAIN — retry on EPOLLOUT). Hard failures
  /// (peer reset, injected faults) throw NetworkError.
  ssize_t send_some(ByteView data);

  /// Non-blocking single recv into `out`. Returns bytes read (> 0), 0 on
  /// clean EOF, or -1 when no data is available (EAGAIN — retry on
  /// EPOLLIN). Hard failures throw NetworkError.
  ssize_t recv_some(uint8_t* out, size_t n);

  /// Half-close or full-close without releasing the descriptor; used to
  /// wake a thread blocked in recv on this socket.
  void shutdown_read();
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket. close() (from any thread) wakes a blocked
/// accept(), which then returns nullopt — the accept loop's shutdown path.
/// close() shuts the socket down (kernel refuses further connections) but
/// defers the descriptor release to the destructor, so a racing accept()
/// never touches a recycled fd.
class Listener {
 public:
  /// Binds and listens. `port` 0 picks an ephemeral port (see port()).
  Listener(const std::string& host, uint16_t port, int backlog = 128);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The bound port (resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// Blocks until a connection arrives or close() is called.
  std::optional<Socket> accept();

  /// Non-blocking accept for the epoll server, which polls fd() itself.
  enum class AcceptStatus {
    kAccepted,     // *out holds the new connection
    kWouldBlock,   // nothing pending
    kRetryLater,   // transient failure (ECONNABORTED storm, injected fault)
    kFdExhausted,  // EMFILE/ENFILE — the caller should shed and back off
    kClosed,       // the listener was close()d
  };
  AcceptStatus try_accept(Socket* out);

  /// The listening descriptor, for callers that poll readiness themselves.
  int fd() const { return fd_; }

  void close();

 private:
  int fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // close() writes, accept() polls
  uint16_t port_ = 0;
  bool nonblocking_ = false;  // set lazily by the first try_accept()
  std::atomic<bool> stopping_{false};
};

/// Holds one spare descriptor so an accept loop hitting EMFILE can briefly
/// release it, accept the pending connection, answer it with an overload
/// shed, and close it — instead of leaving the peer hanging in the backlog.
class ReserveFd {
 public:
  ReserveFd();
  ~ReserveFd();
  ReserveFd(const ReserveFd&) = delete;
  ReserveFd& operator=(const ReserveFd&) = delete;

  bool held() const { return fd_ >= 0; }
  /// Closes the spare descriptor, freeing one fd-table slot.
  void release();
  /// Re-opens the spare (best effort — may fail under continued pressure).
  void reacquire();

 private:
  int fd_ = -1;
};

}  // namespace wre::net
