// Pipelined request channels and per-shard connection pooling.
//
// PipelinedChannel is one TCP connection that allows multiple in-flight
// request frames. The wire protocol carries no sequence numbers: the
// server guarantees responses come back in request order (the epoll core
// executes each connection's pipeline FIFO), so a ticket is just the
// request's position in the stream. submit() writes a frame and returns a
// ticket; await() reads responses in order until the ticket's arrives,
// parking any it reads past in a small reorder map.
//
// A channel is intentionally NOT thread-safe. Concurrent send and recv on
// one socket would force destructive teardown (close on error) to race
// with a blocked recv on the same fd — the classic close/reuse hazard.
// Instead, ChannelPool hands out *exclusive leases*: one thread owns a
// channel for a whole submit…await burst, and concurrency comes from the
// pool width (RemoteOptions::connections_per_shard), not from sharing a
// socket. This matches the scatter-gather client's shape exactly: it
// leases one channel per shard, bursts the sub-requests, then awaits.
//
// Error model: any transport failure (send, recv, decode) poisons the
// channel — every outstanding and future call throws NetworkError, and
// the pool drops the carcass instead of returning it. Server-reported
// errors (kError frames) leave the stream aligned and the channel healthy;
// they are returned as ordinary responses for the caller to interpret.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/net/shard.h"
#include "src/net/socket.h"
#include "src/net/wire.h"

namespace wre::net {

class PipelinedChannel {
 public:
  struct Response {
    Opcode opcode = Opcode::kError;
    Bytes payload;
  };

  /// `recv_timeout_ms` bounds each response read (0 = wait forever);
  /// await() may tighten it per call with its deadline hint.
  PipelinedChannel(ShardEndpoint endpoint, size_t max_frame_bytes,
                   int recv_timeout_ms);

  PipelinedChannel(const PipelinedChannel&) = delete;
  PipelinedChannel& operator=(const PipelinedChannel&) = delete;

  /// Encodes one request frame into the channel's output buffer (connecting
  /// lazily) and returns its ticket. Frames are corked until flush() — a
  /// submit burst costs one send syscall, not one per frame. Throws
  /// NetworkError on connect failure (channel is then dead).
  uint64_t submit(Opcode op, ByteView payload, const RequestExt& ext);

  /// Sends every corked frame in one write. await() flushes implicitly, but
  /// a caller that submits to several channels before awaiting any (the
  /// scatter client) must flush each explicitly so all servers start
  /// working at once. Throws NetworkError on send failure (channel dead).
  void flush();

  /// Blocks until `ticket`'s response has been read, reading (and parking)
  /// any earlier in-flight responses on the way. `deadline_hint_ms`, if
  /// non-zero, tightens the receive timeout for reads done by this call.
  /// Tickets must be awaited at most once. Throws NetworkError on
  /// transport failure (channel is then dead).
  Response await(uint64_t ticket, uint64_t deadline_hint_ms = 0);

  /// Requests submitted but not yet awaited/read.
  size_t in_flight() const { return next_ticket_ - next_response_; }

  bool dead() const { return dead_; }

  /// Marks the channel dead without throwing — for when the transport
  /// itself worked but the response was out-of-protocol (e.g. an
  /// unexpected opcode), so the stream can no longer be trusted.
  void poison(std::string why);

 private:
  [[noreturn]] void die(const std::string& why);
  Response read_one(uint64_t deadline_hint_ms);

  ShardEndpoint endpoint_;
  size_t max_frame_bytes_;
  int recv_timeout_ms_;

  std::optional<Socket> sock_;
  Bytes outbuf_;  // encoded frames corked since the last flush
  bool dead_ = false;
  std::string death_reason_;
  uint64_t next_ticket_ = 0;    // next ticket submit() hands out
  uint64_t next_response_ = 0;  // ticket the next wire response answers
  std::map<uint64_t, Response> parked_;  // read past while awaiting later
};

/// A small pool of channels to one shard. acquire() returns an exclusive
/// RAII lease; releasing returns the channel for reuse unless it died or
/// still has un-awaited responses. Demand beyond `target_size` creates
/// temporary channels that are simply dropped on release, so the pool
/// never blocks.
class ChannelPool {
 public:
  class Lease {
   public:
    Lease(std::shared_ptr<PipelinedChannel> ch, ChannelPool* pool)
        : ch_(std::move(ch)), pool_(pool) {}
    ~Lease() {
      if (ch_ && pool_) pool_->release(std::move(ch_));
    }
    Lease(Lease&& other) noexcept
        : ch_(std::move(other.ch_)), pool_(other.pool_) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    PipelinedChannel* operator->() { return ch_.get(); }
    PipelinedChannel& operator*() { return *ch_; }

   private:
    std::shared_ptr<PipelinedChannel> ch_;
    ChannelPool* pool_;
  };

  ChannelPool(ShardEndpoint endpoint, size_t target_size,
              size_t max_frame_bytes, int recv_timeout_ms);

  /// Exclusive lease on an idle (or freshly created) channel. Never blocks
  /// and never throws — connect errors surface from the lease's first
  /// submit().
  Lease acquire();

  /// Drops all idle channels; leased ones die with their lease.
  void clear();

  const ShardEndpoint& endpoint() const { return endpoint_; }

 private:
  friend class Lease;
  void release(std::shared_ptr<PipelinedChannel> ch);

  ShardEndpoint endpoint_;
  size_t target_size_;
  size_t max_frame_bytes_;
  int recv_timeout_ms_;

  std::mutex mu_;
  std::vector<std::shared_ptr<PipelinedChannel>> idle_;
};

}  // namespace wre::net
