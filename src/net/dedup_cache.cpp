#include "src/net/dedup_cache.h"

#include <chrono>
#include <cstring>

namespace wre::net {

namespace {

uint64_t steady_now_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

size_t DedupCache::Hash::operator()(const DedupKey& k) const {
  // Keys are client-generated CSPRNG output: any 8 bytes are already a
  // high-quality hash. Fold in the tenant id so two tenants replaying the
  // same key bytes still land in distinct buckets.
  uint64_t h;
  std::memcpy(&h, k.key.data(), sizeof(h));
  h ^= k.tenant_id * 0x9e3779b97f4a7c15ull;
  return static_cast<size_t>(h);
}

bool DedupCache::begin(const DedupKey& key, Frame* out) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      Entry& e = map_[key];
      e.touched_ms = steady_now_ms();
      e.lru_it = lru_.end();
      evict_locked(e.touched_ms);
      return true;
    }
    if (it->second.done) {
      Entry& e = it->second;
      e.touched_ms = steady_now_ms();
      // Refresh LRU position: a retried key is hot again.
      lru_.splice(lru_.end(), lru_, e.lru_it);
      *out = e.response;
      ++hits_;
      return false;
    }
    // A racing retry of an in-flight execution: wait for its complete()
    // (replay) or abort() (re-race for the claim). The session loop
    // guarantees one of the two, so this wait always terminates.
    cv_.wait(lock);
  }
}

void DedupCache::complete(const DedupKey& key, const Frame& response) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return;  // evicted under pathological pressure
  Entry& e = it->second;
  e.done = true;
  e.response = response;
  e.touched_ms = steady_now_ms();
  lru_.push_back(key);
  e.lru_it = std::prev(lru_.end());
  cached_bytes_ += response.payload.size();
  cv_.notify_all();
}

void DedupCache::abort(const DedupKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end() || it->second.done) return;
  map_.erase(it);
  cv_.notify_all();
}

void DedupCache::evict_locked(uint64_t now_ms) {
  // Evict oldest completed entries while over either bound — but never
  // touch an entry still inside the retain window unless the cache has
  // blown far (2x) past its entry cap, the safety valve against a client
  // storm of unique keys.
  auto over = [&] {
    return map_.size() > options_.max_entries ||
           cached_bytes_ > options_.max_bytes;
  };
  while (over() && !lru_.empty()) {
    const DedupKey& victim = lru_.front();
    auto it = map_.find(victim);
    Entry& e = it->second;
    bool young = now_ms - e.touched_ms < options_.retain_ms;
    if (young && map_.size() <= 2 * options_.max_entries) break;
    cached_bytes_ -= e.response.payload.size();
    map_.erase(it);
    lru_.pop_front();
    ++evictions_;
  }
}

uint64_t DedupCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t DedupCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t DedupCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace wre::net
