// The length-prefixed binary wire protocol between a WRE client and
// wre_server. One message = one frame:
//
//   offset  size  field
//   0       2     magic "WR"
//   2       1     frame format version (kWireVersion / kWireVersionExt)
//   3       1     opcode (request 0x01-0x7F, response 0x80-0xFF)
//   4       4     payload length, little-endian
//   8       n     payload (opcode-specific; see the Opcode table)
//
// Format version 2 (kWireVersionExt) inserts a request extension between
// the header and the payload of *request* frames (responses never carry
// one):
//
//   8       1     ext_len — bytes of extension that follow (>= 23)
//   9       1     flags (bit 0: idempotency key present,
//                        bit 1: tenant id present)
//   10      2     reserved (zero)
//   12      4     request deadline in ms, little-endian (0 = none)
//   16      16    idempotency key (client-generated, random)
//   32      8     tenant id, little-endian (present when ext_len >= 31 and
//                 flag bit 1 is set; 0 = the default single-tenant space)
//   ...           future fields — receivers skip bytes past the ones they
//                 know, so the extension can grow without a version bump
//
// The extension is what makes retries safe end-to-end: the client stamps
// every request with a fresh random idempotency key, keeps the key constant
// across retries of that request, and the server's dedup cache replays the
// recorded response instead of re-executing a mutation it already applied.
// The deadline lets the server stop queueing for a request whose client has
// already given up. The tenant id scopes the idempotency key: the dedup
// cache is keyed by (tenant, key), so one tenant can never replay — or
// poison — another tenant's recorded responses. Servers accept both formats
// (a v1 frame simply has no key, no deadline and tenant 0), and a 23-byte
// v2 extension from an older client parses as tenant 0, so old clients keep
// working.
//
// Integers are little-endian; strings and blobs are a u32 length followed by
// raw bytes; sql::Value / sql::Schema use their own wire_encode hooks. All
// decoding is strictly bounds-checked: a malformed frame (bad magic, unknown
// version, oversized length, truncated payload, inflated element count)
// raises NetworkError before any out-of-bounds read or unbounded allocation
// can happen — the server answers with an error frame and drops the session.
//
// Security note (the paper's trust boundary, Section I-A): frames carry SQL
// text over tag columns, search-tag lists and AES-CTR ciphertext blobs.
// Nothing in this protocol can transport keys, salts or plaintexts of
// encrypted columns — those never leave the client process.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sql/database.h"
#include "src/util/bytes.h"
#include "src/util/error.h"

namespace wre::net {

inline constexpr uint8_t kMagic0 = 'W';
inline constexpr uint8_t kMagic1 = 'R';
/// Base frame format: header + payload.
inline constexpr uint8_t kWireVersion = 1;
/// Extended format: header + request extension + payload (requests only).
inline constexpr uint8_t kWireVersionExt = 2;
inline constexpr size_t kFrameHeaderBytes = 8;
/// Minimum extension bytes following the ext_len byte in a v2 request frame
/// (the original flags + deadline + idempotency-key form).
inline constexpr size_t kRequestExtBytes = 23;
/// Extension size including the trailing tenant id — what current clients
/// encode. Receivers treat the tenant field as optional growth: a 23-byte
/// body still parses (as tenant 0).
inline constexpr size_t kRequestExtTenantBytes = 31;
/// Sanity ceiling on ext_len (future growth stays small and fixed-size).
inline constexpr size_t kMaxRequestExtBytes = 64;
/// Default ceiling on one frame's payload. Requests above it are rejected
/// without being read — the server's backpressure limit against hostile or
/// buggy clients allocating unbounded memory server-side.
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;  // 64 MiB

/// Message types. Requests pair with the response listed next to them; any
/// request may instead receive kError.
enum class Opcode : uint8_t {
  // Requests.
  kPing = 0x01,         // -> kOkPong; liveness / version handshake
  kExecSql = 0x02,      // -> kOkResult; payload: string sql
  kInsertBatch = 0x03,  // -> kOkIds; payload: table, u32 nrows, rows
  kCreateTable = 0x04,  // -> kOkUnit; payload: table, schema
  kCreateIndex = 0x05,  // -> kOkUnit; payload: table, column
  kHasTable = 0x06,     // -> kOkBool; payload: table
  kRowCount = 0x07,     // -> kOkCount; payload: table
  kTableSchema = 0x08,  // -> kOkSchema; payload: table
  kTagScan = 0x09,      // -> kOkResult; payload: table, tag column, u8 star,
                        //    u32 ntags, u64 tags — the prepared multi-probe
                        //    path: no SQL rendering/parsing for WRE searches
  kScanTable = 0x0A,    // -> kOkResult; payload: table (heap-order full scan)
  kShardInfo = 0x0B,    // -> kOkShardInfo; empty payload — topology handshake
                        //    so a sharded client can verify each endpoint
                        //    agrees on (shard index, shard count)

  // Responses.
  kOkResult = 0x80,     // result set (columns, rows, counters)
  kOkBool = 0x81,       // u8
  kOkIds = 0x82,        // u32 n, n * i64
  kOkSchema = 0x83,     // schema
  kOkUnit = 0x84,       // empty
  kOkCount = 0x85,      // u64
  kOkPong = 0x86,       // empty
  kOkShardInfo = 0x87,  // u32 shard index, u32 shard count
  kError = 0xFF,        // u16 status code, string message
};

const char* opcode_name(Opcode op);
bool is_request_opcode(uint8_t op);

/// Stable wire encodings of the wre::Error hierarchy. The server maps a
/// thrown exception to a code with status_code_for(); the client re-throws
/// the *same* subclass via rethrow_status(), so `catch (SqlError&)` works
/// identically against a local database and a remote server.
enum class StatusCode : uint16_t {
  kGeneric = 1,  // wre::Error or any non-wre std::exception
  kStorage = 2,
  kSql = 3,
  kCrypto = 4,
  kWre = 5,
  kNetwork = 6,
  /// Retryable: the server shed the request (admission control, bounded
  /// queue, or server-side deadline) without executing it — or it is safe
  /// to replay because the idempotency key dedups it. Clients back off and
  /// retry instead of failing.
  kOverloaded = 7,
};

StatusCode status_code_for(const std::exception& e);
[[noreturn]] void rethrow_status(StatusCode code, const std::string& message);

/// One decoded message.
struct Frame {
  Opcode opcode = Opcode::kPing;
  Bytes payload;
};

/// The v2 per-request extension (see the format comment above).
struct RequestExt {
  bool has_key = false;
  std::array<uint8_t, 16> key{};
  /// How long the client is still willing to wait, in ms (0 = no deadline).
  /// The server bounds its own queueing/lock waits by it.
  uint32_t deadline_ms = 0;
  /// The tenant this request acts for. 0 is the default single-tenant
  /// space (and what pre-tenant clients implicitly send). Scopes the
  /// server's idempotency cache; carries no cryptographic authority — keys
  /// never cross the wire, so a mislabelled tenant can only talk to tag
  /// integers it cannot forge matches for.
  uint64_t tenant_id = 0;
};

/// Renders a base (v1) frame: header + payload, ready for send().
Bytes encode_frame(Opcode opcode, ByteView payload);

/// Renders a v2 request frame: header + extension + payload.
Bytes encode_request_frame(Opcode opcode, ByteView payload,
                           const RequestExt& ext);

/// Decodes the extension body (the bytes following ext_len). Unknown
/// trailing bytes are ignored; a body shorter than kRequestExtBytes throws.
RequestExt parse_request_ext(ByteView body);

/// Parsed and validated frame header.
struct FrameHeader {
  Opcode opcode;
  uint32_t payload_length = 0;
  /// kWireVersion or kWireVersionExt — tells the receiver whether a request
  /// extension follows the header.
  uint8_t version = kWireVersion;
};

/// Validates magic, version and length (<= max_frame_bytes). Throws
/// NetworkError describing exactly what was malformed.
FrameHeader decode_frame_header(const uint8_t (&header)[kFrameHeaderBytes],
                                size_t max_frame_bytes);

/// Bounds-checked sequential reader over one frame's payload. Every
/// accessor throws NetworkError on overrun; element counts are validated
/// against the bytes actually present before any allocation.
class WireReader {
 public:
  explicit WireReader(ByteView data) : data_(data) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  int64_t i64() { return static_cast<int64_t>(u64()); }
  std::string string();
  Bytes blob();
  sql::Value value();
  sql::Row row();
  sql::Schema schema();

  size_t remaining() const { return data_.size() - pos_; }
  /// Rejects trailing garbage after the last expected field.
  void expect_end() const;

 private:
  void need(size_t n) const;

  ByteView data_;
  size_t pos_ = 0;
};

/// Payload builder; thin appending wrapper so encode sites read like the
/// format spec.
class WireWriter {
 public:
  void u8(uint8_t v) { out_.push_back(v); }
  void u16(uint16_t v);
  void u32(uint32_t v) { store_le32(out_, v); }
  void u64(uint64_t v) { store_le64(out_, v); }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void string(std::string_view s);
  void value(const sql::Value& v) { v.wire_encode(out_); }
  void row(const sql::Row& r);
  void schema(const sql::Schema& s) { s.wire_encode(out_); }

  Bytes& bytes() { return out_; }

 private:
  Bytes out_;
};

/// ResultSet payload codec (the kOkResult body).
void encode_result_set(const sql::ResultSet& rs, WireWriter& w);
sql::ResultSet decode_result_set(WireReader& r);

}  // namespace wre::net
