#include "src/net/shard.h"

#include "src/util/error.h"

namespace wre::net {

uint32_t shard_for_tag(uint64_t tag, uint32_t shard_count) {
  if (shard_count <= 1) return 0;
  // splitmix64 finalizer: full-avalanche, so consecutive integers (range
  // buckets, benchmark ids) spread as evenly as PRF output does.
  uint64_t x = tag;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<uint32_t>(x % shard_count);
}

std::vector<ShardEndpoint> parse_endpoints(const std::string& spec) {
  std::vector<ShardEndpoint> out;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) {
      throw NetworkError("shard map: empty endpoint in \"" + spec + "\"");
    }
    size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= item.size()) {
      throw NetworkError("shard map: \"" + item +
                         "\" is not host:port");
    }
    unsigned long port = 0;
    for (size_t i = colon + 1; i < item.size(); ++i) {
      char c = item[i];
      if (c < '0' || c > '9') {
        throw NetworkError("shard map: bad port in \"" + item + "\"");
      }
      port = port * 10 + static_cast<unsigned long>(c - '0');
      if (port > 65535) {
        throw NetworkError("shard map: port out of range in \"" + item + "\"");
      }
    }
    out.push_back(ShardEndpoint{item.substr(0, colon),
                                static_cast<uint16_t>(port)});
  }
  if (out.empty()) throw NetworkError("shard map: no endpoints");
  return out;
}

std::optional<size_t> shard_key_index(const sql::Schema& schema) {
  static constexpr std::string_view kSuffix = "_tag";
  for (size_t i = 0; i < schema.column_count(); ++i) {
    const std::string& name = schema.column(i).name;
    if (name.size() > kSuffix.size() &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
            0) {
      return i;
    }
  }
  return std::nullopt;
}

}  // namespace wre::net
