#include "src/net/wire.h"

#include <algorithm>

namespace wre::net {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kPing: return "Ping";
    case Opcode::kExecSql: return "ExecSql";
    case Opcode::kInsertBatch: return "InsertBatch";
    case Opcode::kCreateTable: return "CreateTable";
    case Opcode::kCreateIndex: return "CreateIndex";
    case Opcode::kHasTable: return "HasTable";
    case Opcode::kRowCount: return "RowCount";
    case Opcode::kTableSchema: return "TableSchema";
    case Opcode::kTagScan: return "TagScan";
    case Opcode::kScanTable: return "ScanTable";
    case Opcode::kShardInfo: return "ShardInfo";
    case Opcode::kOkResult: return "OkResult";
    case Opcode::kOkBool: return "OkBool";
    case Opcode::kOkIds: return "OkIds";
    case Opcode::kOkSchema: return "OkSchema";
    case Opcode::kOkUnit: return "OkUnit";
    case Opcode::kOkCount: return "OkCount";
    case Opcode::kOkPong: return "OkPong";
    case Opcode::kOkShardInfo: return "OkShardInfo";
    case Opcode::kError: return "Error";
  }
  return "?";
}

bool is_request_opcode(uint8_t op) {
  return op >= static_cast<uint8_t>(Opcode::kPing) &&
         op <= static_cast<uint8_t>(Opcode::kShardInfo);
}

StatusCode status_code_for(const std::exception& e) {
  // Most-derived first: every subclass is also a wre::Error.
  if (dynamic_cast<const OverloadedError*>(&e)) return StatusCode::kOverloaded;
  if (dynamic_cast<const StorageError*>(&e)) return StatusCode::kStorage;
  if (dynamic_cast<const SqlError*>(&e)) return StatusCode::kSql;
  if (dynamic_cast<const CryptoError*>(&e)) return StatusCode::kCrypto;
  if (dynamic_cast<const WreError*>(&e)) return StatusCode::kWre;
  if (dynamic_cast<const NetworkError*>(&e)) return StatusCode::kNetwork;
  return StatusCode::kGeneric;
}

void rethrow_status(StatusCode code, const std::string& message) {
  switch (code) {
    case StatusCode::kStorage: throw StorageError(message);
    case StatusCode::kSql: throw SqlError(message);
    case StatusCode::kCrypto: throw CryptoError(message);
    case StatusCode::kWre: throw WreError(message);
    case StatusCode::kNetwork: throw NetworkError(message);
    case StatusCode::kOverloaded: throw OverloadedError(message);
    case StatusCode::kGeneric: break;
  }
  // Unknown future codes degrade to the hierarchy root rather than failing.
  throw Error(message);
}

Bytes encode_frame(Opcode opcode, ByteView payload) {
  Bytes out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kWireVersion);
  out.push_back(static_cast<uint8_t>(opcode));
  store_le32(out, static_cast<uint32_t>(payload.size()));
  append(out, payload);
  return out;
}

Bytes encode_request_frame(Opcode opcode, ByteView payload,
                           const RequestExt& ext) {
  Bytes out;
  out.reserve(kFrameHeaderBytes + 1 + kRequestExtTenantBytes + payload.size());
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kWireVersionExt);
  out.push_back(static_cast<uint8_t>(opcode));
  store_le32(out, static_cast<uint32_t>(payload.size()));
  out.push_back(static_cast<uint8_t>(kRequestExtTenantBytes));
  uint8_t flags = ext.has_key ? 0x01 : 0x00;
  flags |= 0x02;  // tenant id field present
  out.push_back(flags);
  out.push_back(0);  // reserved
  out.push_back(0);
  store_le32(out, ext.deadline_ms);
  out.insert(out.end(), ext.key.begin(), ext.key.end());
  store_le64(out, ext.tenant_id);
  append(out, payload);
  return out;
}

RequestExt parse_request_ext(ByteView body) {
  if (body.size() < kRequestExtBytes) {
    throw NetworkError("wire: request extension of " +
                       std::to_string(body.size()) + " bytes, need " +
                       std::to_string(kRequestExtBytes));
  }
  RequestExt ext;
  ext.has_key = (body[0] & 0x01) != 0;
  // body[1..2] reserved.
  ext.deadline_ms = load_le32(body.data() + 3);
  std::copy_n(body.begin() + 7, ext.key.size(), ext.key.begin());
  // Tenant id: optional growth — a 23-byte body from an older client (or a
  // body without flag bit 1) is the default tenant.
  if ((body[0] & 0x02) != 0 && body.size() >= kRequestExtTenantBytes) {
    ext.tenant_id = load_le64(body.data() + 23);
  }
  // Bytes past the known fields belong to a future revision: skip them.
  return ext;
}

FrameHeader decode_frame_header(const uint8_t (&header)[kFrameHeaderBytes],
                                size_t max_frame_bytes) {
  if (header[0] != kMagic0 || header[1] != kMagic1) {
    throw NetworkError("wire: bad frame magic");
  }
  if (header[2] != kWireVersion && header[2] != kWireVersionExt) {
    throw NetworkError("wire: unsupported protocol version " +
                       std::to_string(header[2]));
  }
  uint32_t length = load_le32(header + 4);
  if (length > max_frame_bytes) {
    throw NetworkError("wire: frame payload of " + std::to_string(length) +
                       " bytes exceeds the " +
                       std::to_string(max_frame_bytes) + "-byte limit");
  }
  return FrameHeader{static_cast<Opcode>(header[3]), length, header[2]};
}

void WireReader::need(size_t n) const {
  if (n > remaining()) {
    throw NetworkError("wire: truncated payload (need " + std::to_string(n) +
                       " bytes, have " + std::to_string(remaining()) + ")");
  }
}

uint8_t WireReader::u8() {
  need(1);
  return data_[pos_++];
}

uint16_t WireReader::u16() {
  need(2);
  uint16_t v = static_cast<uint16_t>(data_[pos_] |
                                     (static_cast<uint16_t>(data_[pos_ + 1])
                                      << 8));
  pos_ += 2;
  return v;
}

uint32_t WireReader::u32() {
  need(4);
  uint32_t v = load_le32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

uint64_t WireReader::u64() {
  need(8);
  uint64_t v = load_le64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

std::string WireReader::string() {
  uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

Bytes WireReader::blob() {
  uint32_t len = u32();
  need(len);
  Bytes b(data_.begin() + static_cast<ptrdiff_t>(pos_),
          data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
  pos_ += len;
  return b;
}

sql::Value WireReader::value() {
  // Value::wire_decode bounds-checks against the same buffer; translate its
  // SqlError into the protocol-level error the session handler expects.
  try {
    return sql::Value::wire_decode(data_, pos_);
  } catch (const SqlError& e) {
    throw NetworkError(std::string("wire: ") + e.what());
  }
}

sql::Row WireReader::row() {
  uint32_t n = u32();
  // Each value is at least one type byte.
  if (n > remaining()) {
    throw NetworkError("wire: row value count overruns frame");
  }
  sql::Row r;
  r.reserve(n);
  for (uint32_t i = 0; i < n; ++i) r.push_back(value());
  return r;
}

sql::Schema WireReader::schema() {
  try {
    return sql::Schema::wire_decode(data_, pos_);
  } catch (const SqlError& e) {
    throw NetworkError(std::string("wire: ") + e.what());
  }
}

void WireReader::expect_end() const {
  if (remaining() != 0) {
    throw NetworkError("wire: " + std::to_string(remaining()) +
                       " trailing bytes after payload");
  }
}

void WireWriter::u16(uint16_t v) {
  out_.push_back(static_cast<uint8_t>(v & 0xff));
  out_.push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::string(std::string_view s) {
  u32(static_cast<uint32_t>(s.size()));
  append(out_, to_bytes(s));
}

void WireWriter::row(const sql::Row& r) {
  u32(static_cast<uint32_t>(r.size()));
  for (const sql::Value& v : r) value(v);
}

void encode_result_set(const sql::ResultSet& rs, WireWriter& w) {
  w.u32(static_cast<uint32_t>(rs.columns.size()));
  for (const std::string& c : rs.columns) w.string(c);
  w.u32(static_cast<uint32_t>(rs.rows.size()));
  for (const sql::Row& r : rs.rows) w.row(r);
  w.u64(rs.rows_affected);
  w.u64(rs.index_probes);
  w.u64(rs.heap_fetches);
  w.u8(rs.used_index ? 1 : 0);
}

sql::ResultSet decode_result_set(WireReader& r) {
  sql::ResultSet rs;
  uint32_t ncols = r.u32();
  if (ncols > r.remaining() / 4) {  // each name carries a u32 length
    throw NetworkError("wire: column count overruns frame");
  }
  rs.columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) rs.columns.push_back(r.string());
  uint32_t nrows = r.u32();
  if (nrows > r.remaining() / 4) {  // each row carries a u32 value count
    throw NetworkError("wire: row count overruns frame");
  }
  rs.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) rs.rows.push_back(r.row());
  rs.rows_affected = r.u64();
  rs.index_probes = r.u64();
  rs.heap_fetches = r.u64();
  rs.used_index = r.u8() != 0;
  return rs;
}

}  // namespace wre::net
