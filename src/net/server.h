// wre_server's serving core: hosts one sql::Database behind a TCP accept
// loop speaking the binary wire protocol (src/net/wire.h).
//
// Threading model:
//   - a dedicated accept thread pulls connections off the Listener and
//     dispatches each session onto the shared util::ThreadPool, so the
//     number of concurrently *served* sessions is bounded by the pool size
//     (excess connections queue — FIFO — until a worker frees up);
//   - each session worker loops read-frame -> dispatch -> write-response
//     until the client hangs up, a read times out, a frame is malformed, or
//     the server drains;
//   - the engine's single-writer rule is enforced with a shared mutex:
//     statements that mutate (INSERT / CREATE / batched inserts) hold it
//     exclusively, everything else shares it, so concurrent WRE searches
//     from many clients proceed in parallel exactly like the in-process
//     concurrent read path (DESIGN.md §5.2).
//
// Fault tolerance (DESIGN.md §5.6):
//   - the accept loop survives transient accept() failures (EMFILE,
//     ECONNABORTED storms) by backing off and retrying instead of dying;
//   - admission control: beyond max_connections live sessions, new
//     connections are shed with a retryable kOverloaded error frame instead
//     of queueing unboundedly — the client backs off and retries;
//   - per-request deadlines (server flag and/or the client's v2 request
//     extension) bound how long a request may wait for the database lock;
//     expiry sheds the request with kOverloaded *before* it executes;
//   - a DedupCache keyed by the client's idempotency key replays recorded
//     responses for retried mutations, so a retry after a lost ACK cannot
//     double-apply (exactly-once ingest).
//
// Shutdown (stop(), also wired to SIGTERM in wre_server): the listener
// stops accepting, idle sessions are woken and closed, in-flight requests
// run to completion and their responses are flushed, then the workers join.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>

#include "src/net/dedup_cache.h"
#include "src/net/query_batcher.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/sql/database.h"
#include "src/util/thread_pool.h"

namespace wre::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with Server::port().
  uint16_t port = 0;
  /// Session worker threads (0 = one per hardware thread, floored at 4: an
  /// idle connection occupies its worker, so the pool bounds the number of
  /// concurrently *connected* clients, not just in-flight requests).
  unsigned worker_threads = 0;
  /// Per-request payload ceiling; oversized frames are refused before their
  /// payload is read (the client gets a kNetwork error, then the session
  /// closes — the stream offset is unrecoverable past a bad header).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Idle/read timeout per connection in milliseconds (0 = no timeout): a
  /// session that sends nothing for this long is closed.
  int read_timeout_ms = 60000;
  /// Background checkpoint period in milliseconds (0 = disabled). Each tick
  /// runs Database::checkpoint() under a *shared* lock — that excludes
  /// writers (they hold the lock exclusively) while letting reads proceed —
  /// bounding how much WAL a crash would replay.
  uint32_t checkpoint_interval_ms = 0;
  /// Admission control: cap on live sessions (accepted and not yet
  /// finished, including those queued for a pool worker). 0 = unlimited.
  /// Connections beyond the cap are shed with a retryable kOverloaded
  /// error frame instead of silently queueing.
  size_t max_connections = 0;
  /// Server-side per-request deadline in milliseconds (0 = none): bounds
  /// how long a request may wait for the database lock before being shed
  /// with kOverloaded. The effective deadline is the tighter of this and
  /// the client's RequestExt deadline.
  uint32_t request_deadline_ms = 0;
  /// Bounds on the idempotency-key replay cache (see dedup_cache.h). The
  /// cache is keyed by (tenant id, idempotency key): one tenant's retries
  /// can never replay another tenant's recorded responses.
  DedupCache::Options dedup;
  /// Opt-in cross-tenant query batching (see query_batcher.h): kTagScan
  /// requests arriving within this window share one lock acquisition.
  /// 0 (the default) disables batching. Trades up to window_ms of added
  /// latency for throughput near saturation — bench_scale measures both.
  uint32_t batch_window_ms = 0;
  /// Batch size that closes a batching window early.
  size_t batch_max = 64;
};

class Server {
 public:
  /// Binds immediately (so an ephemeral port is known) but serves nothing
  /// until start(). The database must outlive the server.
  Server(sql::Database& db, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Launches the accept loop. Idempotent.
  void start();

  /// Graceful drain; see the header comment. Idempotent, thread-safe with
  /// respect to sessions (but call from one controlling thread).
  void stop();

  uint16_t port() const { return listener_.port(); }
  bool running() const { return running_.load(); }

  /// Monotonic counters, for tests and the server's exit report.
  uint64_t sessions_accepted() const { return sessions_accepted_.load(); }
  uint64_t frames_served() const { return frames_served_.load(); }
  uint64_t protocol_errors() const { return protocol_errors_.load(); }
  uint64_t checkpoints() const { return checkpoints_.load(); }
  /// Connections refused by admission control (max_connections).
  uint64_t sessions_shed() const { return sessions_shed_.load(); }
  /// Requests shed because a deadline expired before the lock was held.
  uint64_t deadline_rejects() const { return deadline_rejects_.load(); }
  /// Transient accept() failures survived by backoff-and-retry.
  uint64_t accept_retries() const { return accept_retries_.load(); }
  /// Mutations answered from the idempotency cache instead of re-executed.
  uint64_t dedup_hits() const { return dedup_.hits(); }
  /// Live sessions right now (admission-control gauge).
  uint64_t live_sessions() const { return live_sessions_.load(); }
  /// Batched tag-scan executions (each covered >= 1 query); 0 when
  /// batching is disabled.
  uint64_t query_batches() const { return batcher_.batches(); }
  /// Tag scans that actually shared a batch with another query.
  uint64_t tag_scans_coalesced() const { return batcher_.coalesced(); }

 private:
  void accept_loop();
  void checkpoint_loop();
  void serve_session(Socket sock, uint64_t session_id);
  /// Answers an over-capacity connection with kOverloaded and closes it.
  void shed_connection(Socket sock);
  /// Decodes and executes one request frame; returns the response frame.
  /// `deadline_ms` (0 = none) bounds the db-lock wait; expiry throws
  /// OverloadedError before any state changes.
  Frame handle_request(Opcode op, ByteView payload, uint32_t deadline_ms);
  /// Timed db_mu_ acquisition; throws OverloadedError when the deadline
  /// passes first (and counts it in deadline_rejects_).
  std::shared_lock<std::shared_timed_mutex> lock_shared(uint32_t deadline_ms);
  std::unique_lock<std::shared_timed_mutex> lock_unique(uint32_t deadline_ms);
  static Frame error_frame(const std::exception& e);

  sql::Database& db_;
  ServerOptions options_;
  Listener listener_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread accept_thread_;
  std::thread checkpoint_thread_;
  std::mutex checkpoint_mu_;
  std::condition_variable checkpoint_cv_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  /// Single-writer exclusion over db_ (see the threading model above).
  /// Timed so request deadlines can bound the wait (lock_shared/_unique).
  std::shared_timed_mutex db_mu_;

  /// Idempotency-key replay cache (exactly-once retried mutations),
  /// keyed by (tenant, key).
  DedupCache dedup_;

  /// Opt-in cross-tenant kTagScan batching (disabled at window 0).
  QueryBatcher batcher_;

  /// Live session sockets, so stop() can wake blocked reads. Sessions own
  /// their Socket; this maps session id -> raw fd wrapper for shutdown only.
  std::mutex sessions_mu_;
  std::map<uint64_t, Socket*> sessions_;

  std::atomic<uint64_t> sessions_accepted_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> sessions_shed_{0};
  std::atomic<uint64_t> deadline_rejects_{0};
  std::atomic<uint64_t> accept_retries_{0};
  std::atomic<uint64_t> live_sessions_{0};
  std::atomic<uint64_t> next_session_id_{0};
};

}  // namespace wre::net
