// wre_server's serving core: hosts one sql::Database behind an epoll event
// loop speaking the binary wire protocol (src/net/wire.h).
//
// Threading model (DESIGN.md §5.8):
//   - ONE event thread owns every socket: it runs epoll_wait over the
//     listener, a wakeup eventfd, and all connections (level-triggered,
//     non-blocking). Partial frame reads and writes are per-connection
//     state that resumes on readiness — no thread is ever parked on a
//     socket, so an idle or stalled client costs a few kilobytes, not a
//     worker;
//   - a small util::ThreadPool executes ready requests, so crypto/storage
//     work never blocks the event thread. Each connection has at most one
//     batch of requests in flight at a time (FIFO), which preserves
//     response order — pipelined clients correlate responses to requests
//     by order, no sequence id needed. A batch takes every request parsed
//     so far, so a deep pipeline amortizes the handoff;
//   - the engine's single-writer rule is enforced with a shared mutex:
//     statements that mutate (INSERT / CREATE / batched inserts) hold it
//     exclusively, everything else shares it, so concurrent WRE searches
//     from many clients proceed in parallel exactly like the in-process
//     concurrent read path (DESIGN.md §5.2).
//
// Fault tolerance (DESIGN.md §5.6):
//   - the accept loop survives transient accept() failures (ECONNABORTED
//     storms, injected faults) by pausing the listener briefly; on
//     EMFILE/ENFILE it releases a reserve fd to accept the pending
//     connection and shed it with a proactive kOverloaded frame instead of
//     hot-spinning while the peer hangs in the backlog;
//   - admission control: beyond max_connections live sessions, new
//     connections are shed with a retryable kOverloaded error frame;
//   - per-request deadlines (server flag and/or the client's v2 request
//     extension) bound how long a request may wait for the database lock;
//     expiry sheds the request with kOverloaded *before* it executes;
//   - a DedupCache keyed by (tenant, idempotency key) replays recorded
//     responses for retried mutations, so a retry after a lost ACK cannot
//     double-apply (exactly-once ingest);
//   - backpressure: a connection with too many parsed-but-unexecuted
//     requests stops being read; one with too many unflushed response
//     bytes stops executing. A client that never reads its responses is
//     eventually idle-reaped (it is not sending either) — it never delays
//     any other connection.
//
// Sharding: a shard is simply a Server owning a hash-partition of the tag
// space. shard_index/shard_count are topology metadata the server reports
// through the kShardInfo handshake so a scatter-gather client can verify
// each endpoint agrees on the map; routing itself is client-side
// (src/net/shard.h).
//
// Shutdown (stop(), also wired to SIGTERM in wre_server): the listener
// stops accepting, idle connections are closed, requests already received
// — including a whole pipelined burst — run to completion and their
// responses are flushed, then the workers join.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/dedup_cache.h"
#include "src/net/query_batcher.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/sql/database.h"
#include "src/util/thread_pool.h"

namespace wre::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with Server::port().
  uint16_t port = 0;
  /// Request-execution worker threads (0 = one per hardware thread,
  /// floored at 4). Workers only run ready requests — connections live on
  /// the event thread — so the pool bounds CPU concurrency, not the number
  /// of connected clients.
  unsigned worker_threads = 0;
  /// Per-request payload ceiling; oversized frames are refused before their
  /// payload is read (the client gets a kNetwork error, then the session
  /// closes — the stream offset is unrecoverable past a bad header).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Idle timeout per connection in milliseconds (0 = no timeout): a
  /// connection with no traffic for this long is closed by the event
  /// loop's timer sweep (the epoll replacement for SO_RCVTIMEO).
  int read_timeout_ms = 60000;
  /// Background checkpoint period in milliseconds (0 = disabled). Each tick
  /// runs Database::checkpoint() under a *shared* lock — that excludes
  /// writers (they hold the lock exclusively) while letting reads proceed —
  /// bounding how much WAL a crash would replay.
  uint32_t checkpoint_interval_ms = 0;
  /// Admission control: cap on live connections. 0 = unlimited.
  /// Connections beyond the cap are shed with a retryable kOverloaded
  /// error frame instead of silently queueing.
  size_t max_connections = 0;
  /// Server-side per-request deadline in milliseconds (0 = none): bounds
  /// how long a request may wait for the database lock before being shed
  /// with kOverloaded. The effective deadline is the tighter of this and
  /// the client's RequestExt deadline.
  uint32_t request_deadline_ms = 0;
  /// Bounds on the idempotency-key replay cache (see dedup_cache.h). The
  /// cache is keyed by (tenant id, idempotency key): one tenant's retries
  /// can never replay another tenant's recorded responses.
  DedupCache::Options dedup;
  /// Opt-in cross-tenant query batching (see query_batcher.h): kTagScan
  /// requests arriving within this window share one lock acquisition.
  /// 0 (the default) disables batching. Trades up to window_ms of added
  /// latency for throughput near saturation — bench_scale measures both.
  uint32_t batch_window_ms = 0;
  /// Batch size that closes a batching window early.
  size_t batch_max = 64;
  /// Backpressure: per-connection cap on parsed-but-unexecuted pipelined
  /// requests. Past it the server stops reading that connection until its
  /// queue drains.
  size_t max_pipelined_requests = 128;
  /// Backpressure: per-connection cap on buffered unsent response bytes.
  /// Past it request execution for that connection pauses until the peer
  /// drains (a never-reading client is idle-reaped, not ballooned).
  size_t max_outbuf_bytes = 8u << 20;
  /// Shard topology this server believes it is part of (reported through
  /// the kShardInfo handshake; defaults describe an unsharded server).
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
};

class Server {
 public:
  /// Binds immediately (so an ephemeral port is known) but serves nothing
  /// until start(). The database must outlive the server.
  Server(sql::Database& db, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Launches the event loop. Idempotent.
  void start();

  /// Graceful drain; see the header comment. Idempotent, thread-safe with
  /// respect to sessions (but call from one controlling thread).
  void stop();

  uint16_t port() const { return listener_.port(); }
  bool running() const { return running_.load(); }

  /// Monotonic counters, for tests and the server's exit report.
  uint64_t sessions_accepted() const { return sessions_accepted_.load(); }
  uint64_t frames_served() const { return frames_served_.load(); }
  uint64_t protocol_errors() const { return protocol_errors_.load(); }
  uint64_t checkpoints() const { return checkpoints_.load(); }
  /// Connections refused by admission control (max_connections) or shed
  /// under fd exhaustion.
  uint64_t sessions_shed() const { return sessions_shed_.load(); }
  /// Requests shed because a deadline expired before the lock was held.
  uint64_t deadline_rejects() const { return deadline_rejects_.load(); }
  /// Transient accept() failures survived by backoff-and-retry.
  uint64_t accept_retries() const { return accept_retries_.load(); }
  /// Mutations answered from the idempotency cache instead of re-executed.
  uint64_t dedup_hits() const { return dedup_.hits(); }
  /// Live connections right now (admission-control gauge).
  uint64_t live_sessions() const { return live_sessions_.load(); }
  /// Batched tag-scan executions (each covered >= 1 query); 0 when
  /// batching is disabled.
  uint64_t query_batches() const { return batcher_.batches(); }
  /// Tag scans that actually shared a batch with another query.
  uint64_t tag_scans_coalesced() const { return batcher_.coalesced(); }

 private:
  /// One parsed request, or a pre-formed response from the frame parser
  /// (malformed header/extension — answered without touching a worker).
  struct PendingRequest {
    Opcode op = Opcode::kPing;
    Bytes payload;
    RequestExt ext;
    /// Response already rendered at parse time (protocol errors).
    bool preformed = false;
    Bytes preformed_bytes;
    /// The stream position past this request is unrecoverable: flush the
    /// response, then close.
    bool fatal = false;
  };

  /// Per-connection state machine, owned by the event thread.
  struct Conn {
    uint64_t id = 0;
    Socket sock;
    /// Unparsed received bytes (consumed from the front via `inbuf_off`).
    Bytes inbuf;
    size_t inbuf_off = 0;
    /// Parsed requests awaiting execution, in arrival order.
    std::deque<PendingRequest> pending;
    /// Encoded responses awaiting the socket (consumed via `outbuf_off`).
    Bytes outbuf;
    size_t outbuf_off = 0;
    /// A worker batch for this connection is in flight.
    bool worker_active = false;
    /// Peer half-closed; finish pending work, flush, then close.
    bool saw_eof = false;
    /// Protocol-fatal or shed: close once outbuf drains.
    bool close_after_flush = false;
    /// Stream is unrecoverable — stop parsing inbuf entirely.
    bool parse_dead = false;
    /// Counted in live_sessions_ (shed connections are not).
    bool counted = false;
    /// Torn down mid-batch; destroyed when the batch completes.
    bool dead = false;
    /// Registered with epoll (deregistered when dead).
    bool registered = false;
    /// Last epoll event mask registered for this socket.
    uint32_t interest = 0;
    std::chrono::steady_clock::time_point last_activity;
    std::list<Conn*>::iterator lru_it;
  };

  /// One finished worker batch, handed back to the event thread.
  struct Completion {
    uint64_t conn_id = 0;
    Bytes bytes;       // concatenated encoded response frames
    uint32_t frames = 0;
  };

  void event_loop();
  void checkpoint_loop();

  // --- event-thread helpers (all run on the event thread only) ---
  void accept_ready();
  void register_conn(std::unique_ptr<Conn> conn);
  void conn_readable(Conn* c);
  void conn_writable(Conn* c);
  void parse_frames(Conn* c);
  void maybe_dispatch(Conn* c);
  void flush_outbuf(Conn* c);
  void update_interest(Conn* c);
  void touch(Conn* c);
  void kill_conn(Conn* c);
  void drain_completions();
  void reap_idle();
  int next_timeout_ms() const;
  void begin_drain();
  void add_listener();
  void pause_accept();
  void wake_event_thread();
  /// Best-effort overload frame + close for a connection that will never
  /// be served (admission control / fd exhaustion).
  void shed_connection(Socket sock, const std::string& reason);

  // --- worker-side ---
  /// Executes one request end-to-end (dedup wrapper + handle_request) and
  /// returns the encoded response frame. Never throws.
  Bytes process_request(const PendingRequest& req);
  /// Decodes and executes one request frame; returns the response frame.
  /// `deadline_ms` (0 = none) bounds the db-lock wait; expiry throws
  /// OverloadedError before any state changes.
  Frame handle_request(Opcode op, ByteView payload, uint32_t deadline_ms);
  /// Timed db_mu_ acquisition; throws OverloadedError when the deadline
  /// passes first (and counts it in deadline_rejects_).
  std::shared_lock<std::shared_timed_mutex> lock_shared(uint32_t deadline_ms);
  std::unique_lock<std::shared_timed_mutex> lock_unique(uint32_t deadline_ms);
  static Frame error_frame(const std::exception& e);

  sql::Database& db_;
  ServerOptions options_;
  Listener listener_;
  ReserveFd reserve_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread event_thread_;
  std::thread checkpoint_thread_;
  std::mutex checkpoint_mu_;
  std::condition_variable checkpoint_cv_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  // Event-loop state (event thread only, except the completion queue).
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool drain_started_ = false;
  bool listener_registered_ = false;
  /// Accept backoff after transient failures (steady_clock; zero = none).
  std::chrono::steady_clock::time_point accept_resume_{};
  uint32_t accept_backoff_ms_ = 1;
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  /// Connections in ascending last_activity order (uniform timeout makes
  /// strict LRU exact: touching always moves to the back).
  std::list<Conn*> lru_;
  /// Killed connections whose erase is deferred to the end of the current
  /// event batch (so stale epoll_event pointers stay dereferenceable).
  std::vector<uint64_t> doomed_;

  /// Worker -> event thread handoff.
  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  /// Single-writer exclusion over db_ (see the threading model above).
  /// Timed so request deadlines can bound the wait (lock_shared/_unique).
  std::shared_timed_mutex db_mu_;

  /// Idempotency-key replay cache (exactly-once retried mutations),
  /// keyed by (tenant, key).
  DedupCache dedup_;

  /// Opt-in cross-tenant kTagScan batching (disabled at window 0).
  QueryBatcher batcher_;

  std::atomic<uint64_t> sessions_accepted_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> sessions_shed_{0};
  std::atomic<uint64_t> deadline_rejects_{0};
  std::atomic<uint64_t> accept_retries_{0};
  std::atomic<uint64_t> live_sessions_{0};
  std::atomic<uint64_t> next_conn_id_{0};
};

}  // namespace wre::net
