#include "src/net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>

#include "src/sql/ast.h"

namespace wre::net {

namespace {

/// epoll user-data tags for the two non-connection descriptors; Conn
/// pointers are never 0 or 1.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

/// Requests executed per worker batch. One batch per connection is in
/// flight at a time (preserves response order); taking everything parsed
/// so far amortizes the event-thread/worker handoff across a pipeline.
constexpr size_t kMaxBatchRequests = 64;

/// Bytes pulled off one socket per readiness event, so one firehose
/// client cannot starve the rest of the loop (level-triggered epoll
/// re-reports whatever is left).
constexpr size_t kReadBudgetBytes = 256u << 10;

/// Conservative write detection for ExecSql: only statements that are
/// syntactically reads take the shared lock; everything else (INSERT,
/// CREATE, and any future statement kind) is treated as a write.
bool is_read_sql(std::string_view sql) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  auto starts_with_kw = [&](std::string_view kw) {
    if (sql.size() - i < kw.size()) return false;
    for (size_t k = 0; k < kw.size(); ++k) {
      if (std::tolower(static_cast<unsigned char>(sql[i + k])) != kw[k]) {
        return false;
      }
    }
    return true;
  };
  return starts_with_kw("select") || starts_with_kw("explain");
}

/// Whether executing this request can change database state — the requests
/// the idempotency cache must dedup. Peeks the SQL text for kExecSql (its
/// payload is a single length-prefixed string); malformed payloads return
/// false and fail later in the decoder, before any mutation.
bool request_mutates(Opcode op, ByteView payload) {
  switch (op) {
    case Opcode::kInsertBatch:
    case Opcode::kCreateTable:
    case Opcode::kCreateIndex:
      return true;
    case Opcode::kExecSql: {
      if (payload.size() < 4) return false;
      uint32_t len = load_le32(payload.data());
      if (len > payload.size() - 4) return false;
      std::string_view sql(reinterpret_cast<const char*>(payload.data() + 4),
                           len);
      return !is_read_sql(sql);
    }
    default:
      return false;
  }
}

}  // namespace

Server::Server(sql::Database& db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      listener_(options_.host, options_.port),
      dedup_(options_.dedup),
      batcher_(QueryBatcher::Options{options_.batch_window_ms,
                                     options_.batch_max}) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  draining_.store(false);
  drain_started_ = false;
  unsigned workers = options_.worker_threads;
  if (workers == 0) {
    workers = std::max(4u, std::thread::hardware_concurrency());
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    running_.store(false);
    throw NetworkError("server: failed to create event-loop descriptors");
  }
  pool_ = std::make_unique<util::ThreadPool>(workers);
  event_thread_ = std::thread([this] { event_loop(); });
  if (options_.checkpoint_interval_ms > 0) {
    checkpoint_thread_ = std::thread([this] { checkpoint_loop(); });
  }
}

void Server::checkpoint_loop() {
  std::unique_lock<std::mutex> lk(checkpoint_mu_);
  const auto interval =
      std::chrono::milliseconds(options_.checkpoint_interval_ms);
  while (!draining_.load()) {
    if (checkpoint_cv_.wait_for(lk, interval,
                                [this] { return draining_.load(); })) {
      break;
    }
    try {
      // Shared, not unique: checkpoint only needs writers excluded (they
      // hold db_mu_ exclusively); concurrent reads keep flowing.
      std::shared_lock db_lock(db_mu_);
      db_.checkpoint();
      checkpoints_.fetch_add(1);
    } catch (const std::exception&) {
      // A failed checkpoint is not fatal: the WAL still holds everything,
      // so durability is unaffected — only the replay bound grows.
    }
  }
}

void Server::stop() {
  if (!running_.load()) return;
  draining_.store(true);
  checkpoint_cv_.notify_all();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  listener_.close();
  wake_event_thread();
  // The event thread finishes requests already received, flushes their
  // responses, closes every connection, then exits.
  if (event_thread_.joinable()) event_thread_.join();
  // Workers may still be finishing batches whose connections died; the
  // pool destructor drains them (their completions go nowhere).
  pool_.reset();
  conns_.clear();
  lru_.clear();
  doomed_.clear();
  {
    std::lock_guard<std::mutex> lk(completions_mu_);
    completions_.clear();
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  running_.store(false);
}

void Server::wake_event_thread() {
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void Server::add_listener() {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) == 0) {
    listener_registered_ = true;
  }
}

void Server::pause_accept() {
  if (listener_registered_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
    listener_registered_ = false;
  }
  accept_resume_ = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(accept_backoff_ms_);
  accept_backoff_ms_ = std::min(accept_backoff_ms_ * 2, 200u);
}

void Server::event_loop() {
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
  add_listener();

  std::vector<epoll_event> events(128);
  while (true) {
    if (draining_.load(std::memory_order_acquire) && !drain_started_) {
      begin_drain();
    }
    for (uint64_t id : doomed_) conns_.erase(id);
    doomed_.clear();
    if (drain_started_ && conns_.empty()) break;

    if (!listener_registered_ && !drain_started_ &&
        std::chrono::steady_clock::now() >= accept_resume_) {
      add_listener();
    }

    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), next_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself is broken: the server is unusable
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.u64 == kListenerTag) {
        accept_ready();
        continue;
      }
      if (ev.data.u64 == kWakeTag) {
        uint64_t v;
        while (::read(wake_fd_, &v, sizeof(v)) > 0) {
        }
        drain_completions();
        continue;
      }
      Conn* c = static_cast<Conn*>(ev.data.ptr);
      if (c->dead) continue;
      if (ev.events & (EPOLLERR | EPOLLHUP)) {
        kill_conn(c);
        continue;
      }
      if (ev.events & EPOLLOUT) conn_writable(c);
      if (c->dead) continue;
      if (ev.events & (EPOLLIN | EPOLLRDHUP)) conn_readable(c);
    }
    drain_completions();
    reap_idle();
  }
}

int Server::next_timeout_ms() const {
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;
  const auto now = std::chrono::steady_clock::now();
  long best = -1;
  if (options_.read_timeout_ms > 0 && !lru_.empty()) {
    auto deadline = lru_.front()->last_activity +
                    milliseconds(options_.read_timeout_ms);
    best = std::max(0L,
                    static_cast<long>(
                        duration_cast<milliseconds>(deadline - now).count()) +
                        1);
  }
  if (!listener_registered_ && !drain_started_) {
    long ms = std::max(
        0L, static_cast<long>(
                duration_cast<milliseconds>(accept_resume_ - now).count()) +
                1);
    best = best < 0 ? ms : std::min(best, ms);
  }
  if (drain_started_) {
    // Completions arrive via the eventfd; this is only a backstop.
    best = best < 0 ? 100 : std::min(best, 100L);
  }
  if (best < 0) return -1;
  return static_cast<int>(std::min(best, 60000L));
}

void Server::accept_ready() {
  // Bounded burst per readiness event; level-triggered epoll re-reports
  // whatever is still pending.
  for (int burst = 0; burst < 64; ++burst) {
    Socket sock;
    Listener::AcceptStatus st;
    try {
      st = listener_.try_accept(&sock);
    } catch (const NetworkError&) {
      accept_retries_.fetch_add(1);
      pause_accept();
      return;
    }
    switch (st) {
      case Listener::AcceptStatus::kAccepted: {
        accept_backoff_ms_ = 1;
        sessions_accepted_.fetch_add(1);
        // Admission control: past the cap, shedding with a retryable error
        // is kinder than queueing — the client backs off instead of timing
        // out.
        if (options_.max_connections > 0 &&
            live_sessions_.load() >= options_.max_connections) {
          shed_connection(std::move(sock),
                          "server: at capacity (" +
                              std::to_string(options_.max_connections) +
                              " connections); retry after backoff");
          continue;
        }
        auto conn = std::make_unique<Conn>();
        conn->id = next_conn_id_.fetch_add(1);
        conn->sock = std::move(sock);
        conn->counted = true;
        live_sessions_.fetch_add(1);
        register_conn(std::move(conn));
        continue;
      }
      case Listener::AcceptStatus::kWouldBlock:
        return;
      case Listener::AcceptStatus::kRetryLater:
        // Transient failure (ECONNABORTED storm, injected fault): the one
        // thing the accept path must never do is hot-spin or die. Pause
        // the listener briefly; pending connections park in the backlog.
        accept_retries_.fetch_add(1);
        pause_accept();
        return;
      case Listener::AcceptStatus::kFdExhausted: {
        accept_retries_.fetch_add(1);
        if (reserve_.held()) {
          // Briefly release the reserve fd so accept() has a slot to land
          // in, shed the pending connection with a proactive overload
          // frame, and take the reserve back — instead of leaving the peer
          // parked in the backlog while we back off.
          reserve_.release();
          Socket pending;
          if (listener_.try_accept(&pending) ==
              Listener::AcceptStatus::kAccepted) {
            sessions_accepted_.fetch_add(1);
            shed_connection(
                std::move(pending),
                "server: out of file descriptors; retry after backoff");
          }
          reserve_.reacquire();
        }
        pause_accept();
        return;
      }
      case Listener::AcceptStatus::kClosed:
        if (listener_registered_) {
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
          listener_registered_ = false;
        }
        return;
    }
  }
}

void Server::shed_connection(Socket sock, const std::string& reason) {
  sessions_shed_.fetch_add(1);
  try {
    OverloadedError e(reason);
    Frame f = error_frame(e);
    Bytes frame = encode_frame(f.opcode, f.payload);
    // Best effort on a non-blocking socket: the ~60-byte frame virtually
    // always fits a fresh socket buffer in one call.
    size_t off = 0;
    for (int spin = 0; off < frame.size() && spin < 8; ++spin) {
      ssize_t n = sock.send_some(
          ByteView(frame.data() + off, frame.size() - off));
      if (n < 0) break;
      off += static_cast<size_t>(n);
    }
  } catch (const std::exception&) {
    // Peer already gone — it was going to learn about the shed either way.
  }
  // Socket closes on return; the client sees the error frame, then EOF.
}

void Server::register_conn(std::unique_ptr<Conn> conn) {
  Conn* c = conn.get();
  c->last_activity = std::chrono::steady_clock::now();
  lru_.push_back(c);
  c->lru_it = std::prev(lru_.end());
  conns_.emplace(c->id, std::move(conn));
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP;
  ev.data.ptr = c;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, c->sock.fd(), &ev) != 0) {
    kill_conn(c);
    return;
  }
  c->registered = true;
  c->interest = EPOLLIN | EPOLLRDHUP;
}

void Server::touch(Conn* c) {
  c->last_activity = std::chrono::steady_clock::now();
  lru_.splice(lru_.end(), lru_, c->lru_it);
}

void Server::kill_conn(Conn* c) {
  if (c->dead) return;
  c->dead = true;
  if (c->registered) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->sock.fd(), nullptr);
    c->registered = false;
  }
  c->sock.close();
  lru_.erase(c->lru_it);
  if (c->counted) {
    live_sessions_.fetch_sub(1);
    c->counted = false;
  }
  // A connection with a worker batch in flight stays in conns_ until the
  // completion arrives (the batch must not write into freed memory);
  // everything else is erased at the end of the current event batch.
  if (!c->worker_active) doomed_.push_back(c->id);
}

void Server::update_interest(Conn* c) {
  if (c->dead || !c->registered) return;
  uint32_t want = 0;
  // Backpressure: a connection with a full pipeline queue is not read
  // until it drains (EPOLLRDHUP is dropped too, or a half-closed peer
  // would busy-wake the loop while its pipeline executes).
  const bool can_read = !c->parse_dead && !c->saw_eof && !drain_started_ &&
                        c->pending.size() < options_.max_pipelined_requests;
  if (can_read) want |= EPOLLIN | EPOLLRDHUP;
  if (c->outbuf_off < c->outbuf.size()) want |= EPOLLOUT;
  if (want == c->interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.ptr = c;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->sock.fd(), &ev) == 0) {
    c->interest = want;
  }
}

void Server::conn_readable(Conn* c) {
  if (c->dead) return;
  uint8_t buf[64 * 1024];
  size_t budget = kReadBudgetBytes;
  bool got_any = false;
  while (budget > 0 && !c->parse_dead && !c->saw_eof &&
         c->pending.size() < options_.max_pipelined_requests) {
    ssize_t n;
    try {
      n = c->sock.recv_some(buf, std::min(sizeof(buf), budget));
    } catch (const NetworkError&) {
      kill_conn(c);  // peer reset (or injected fault): nothing to answer
      return;
    }
    if (n < 0) break;  // EAGAIN: drained the socket
    if (n == 0) {
      c->saw_eof = true;
      break;
    }
    got_any = true;
    budget -= static_cast<size_t>(n);
    c->inbuf.insert(c->inbuf.end(), buf, buf + n);
    parse_frames(c);
  }
  if (got_any) touch(c);
  maybe_dispatch(c);
  flush_outbuf(c);
  if (c->dead) return;
  if (c->saw_eof && c->pending.empty() && !c->worker_active &&
      c->outbuf_off >= c->outbuf.size()) {
    // Clean hangup between frames — or mid-frame, which closes silently
    // exactly like the blocking server did.
    kill_conn(c);
    return;
  }
  update_interest(c);
}

void Server::conn_writable(Conn* c) {
  if (c->dead) return;
  const size_t before = c->outbuf_off;
  flush_outbuf(c);
  if (c->dead) return;
  if (c->outbuf_off != before || c->outbuf.empty()) {
    touch(c);  // the peer is consuming responses: that is activity
  }
  maybe_dispatch(c);  // outbuf drained below the cap: resume execution
  flush_outbuf(c);
  if (c->dead) return;
  update_interest(c);
}

void Server::parse_frames(Conn* c) {
  // Renders a protocol-fatal error response at parse time: it is answered
  // in order (after any earlier requests), then the connection closes —
  // the stream position past the bad bytes is unrecoverable.
  auto push_fatal = [&](const std::exception& e) {
    protocol_errors_.fetch_add(1);
    PendingRequest pr;
    pr.preformed = true;
    pr.fatal = true;
    Frame f = error_frame(e);
    pr.preformed_bytes = encode_frame(f.opcode, f.payload);
    c->pending.push_back(std::move(pr));
    c->parse_dead = true;
  };

  while (!c->parse_dead &&
         c->pending.size() < options_.max_pipelined_requests) {
    const size_t avail = c->inbuf.size() - c->inbuf_off;
    if (avail < kFrameHeaderBytes) break;
    const uint8_t* p = c->inbuf.data() + c->inbuf_off;
    uint8_t hdr[kFrameHeaderBytes];
    std::memcpy(hdr, p, kFrameHeaderBytes);
    FrameHeader fh{};
    try {
      fh = decode_frame_header(hdr, options_.max_frame_bytes);
    } catch (const std::exception& e) {
      // Bad magic / version / oversized length: refused before the payload
      // is read.
      push_fatal(e);
      break;
    }
    size_t need = kFrameHeaderBytes;
    // A v2 frame interposes the request extension (ext_len byte + body)
    // between header and payload. An ext_len outside the sane range means
    // the stream is garbage, not just this request — treat like a bad
    // header.
    RequestExt ext;
    if (fh.version == kWireVersionExt) {
      if (avail < need + 1) break;
      const uint8_t ext_len = p[need];
      ++need;
      if (ext_len < kRequestExtBytes || ext_len > kMaxRequestExtBytes) {
        push_fatal(NetworkError(
            "wire: request extension length " + std::to_string(ext_len) +
            " outside [" + std::to_string(kRequestExtBytes) + ", " +
            std::to_string(kMaxRequestExtBytes) + "]"));
        break;
      }
      if (avail < need + ext_len) break;
      try {
        ext = parse_request_ext(ByteView(p + need, ext_len));
      } catch (const std::exception& e) {
        push_fatal(e);
        break;
      }
      need += ext_len;
    }
    if (avail - need < fh.payload_length) break;  // wait for the payload
    PendingRequest req;
    req.op = fh.opcode;
    req.ext = ext;
    req.payload.assign(p + need, p + need + fh.payload_length);
    c->pending.push_back(std::move(req));
    c->inbuf_off += need + fh.payload_length;
  }
  if (c->inbuf_off == c->inbuf.size()) {
    c->inbuf.clear();
    c->inbuf_off = 0;
  } else if (c->inbuf_off > (256u << 10)) {
    c->inbuf.erase(c->inbuf.begin(),
                   c->inbuf.begin() + static_cast<long>(c->inbuf_off));
    c->inbuf_off = 0;
  }
}

void Server::maybe_dispatch(Conn* c) {
  if (c->dead || c->worker_active || c->close_after_flush) return;
  // Parse-time protocol errors are answered right here, in arrival order —
  // no worker round-trip for a frame that never decoded.
  while (!c->pending.empty() && c->pending.front().preformed) {
    PendingRequest& pr = c->pending.front();
    c->outbuf.insert(c->outbuf.end(), pr.preformed_bytes.begin(),
                     pr.preformed_bytes.end());
    const bool fatal = pr.fatal;
    c->pending.pop_front();
    if (fatal) {
      c->close_after_flush = true;
      c->pending.clear();  // nothing past a fatal frame is answerable
      return;
    }
  }
  if (c->pending.empty()) return;
  if (c->outbuf.size() - c->outbuf_off >= options_.max_outbuf_bytes) {
    return;  // backpressure: the peer must drain its responses first
  }
  std::vector<PendingRequest> batch;
  while (!c->pending.empty() && !c->pending.front().preformed &&
         batch.size() < kMaxBatchRequests) {
    batch.push_back(std::move(c->pending.front()));
    c->pending.pop_front();
  }
  c->worker_active = true;
  const uint64_t id = c->id;
  // shared_ptr: std::function requires copyable captures.
  auto work = std::make_shared<std::vector<PendingRequest>>(std::move(batch));
  try {
    pool_->submit([this, id, work] {
      Completion comp;
      comp.conn_id = id;
      for (const PendingRequest& req : *work) {
        Bytes out = process_request(req);
        comp.bytes.insert(comp.bytes.end(), out.begin(), out.end());
        ++comp.frames;
      }
      {
        std::lock_guard<std::mutex> lk(completions_mu_);
        completions_.push_back(std::move(comp));
      }
      wake_event_thread();
    });
  } catch (const std::exception&) {
    // Pool draining: put the batch back so drain accounting stays sane.
    for (auto it = work->rbegin(); it != work->rend(); ++it) {
      c->pending.push_front(std::move(*it));
    }
    c->worker_active = false;
  }
}

void Server::drain_completions() {
  std::vector<Completion> ready;
  {
    std::lock_guard<std::mutex> lk(completions_mu_);
    ready.swap(completions_);
  }
  for (Completion& comp : ready) {
    auto it = conns_.find(comp.conn_id);
    if (it == conns_.end()) continue;
    Conn* c = it->second.get();
    c->worker_active = false;
    if (c->dead) {
      // Killed mid-batch; its erase was deferred until now.
      doomed_.push_back(c->id);
      continue;
    }
    c->outbuf.insert(c->outbuf.end(), comp.bytes.begin(), comp.bytes.end());
    frames_served_.fetch_add(comp.frames);
    touch(c);
    maybe_dispatch(c);
    flush_outbuf(c);
    if (c->dead) continue;
    update_interest(c);
  }
}

void Server::flush_outbuf(Conn* c) {
  if (c->dead) return;
  while (c->outbuf_off < c->outbuf.size()) {
    ByteView rest(c->outbuf.data() + c->outbuf_off,
                  c->outbuf.size() - c->outbuf_off);
    ssize_t n;
    try {
      n = c->sock.send_some(rest);
    } catch (const NetworkError&) {
      kill_conn(c);  // peer is gone; nothing to flush
      return;
    }
    if (n < 0) break;  // kernel buffer full: resume on EPOLLOUT
    c->outbuf_off += static_cast<size_t>(n);
  }
  if (c->outbuf_off >= c->outbuf.size()) {
    c->outbuf.clear();
    c->outbuf_off = 0;
    if (c->close_after_flush ||
        ((drain_started_ || c->saw_eof) && c->pending.empty() &&
         !c->worker_active)) {
      kill_conn(c);
    }
  } else if (c->outbuf_off > (1u << 20)) {
    c->outbuf.erase(c->outbuf.begin(),
                    c->outbuf.begin() + static_cast<long>(c->outbuf_off));
    c->outbuf_off = 0;
  }
}

void Server::reap_idle() {
  if (options_.read_timeout_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  const auto timeout = std::chrono::milliseconds(options_.read_timeout_ms);
  while (!lru_.empty()) {
    Conn* c = lru_.front();
    if (now - c->last_activity < timeout) break;
    if (c->worker_active || !c->pending.empty()) {
      // Mid-request is not idle: the timeout clocks gaps between requests,
      // exactly like the old per-recv SO_RCVTIMEO did.
      touch(c);
      continue;
    }
    kill_conn(c);
  }
}

void Server::begin_drain() {
  drain_started_ = true;
  if (listener_registered_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
    listener_registered_ = false;
  }
  // One final read pass: requests already on the wire — including a whole
  // pipelined burst — get parsed, executed and answered before the close.
  std::vector<Conn*> all;
  all.reserve(conns_.size());
  for (auto& [id, conn] : conns_) all.push_back(conn.get());
  for (Conn* c : all) {
    if (c->dead) continue;
    conn_readable(c);
    if (c->dead) continue;
    if (c->pending.empty() && !c->worker_active &&
        c->outbuf_off >= c->outbuf.size()) {
      kill_conn(c);  // idle: the client sees the close promptly
    } else {
      update_interest(c);  // stops reading; drain finishes what it has
    }
  }
}

Bytes Server::process_request(const PendingRequest& req) {
  // Effective deadline: the tighter of the server flag and what the client
  // says it is still willing to wait.
  uint32_t deadline_ms = options_.request_deadline_ms;
  if (req.ext.deadline_ms > 0 &&
      (deadline_ms == 0 || req.ext.deadline_ms < deadline_ms)) {
    deadline_ms = req.ext.deadline_ms;
  }
  Frame response;
  // The frame boundary is intact here: any failure — unknown opcode, a
  // payload that flunks bounds checks, SQL/storage errors from execution —
  // gets an error response and the session continues.
  try {
    if (!is_request_opcode(static_cast<uint8_t>(req.op))) {
      throw NetworkError("wire: unknown request opcode " +
                         std::to_string(static_cast<int>(req.op)));
    }
    if (req.ext.has_key && request_mutates(req.op, req.payload)) {
      // Exactly-once: first arrival executes and records; a retry of
      // the same key replays the recorded response. A request shed
      // before execution (OverloadedError) aborts its claim instead —
      // "never ran" must stay retryable, not become a cached error.
      // The key is scoped by tenant: replaying (or poisoning) another
      // tenant's key is structurally impossible.
      DedupKey dkey{req.ext.tenant_id, req.ext.key};
      Frame cached;
      if (!dedup_.begin(dkey, &cached)) {
        response = std::move(cached);
      } else {
        try {
          response = handle_request(req.op, req.payload, deadline_ms);
          dedup_.complete(dkey, response);
        } catch (const OverloadedError&) {
          dedup_.abort(dkey);
          throw;
        } catch (const std::exception& e) {
          // Deterministic failure (bad SQL, duplicate PK, decode
          // error): record it so a retry replays the same error
          // instead of executing twice.
          response = error_frame(e);
          dedup_.complete(dkey, response);
          if (dynamic_cast<const NetworkError*>(&e) != nullptr) {
            protocol_errors_.fetch_add(1);
          }
        }
      }
    } else {
      response = handle_request(req.op, req.payload, deadline_ms);
    }
  } catch (const OverloadedError& e) {
    // A shed request is load, not a protocol violation.
    response = error_frame(e);
  } catch (const NetworkError& e) {
    protocol_errors_.fetch_add(1);
    response = error_frame(e);
  } catch (const std::exception& e) {
    response = error_frame(e);
  }
  return encode_frame(response.opcode, response.payload);
}

Frame Server::error_frame(const std::exception& e) {
  WireWriter w;
  w.u16(static_cast<uint16_t>(status_code_for(e)));
  w.string(e.what());
  return Frame{Opcode::kError, std::move(w.bytes())};
}

// Deadline-bounded acquisition is a polled try_lock loop rather than
// try_lock_for: libstdc++ implements the latter via glibc's
// pthread_rwlock_clock{rd,wr}lock, which ThreadSanitizer does not
// intercept, so a successful timed acquisition would record no
// happens-before edge and every access under the lock would be reported
// as a race. Deadlines are millisecond-granular; a 100 µs poll costs
// noise against that while keeping the lock visible to the sanitizer.
std::shared_lock<std::shared_timed_mutex> Server::lock_shared(
    uint32_t deadline_ms) {
  if (deadline_ms == 0) return std::shared_lock(db_mu_);
  std::shared_lock lock(db_mu_, std::try_to_lock);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (!lock.owns_lock() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    (void)lock.try_lock();
  }
  if (!lock.owns_lock()) {
    deadline_rejects_.fetch_add(1);
    throw OverloadedError("server: request shed — database busy past the " +
                          std::to_string(deadline_ms) + " ms deadline");
  }
  return lock;
}

std::unique_lock<std::shared_timed_mutex> Server::lock_unique(
    uint32_t deadline_ms) {
  if (deadline_ms == 0) return std::unique_lock(db_mu_);
  std::unique_lock lock(db_mu_, std::try_to_lock);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (!lock.owns_lock() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    (void)lock.try_lock();
  }
  if (!lock.owns_lock()) {
    deadline_rejects_.fetch_add(1);
    throw OverloadedError("server: request shed — database busy past the " +
                          std::to_string(deadline_ms) + " ms deadline");
  }
  return lock;
}

Frame Server::handle_request(Opcode op, ByteView payload,
                             uint32_t deadline_ms) {
  WireReader r(payload);
  WireWriter w;
  switch (op) {
    case Opcode::kPing: {
      r.expect_end();
      return Frame{Opcode::kOkPong, {}};
    }
    case Opcode::kShardInfo: {
      r.expect_end();
      w.u32(options_.shard_index);
      w.u32(options_.shard_count);
      return Frame{Opcode::kOkShardInfo, std::move(w.bytes())};
    }
    case Opcode::kExecSql: {
      std::string sql = r.string();
      r.expect_end();
      sql::ResultSet rs;
      if (is_read_sql(sql)) {
        auto lock = lock_shared(deadline_ms);
        // Columnar late materialization: a scan-planned SELECT encodes its
        // response straight from the column segment — the rows never exist
        // as sql::Value objects on the server. Falls through to the
        // ResultSet path for every other plan.
        Bytes payload;
        if (db_.execute_sql_wire(sql, &payload)) {
          return Frame{Opcode::kOkResult, std::move(payload)};
        }
        rs = db_.execute(sql);
      } else {
        storage::CommitHandle commit;
        {
          auto lock = lock_unique(deadline_ms);
          rs = db_.execute(sql);
          commit = db_.commit_async();
        }
        // Group commit: wait AFTER releasing the write lock, so the next
        // writer's work (and its commit) overlaps this fsync — the log
        // writer batches every queued commit into one sync.
        commit.wait();
      }
      encode_result_set(rs, w);
      return Frame{Opcode::kOkResult, std::move(w.bytes())};
    }
    case Opcode::kInsertBatch: {
      std::string table = r.string();
      uint32_t nrows = r.u32();
      if (nrows > r.remaining() / 4) {  // each row carries a u32 arity
        throw NetworkError("wire: insert row count overruns frame");
      }
      std::vector<sql::Row> rows;
      rows.reserve(nrows);
      for (uint32_t i = 0; i < nrows; ++i) rows.push_back(r.row());
      r.expect_end();
      std::vector<int64_t> ids;
      storage::CommitHandle commit;
      {
        auto lock = lock_unique(deadline_ms);
        ids = db_.insert_batch(table, rows);
        commit = db_.commit_async();
      }
      commit.wait();  // see kExecSql: fsync outside the write lock
      w.u32(static_cast<uint32_t>(ids.size()));
      for (int64_t id : ids) w.i64(id);
      return Frame{Opcode::kOkIds, std::move(w.bytes())};
    }
    case Opcode::kCreateTable: {
      std::string table = r.string();
      sql::Schema schema = r.schema();
      r.expect_end();
      storage::CommitHandle commit;
      {
        auto lock = lock_unique(deadline_ms);
        db_.create_table(table, std::move(schema));
        commit = db_.commit_async();
      }
      commit.wait();
      return Frame{Opcode::kOkUnit, {}};
    }
    case Opcode::kCreateIndex: {
      std::string table = r.string();
      std::string column = r.string();
      r.expect_end();
      storage::CommitHandle commit;
      {
        auto lock = lock_unique(deadline_ms);
        db_.create_index(table, column);
        commit = db_.commit_async();
      }
      commit.wait();
      return Frame{Opcode::kOkUnit, {}};
    }
    case Opcode::kHasTable: {
      std::string table = r.string();
      r.expect_end();
      auto lock = lock_shared(deadline_ms);
      w.u8(db_.has_table(table) ? 1 : 0);
      return Frame{Opcode::kOkBool, std::move(w.bytes())};
    }
    case Opcode::kRowCount: {
      std::string table = r.string();
      r.expect_end();
      auto lock = lock_shared(deadline_ms);
      w.u64(db_.table(table).row_count());
      return Frame{Opcode::kOkCount, std::move(w.bytes())};
    }
    case Opcode::kTableSchema: {
      std::string table = r.string();
      r.expect_end();
      auto lock = lock_shared(deadline_ms);
      w.schema(db_.table(table).schema());
      return Frame{Opcode::kOkSchema, std::move(w.bytes())};
    }
    case Opcode::kTagScan: {
      // The prepared multi-probe path: the tag list becomes an IN predicate
      // AST directly — a 10k-tag WRE search never round-trips through SQL
      // text on the server.
      std::string table = sql::to_lower(r.string());
      std::string tag_column = sql::to_lower(r.string());
      bool star = r.u8() != 0;
      uint32_t ntags = r.u32();
      if (ntags > r.remaining() / 8) {
        throw NetworkError("wire: tag count overruns frame");
      }
      std::vector<sql::Value> tags;
      tags.reserve(ntags);
      for (uint32_t i = 0; i < ntags; ++i) {
        tags.push_back(sql::Value::tag(r.u64()));
      }
      r.expect_end();

      sql::SelectStmt stmt;
      stmt.star = star;
      if (!star) stmt.columns = {"id"};
      stmt.table = table;
      stmt.where = sql::Expr::in_list(tag_column, std::move(tags));
      // With batching enabled, scans landing in the same window execute
      // under ONE shared-lock acquisition (the batch leader's); each item
      // still gets its own result (or error). Disabled, run() degenerates
      // to exactly the old lock-and-execute path.
      sql::ResultSet rs = batcher_.run(
          stmt, [this, deadline_ms](std::vector<QueryBatcher::Item*>& batch) {
            auto lock = lock_shared(deadline_ms);
            for (QueryBatcher::Item* it : batch) {
              try {
                it->result = db_.execute_select(*it->stmt);
              } catch (...) {
                it->error = std::current_exception();
              }
            }
          });
      encode_result_set(rs, w);
      return Frame{Opcode::kOkResult, std::move(w.bytes())};
    }
    case Opcode::kScanTable: {
      std::string table = r.string();
      r.expect_end();
      auto lock = lock_shared(deadline_ms);
      // A table scan is SELECT * with no predicate — the columnar wire
      // fast path applies whenever a segment is available.
      sql::SelectStmt star_stmt;
      star_stmt.star = true;
      star_stmt.table = sql::to_lower(table);
      Bytes payload;
      if (db_.execute_select_wire(star_stmt, &payload)) {
        return Frame{Opcode::kOkResult, std::move(payload)};
      }
      sql::Table& t = db_.table(table);
      sql::ResultSet rs;
      for (const sql::Column& c : t.schema().columns()) {
        rs.columns.push_back(c.name);
      }
      rs.rows.reserve(t.row_count());
      t.scan([&](int64_t, const sql::Row& row) { rs.rows.push_back(row); });
      encode_result_set(rs, w);
      return Frame{Opcode::kOkResult, std::move(w.bytes())};
    }
    default:
      throw NetworkError("wire: opcode " + std::string(opcode_name(op)) +
                         " is not a request");
  }
}

}  // namespace wre::net
