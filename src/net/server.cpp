#include "src/net/server.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "src/sql/ast.h"

namespace wre::net {

namespace {

/// Conservative write detection for ExecSql: only statements that are
/// syntactically reads take the shared lock; everything else (INSERT,
/// CREATE, and any future statement kind) is treated as a write.
bool is_read_sql(std::string_view sql) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  auto starts_with_kw = [&](std::string_view kw) {
    if (sql.size() - i < kw.size()) return false;
    for (size_t k = 0; k < kw.size(); ++k) {
      if (std::tolower(static_cast<unsigned char>(sql[i + k])) != kw[k]) {
        return false;
      }
    }
    return true;
  };
  return starts_with_kw("select") || starts_with_kw("explain");
}

/// Whether executing this request can change database state — the requests
/// the idempotency cache must dedup. Peeks the SQL text for kExecSql (its
/// payload is a single length-prefixed string); malformed payloads return
/// false and fail later in the decoder, before any mutation.
bool request_mutates(Opcode op, ByteView payload) {
  switch (op) {
    case Opcode::kInsertBatch:
    case Opcode::kCreateTable:
    case Opcode::kCreateIndex:
      return true;
    case Opcode::kExecSql: {
      if (payload.size() < 4) return false;
      uint32_t len = load_le32(payload.data());
      if (len > payload.size() - 4) return false;
      std::string_view sql(reinterpret_cast<const char*>(payload.data() + 4),
                           len);
      return !is_read_sql(sql);
    }
    default:
      return false;
  }
}

/// Decrements the live-session gauge on every serve_session exit path.
class LiveSessionGuard {
 public:
  explicit LiveSessionGuard(std::atomic<uint64_t>& gauge) : gauge_(gauge) {}
  ~LiveSessionGuard() { gauge_.fetch_sub(1); }

 private:
  std::atomic<uint64_t>& gauge_;
};

}  // namespace

Server::Server(sql::Database& db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      listener_(options_.host, options_.port),
      dedup_(options_.dedup),
      batcher_(QueryBatcher::Options{options_.batch_window_ms,
                                     options_.batch_max}) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  draining_.store(false);
  // A session occupies its worker for the connection's whole lifetime
  // (blocking reads), so the auto-sized pool is floored at 4: on a 1-core
  // host "one per hardware thread" would let a single idle client starve
  // every later connection until the read timeout fires.
  unsigned workers = options_.worker_threads;
  if (workers == 0) {
    workers = std::max(4u, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<util::ThreadPool>(workers);
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (options_.checkpoint_interval_ms > 0) {
    checkpoint_thread_ = std::thread([this] { checkpoint_loop(); });
  }
}

void Server::checkpoint_loop() {
  std::unique_lock<std::mutex> lk(checkpoint_mu_);
  const auto interval =
      std::chrono::milliseconds(options_.checkpoint_interval_ms);
  while (!draining_.load()) {
    if (checkpoint_cv_.wait_for(lk, interval,
                                [this] { return draining_.load(); })) {
      break;
    }
    try {
      // Shared, not unique: checkpoint only needs writers excluded (they
      // hold db_mu_ exclusively); concurrent reads keep flowing.
      std::shared_lock db_lock(db_mu_);
      db_.checkpoint();
      checkpoints_.fetch_add(1);
    } catch (const std::exception&) {
      // A failed checkpoint is not fatal: the WAL still holds everything,
      // so durability is unaffected — only the replay bound grows.
    }
  }
}

void Server::stop() {
  if (!running_.load()) return;
  draining_.store(true);
  checkpoint_cv_.notify_all();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Wake sessions blocked in recv. Only the read side is shut down: a
    // session mid-request still flushes its response before exiting.
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (auto& [id, sock] : sessions_) sock->shutdown_read();
  }
  // The pool destructor finishes every queued/in-flight session task.
  pool_.reset();
  running_.store(false);
}

void Server::accept_loop() {
  uint32_t backoff_ms = 1;
  while (!draining_.load()) {
    std::optional<Socket> sock;
    try {
      sock = listener_.accept();
      backoff_ms = 1;
    } catch (const std::exception&) {
      // Transient accept() failure (EMFILE/ENFILE under fd pressure, an
      // ECONNABORTED storm): the one thing the accept loop must never do
      // is exit — that would leave the server alive but unreachable.
      // Back off (capped) and try again; pending connections wait in the
      // kernel backlog meanwhile.
      accept_retries_.fetch_add(1);
      if (draining_.load()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 200u);
      continue;
    }
    if (!sock) break;  // listener closed: clean shutdown
    sessions_accepted_.fetch_add(1);

    // Admission control: past the cap, shedding with a retryable error is
    // kinder than queueing — the client backs off instead of timing out.
    if (options_.max_connections > 0 &&
        live_sessions_.load() >= options_.max_connections) {
      shed_connection(std::move(*sock));
      continue;
    }
    live_sessions_.fetch_add(1);
    uint64_t id = next_session_id_.fetch_add(1);
    // shared_ptr: std::function requires copyable captures.
    auto owned = std::make_shared<Socket>(std::move(*sock));
    try {
      pool_->submit(
          [this, owned, id] { serve_session(std::move(*owned), id); });
    } catch (const std::exception&) {
      live_sessions_.fetch_sub(1);  // pool draining: session never runs
    }
  }
}

void Server::shed_connection(Socket sock) {
  sessions_shed_.fetch_add(1);
  try {
    OverloadedError e("server: at capacity (" +
                      std::to_string(options_.max_connections) +
                      " connections); retry after backoff");
    Frame f = error_frame(e);
    sock.send_all(encode_frame(f.opcode, f.payload));
  } catch (const std::exception&) {
    // Peer already gone — it was going to learn about the shed either way.
  }
  // Socket closes on return; the client sees the error frame, then EOF.
}

void Server::serve_session(Socket sock, uint64_t session_id) {
  LiveSessionGuard live(live_sessions_);
  if (draining_.load()) return;  // accepted but never served: drain fast
  if (options_.read_timeout_ms > 0) {
    try {
      sock.set_recv_timeout_ms(options_.read_timeout_ms);
    } catch (const NetworkError&) {
      return;
    }
  }
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    // Re-checked under the registry lock: stop() sets draining_ before it
    // sweeps the registry, so a session registering after the sweep is
    // guaranteed to see the flag here and exit instead of blocking in
    // recv until the read timeout — which would stall the pool drain.
    if (draining_.load()) return;
    sessions_.emplace(session_id, &sock);
  }

  while (!draining_.load()) {
    Frame response;
    bool fatal = false;

    uint8_t header[kFrameHeaderBytes];
    try {
      if (!sock.recv_all_or_eof(header, sizeof(header))) break;
    } catch (const NetworkError&) {
      break;  // read timeout or mid-header disconnect: nothing to answer
    }

    FrameHeader fh{};
    try {
      fh = decode_frame_header(header, options_.max_frame_bytes);
    } catch (const std::exception& e) {
      // Bad magic / version / oversized length: the payload cannot be
      // skipped, so the stream position is unrecoverable. Answer with an
      // error frame, then drop the session.
      protocol_errors_.fetch_add(1);
      response = error_frame(e);
      fatal = true;
    }

    // A v2 frame interposes the request extension (ext_len byte + body)
    // between header and payload. An ext_len outside the sane range means
    // the stream is garbage, not just this request — treat like a bad
    // header.
    RequestExt ext;
    if (!fatal && fh.version == kWireVersionExt) {
      uint8_t ext_len = 0;
      uint8_t ext_body[kMaxRequestExtBytes];
      try {
        sock.recv_all(&ext_len, 1);
        if (ext_len >= kRequestExtBytes && ext_len <= kMaxRequestExtBytes) {
          sock.recv_all(ext_body, ext_len);
        }
      } catch (const NetworkError&) {
        break;  // disconnected mid-extension
      }
      if (ext_len < kRequestExtBytes || ext_len > kMaxRequestExtBytes) {
        protocol_errors_.fetch_add(1);
        response = error_frame(NetworkError(
            "wire: request extension length " + std::to_string(ext_len) +
            " outside [" + std::to_string(kRequestExtBytes) + ", " +
            std::to_string(kMaxRequestExtBytes) + "]"));
        fatal = true;
      } else {
        try {
          ext = parse_request_ext(ByteView(ext_body, ext_len));
        } catch (const std::exception& e) {
          protocol_errors_.fetch_add(1);
          response = error_frame(e);
          fatal = true;
        }
      }
    }

    if (!fatal) {
      Bytes payload(fh.payload_length);
      try {
        if (fh.payload_length > 0) {
          sock.recv_all(payload.data(), payload.size());
        }
      } catch (const NetworkError&) {
        break;  // disconnected mid-payload
      }
      // Effective deadline: the tighter of the server flag and what the
      // client says it is still willing to wait.
      uint32_t deadline_ms = options_.request_deadline_ms;
      if (ext.deadline_ms > 0 &&
          (deadline_ms == 0 || ext.deadline_ms < deadline_ms)) {
        deadline_ms = ext.deadline_ms;
      }
      // From here the frame boundary is intact: any failure — unknown
      // opcode, a payload that flunks bounds checks, SQL/storage errors
      // from execution — gets an error response and the session continues.
      try {
        if (!is_request_opcode(static_cast<uint8_t>(fh.opcode))) {
          throw NetworkError("wire: unknown request opcode " +
                             std::to_string(static_cast<int>(fh.opcode)));
        }
        if (ext.has_key && request_mutates(fh.opcode, payload)) {
          // Exactly-once: first arrival executes and records; a retry of
          // the same key replays the recorded response. A request shed
          // before execution (OverloadedError) aborts its claim instead —
          // "never ran" must stay retryable, not become a cached error.
          // The key is scoped by tenant: replaying (or poisoning) another
          // tenant's key is structurally impossible.
          DedupKey dkey{ext.tenant_id, ext.key};
          Frame cached;
          if (!dedup_.begin(dkey, &cached)) {
            response = std::move(cached);
          } else {
            try {
              response = handle_request(fh.opcode, payload, deadline_ms);
              dedup_.complete(dkey, response);
            } catch (const OverloadedError&) {
              dedup_.abort(dkey);
              throw;
            } catch (const std::exception& e) {
              // Deterministic failure (bad SQL, duplicate PK, decode
              // error): record it so a retry replays the same error
              // instead of executing twice.
              response = error_frame(e);
              dedup_.complete(dkey, response);
              if (dynamic_cast<const NetworkError*>(&e) != nullptr) {
                protocol_errors_.fetch_add(1);
              }
            }
          }
        } else {
          response = handle_request(fh.opcode, payload, deadline_ms);
        }
      } catch (const OverloadedError& e) {
        // A shed request is load, not a protocol violation.
        response = error_frame(e);
      } catch (const NetworkError& e) {
        protocol_errors_.fetch_add(1);
        response = error_frame(e);
      } catch (const std::exception& e) {
        response = error_frame(e);
      }
    }

    try {
      sock.send_all(encode_frame(response.opcode, response.payload));
    } catch (const NetworkError&) {
      break;  // peer is gone; nothing to flush
    }
    if (fatal) break;
    frames_served_.fetch_add(1);
  }

  std::lock_guard<std::mutex> lk(sessions_mu_);
  sessions_.erase(session_id);
}

Frame Server::error_frame(const std::exception& e) {
  WireWriter w;
  w.u16(static_cast<uint16_t>(status_code_for(e)));
  w.string(e.what());
  return Frame{Opcode::kError, std::move(w.bytes())};
}

// Deadline-bounded acquisition is a polled try_lock loop rather than
// try_lock_for: libstdc++ implements the latter via glibc's
// pthread_rwlock_clock{rd,wr}lock, which ThreadSanitizer does not
// intercept, so a successful timed acquisition would record no
// happens-before edge and every access under the lock would be reported
// as a race. Deadlines are millisecond-granular; a 100 µs poll costs
// noise against that while keeping the lock visible to the sanitizer.
std::shared_lock<std::shared_timed_mutex> Server::lock_shared(
    uint32_t deadline_ms) {
  if (deadline_ms == 0) return std::shared_lock(db_mu_);
  std::shared_lock lock(db_mu_, std::try_to_lock);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (!lock.owns_lock() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    (void)lock.try_lock();
  }
  if (!lock.owns_lock()) {
    deadline_rejects_.fetch_add(1);
    throw OverloadedError("server: request shed — database busy past the " +
                          std::to_string(deadline_ms) + " ms deadline");
  }
  return lock;
}

std::unique_lock<std::shared_timed_mutex> Server::lock_unique(
    uint32_t deadline_ms) {
  if (deadline_ms == 0) return std::unique_lock(db_mu_);
  std::unique_lock lock(db_mu_, std::try_to_lock);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (!lock.owns_lock() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    (void)lock.try_lock();
  }
  if (!lock.owns_lock()) {
    deadline_rejects_.fetch_add(1);
    throw OverloadedError("server: request shed — database busy past the " +
                          std::to_string(deadline_ms) + " ms deadline");
  }
  return lock;
}

Frame Server::handle_request(Opcode op, ByteView payload,
                             uint32_t deadline_ms) {
  WireReader r(payload);
  WireWriter w;
  switch (op) {
    case Opcode::kPing: {
      r.expect_end();
      return Frame{Opcode::kOkPong, {}};
    }
    case Opcode::kExecSql: {
      std::string sql = r.string();
      r.expect_end();
      sql::ResultSet rs;
      if (is_read_sql(sql)) {
        auto lock = lock_shared(deadline_ms);
        rs = db_.execute(sql);
      } else {
        storage::CommitHandle commit;
        {
          auto lock = lock_unique(deadline_ms);
          rs = db_.execute(sql);
          commit = db_.commit_async();
        }
        // Group commit: wait AFTER releasing the write lock, so the next
        // writer's work (and its commit) overlaps this fsync — the log
        // writer batches every queued commit into one sync.
        commit.wait();
      }
      encode_result_set(rs, w);
      return Frame{Opcode::kOkResult, std::move(w.bytes())};
    }
    case Opcode::kInsertBatch: {
      std::string table = r.string();
      uint32_t nrows = r.u32();
      if (nrows > r.remaining() / 4) {  // each row carries a u32 arity
        throw NetworkError("wire: insert row count overruns frame");
      }
      std::vector<sql::Row> rows;
      rows.reserve(nrows);
      for (uint32_t i = 0; i < nrows; ++i) rows.push_back(r.row());
      r.expect_end();
      std::vector<int64_t> ids;
      storage::CommitHandle commit;
      {
        auto lock = lock_unique(deadline_ms);
        ids = db_.insert_batch(table, rows);
        commit = db_.commit_async();
      }
      commit.wait();  // see kExecSql: fsync outside the write lock
      w.u32(static_cast<uint32_t>(ids.size()));
      for (int64_t id : ids) w.i64(id);
      return Frame{Opcode::kOkIds, std::move(w.bytes())};
    }
    case Opcode::kCreateTable: {
      std::string table = r.string();
      sql::Schema schema = r.schema();
      r.expect_end();
      storage::CommitHandle commit;
      {
        auto lock = lock_unique(deadline_ms);
        db_.create_table(table, std::move(schema));
        commit = db_.commit_async();
      }
      commit.wait();
      return Frame{Opcode::kOkUnit, {}};
    }
    case Opcode::kCreateIndex: {
      std::string table = r.string();
      std::string column = r.string();
      r.expect_end();
      storage::CommitHandle commit;
      {
        auto lock = lock_unique(deadline_ms);
        db_.create_index(table, column);
        commit = db_.commit_async();
      }
      commit.wait();
      return Frame{Opcode::kOkUnit, {}};
    }
    case Opcode::kHasTable: {
      std::string table = r.string();
      r.expect_end();
      auto lock = lock_shared(deadline_ms);
      w.u8(db_.has_table(table) ? 1 : 0);
      return Frame{Opcode::kOkBool, std::move(w.bytes())};
    }
    case Opcode::kRowCount: {
      std::string table = r.string();
      r.expect_end();
      auto lock = lock_shared(deadline_ms);
      w.u64(db_.table(table).row_count());
      return Frame{Opcode::kOkCount, std::move(w.bytes())};
    }
    case Opcode::kTableSchema: {
      std::string table = r.string();
      r.expect_end();
      auto lock = lock_shared(deadline_ms);
      w.schema(db_.table(table).schema());
      return Frame{Opcode::kOkSchema, std::move(w.bytes())};
    }
    case Opcode::kTagScan: {
      // The prepared multi-probe path: the tag list becomes an IN predicate
      // AST directly — a 10k-tag WRE search never round-trips through SQL
      // text on the server.
      std::string table = sql::to_lower(r.string());
      std::string tag_column = sql::to_lower(r.string());
      bool star = r.u8() != 0;
      uint32_t ntags = r.u32();
      if (ntags > r.remaining() / 8) {
        throw NetworkError("wire: tag count overruns frame");
      }
      std::vector<sql::Value> tags;
      tags.reserve(ntags);
      for (uint32_t i = 0; i < ntags; ++i) tags.push_back(sql::Value::tag(r.u64()));
      r.expect_end();

      sql::SelectStmt stmt;
      stmt.star = star;
      if (!star) stmt.columns = {"id"};
      stmt.table = table;
      stmt.where = sql::Expr::in_list(tag_column, std::move(tags));
      // With batching enabled, scans landing in the same window execute
      // under ONE shared-lock acquisition (the batch leader's); each item
      // still gets its own result (or error). Disabled, run() degenerates
      // to exactly the old lock-and-execute path.
      sql::ResultSet rs = batcher_.run(
          stmt, [this, deadline_ms](std::vector<QueryBatcher::Item*>& batch) {
            auto lock = lock_shared(deadline_ms);
            for (QueryBatcher::Item* it : batch) {
              try {
                it->result = db_.execute_select(*it->stmt);
              } catch (...) {
                it->error = std::current_exception();
              }
            }
          });
      encode_result_set(rs, w);
      return Frame{Opcode::kOkResult, std::move(w.bytes())};
    }
    case Opcode::kScanTable: {
      std::string table = r.string();
      r.expect_end();
      auto lock = lock_shared(deadline_ms);
      sql::Table& t = db_.table(table);
      sql::ResultSet rs;
      for (const sql::Column& c : t.schema().columns()) {
        rs.columns.push_back(c.name);
      }
      rs.rows.reserve(t.row_count());
      t.scan([&](int64_t, const sql::Row& row) { rs.rows.push_back(row); });
      encode_result_set(rs, w);
      return Frame{Opcode::kOkResult, std::move(w.bytes())};
    }
    default:
      throw NetworkError("wire: opcode " +
                         std::string(opcode_name(op)) +
                         " is not a request");
  }
}

}  // namespace wre::net
