#include "src/net/query_batcher.h"

#include <chrono>

namespace wre::net {

sql::ResultSet QueryBatcher::run(const sql::SelectStmt& stmt,
                                 const ExecuteFn& execute) {
  if (!enabled()) {
    // Un-batched fast path: execute alone, same callback contract.
    Item item;
    item.stmt = &stmt;
    std::vector<Item*> solo{&item};
    execute(solo);
    if (item.error) std::rethrow_exception(item.error);
    return std::move(item.result);
  }

  Item item;
  item.stmt = &stmt;
  std::unique_lock<std::mutex> lock(mu_);
  bool leader = !leader_active_;
  pending_.push_back(&item);
  if (leader) {
    // Lead the window: wait for followers until the window closes or the
    // batch fills. leader_active_ keeps later arrivals from also leading;
    // they either join this window or (if we already swapped it out) open
    // the next one under the next leader.
    leader_active_ = true;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.window_ms);
    cv_.wait_until(lock, deadline, [this] {
      return pending_.size() >= options_.max_batch;
    });
    std::vector<Item*> batch;
    batch.swap(pending_);
    leader_active_ = false;
    // Arrivals from here on see leader_active_ == false and lead the next
    // window — batches pipeline instead of queueing behind this execute.
    lock.unlock();

    try {
      execute(batch);
    } catch (...) {
      // The batch failed before per-item execution (the shared-lock wait
      // was shed): every query in it gets the same retryable error.
      auto err = std::current_exception();
      for (Item* it : batch) {
        if (!it->error) it->error = err;
      }
    }

    lock.lock();
    ++batches_;
    if (batch.size() > 1) coalesced_ += batch.size();
    for (Item* it : batch) it->done = true;
    cv_.notify_all();
  } else {
    // Follower: the window is open and has a leader. Notify in case our
    // arrival filled the batch, then wait for the leader to execute it.
    if (pending_.size() >= options_.max_batch) cv_.notify_all();
    cv_.wait(lock, [&item] { return item.done; });
  }
  if (item.error) std::rethrow_exception(item.error);
  return std::move(item.result);
}

uint64_t QueryBatcher::batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

uint64_t QueryBatcher::coalesced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_;
}

}  // namespace wre::net
