// Client-side transport that speaks the wire protocol to one wre_server —
// or to a horizontal fleet of them via tag-space scatter-gather.
//
// RemoteConnection implements core::DbTransport, so the entire WRE layer
// (EncryptedConnection, IngestPipeline) runs unchanged on the client: salts,
// tags and AES-CTR payloads are produced locally and only the physical rows
// — c_tag integers and c_enc ciphertext — ever cross the wire. The server
// never sees a key, a plaintext, or a query term; its view is exactly the
// honest-but-curious adversary's view from the paper.
//
// Topology: construct with one endpoint for the classic single-server
// transport, or with an ordered shard map (list position = shard index).
// Sharded routing follows src/net/shard.h:
//   - DDL (create_table / create_index) broadcasts to every shard;
//   - insert_batch partitions rows by the hash of their shard-key tag and
//     reassembles the returned ids into input order;
//   - tag_scan partitions its probe list per shard when querying the
//     shard-key column, and broadcasts the full list otherwise — either
//     way the per-shard result sets are disjoint and concatenated in
//     shard order;
//   - execute() (SELECT only when sharded — result rows are concatenated,
//     so aggregates would be wrong), scan() and row_count() broadcast;
//     has_table()/table_schema() ask shard 0 (DDL keeps shards uniform).
// On first sharded use the client round-trips kShardInfo to every shard
// and fails loudly if any server's --shard-index/--shard-count disagrees
// with the map, catching a mis-wired fleet before data lands anywhere.
//
// Transport behaviour:
//   - per-shard channel pools (RemoteOptions::connections_per_shard) of
//     pipelined connections: a scatter submits every sub-request before
//     awaiting any response, so shards — and pipelined requests on one
//     connection — overlap instead of serializing;
//   - safe retries for *every* request, mutating ones included: each
//     logical sub-request is stamped with a fresh random idempotency key
//     (the v2 wire extension) that stays constant across its retries, so
//     the server's dedup cache replays — never re-executes — a mutation
//     whose ACK was lost. Transport failures and kOverloaded responses
//     retry under capped exponential backoff with jitter, bounded by
//     RetryOptions: an attempt cap, an overall deadline, and a token
//     budget that stops a flapping link from turning into a retry storm.
//     Each sub-request retries against its own shard only — one slow
//     shard never forces re-work on the others;
//   - when retries stop, the caller gets RetriesExhaustedError naming the
//     attempt count, elapsed time and last underlying error;
//   - kError responses re-throw as the same wre::Error subclass the server
//     caught, so remote and in-process error handling are interchangeable.
//     Server-reported errors other than kOverloaded are deterministic and
//     are NOT retried.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/transport.h"
#include "src/crypto/secure_random.h"
#include "src/net/channel.h"
#include "src/net/shard.h"
#include "src/net/wire.h"
#include "src/util/rng.h"

namespace wre::net {

/// Bounds on the retry loop. The defaults suit a LAN client: give a
/// restarting server a few seconds, then fail loudly.
struct RetryOptions {
  /// Total tries per logical request (first attempt included). 1 disables
  /// retries entirely.
  int max_attempts = 4;
  /// First backoff; doubles per retry up to max_backoff_ms, with jitter.
  uint32_t initial_backoff_ms = 10;
  uint32_t max_backoff_ms = 2000;
  /// Wall-clock cap across all attempts of one request, ms (0 = none).
  /// Also sent to the server as the request deadline, so it stops queueing
  /// for a client that has already given up.
  uint32_t overall_deadline_ms = 30000;
  /// Token-bucket retry budget across requests: a retry costs 1 token, a
  /// success refunds 0.1 (up to the cap). When the bucket is dry, failures
  /// surface immediately instead of amplifying an outage with retries.
  double budget_tokens = 32.0;
  /// Seed for backoff jitter (deterministic schedules in tests).
  uint64_t jitter_seed = 0x5ca1ab1e;
};

struct RemoteOptions {
  /// Per-response payload ceiling (mirrors ServerOptions::max_frame_bytes).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Bounds how long one response may take (0 = wait forever). Each
  /// attempt's receive timeout is the tighter of this and what remains of
  /// the overall deadline.
  int response_timeout_ms = 60000;
  /// Tenant this connection acts for, stamped into every request's wire
  /// extension. Scopes the server's idempotency cache; 0 is the default
  /// single-tenant space. Carries no cryptographic authority — the
  /// tenant's keys stay client-side (crypto::TenantKeyring).
  uint64_t tenant_id = 0;
  /// Steady-state pooled connections per shard. Concurrent demand beyond
  /// this creates temporary connections that are dropped when released.
  size_t connections_per_shard = 1;
  /// Verify each shard's --shard-index/--shard-count against the endpoint
  /// map (kShardInfo) before the first sharded operation. On by default;
  /// tests pointing several "shards" at one server turn it off.
  bool verify_topology = true;
  RetryOptions retry;
};

/// Client-side fault-tolerance counters (cumulative). `requests` counts
/// wire-level sub-requests: a scatter over 3 shards is 3 requests.
struct RemoteStats {
  uint64_t requests = 0;    // sub-requests issued
  uint64_t retries = 0;     // extra attempts beyond the first
  uint64_t overloaded = 0;  // kOverloaded responses received
  uint64_t exhausted = 0;   // requests that ended in RetriesExhaustedError
  uint64_t fanouts = 0;     // sharded operations that touched >1 shard
};

class RemoteConnection final : public core::DbTransport {
 public:
  /// Single-server transport (shard count 1).
  RemoteConnection(std::string host, uint16_t port, RemoteOptions options = {});
  /// Scatter-gather transport over an ordered shard map. Throws
  /// NetworkError if `shards` is empty.
  RemoteConnection(std::vector<ShardEndpoint> shards,
                   RemoteOptions options = {});

  uint32_t shard_count() const {
    return static_cast<uint32_t>(pools_.size());
  }

  /// Round-trips a kPing to every shard; throws NetworkError if any is
  /// unreachable.
  void ping();

  /// Drops all pooled connections; subsequent requests reconnect.
  void disconnect();

  /// Switches the tenant stamped into subsequent requests (core::TenantPool's
  /// on_switch hook re-points one shared connection between requests).
  void set_tenant_id(uint64_t tenant_id);

  RemoteStats stats() const;

  /// Executes a batch of read-only SQL statements pipelined on one
  /// connection per shard: every request frame is written before any
  /// response is read, so a statement's server-side execution overlaps the
  /// next statement's network transfer. Results come back in input order.
  /// Sharded transports broadcast each statement and concatenate rows
  /// (SELECT only, like execute()).
  std::vector<sql::ResultSet> execute_pipelined(
      const std::vector<std::string>& sqls);

  // core::DbTransport
  sql::ResultSet execute(const std::string& sql) override;
  void create_table(const std::string& table,
                    const sql::Schema& schema) override;
  void create_index(const std::string& table,
                    const std::string& column) override;
  bool has_table(const std::string& table) override;
  uint64_t row_count(const std::string& table) override;
  sql::Schema table_schema(const std::string& table) override;
  std::vector<int64_t> insert_batch(const std::string& table,
                                    const std::vector<sql::Row>& rows) override;
  void scan(const std::string& table,
            const std::function<void(const sql::Row&)>& fn) override;
  sql::ResultSet tag_scan(const std::string& table,
                          const std::string& tag_column,
                          const std::vector<uint64_t>& tags,
                          bool star) override;

 private:
  /// One sub-request of a scatter: an opcode + payload bound for `shard`.
  struct Sub {
    uint32_t shard = 0;
    Bytes payload;
  };

  /// Executes a set of sub-requests under the retry policy. Sub-requests
  /// for the same shard are pipelined on one leased channel (submitted in
  /// order before any await); each sub retries independently with its own
  /// idempotency key, attempt count and backoff. Returns payloads in
  /// `subs` order. On any terminal failure, finishes/settles the other
  /// subs first, then rethrows the first terminal error in subs order.
  std::vector<Bytes> scatter(Opcode request, const std::vector<Sub>& subs,
                             Opcode expected);
  /// Single-sub convenience wrapper.
  Bytes roundtrip(uint32_t shard, Opcode request, ByteView payload,
                  Opcode expected);
  /// Broadcasts one payload to all shards and returns per-shard payloads.
  std::vector<Bytes> broadcast(Opcode request, ByteView payload,
                               Opcode expected);
  /// Broadcast + decode_result_set + row concatenation in shard order.
  sql::ResultSet broadcast_result(Opcode request, ByteView payload);

  /// First sharded use: kShardInfo every shard, verify index/count match
  /// the endpoint map. No-op for shard count 1 or verify_topology=false.
  void ensure_topology();

  /// Shard-key column (index + lower-cased name) of `table`, fetching and
  /// caching the schema from shard 0 on first sight. An unset index means
  /// a tag-less table, which lives wholly on shard 0.
  struct ShardKey {
    std::optional<size_t> index;
    std::string column;
  };
  ShardKey shard_key_for(const std::string& table);

  RemoteOptions options_;
  std::vector<std::unique_ptr<ChannelPool>> pools_;

  std::atomic<uint64_t> tenant_id_;

  std::mutex retry_mu_;           // guards the three fields below
  crypto::SecureRandom key_rng_;  // idempotency keys
  Xoshiro256 jitter_rng_;         // backoff jitter
  double budget_;                 // retry tokens remaining

  std::mutex topo_mu_;
  bool topology_verified_ = false;

  std::mutex schema_mu_;
  std::map<std::string, ShardKey> shard_key_cache_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> overloaded_{0};
  std::atomic<uint64_t> exhausted_{0};
  std::atomic<uint64_t> fanouts_{0};
};

}  // namespace wre::net
