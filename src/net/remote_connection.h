// Client-side transport that speaks the wire protocol to a wre_server.
//
// RemoteConnection implements core::DbTransport, so the entire WRE layer
// (EncryptedConnection, IngestPipeline) runs unchanged on the client: salts,
// tags and AES-CTR payloads are produced locally and only the physical rows
// — c_tag integers and c_enc ciphertext — ever cross the wire. The server
// never sees a key, a plaintext, or a query term; its view is exactly the
// honest-but-curious adversary's view from the paper.
//
// Transport behaviour:
//   - lazy connect: the TCP session is established on first use and reused
//     across requests (one socket, serialized by a mutex — clone the
//     RemoteConnection per thread for parallelism);
//   - retry-on-transient-error: if the connection drops between requests
//     (server restart, idle-timeout close), idempotent requests reconnect
//     and retry once; mutating requests surface the NetworkError instead,
//     because a retry could double-apply the write;
//   - kError responses re-throw as the same wre::Error subclass the server
//     caught, so remote and in-process error handling are interchangeable.
#pragma once

#include <mutex>
#include <optional>
#include <string>

#include "src/core/transport.h"
#include "src/net/socket.h"
#include "src/net/wire.h"

namespace wre::net {

struct RemoteOptions {
  /// Per-response payload ceiling (mirrors ServerOptions::max_frame_bytes).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Bounds how long one response may take (0 = wait forever).
  int response_timeout_ms = 60000;
};

class RemoteConnection final : public core::DbTransport {
 public:
  RemoteConnection(std::string host, uint16_t port, RemoteOptions options = {});

  /// Round-trips a kPing; throws NetworkError if the server is unreachable.
  void ping();

  /// Drops the cached socket; the next request reconnects.
  void disconnect();

  // core::DbTransport
  sql::ResultSet execute(const std::string& sql) override;
  void create_table(const std::string& table,
                    const sql::Schema& schema) override;
  void create_index(const std::string& table,
                    const std::string& column) override;
  bool has_table(const std::string& table) override;
  uint64_t row_count(const std::string& table) override;
  sql::Schema table_schema(const std::string& table) override;
  std::vector<int64_t> insert_batch(const std::string& table,
                                    const std::vector<sql::Row>& rows) override;
  void scan(const std::string& table,
            const std::function<void(const sql::Row&)>& fn) override;
  sql::ResultSet tag_scan(const std::string& table,
                          const std::string& tag_column,
                          const std::vector<uint64_t>& tags,
                          bool star) override;

 private:
  /// Sends one request frame and returns the response payload after
  /// verifying the response opcode. `idempotent` requests are retried once
  /// over a fresh connection if the old one turns out to be dead.
  Bytes roundtrip(Opcode request, ByteView payload, Opcode expected,
                  bool idempotent);
  Bytes roundtrip_once(Opcode request, ByteView payload, Opcode expected);
  Socket& socket_locked();

  std::string host_;
  uint16_t port_;
  RemoteOptions options_;

  std::mutex mu_;  // serializes the request/response cycle on sock_
  std::optional<Socket> sock_;
};

}  // namespace wre::net
