// Client-side transport that speaks the wire protocol to a wre_server.
//
// RemoteConnection implements core::DbTransport, so the entire WRE layer
// (EncryptedConnection, IngestPipeline) runs unchanged on the client: salts,
// tags and AES-CTR payloads are produced locally and only the physical rows
// — c_tag integers and c_enc ciphertext — ever cross the wire. The server
// never sees a key, a plaintext, or a query term; its view is exactly the
// honest-but-curious adversary's view from the paper.
//
// Transport behaviour:
//   - lazy connect: the TCP session is established on first use and reused
//     across requests (one socket, serialized by a mutex — clone the
//     RemoteConnection per thread for parallelism);
//   - safe retries for *every* request, mutating ones included: each
//     logical request is stamped with a fresh random idempotency key (the
//     v2 wire extension) that stays constant across its retries, so the
//     server's dedup cache replays — never re-executes — a mutation whose
//     ACK was lost. Transport failures and kOverloaded responses retry
//     under capped exponential backoff with jitter, bounded by
//     RetryOptions: an attempt cap, an overall deadline, and a token
//     budget that stops a flapping link from turning into a retry storm;
//   - when retries stop, the caller gets RetriesExhaustedError naming the
//     attempt count, elapsed time and last underlying error;
//   - kError responses re-throw as the same wre::Error subclass the server
//     caught, so remote and in-process error handling are interchangeable.
//     Server-reported errors other than kOverloaded are deterministic and
//     are NOT retried.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <string>

#include "src/core/transport.h"
#include "src/crypto/secure_random.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/util/rng.h"

namespace wre::net {

/// Bounds on the retry loop. The defaults suit a LAN client: give a
/// restarting server a few seconds, then fail loudly.
struct RetryOptions {
  /// Total tries per logical request (first attempt included). 1 disables
  /// retries entirely.
  int max_attempts = 4;
  /// First backoff; doubles per retry up to max_backoff_ms, with jitter.
  uint32_t initial_backoff_ms = 10;
  uint32_t max_backoff_ms = 2000;
  /// Wall-clock cap across all attempts of one request, ms (0 = none).
  /// Also sent to the server as the request deadline, so it stops queueing
  /// for a client that has already given up.
  uint32_t overall_deadline_ms = 30000;
  /// Token-bucket retry budget across requests: a retry costs 1 token, a
  /// success refunds 0.1 (up to the cap). When the bucket is dry, failures
  /// surface immediately instead of amplifying an outage with retries.
  double budget_tokens = 32.0;
  /// Seed for backoff jitter (deterministic schedules in tests).
  uint64_t jitter_seed = 0x5ca1ab1e;
};

struct RemoteOptions {
  /// Per-response payload ceiling (mirrors ServerOptions::max_frame_bytes).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Bounds how long one response may take (0 = wait forever). Each
  /// attempt's receive timeout is the tighter of this and what remains of
  /// the overall deadline.
  int response_timeout_ms = 60000;
  /// Tenant this connection acts for, stamped into every request's wire
  /// extension. Scopes the server's idempotency cache; 0 is the default
  /// single-tenant space. Carries no cryptographic authority — the
  /// tenant's keys stay client-side (crypto::TenantKeyring).
  uint64_t tenant_id = 0;
  RetryOptions retry;
};

/// Client-side fault-tolerance counters (cumulative).
struct RemoteStats {
  uint64_t requests = 0;    // logical requests issued
  uint64_t retries = 0;     // extra attempts beyond the first
  uint64_t overloaded = 0;  // kOverloaded responses received
  uint64_t exhausted = 0;   // requests that ended in RetriesExhaustedError
};

class RemoteConnection final : public core::DbTransport {
 public:
  RemoteConnection(std::string host, uint16_t port, RemoteOptions options = {});

  /// Round-trips a kPing; throws NetworkError if the server is unreachable.
  void ping();

  /// Drops the cached socket; the next request reconnects.
  void disconnect();

  /// Switches the tenant stamped into subsequent requests. Serialized with
  /// in-flight round trips, so a multi-tenant caller (core::TenantPool's
  /// on_switch hook) can re-point one shared connection between requests.
  void set_tenant_id(uint64_t tenant_id);

  RemoteStats stats() const;

  // core::DbTransport
  sql::ResultSet execute(const std::string& sql) override;
  void create_table(const std::string& table,
                    const sql::Schema& schema) override;
  void create_index(const std::string& table,
                    const std::string& column) override;
  bool has_table(const std::string& table) override;
  uint64_t row_count(const std::string& table) override;
  sql::Schema table_schema(const std::string& table) override;
  std::vector<int64_t> insert_batch(const std::string& table,
                                    const std::vector<sql::Row>& rows) override;
  void scan(const std::string& table,
            const std::function<void(const sql::Row&)>& fn) override;
  sql::ResultSet tag_scan(const std::string& table,
                          const std::string& tag_column,
                          const std::vector<uint64_t>& tags,
                          bool star) override;

 private:
  /// Executes one logical request under the retry policy: stamps it with a
  /// fresh idempotency key, then attempts until success, a non-retryable
  /// server error, or a retry bound trips (RetriesExhaustedError).
  Bytes roundtrip(Opcode request, ByteView payload, Opcode expected);
  /// One attempt. Server-reported errors come back in `status`/`message`
  /// (stream still aligned, connection kept); transport failures throw
  /// NetworkError.
  Bytes roundtrip_once(Opcode request, ByteView payload, Opcode expected,
                       const RequestExt& ext, uint64_t remaining_ms,
                       std::optional<StatusCode>* status,
                       std::string* message);
  Socket& socket_locked();

  std::string host_;
  uint16_t port_;
  RemoteOptions options_;

  std::mutex mu_;  // serializes the request/response cycle on sock_
  std::optional<Socket> sock_;
  crypto::SecureRandom key_rng_;  // idempotency keys
  Xoshiro256 jitter_rng_;         // backoff jitter (guarded by mu_)
  double budget_;                 // retry tokens remaining (guarded by mu_)

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> overloaded_{0};
  std::atomic<uint64_t> exhausted_{0};
};

}  // namespace wre::net
