// wre_server: hosts one sql::Database over TCP, speaking the binary wire
// protocol. This is the deployable split of the paper's model — the server
// process is an ordinary database that stores tag integers and ciphertext
// blobs; every cryptographic operation stays in the client process
// (RemoteConnection + EncryptedConnection).
//
// Usage:
//   wre_server --dir=/path/to/db [--host=127.0.0.1] [--port=7433]
//              [--threads=0] [--read-timeout-ms=60000] [--max-frame-mb=64]
//              [--query-threads=1] [--wal=1] [--checkpoint-interval-ms=60000]
//              [--max-connections=0] [--request-deadline-ms=0]
//              [--batch-window-ms=0] [--batch-max=64]
//              [--shard-index=0] [--shard-count=1] [--columnar=0]
//
// Sharding: a fleet of wre_servers can split the tag space horizontally.
// Each process declares its position with --shard-index/--shard-count and
// answers the kShardInfo handshake with it; the scatter-gather client
// (RemoteConnection with a shard map) verifies every endpoint against the
// map before the first sharded operation, so a mis-wired fleet fails
// loudly instead of scattering rows to the wrong servers. The server
// itself does not filter by tag — placement is entirely the client's job.
//
// Multi-tenancy: one wre_server serves any number of tenants over a shared
// table — clients stamp a tenant id into each request (scoping the
// idempotency cache) and hold per-tenant keys (crypto::TenantKeyring), so
// tag namespaces are cryptographically disjoint without server-side
// configuration. --batch-window-ms opts into cross-tenant query batching:
// tag scans arriving within the window execute under one lock acquisition,
// trading up to that much added latency for throughput near saturation.
//
// Overload protection: --max-connections caps live sessions (0 = unlimited;
// extras are shed with a retryable overloaded error) and
// --request-deadline-ms bounds how long any request may wait for the
// database lock before being shed (0 = no bound). Clients with retry
// enabled back off and try again on either.
//
// Durability is on by default: writes are group-committed to a WAL before
// they are acknowledged, crash recovery replays the log before the listener
// opens, and a background thread checkpoints every --checkpoint-interval-ms
// to bound replay time (0 disables the timer; --wal=0 disables logging
// entirely and restores the old checkpoint-on-SIGTERM behaviour).
//
// The bound port is printed as "LISTENING <port>" on stdout once the server
// is ready (useful with --port=0 for tests). SIGTERM or SIGINT triggers a
// graceful drain: in-flight requests finish, sessions close, the database
// checkpoints, and the process exits 0.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/net/server.h"
#include "src/sql/database.h"

namespace {

// Self-pipe so the signal handler stays async-signal-safe: the handler only
// write()s one byte; the main thread blocks in poll() until it arrives.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  uint8_t byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

struct Flags {
  std::string dir;
  std::string host = "127.0.0.1";
  long port = 7433;
  long threads = 0;
  long read_timeout_ms = 60000;
  long max_frame_mb = 64;
  long query_threads = 1;
  long wal = 1;
  long checkpoint_interval_ms = 60000;
  long max_connections = 0;
  long request_deadline_ms = 0;
  long batch_window_ms = 0;
  long batch_max = 64;
  long shard_index = 0;
  long shard_count = 1;
  long columnar = 0;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr,
               "wre_server: %s\n"
               "usage: wre_server --dir=PATH [--host=ADDR] [--port=N]\n"
               "                  [--threads=N] [--read-timeout-ms=N]\n"
               "                  [--max-frame-mb=N] [--query-threads=N]\n"
               "                  [--wal=0|1] [--checkpoint-interval-ms=N]\n"
               "                  [--max-connections=N] [--request-deadline-ms=N]\n"
               "                  [--batch-window-ms=N] [--batch-max=N]\n"
               "                  [--shard-index=N] [--shard-count=N]\n"
               "                  [--columnar=0|1]\n",
               message.c_str());
  std::exit(2);
}

long parse_long(const std::string& flag, const std::string& text) {
  try {
    size_t end = 0;
    long v = std::stol(text, &end);
    if (end != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    usage_error("flag " + flag + " needs an integer, got '" + text + "'");
  }
}

Flags parse_flags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      usage_error("expected --flag=value, got '" + arg + "'");
    }
    std::string key = arg.substr(0, eq);
    std::string val = arg.substr(eq + 1);
    if (key == "--dir") {
      flags.dir = val;
    } else if (key == "--host") {
      flags.host = val;
    } else if (key == "--port") {
      flags.port = parse_long(key, val);
    } else if (key == "--threads") {
      flags.threads = parse_long(key, val);
    } else if (key == "--read-timeout-ms") {
      flags.read_timeout_ms = parse_long(key, val);
    } else if (key == "--max-frame-mb") {
      flags.max_frame_mb = parse_long(key, val);
    } else if (key == "--query-threads") {
      flags.query_threads = parse_long(key, val);
    } else if (key == "--wal") {
      flags.wal = parse_long(key, val);
    } else if (key == "--checkpoint-interval-ms") {
      flags.checkpoint_interval_ms = parse_long(key, val);
    } else if (key == "--max-connections") {
      flags.max_connections = parse_long(key, val);
    } else if (key == "--request-deadline-ms") {
      flags.request_deadline_ms = parse_long(key, val);
    } else if (key == "--batch-window-ms") {
      flags.batch_window_ms = parse_long(key, val);
    } else if (key == "--batch-max") {
      flags.batch_max = parse_long(key, val);
    } else if (key == "--shard-index") {
      flags.shard_index = parse_long(key, val);
    } else if (key == "--shard-count") {
      flags.shard_count = parse_long(key, val);
    } else if (key == "--columnar") {
      flags.columnar = parse_long(key, val);
    } else {
      usage_error("unknown flag '" + key + "'");
    }
  }
  if (flags.dir.empty()) usage_error("--dir is required");
  if (flags.port < 0 || flags.port > 65535) usage_error("--port out of range");
  if (flags.max_frame_mb <= 0) usage_error("--max-frame-mb must be positive");
  if (flags.checkpoint_interval_ms < 0) {
    usage_error("--checkpoint-interval-ms must be >= 0");
  }
  if (flags.max_connections < 0) {
    usage_error("--max-connections must be >= 0");
  }
  if (flags.request_deadline_ms < 0) {
    usage_error("--request-deadline-ms must be >= 0");
  }
  if (flags.batch_window_ms < 0) {
    usage_error("--batch-window-ms must be >= 0");
  }
  if (flags.batch_max <= 0) {
    usage_error("--batch-max must be positive");
  }
  if (flags.shard_count <= 0) {
    usage_error("--shard-count must be positive");
  }
  if (flags.shard_index < 0 || flags.shard_index >= flags.shard_count) {
    usage_error("--shard-index must be in [0, --shard-count)");
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = parse_flags(argc, argv);

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("wre_server: pipe");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  try {
    wre::sql::DatabaseOptions db_options;
    db_options.query_threads =
        static_cast<unsigned>(flags.query_threads < 0 ? 0 : flags.query_threads);
    db_options.durability = flags.wal != 0;
    // Columnar segments live only in memory, so enabling this after crash
    // recovery is always safe: the store starts empty and builds fresh
    // segments from the recovered heaps on first use (DESIGN.md §5.9).
    db_options.columnar = flags.columnar != 0;
    // Recovery (if there is a leftover WAL) runs inside this constructor —
    // strictly before the listener opens, so a client can never observe
    // pre-recovery state.
    wre::sql::Database db(flags.dir, db_options);
    const auto& rec = db.recovery_stats();
    if (rec.segments_scanned > 0) {
      std::fprintf(stderr,
                   "wre_server: recovery replayed %llu commit(s), "
                   "%llu page(s), %llu catalog update(s)%s%s\n",
                   static_cast<unsigned long long>(rec.commits_applied),
                   static_cast<unsigned long long>(rec.pages_replayed),
                   static_cast<unsigned long long>(rec.catalogs_replayed),
                   rec.tail_truncated ? "; corrupt tail truncated" : "",
                   rec.uncommitted_records_discarded > 0
                       ? "; uncommitted tail discarded"
                       : "");
    }

    wre::net::ServerOptions options;
    options.host = flags.host;
    options.port = static_cast<uint16_t>(flags.port);
    options.worker_threads =
        static_cast<unsigned>(flags.threads < 0 ? 0 : flags.threads);
    options.read_timeout_ms = static_cast<int>(flags.read_timeout_ms);
    options.max_frame_bytes = static_cast<size_t>(flags.max_frame_mb) << 20;
    options.checkpoint_interval_ms =
        flags.wal != 0 ? static_cast<uint32_t>(flags.checkpoint_interval_ms)
                       : 0;
    options.max_connections = static_cast<size_t>(flags.max_connections);
    options.request_deadline_ms =
        static_cast<uint32_t>(flags.request_deadline_ms);
    options.batch_window_ms = static_cast<uint32_t>(flags.batch_window_ms);
    options.batch_max = static_cast<size_t>(flags.batch_max);
    options.shard_index = static_cast<uint32_t>(flags.shard_index);
    options.shard_count = static_cast<uint32_t>(flags.shard_count);

    wre::net::Server server(db, options);
    server.start();
    std::printf("LISTENING %u\n", static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    // Wait for SIGTERM/SIGINT.
    pollfd pfd{g_signal_pipe[0], POLLIN, 0};
    while (::poll(&pfd, 1, -1) < 0 && errno == EINTR) {
    }

    std::fprintf(stderr, "wre_server: draining...\n");
    server.stop();
    db.checkpoint();
    std::fprintf(stderr,
                 "wre_server: served %llu frames over %llu sessions "
                 "(%llu protocol errors, %llu background checkpoints)\n",
                 static_cast<unsigned long long>(server.frames_served()),
                 static_cast<unsigned long long>(server.sessions_accepted()),
                 static_cast<unsigned long long>(server.protocol_errors()),
                 static_cast<unsigned long long>(server.checkpoints()));
    std::fprintf(stderr,
                 "wre_server: fault tolerance: %llu sessions shed, "
                 "%llu deadline rejects, %llu dedup replays, "
                 "%llu accept retries\n",
                 static_cast<unsigned long long>(server.sessions_shed()),
                 static_cast<unsigned long long>(server.deadline_rejects()),
                 static_cast<unsigned long long>(server.dedup_hits()),
                 static_cast<unsigned long long>(server.accept_retries()));
    if (server.query_batches() > 0) {
      std::fprintf(
          stderr,
          "wre_server: batching: %llu batches, %llu scans coalesced\n",
          static_cast<unsigned long long>(server.query_batches()),
          static_cast<unsigned long long>(server.tag_scans_coalesced()));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wre_server: fatal: %s\n", e.what());
    return 1;
  }
}
