#include "src/net/net_fault.h"

#include <cstdlib>
#include <string>

namespace wre::net {

NetFaultInjector& NetFaultInjector::instance() {
  static NetFaultInjector injector;
  return injector;
}

NetFaultInjector::NetFaultInjector() {
  if (const char* spec = std::getenv("WRE_NET_FAULT")) {
    load_env(spec);
  }
}

void NetFaultInjector::load_env(const char* spec) {
  // "key=value;key=value" — unknown keys and malformed numbers are ignored
  // so a typo degrades to "fault not armed" rather than aborting a bench.
  Config config;
  std::string s(spec);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t end = s.find(';', pos);
    if (end == std::string::npos) end = s.size();
    std::string item = s.substr(pos, end - pos);
    pos = end + 1;
    size_t eq = item.find('=');
    if (eq == std::string::npos) continue;
    std::string key = item.substr(0, eq);
    std::string value = item.substr(eq + 1);
    try {
      if (key == "seed") {
        config.seed = std::stoull(value);
      } else if (key == "rate") {
        config.rate = std::stod(value);
      } else if (key == "reset") {
        config.reset = value != "0";
      } else if (key == "torn") {
        config.torn = value != "0";
      } else if (key == "delay_ms") {
        config.delay_ms = static_cast<uint32_t>(std::stoul(value));
      } else if (key == "stall_ms") {
        config.stall_ms = static_cast<uint32_t>(std::stoul(value));
      } else if (key == "accept_fail") {
        config.accept_fail = static_cast<uint32_t>(std::stoul(value));
      }
    } catch (...) {
      // Malformed number: leave that field at its default.
    }
  }
  arm(config);
}

void NetFaultInjector::arm(const Config& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  rng_ = Xoshiro256(config.seed);
  refresh_armed();
}

void NetFaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = Config{};
  faults_injected_.store(0, std::memory_order_relaxed);
  refresh_armed();
}

void NetFaultInjector::refresh_armed() {
  bool any = config_.accept_fail > 0 ||
             (config_.rate > 0.0 &&
              (config_.reset || config_.torn || config_.delay_ms > 0 ||
               config_.stall_ms > 0));
  armed_.store(any, std::memory_order_relaxed);
}

NetFaultInjector::SendPlan NetFaultInjector::on_send(size_t len) {
  SendPlan plan;
  if (!armed()) return plan;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.rate <= 0.0 || rng_.next_double() >= config_.rate) return plan;
  if (config_.delay_ms > 0) {
    plan.delay_ms = 1 + static_cast<uint32_t>(rng_.next_below(config_.delay_ms));
  }
  // Torn and reset are mutually exclusive flavours of the same injected
  // connection death; when both are armed, pick per-fault.
  bool want_torn = config_.torn && (!config_.reset || rng_.next_below(2) == 0);
  if (want_torn) {
    plan.torn = true;
    // A prefix of [0, len): at least the frame is never fully delivered.
    plan.torn_prefix = len > 0 ? rng_.next_below(len) : 0;
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  } else if (config_.reset) {
    plan.reset = true;
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  } else if (plan.delay_ms > 0) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return plan;
}

NetFaultInjector::RecvPlan NetFaultInjector::on_recv() {
  RecvPlan plan;
  if (!armed()) return plan;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.rate <= 0.0 || rng_.next_double() >= config_.rate) return plan;
  if (config_.stall_ms > 0) {
    plan.stall_ms =
        1 + static_cast<uint32_t>(rng_.next_below(config_.stall_ms));
  }
  if (config_.reset && rng_.next_below(2) == 0) {
    plan.reset = true;
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  } else if (plan.stall_ms > 0) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return plan;
}

bool NetFaultInjector::on_accept() {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.accept_fail == 0) return false;
  --config_.accept_fail;
  faults_injected_.fetch_add(1, std::memory_order_relaxed);
  refresh_armed();
  return true;
}

}  // namespace wre::net
