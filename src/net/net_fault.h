// Fault-injection hooks for the network layer — the socket-level sibling of
// storage::FaultInjector (src/storage/fault_injector.h).
//
// Retry, dedup and overload handling cannot be argued from happy-path
// tests: the interesting states are a connection reset between a mutating
// request and its response, a frame torn mid-send, and a peer that answers
// slower than the caller's deadline. NetFaultInjector is the switchboard
// net::Socket consults so tests (and scripts/chaos_smoke.sh) can
// manufacture exactly those states reproducibly:
//
//   * rate=P        — per-operation fault probability (0 disables faults
//                     even when kinds are armed)
//   * reset=1       — sends/recvs fail as if the peer RST the connection
//   * torn=1        — sends transmit a random prefix, then reset: the peer
//                     sees a frame torn mid-stream
//   * delay_ms=N    — sends sleep up to N ms first (delayed frames; drives
//                     real receiver timeouts)
//   * stall_ms=N    — recvs sleep up to N ms first (slow-reader stalls)
//   * accept_fail=N — the next N Listener::accept calls throw a transient
//                     error (EMFILE-style), exercising the accept loop's
//                     retry path
//   * seed=S        — every random draw comes from one seeded generator, so
//                     a schedule is reproduced by its (seed, config) pair
//
// Faults arm either programmatically (unit tests, benches) or from the
// WRE_NET_FAULT environment variable (external processes): a ';'-separated
// list such as
//   WRE_NET_FAULT="seed=7;rate=0.02;reset=1;torn=1;delay_ms=2"
// parsed once at first use. All hooks are thread-safe; the default state is
// "no faults", with zero overhead beyond one relaxed atomic load per site.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/util/rng.h"

namespace wre::net {

class NetFaultInjector {
 public:
  struct Config {
    uint64_t seed = 1;
    double rate = 0.0;        // per-op fault probability
    bool reset = false;       // connection resets
    bool torn = false;        // partial (torn) writes, then reset
    uint32_t delay_ms = 0;    // max injected delay before a send
    uint32_t stall_ms = 0;    // max injected stall before a recv
    uint32_t accept_fail = 0; // next N accepts fail transiently
  };

  /// What a faulted send must do. delay applies first; a torn send
  /// transmits `torn_prefix` bytes before resetting.
  struct SendPlan {
    uint32_t delay_ms = 0;
    bool torn = false;
    size_t torn_prefix = 0;
    bool reset = false;
  };

  struct RecvPlan {
    uint32_t stall_ms = 0;
    bool reset = false;
  };

  /// Process-wide instance. Parses WRE_NET_FAULT on first call.
  static NetFaultInjector& instance();

  /// Arms faults per `config` (replacing any previous arming).
  void arm(const Config& config);

  /// Disarms everything and zeroes the counters.
  void reset();

  /// True if any fault is armed (lets hot paths skip the mutex).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // -- socket hooks ---------------------------------------------------------

  /// Consulted once per Socket::send_all of `len` bytes.
  SendPlan on_send(size_t len);

  /// Consulted once per Socket recv call.
  RecvPlan on_recv();

  /// Consulted once per Listener::accept; true = throw a transient error.
  bool on_accept();

  /// Faults injected so far (resets/torn sends; delays not counted).
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

 private:
  NetFaultInjector();
  void load_env(const char* spec);
  void refresh_armed();

  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  Config config_;
  Xoshiro256 rng_{1};
  std::atomic<uint64_t> faults_injected_{0};
};

}  // namespace wre::net
