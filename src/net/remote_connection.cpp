#include "src/net/remote_connection.h"

namespace wre::net {

RemoteConnection::RemoteConnection(std::string host, uint16_t port,
                                   RemoteOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

void RemoteConnection::ping() {
  roundtrip(Opcode::kPing, {}, Opcode::kOkPong, /*idempotent=*/true);
}

void RemoteConnection::disconnect() {
  std::lock_guard<std::mutex> lk(mu_);
  sock_.reset();
}

Socket& RemoteConnection::socket_locked() {
  if (!sock_) {
    Socket s = Socket::connect(host_, port_);
    if (options_.response_timeout_ms > 0) {
      s.set_recv_timeout_ms(options_.response_timeout_ms);
    }
    sock_.emplace(std::move(s));
  }
  return *sock_;
}

Bytes RemoteConnection::roundtrip_once(Opcode request, ByteView payload,
                                       Opcode expected) {
  Socket& sock = socket_locked();
  sock.send_all(encode_frame(request, payload));

  uint8_t header[kFrameHeaderBytes];
  sock.recv_all(header, sizeof(header));
  FrameHeader fh = decode_frame_header(header, options_.max_frame_bytes);
  Bytes body(fh.payload_length);
  if (fh.payload_length > 0) sock.recv_all(body.data(), body.size());

  if (fh.opcode == Opcode::kError) {
    // A server-side error leaves the stream aligned; keep the connection.
    WireReader r(body);
    StatusCode code = static_cast<StatusCode>(r.u16());
    std::string message = r.string();
    r.expect_end();
    rethrow_status(code, message);
  }
  if (fh.opcode != expected) {
    throw NetworkError(std::string("wire: expected ") + opcode_name(expected) +
                       " response to " + opcode_name(request) + ", got " +
                       opcode_name(fh.opcode));
  }
  return body;
}

Bytes RemoteConnection::roundtrip(Opcode request, ByteView payload,
                                  Opcode expected, bool idempotent) {
  std::lock_guard<std::mutex> lk(mu_);
  const bool had_connection = sock_.has_value();
  try {
    return roundtrip_once(request, payload, expected);
  } catch (const NetworkError&) {
    // The socket state is unknowable after a transport error; always drop it.
    sock_.reset();
    // Retry only when the failure can be a stale pooled connection (the
    // server idle-closed it between requests) and replaying cannot
    // double-apply anything. A failure on a fresh connection is real.
    if (!idempotent || !had_connection) throw;
  }
  return roundtrip_once(request, payload, expected);
}

sql::ResultSet RemoteConnection::execute(const std::string& sql) {
  WireWriter w;
  w.string(sql);
  // SQL text may mutate (INSERT): never auto-retry it.
  Bytes body = roundtrip(Opcode::kExecSql, w.bytes(), Opcode::kOkResult,
                         /*idempotent=*/false);
  WireReader r(body);
  sql::ResultSet rs = decode_result_set(r);
  r.expect_end();
  return rs;
}

void RemoteConnection::create_table(const std::string& table,
                                    const sql::Schema& schema) {
  WireWriter w;
  w.string(table);
  w.schema(schema);
  roundtrip(Opcode::kCreateTable, w.bytes(), Opcode::kOkUnit,
            /*idempotent=*/false);
}

void RemoteConnection::create_index(const std::string& table,
                                    const std::string& column) {
  WireWriter w;
  w.string(table);
  w.string(column);
  roundtrip(Opcode::kCreateIndex, w.bytes(), Opcode::kOkUnit,
            /*idempotent=*/false);
}

bool RemoteConnection::has_table(const std::string& table) {
  WireWriter w;
  w.string(table);
  Bytes body = roundtrip(Opcode::kHasTable, w.bytes(), Opcode::kOkBool,
                         /*idempotent=*/true);
  WireReader r(body);
  bool present = r.u8() != 0;
  r.expect_end();
  return present;
}

uint64_t RemoteConnection::row_count(const std::string& table) {
  WireWriter w;
  w.string(table);
  Bytes body = roundtrip(Opcode::kRowCount, w.bytes(), Opcode::kOkCount,
                         /*idempotent=*/true);
  WireReader r(body);
  uint64_t n = r.u64();
  r.expect_end();
  return n;
}

sql::Schema RemoteConnection::table_schema(const std::string& table) {
  WireWriter w;
  w.string(table);
  Bytes body = roundtrip(Opcode::kTableSchema, w.bytes(), Opcode::kOkSchema,
                         /*idempotent=*/true);
  WireReader r(body);
  sql::Schema schema = r.schema();
  r.expect_end();
  return schema;
}

std::vector<int64_t> RemoteConnection::insert_batch(
    const std::string& table, const std::vector<sql::Row>& rows) {
  WireWriter w;
  w.string(table);
  w.u32(static_cast<uint32_t>(rows.size()));
  for (const sql::Row& row : rows) w.row(row);
  Bytes body = roundtrip(Opcode::kInsertBatch, w.bytes(), Opcode::kOkIds,
                         /*idempotent=*/false);
  WireReader r(body);
  uint32_t n = r.u32();
  std::vector<int64_t> ids;
  ids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) ids.push_back(r.i64());
  r.expect_end();
  return ids;
}

void RemoteConnection::scan(const std::string& table,
                            const std::function<void(const sql::Row&)>& fn) {
  WireWriter w;
  w.string(table);
  Bytes body = roundtrip(Opcode::kScanTable, w.bytes(), Opcode::kOkResult,
                         /*idempotent=*/true);
  WireReader r(body);
  sql::ResultSet rs = decode_result_set(r);
  r.expect_end();
  for (const sql::Row& row : rs.rows) fn(row);
}

sql::ResultSet RemoteConnection::tag_scan(const std::string& table,
                                          const std::string& tag_column,
                                          const std::vector<uint64_t>& tags,
                                          bool star) {
  WireWriter w;
  w.string(table);
  w.string(tag_column);
  w.u8(star ? 1 : 0);
  w.u32(static_cast<uint32_t>(tags.size()));
  for (uint64_t t : tags) w.u64(t);
  Bytes body = roundtrip(Opcode::kTagScan, w.bytes(), Opcode::kOkResult,
                         /*idempotent=*/true);
  WireReader r(body);
  sql::ResultSet rs = decode_result_set(r);
  r.expect_end();
  return rs;
}

}  // namespace wre::net
