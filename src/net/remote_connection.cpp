#include "src/net/remote_connection.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <limits>
#include <thread>

#include "src/util/error.h"

namespace wre::net {

namespace {

uint64_t elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

bool looks_like_select(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  return sql.size() - i >= 6 && sql::to_lower(sql.substr(i, 6)) == "select";
}

}  // namespace

RemoteConnection::RemoteConnection(std::string host, uint16_t port,
                                   RemoteOptions options)
    : RemoteConnection(
          std::vector<ShardEndpoint>{ShardEndpoint{std::move(host), port}},
          options) {}

RemoteConnection::RemoteConnection(std::vector<ShardEndpoint> shards,
                                   RemoteOptions options)
    : options_(options),
      tenant_id_(options.tenant_id),
      jitter_rng_(options.retry.jitter_seed),
      budget_(options.retry.budget_tokens) {
  if (shards.empty()) throw NetworkError("remote: empty shard map");
  pools_.reserve(shards.size());
  for (ShardEndpoint& ep : shards) {
    pools_.push_back(std::make_unique<ChannelPool>(
        std::move(ep), options_.connections_per_shard,
        options_.max_frame_bytes, options_.response_timeout_ms));
  }
}

void RemoteConnection::ping() {
  broadcast(Opcode::kPing, {}, Opcode::kOkPong);
}

void RemoteConnection::disconnect() {
  for (auto& pool : pools_) pool->clear();
}

void RemoteConnection::set_tenant_id(uint64_t tenant_id) {
  tenant_id_.store(tenant_id, std::memory_order_relaxed);
}

RemoteStats RemoteConnection::stats() const {
  RemoteStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  s.fanouts = fanouts_.load(std::memory_order_relaxed);
  return s;
}

std::vector<Bytes> RemoteConnection::scatter(Opcode request,
                                             const std::vector<Sub>& subs,
                                             Opcode expected) {
  requests_.fetch_add(subs.size(), std::memory_order_relaxed);

  const RetryOptions& rp = options_.retry;
  const auto start = std::chrono::steady_clock::now();
  const uint64_t tenant = tenant_id_.load(std::memory_order_relaxed);

  // Per-sub retry state. Each sub carries one fresh idempotency key that
  // stays constant across its retries — the unit the server's dedup cache
  // makes exactly-once. The tenant id scopes that key server-side.
  struct Pend {
    const Sub* sub = nullptr;
    RequestExt ext;
    uint64_t ticket = 0;
    bool inflight = false;
    bool done = false;
    Bytes result;
    std::exception_ptr terminal;
    std::string last_error = "no error recorded";
    int attempts = 0;  // completed attempts
    uint32_t backoff_ms = 0;
  };
  std::vector<Pend> pend(subs.size());
  {
    std::lock_guard<std::mutex> lk(retry_mu_);
    for (size_t i = 0; i < subs.size(); ++i) {
      pend[i].sub = &subs[i];
      pend[i].ext.has_key = true;
      key_rng_.fill(pend[i].ext.key);
      pend[i].ext.tenant_id = tenant;
      pend[i].backoff_ms = std::max<uint32_t>(1, rp.initial_backoff_ms);
    }
  }

  auto settle_exhausted = [this](Pend& p, std::string msg, int attempts,
                                 uint64_t elapsed) {
    exhausted_.fetch_add(1, std::memory_order_relaxed);
    try {
      throw RetriesExhaustedError(std::move(msg), attempts, elapsed);
    } catch (...) {
      p.terminal = std::current_exception();
    }
  };
  auto remaining_of_deadline = [&rp](uint64_t elapsed) -> uint64_t {
    if (rp.overall_deadline_ms == 0) return 0;  // 0 = unbounded
    return rp.overall_deadline_ms > elapsed ? rp.overall_deadline_ms - elapsed
                                            : 1;
  };

  for (;;) {
    // Submit phase: group still-active subs by shard and burst each
    // group down one leased channel — every frame is on the wire before
    // any response is awaited, so shards and pipelined requests overlap.
    std::map<uint32_t, std::vector<Pend*>> by_shard;
    for (Pend& p : pend) {
      if (p.done || p.terminal) continue;
      uint64_t elapsed = elapsed_ms_since(start);
      if (rp.overall_deadline_ms > 0 && elapsed >= rp.overall_deadline_ms) {
        settle_exhausted(
            p,
            "remote: overall deadline of " +
                std::to_string(rp.overall_deadline_ms) + " ms expired after " +
                std::to_string(elapsed) + " ms and " +
                std::to_string(p.attempts) + " attempts (last error: " +
                p.last_error + ")",
            p.attempts, elapsed);
        continue;
      }
      by_shard[p.sub->shard].push_back(&p);
    }
    if (by_shard.empty()) break;

    std::map<uint32_t, ChannelPool::Lease> leases;
    for (auto& [shard, group] : by_shard) {
      auto [lease_it, inserted] = leases.emplace(shard, pools_[shard]->acquire());
      ChannelPool::Lease& lease = lease_it->second;
      for (size_t gi = 0; gi < group.size(); ++gi) {
        Pend& p = *group[gi];
        ++p.attempts;
        p.ext.deadline_ms = static_cast<uint32_t>(std::min<uint64_t>(
            remaining_of_deadline(elapsed_ms_since(start)),
            std::numeric_limits<uint32_t>::max()));
        try {
          p.ticket = lease->submit(request, p.sub->payload, p.ext);
          p.inflight = true;
        } catch (const NetworkError& e) {
          // The channel died; every later submit on it would fail the
          // same way, so charge the whole rest of the group one attempt
          // and move on to the next shard.
          for (size_t gj = gi; gj < group.size(); ++gj) {
            Pend& q = *group[gj];
            if (gj > gi) ++q.attempts;
            q.last_error = e.what();
            q.inflight = false;
          }
          break;
        }
      }
      // Uncork the burst now — not lazily at the first await — so every
      // shard's server is working before we block on any response.
      try {
        if (!lease->dead()) lease->flush();
      } catch (const NetworkError& e) {
        for (Pend* pp : group) {
          if (pp->inflight) {
            pp->last_error = e.what();
            pp->inflight = false;
          }
        }
      }
    }

    // Await phase: responses come back in ticket order per channel. A
    // transport failure poisons that channel, so the rest of its group
    // fails fast instead of timing out one by one.
    for (auto& [shard, group] : by_shard) {
      ChannelPool::Lease& lease = leases.at(shard);
      for (Pend* pp : group) {
        Pend& p = *pp;
        if (!p.inflight) continue;
        p.inflight = false;
        try {
          PipelinedChannel::Response resp = lease->await(
              p.ticket, remaining_of_deadline(elapsed_ms_since(start)));
          if (resp.opcode == Opcode::kError) {
            // A server-side error leaves the stream aligned; keep the
            // channel and hand the status to the retry logic (only
            // kOverloaded retries).
            WireReader r(resp.payload);
            auto status = static_cast<StatusCode>(r.u16());
            std::string message = r.string();
            r.expect_end();
            if (status != StatusCode::kOverloaded) {
              // Deterministic server-side failure (bad SQL, duplicate
              // key, malformed payload): retrying cannot change the
              // outcome.
              try {
                rethrow_status(status, message);
              } catch (...) {
                p.terminal = std::current_exception();
              }
            } else {
              overloaded_.fetch_add(1, std::memory_order_relaxed);
              p.last_error = message;
            }
          } else if (resp.opcode != expected) {
            p.last_error = std::string("wire: expected ") +
                           opcode_name(expected) + " response to " +
                           opcode_name(request) + ", got " +
                           opcode_name(resp.opcode);
            lease->poison(p.last_error);
          } else {
            p.done = true;
            p.result = std::move(resp.payload);
            // Success refunds a fraction of a retry token (capped):
            // steady traffic slowly re-earns the right to retry.
            std::lock_guard<std::mutex> lk(retry_mu_);
            budget_ = std::min(rp.budget_tokens, budget_ + 0.1);
          }
        } catch (const NetworkError& e) {
          p.last_error = e.what();
        }
      }
    }
    leases.clear();  // healthy channels return to their pools; dead ones drop

    // Retry bookkeeping: attempt cap, then budget, then jittered backoff.
    // One sleep per round (the max of the failing subs' backoffs) — each
    // sub still owns its own doubling schedule.
    uint64_t round_sleep = 0;
    for (Pend& p : pend) {
      if (p.done || p.terminal) continue;
      uint64_t now_elapsed = elapsed_ms_since(start);
      if (p.attempts >= rp.max_attempts) {
        settle_exhausted(p,
                         "remote: " + std::to_string(p.attempts) +
                             " attempts failed over " +
                             std::to_string(now_elapsed) +
                             " ms (last error: " + p.last_error + ")",
                         p.attempts, now_elapsed);
        continue;
      }
      bool budget_ok = false;
      uint64_t sleep_ms = 0;
      {
        std::lock_guard<std::mutex> lk(retry_mu_);
        if (budget_ >= 1.0) {
          budget_ok = true;
          budget_ -= 1.0;
          // Jitter in [backoff/2, backoff), capped below by the
          // remaining deadline so the last sleep cannot blow through it.
          sleep_ms = p.backoff_ms / 2 +
                     jitter_rng_.next_below(p.backoff_ms / 2 + 1);
        }
      }
      if (!budget_ok) {
        settle_exhausted(p,
                         "remote: retry budget exhausted after " +
                             std::to_string(p.attempts) + " attempts over " +
                             std::to_string(now_elapsed) +
                             " ms (last error: " + p.last_error + ")",
                         p.attempts, now_elapsed);
        continue;
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      if (rp.overall_deadline_ms > 0) {
        uint64_t left = rp.overall_deadline_ms > now_elapsed
                            ? rp.overall_deadline_ms - now_elapsed
                            : 0;
        sleep_ms = std::min(sleep_ms, left);
      }
      round_sleep = std::max(round_sleep, sleep_ms);
      p.backoff_ms = std::min(p.backoff_ms * 2, rp.max_backoff_ms);
    }
    if (round_sleep > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(round_sleep));
    }
  }

  for (Pend& p : pend) {
    if (p.terminal) std::rethrow_exception(p.terminal);
  }
  std::vector<Bytes> out;
  out.reserve(pend.size());
  for (Pend& p : pend) out.push_back(std::move(p.result));
  return out;
}

Bytes RemoteConnection::roundtrip(uint32_t shard, Opcode request,
                                  ByteView payload, Opcode expected) {
  std::vector<Sub> subs(1);
  subs[0].shard = shard;
  subs[0].payload.assign(payload.begin(), payload.end());
  return std::move(scatter(request, subs, expected)[0]);
}

std::vector<Bytes> RemoteConnection::broadcast(Opcode request,
                                               ByteView payload,
                                               Opcode expected) {
  std::vector<Sub> subs(pools_.size());
  for (uint32_t s = 0; s < pools_.size(); ++s) {
    subs[s].shard = s;
    subs[s].payload.assign(payload.begin(), payload.end());
  }
  if (subs.size() > 1) fanouts_.fetch_add(1, std::memory_order_relaxed);
  return scatter(request, subs, expected);
}

sql::ResultSet RemoteConnection::broadcast_result(Opcode request,
                                                  ByteView payload) {
  std::vector<Bytes> bodies = broadcast(request, payload, Opcode::kOkResult);
  sql::ResultSet merged;
  for (size_t s = 0; s < bodies.size(); ++s) {
    WireReader r(bodies[s]);
    sql::ResultSet rs = decode_result_set(r);
    r.expect_end();
    if (s == 0) {
      merged = std::move(rs);
    } else {
      for (sql::Row& row : rs.rows) merged.rows.push_back(std::move(row));
    }
  }
  return merged;
}

void RemoteConnection::ensure_topology() {
  if (pools_.size() <= 1 || !options_.verify_topology) return;
  std::lock_guard<std::mutex> lk(topo_mu_);
  if (topology_verified_) return;
  std::vector<Bytes> infos =
      broadcast(Opcode::kShardInfo, {}, Opcode::kOkShardInfo);
  for (uint32_t s = 0; s < infos.size(); ++s) {
    WireReader r(infos[s]);
    uint32_t index = r.u32();
    uint32_t count = r.u32();
    r.expect_end();
    if (index != s || count != pools_.size()) {
      const ShardEndpoint& ep = pools_[s]->endpoint();
      throw NetworkError(
          "shard map: " + ep.host + ":" + std::to_string(ep.port) +
          " reports shard " + std::to_string(index) + " of " +
          std::to_string(count) + " but the endpoint map places it at " +
          std::to_string(s) + " of " + std::to_string(pools_.size()) +
          " (check --shard-index/--shard-count)");
    }
  }
  topology_verified_ = true;
}

RemoteConnection::ShardKey RemoteConnection::shard_key_for(
    const std::string& table) {
  std::string key = sql::to_lower(table);
  {
    std::lock_guard<std::mutex> lk(schema_mu_);
    auto it = shard_key_cache_.find(key);
    if (it != shard_key_cache_.end()) return it->second;
  }
  // DDL broadcasts keep shards uniform, so shard 0's schema is canonical.
  WireWriter w;
  w.string(table);
  Bytes body = roundtrip(0, Opcode::kTableSchema, w.bytes(), Opcode::kOkSchema);
  WireReader r(body);
  sql::Schema schema = r.schema();
  r.expect_end();
  ShardKey sk;
  sk.index = shard_key_index(schema);
  if (sk.index) sk.column = schema.column(*sk.index).name;
  std::lock_guard<std::mutex> lk(schema_mu_);
  shard_key_cache_[key] = sk;
  return sk;
}

std::vector<sql::ResultSet> RemoteConnection::execute_pipelined(
    const std::vector<std::string>& sqls) {
  const uint32_t n = shard_count();
  if (n > 1) ensure_topology();
  std::vector<Sub> subs;
  subs.reserve(sqls.size() * n);
  for (const std::string& sql : sqls) {
    if (n > 1 && !looks_like_select(sql)) {
      throw NetworkError(
          "remote: sharded transport supports only SELECT through "
          "execute_pipelined(); mutations must go through insert_batch");
    }
    WireWriter w;
    w.string(sql);
    for (uint32_t s = 0; s < n; ++s) {
      Sub sub;
      sub.shard = s;
      sub.payload = w.bytes();
      subs.push_back(std::move(sub));
    }
  }
  if (n > 1 && !sqls.empty()) {
    fanouts_.fetch_add(sqls.size(), std::memory_order_relaxed);
  }
  std::vector<Bytes> bodies = scatter(Opcode::kExecSql, subs, Opcode::kOkResult);
  std::vector<sql::ResultSet> out(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    for (uint32_t s = 0; s < n; ++s) {
      WireReader r(bodies[i * n + s]);
      sql::ResultSet rs = decode_result_set(r);
      r.expect_end();
      if (s == 0) {
        out[i] = std::move(rs);
      } else {
        for (sql::Row& row : rs.rows) out[i].rows.push_back(std::move(row));
      }
    }
  }
  return out;
}

sql::ResultSet RemoteConnection::execute(const std::string& sql) {
  WireWriter w;
  w.string(sql);
  if (shard_count() == 1) {
    Bytes body = roundtrip(0, Opcode::kExecSql, w.bytes(), Opcode::kOkResult);
    WireReader r(body);
    sql::ResultSet rs = decode_result_set(r);
    r.expect_end();
    return rs;
  }
  ensure_topology();
  if (!looks_like_select(sql)) {
    // Row concatenation is only correct for plain row-returning SELECTs,
    // and a broadcast INSERT/UPDATE would run once per shard.
    throw NetworkError(
        "remote: sharded transport supports only SELECT through execute(); "
        "mutations must go through insert_batch/create_table");
  }
  return broadcast_result(Opcode::kExecSql, w.bytes());
}

void RemoteConnection::create_table(const std::string& table,
                                    const sql::Schema& schema) {
  if (shard_count() > 1) ensure_topology();
  WireWriter w;
  w.string(table);
  w.schema(schema);
  broadcast(Opcode::kCreateTable, w.bytes(), Opcode::kOkUnit);
  ShardKey sk;
  sk.index = shard_key_index(schema);
  if (sk.index) sk.column = schema.column(*sk.index).name;
  std::lock_guard<std::mutex> lk(schema_mu_);
  shard_key_cache_[sql::to_lower(table)] = sk;
}

void RemoteConnection::create_index(const std::string& table,
                                    const std::string& column) {
  if (shard_count() > 1) ensure_topology();
  WireWriter w;
  w.string(table);
  w.string(column);
  broadcast(Opcode::kCreateIndex, w.bytes(), Opcode::kOkUnit);
}

bool RemoteConnection::has_table(const std::string& table) {
  if (shard_count() > 1) ensure_topology();
  WireWriter w;
  w.string(table);
  Bytes body = roundtrip(0, Opcode::kHasTable, w.bytes(), Opcode::kOkBool);
  WireReader r(body);
  bool present = r.u8() != 0;
  r.expect_end();
  return present;
}

uint64_t RemoteConnection::row_count(const std::string& table) {
  if (shard_count() > 1) ensure_topology();
  WireWriter w;
  w.string(table);
  std::vector<Bytes> bodies =
      broadcast(Opcode::kRowCount, w.bytes(), Opcode::kOkCount);
  uint64_t total = 0;
  for (const Bytes& body : bodies) {
    WireReader r(body);
    total += r.u64();
    r.expect_end();
  }
  return total;
}

sql::Schema RemoteConnection::table_schema(const std::string& table) {
  if (shard_count() > 1) ensure_topology();
  WireWriter w;
  w.string(table);
  Bytes body = roundtrip(0, Opcode::kTableSchema, w.bytes(), Opcode::kOkSchema);
  WireReader r(body);
  sql::Schema schema = r.schema();
  r.expect_end();
  return schema;
}

std::vector<int64_t> RemoteConnection::insert_batch(
    const std::string& table, const std::vector<sql::Row>& rows) {
  const uint32_t n = shard_count();
  if (n == 1) {
    WireWriter w;
    w.string(table);
    w.u32(static_cast<uint32_t>(rows.size()));
    for (const sql::Row& row : rows) w.row(row);
    Bytes body = roundtrip(0, Opcode::kInsertBatch, w.bytes(), Opcode::kOkIds);
    WireReader r(body);
    uint32_t count = r.u32();
    std::vector<int64_t> ids;
    ids.reserve(count);
    for (uint32_t i = 0; i < count; ++i) ids.push_back(r.i64());
    r.expect_end();
    return ids;
  }

  ensure_topology();
  ShardKey sk = shard_key_for(table);
  // Partition rows by the hash of their shard-key tag; rows the key
  // cannot place (tag-less table, short row, non-integer value — the
  // owning shard will report the schema error) go to shard 0.
  std::vector<std::vector<uint32_t>> members(n);
  for (uint32_t i = 0; i < rows.size(); ++i) {
    uint32_t s = 0;
    if (sk.index && *sk.index < rows[i].size() &&
        rows[i][*sk.index].type() == sql::ValueType::kInt64) {
      s = shard_for_tag(rows[i][*sk.index].as_tag(), n);
    }
    members[s].push_back(i);
  }
  std::vector<Sub> subs;
  std::vector<const std::vector<uint32_t>*> sub_members;
  for (uint32_t s = 0; s < n; ++s) {
    if (members[s].empty()) continue;
    WireWriter w;
    w.string(table);
    w.u32(static_cast<uint32_t>(members[s].size()));
    for (uint32_t i : members[s]) w.row(rows[i]);
    Sub sub;
    sub.shard = s;
    sub.payload = w.bytes();
    subs.push_back(std::move(sub));
    sub_members.push_back(&members[s]);
  }
  if (subs.size() > 1) fanouts_.fetch_add(1, std::memory_order_relaxed);

  std::vector<Bytes> bodies = scatter(Opcode::kInsertBatch, subs, Opcode::kOkIds);
  // Reassemble the per-shard id lists into input order.
  std::vector<int64_t> ids(rows.size());
  for (size_t k = 0; k < bodies.size(); ++k) {
    const std::vector<uint32_t>& idx = *sub_members[k];
    WireReader r(bodies[k]);
    uint32_t count = r.u32();
    if (count != idx.size()) {
      throw NetworkError("remote: shard " + std::to_string(subs[k].shard) +
                         " returned " + std::to_string(count) + " ids for " +
                         std::to_string(idx.size()) + " inserted rows");
    }
    for (uint32_t j = 0; j < count; ++j) ids[idx[j]] = r.i64();
    r.expect_end();
  }
  return ids;
}

void RemoteConnection::scan(const std::string& table,
                            const std::function<void(const sql::Row&)>& fn) {
  if (shard_count() > 1) ensure_topology();
  WireWriter w;
  w.string(table);
  sql::ResultSet rs = broadcast_result(Opcode::kScanTable, w.bytes());
  for (const sql::Row& row : rs.rows) fn(row);
}

sql::ResultSet RemoteConnection::tag_scan(const std::string& table,
                                          const std::string& tag_column,
                                          const std::vector<uint64_t>& tags,
                                          bool star) {
  const uint32_t n = shard_count();
  auto encode = [&](const std::vector<uint64_t>& probe) {
    WireWriter w;
    w.string(table);
    w.string(tag_column);
    w.u8(star ? 1 : 0);
    w.u32(static_cast<uint32_t>(probe.size()));
    for (uint64_t t : probe) w.u64(t);
    return w.bytes();
  };
  if (n == 1) {
    Bytes body = roundtrip(0, Opcode::kTagScan, encode(tags), Opcode::kOkResult);
    WireReader r(body);
    sql::ResultSet rs = decode_result_set(r);
    r.expect_end();
    return rs;
  }

  ensure_topology();
  ShardKey sk = shard_key_for(table);
  std::vector<Sub> subs;
  if (sk.index && sql::to_lower(tag_column) == sk.column) {
    // Probing the shard-key column: each probe tag names exactly one
    // shard, so partition the list and only visit shards that own a tag.
    std::vector<std::vector<uint64_t>> per_shard(n);
    for (uint64_t t : tags) per_shard[shard_for_tag(t, n)].push_back(t);
    for (uint32_t s = 0; s < n; ++s) {
      if (per_shard[s].empty()) continue;
      Sub sub;
      sub.shard = s;
      sub.payload = encode(per_shard[s]);
      subs.push_back(std::move(sub));
    }
    if (subs.empty()) {
      // Empty probe list: ask shard 0 so the caller still gets columns.
      Sub sub;
      sub.payload = encode(tags);
      subs.push_back(std::move(sub));
    }
  } else {
    // Probing a non-key tag column: rows are placed by a different
    // column's tag, so every shard may own matches — broadcast the full
    // list. Results are still disjoint (each row lives on one shard).
    for (uint32_t s = 0; s < n; ++s) {
      Sub sub;
      sub.shard = s;
      sub.payload = encode(tags);
      subs.push_back(std::move(sub));
    }
  }
  if (subs.size() > 1) fanouts_.fetch_add(1, std::memory_order_relaxed);

  std::vector<Bytes> bodies = scatter(Opcode::kTagScan, subs, Opcode::kOkResult);
  sql::ResultSet merged;
  for (size_t k = 0; k < bodies.size(); ++k) {
    WireReader r(bodies[k]);
    sql::ResultSet rs = decode_result_set(r);
    r.expect_end();
    if (k == 0) {
      merged = std::move(rs);
    } else {
      for (sql::Row& row : rs.rows) merged.rows.push_back(std::move(row));
    }
  }
  return merged;
}

}  // namespace wre::net
