#include "src/net/remote_connection.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

namespace wre::net {

namespace {

uint64_t elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

RemoteConnection::RemoteConnection(std::string host, uint16_t port,
                                   RemoteOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      jitter_rng_(options.retry.jitter_seed),
      budget_(options.retry.budget_tokens) {}

void RemoteConnection::ping() {
  roundtrip(Opcode::kPing, {}, Opcode::kOkPong);
}

void RemoteConnection::disconnect() {
  std::lock_guard<std::mutex> lk(mu_);
  sock_.reset();
}

void RemoteConnection::set_tenant_id(uint64_t tenant_id) {
  std::lock_guard<std::mutex> lk(mu_);
  options_.tenant_id = tenant_id;
}

RemoteStats RemoteConnection::stats() const {
  RemoteStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  return s;
}

Socket& RemoteConnection::socket_locked() {
  if (!sock_) {
    sock_.emplace(Socket::connect(host_, port_));
  }
  return *sock_;
}

Bytes RemoteConnection::roundtrip_once(Opcode request, ByteView payload,
                                       Opcode expected, const RequestExt& ext,
                                       uint64_t remaining_ms,
                                       std::optional<StatusCode>* status,
                                       std::string* message) {
  Socket& sock = socket_locked();
  // Per-attempt receive timeout: the tighter of the response timeout and
  // what remains of the overall deadline, so one slow attempt cannot eat
  // the whole retry window.
  uint64_t timeout = options_.response_timeout_ms > 0
                         ? static_cast<uint64_t>(options_.response_timeout_ms)
                         : 0;
  if (remaining_ms > 0 && (timeout == 0 || remaining_ms < timeout)) {
    timeout = remaining_ms;
  }
  if (timeout > 0) {
    sock.set_recv_timeout_ms(static_cast<int>(
        std::min<uint64_t>(timeout, std::numeric_limits<int>::max())));
  }
  sock.send_all(encode_request_frame(request, payload, ext));

  uint8_t header[kFrameHeaderBytes];
  sock.recv_all(header, sizeof(header));
  FrameHeader fh = decode_frame_header(header, options_.max_frame_bytes);
  Bytes body(fh.payload_length);
  if (fh.payload_length > 0) sock.recv_all(body.data(), body.size());

  if (fh.opcode == Opcode::kError) {
    // A server-side error leaves the stream aligned; keep the connection
    // and hand the status to the retry loop (only kOverloaded retries).
    WireReader r(body);
    *status = static_cast<StatusCode>(r.u16());
    *message = r.string();
    r.expect_end();
    return {};
  }
  if (fh.opcode != expected) {
    throw NetworkError(std::string("wire: expected ") + opcode_name(expected) +
                       " response to " + opcode_name(request) + ", got " +
                       opcode_name(fh.opcode));
  }
  return body;
}

Bytes RemoteConnection::roundtrip(Opcode request, ByteView payload,
                                  Opcode expected) {
  std::lock_guard<std::mutex> lk(mu_);
  requests_.fetch_add(1, std::memory_order_relaxed);

  // One fresh key per logical request, constant across its retries — the
  // unit the server's dedup cache makes exactly-once. The tenant id scopes
  // that key server-side: retries replay only within our own tenant.
  RequestExt ext;
  ext.has_key = true;
  key_rng_.fill(ext.key);
  ext.tenant_id = options_.tenant_id;

  const RetryOptions& rp = options_.retry;
  const auto start = std::chrono::steady_clock::now();
  uint32_t backoff_ms = std::max<uint32_t>(1, rp.initial_backoff_ms);
  std::string last_error = "no error recorded";
  int attempt = 0;

  for (;;) {
    ++attempt;
    uint64_t elapsed = elapsed_ms_since(start);
    uint64_t remaining = 0;
    if (rp.overall_deadline_ms > 0) {
      if (elapsed >= rp.overall_deadline_ms) {
        exhausted_.fetch_add(1, std::memory_order_relaxed);
        throw RetriesExhaustedError(
            "remote: overall deadline of " +
                std::to_string(rp.overall_deadline_ms) + " ms expired after " +
                std::to_string(elapsed) + " ms and " +
                std::to_string(attempt - 1) + " attempts (last error: " +
                last_error + ")",
            attempt - 1, elapsed);
      }
      remaining = rp.overall_deadline_ms - elapsed;
    }
    ext.deadline_ms = static_cast<uint32_t>(
        std::min<uint64_t>(remaining, std::numeric_limits<uint32_t>::max()));

    std::optional<StatusCode> status;
    std::string message;
    try {
      Bytes body =
          roundtrip_once(request, payload, expected, ext, remaining, &status,
                         &message);
      if (!status) {
        // Success refunds a fraction of a retry token (capped): steady
        // traffic slowly re-earns the right to retry.
        budget_ = std::min(rp.budget_tokens, budget_ + 0.1);
        return body;
      }
      if (*status != StatusCode::kOverloaded) {
        // Deterministic server-side failure (bad SQL, duplicate key,
        // malformed payload): retrying cannot change the outcome.
        rethrow_status(*status, message);
      }
      // Overloaded: the server shed us before executing — retryable.
      overloaded_.fetch_add(1, std::memory_order_relaxed);
      last_error = message;
    } catch (const NetworkError& e) {
      // Transport failure: the socket state is unknowable; always drop it
      // so the next attempt reconnects. Thanks to the idempotency key this
      // is safe even when the request mutates.
      sock_.reset();
      last_error = e.what();
    }

    uint64_t now_elapsed = elapsed_ms_since(start);
    if (attempt >= rp.max_attempts) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      throw RetriesExhaustedError(
          "remote: " + std::to_string(attempt) + " attempts failed over " +
              std::to_string(now_elapsed) + " ms (last error: " + last_error +
              ")",
          attempt, now_elapsed);
    }
    if (budget_ < 1.0) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      throw RetriesExhaustedError(
          "remote: retry budget exhausted after " + std::to_string(attempt) +
              " attempts over " + std::to_string(now_elapsed) +
              " ms (last error: " + last_error + ")",
          attempt, now_elapsed);
    }
    budget_ -= 1.0;
    retries_.fetch_add(1, std::memory_order_relaxed);

    // Backoff with jitter in [backoff/2, backoff), capped by the remaining
    // deadline so the last sleep cannot blow through it.
    uint64_t sleep_ms = backoff_ms / 2 + jitter_rng_.next_below(
                                             backoff_ms / 2 + 1);
    if (rp.overall_deadline_ms > 0) {
      uint64_t left = rp.overall_deadline_ms > now_elapsed
                          ? rp.overall_deadline_ms - now_elapsed
                          : 0;
      sleep_ms = std::min(sleep_ms, left);
    }
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    backoff_ms = std::min(backoff_ms * 2, rp.max_backoff_ms);
  }
}

sql::ResultSet RemoteConnection::execute(const std::string& sql) {
  WireWriter w;
  w.string(sql);
  Bytes body = roundtrip(Opcode::kExecSql, w.bytes(), Opcode::kOkResult);
  WireReader r(body);
  sql::ResultSet rs = decode_result_set(r);
  r.expect_end();
  return rs;
}

void RemoteConnection::create_table(const std::string& table,
                                    const sql::Schema& schema) {
  WireWriter w;
  w.string(table);
  w.schema(schema);
  roundtrip(Opcode::kCreateTable, w.bytes(), Opcode::kOkUnit);
}

void RemoteConnection::create_index(const std::string& table,
                                    const std::string& column) {
  WireWriter w;
  w.string(table);
  w.string(column);
  roundtrip(Opcode::kCreateIndex, w.bytes(), Opcode::kOkUnit);
}

bool RemoteConnection::has_table(const std::string& table) {
  WireWriter w;
  w.string(table);
  Bytes body = roundtrip(Opcode::kHasTable, w.bytes(), Opcode::kOkBool);
  WireReader r(body);
  bool present = r.u8() != 0;
  r.expect_end();
  return present;
}

uint64_t RemoteConnection::row_count(const std::string& table) {
  WireWriter w;
  w.string(table);
  Bytes body = roundtrip(Opcode::kRowCount, w.bytes(), Opcode::kOkCount);
  WireReader r(body);
  uint64_t n = r.u64();
  r.expect_end();
  return n;
}

sql::Schema RemoteConnection::table_schema(const std::string& table) {
  WireWriter w;
  w.string(table);
  Bytes body = roundtrip(Opcode::kTableSchema, w.bytes(), Opcode::kOkSchema);
  WireReader r(body);
  sql::Schema schema = r.schema();
  r.expect_end();
  return schema;
}

std::vector<int64_t> RemoteConnection::insert_batch(
    const std::string& table, const std::vector<sql::Row>& rows) {
  WireWriter w;
  w.string(table);
  w.u32(static_cast<uint32_t>(rows.size()));
  for (const sql::Row& row : rows) w.row(row);
  Bytes body = roundtrip(Opcode::kInsertBatch, w.bytes(), Opcode::kOkIds);
  WireReader r(body);
  uint32_t n = r.u32();
  std::vector<int64_t> ids;
  ids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) ids.push_back(r.i64());
  r.expect_end();
  return ids;
}

void RemoteConnection::scan(const std::string& table,
                            const std::function<void(const sql::Row&)>& fn) {
  WireWriter w;
  w.string(table);
  Bytes body = roundtrip(Opcode::kScanTable, w.bytes(), Opcode::kOkResult);
  WireReader r(body);
  sql::ResultSet rs = decode_result_set(r);
  r.expect_end();
  for (const sql::Row& row : rs.rows) fn(row);
}

sql::ResultSet RemoteConnection::tag_scan(const std::string& table,
                                          const std::string& tag_column,
                                          const std::vector<uint64_t>& tags,
                                          bool star) {
  WireWriter w;
  w.string(table);
  w.string(tag_column);
  w.u8(star ? 1 : 0);
  w.u32(static_cast<uint32_t>(tags.size()));
  for (uint64_t t : tags) w.u64(t);
  Bytes body = roundtrip(Opcode::kTagScan, w.bytes(), Opcode::kOkResult);
  WireReader r(body);
  sql::ResultSet rs = decode_result_set(r);
  r.expect_end();
  return rs;
}

}  // namespace wre::net
