#include "src/net/channel.h"

#include <algorithm>
#include <limits>

#include "src/util/error.h"

namespace wre::net {

PipelinedChannel::PipelinedChannel(ShardEndpoint endpoint,
                                   size_t max_frame_bytes, int recv_timeout_ms)
    : endpoint_(std::move(endpoint)),
      max_frame_bytes_(max_frame_bytes),
      recv_timeout_ms_(recv_timeout_ms) {}

void PipelinedChannel::poison(std::string why) {
  dead_ = true;
  death_reason_ = std::move(why);
  sock_.reset();
  outbuf_.clear();
  parked_.clear();
}

void PipelinedChannel::die(const std::string& why) {
  poison(why);
  throw NetworkError(why);
}

uint64_t PipelinedChannel::submit(Opcode op, ByteView payload,
                                  const RequestExt& ext) {
  if (dead_) throw NetworkError(death_reason_);
  try {
    if (!sock_) sock_.emplace(Socket::connect(endpoint_.host, endpoint_.port));
  } catch (const NetworkError& e) {
    die(e.what());
  }
  Bytes frame = encode_request_frame(op, payload, ext);
  outbuf_.insert(outbuf_.end(), frame.begin(), frame.end());
  return next_ticket_++;
}

void PipelinedChannel::flush() {
  if (dead_) throw NetworkError(death_reason_);
  if (outbuf_.empty()) return;
  try {
    sock_->send_all(outbuf_);
  } catch (const NetworkError& e) {
    die(e.what());
  }
  outbuf_.clear();
}

PipelinedChannel::Response PipelinedChannel::read_one(
    uint64_t deadline_hint_ms) {
  // Per-read timeout: the tighter of the channel's response timeout and
  // the caller's remaining deadline, so one stalled response cannot eat
  // the whole retry window.
  uint64_t timeout =
      recv_timeout_ms_ > 0 ? static_cast<uint64_t>(recv_timeout_ms_) : 0;
  if (deadline_hint_ms > 0 && (timeout == 0 || deadline_hint_ms < timeout)) {
    timeout = deadline_hint_ms;
  }
  if (timeout > 0) {
    sock_->set_recv_timeout_ms(static_cast<int>(
        std::min<uint64_t>(timeout, std::numeric_limits<int>::max())));
  }
  uint8_t header[kFrameHeaderBytes];
  sock_->recv_all(header, sizeof(header));
  FrameHeader fh = decode_frame_header(header, max_frame_bytes_);
  Response resp;
  resp.opcode = fh.opcode;
  resp.payload.resize(fh.payload_length);
  if (fh.payload_length > 0) {
    sock_->recv_all(resp.payload.data(), resp.payload.size());
  }
  return resp;
}

PipelinedChannel::Response PipelinedChannel::await(uint64_t ticket,
                                                   uint64_t deadline_hint_ms) {
  if (dead_) throw NetworkError(death_reason_);
  auto it = parked_.find(ticket);
  if (it != parked_.end()) {
    Response resp = std::move(it->second);
    parked_.erase(it);
    return resp;
  }
  if (ticket < next_response_ || ticket >= next_ticket_) {
    throw NetworkError("channel: ticket " + std::to_string(ticket) +
                       " is not in flight");
  }
  flush();
  for (;;) {
    Response resp;
    try {
      resp = read_one(deadline_hint_ms);
    } catch (const NetworkError& e) {
      die(e.what());
    }
    uint64_t answered = next_response_++;
    if (answered == ticket) return resp;
    parked_.emplace(answered, std::move(resp));
  }
}

ChannelPool::ChannelPool(ShardEndpoint endpoint, size_t target_size,
                         size_t max_frame_bytes, int recv_timeout_ms)
    : endpoint_(std::move(endpoint)),
      target_size_(std::max<size_t>(1, target_size)),
      max_frame_bytes_(max_frame_bytes),
      recv_timeout_ms_(recv_timeout_ms) {}

ChannelPool::Lease ChannelPool::acquire() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    while (!idle_.empty()) {
      std::shared_ptr<PipelinedChannel> ch = std::move(idle_.back());
      idle_.pop_back();
      if (!ch->dead()) return Lease(std::move(ch), this);
    }
  }
  return Lease(std::make_shared<PipelinedChannel>(endpoint_, max_frame_bytes_,
                                                  recv_timeout_ms_),
               this);
}

void ChannelPool::release(std::shared_ptr<PipelinedChannel> ch) {
  if (ch->dead() || ch->in_flight() > 0) return;  // drop the carcass
  std::lock_guard<std::mutex> lk(mu_);
  if (idle_.size() < target_size_) idle_.push_back(std::move(ch));
}

void ChannelPool::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  idle_.clear();
}

}  // namespace wre::net
