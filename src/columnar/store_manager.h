// ColumnStoreManager: epoch-versioned columnar snapshots of hot tables
// (DESIGN.md §5.9).
//
// The manager caches at most one TableSegment per table. snapshot()
// compares the cached segment's build version against the table's current
// mutation version (sql::Table::mutation_version, bumped by every insert /
// batch / index change): a match is a hit, a mismatch triggers a rebuild,
// and the old segment is only unreferenced — queries already scanning it
// keep their shared_ptr, so readers never observe a segment mutate and
// never block behind a rebuild triggered elsewhere.
//
// Synchronization contract: snapshot() may be called concurrently from
// any number of readers (they serialize on an internal mutex only for the
// cache lookup / the build itself); callers must hold the engine's shared
// latch so writers are excluded for the duration of a build, exactly as a
// sequential scan requires. drop_all() / prune() are writer-side calls.
//
// Staleness across the durability path is handled by construction:
// crash-recovery replay (storage::Wal::recover) runs in the Database
// constructor before any manager exists, so a post-recovery instance
// starts with no segments, and checkpoint() prunes any segment whose
// build version no longer matches its table.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/columnar/segment.h"

namespace wre::columnar {

struct ColumnStoreOptions {
  /// Per-column dictionary cardinality cap (see SegmentOptions).
  size_t dict_max = size_t{1} << 16;
  /// Tables with fewer rows are not worth a segment; snapshot() returns
  /// null and the planner stays on the row path.
  uint64_t min_rows = 0;
};

class ColumnStoreManager {
 public:
  explicit ColumnStoreManager(ColumnStoreOptions options = {})
      : options_(options) {}

  /// A fresh snapshot of `t`: the cached segment when its build version
  /// matches the table's mutation version, a newly built one otherwise.
  /// Returns null when the table is below min_rows.
  std::shared_ptr<const TableSegment> snapshot(const sql::Table& t);

  /// The cached segment, fresh or not — no build. Null when absent.
  std::shared_ptr<const TableSegment> cached(const std::string& table) const;

  /// Drops every cached segment (cold-cache reproduction; clear_cache).
  void drop_all();

  /// Drops `table`'s segment if its build version differs from
  /// `current_version` (checkpoint-time staleness sweep).
  void prune(const std::string& table, uint64_t current_version);

  struct Stats {
    uint64_t builds = 0;    // segments built (epoch counter)
    uint64_t hits = 0;      // snapshot() served from cache
    uint64_t rebuilds = 0;  // builds that replaced a stale segment
    size_t segments = 0;    // currently cached
    size_t bytes = 0;       // resident bytes across cached segments
  };
  Stats stats() const;

 private:
  ColumnStoreOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const TableSegment>> segments_;
  uint64_t builds_ = 0;
  uint64_t hits_ = 0;
  uint64_t rebuilds_ = 0;
};

}  // namespace wre::columnar
