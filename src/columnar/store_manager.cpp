#include "src/columnar/store_manager.h"

namespace wre::columnar {

std::shared_ptr<const TableSegment> ColumnStoreManager::snapshot(
    const sql::Table& t) {
  if (t.row_count() < options_.min_rows) return nullptr;

  // The version is captured before the build scan. Writers are excluded by
  // the caller's latch, so the table cannot advance mid-build; a version
  // captured after the scan could miss a mutation that raced an
  // (incorrectly unlatched) build and mask it forever.
  const uint64_t version = t.mutation_version();

  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(t.name());
  if (it != segments_.end() && it->second->build_version() == version) {
    ++hits_;
    return it->second;
  }
  SegmentOptions opt;
  opt.dict_max = options_.dict_max;
  auto seg = TableSegment::build(t, version, opt);
  ++builds_;
  if (it != segments_.end()) {
    ++rebuilds_;
    it->second = seg;  // old segment stays alive for in-flight readers
  } else {
    segments_.emplace(t.name(), seg);
  }
  return seg;
}

std::shared_ptr<const TableSegment> ColumnStoreManager::cached(
    const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(table);
  return it == segments_.end() ? nullptr : it->second;
}

void ColumnStoreManager::drop_all() {
  std::lock_guard<std::mutex> lock(mu_);
  segments_.clear();
}

void ColumnStoreManager::prune(const std::string& table,
                               uint64_t current_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(table);
  if (it != segments_.end() && it->second->build_version() != current_version) {
    segments_.erase(it);
  }
}

ColumnStoreManager::Stats ColumnStoreManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.builds = builds_;
  s.hits = hits_;
  s.rebuilds = rebuilds_;
  s.segments = segments_.size();
  for (const auto& [name, seg] : segments_) s.bytes += seg->bytes();
  return s;
}

}  // namespace wre::columnar
