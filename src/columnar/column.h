// Dictionary-compressed immutable column vectors for the in-memory
// columnar ciphertext store (DESIGN.md §5.9).
//
// A column is built once from a heap scan (append per row, then seal) and
// never mutated afterwards — staleness is handled a level up by the
// ColumnStoreManager swapping whole segments. seal() picks the layout:
//
//   dictionary  distinct values <= dict_max AND each value repeated twice
//               on average (compression must pay): a sorted dictionary
//               plus one uint32 code per row. WRE tag columns compress
//               extremely well here — a Poisson-1000 salt set over 50
//               plaintexts is ~50k distinct 64-bit tags no matter how many
//               rows carry them. Scans probe the dictionary once (binary
//               search) and then compare 4-byte codes, not 8-byte values
//               or strings.
//   plain       high-cardinality fallback: the raw values, densely packed
//               (int64 array / packed bytes + offsets) in heap order.
//               Encrypted payload columns land here — every AES-CTR
//               ciphertext is unique, so codes would gain nothing and a
//               dictionary gather would cost a cache miss per row — and
//               stay packed and undecrypted until a selected row is
//               materialized (sequentially, for a scan).
//
// NULLs: rows with NULL get the reserved code `dict size` in dictionary
// layout (the probe bitmap has a never-set slot for it) and a bit in a
// packed null bitmap in plain layout. SQL NULL never equals anything, so
// scan kernels simply never select a NULL row.
//
// Scan kernels take a probe list and append matching row positions to a
// selection vector in ascending order. The hot loops are branch-light
// compares over dense arrays, written so the compiler auto-vectorizes
// them (no gather/scatter, no per-iteration allocation).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/sql/value.h"
#include "src/util/bytes.h"

namespace wre::columnar {

/// Ascending row positions selected by a scan.
using Selection = std::vector<uint32_t>;

/// Layout chosen by seal().
enum class ColumnLayout : uint8_t { kDictionary, kPlain };

namespace detail {
inline bool get_bit(const std::vector<uint64_t>& words, size_t i) {
  size_t w = i / 64;
  return w < words.size() && (words[w] >> (i % 64)) & 1;
}
}  // namespace detail

/// Fixed-width INTEGER column: search tags, primary keys, zip codes.
class Int64Column {
 public:
  void reserve(size_t rows) { raw_.reserve(rows); }
  void append(int64_t v);
  void append_null();

  /// Freezes the column, choosing dictionary layout when the number of
  /// distinct values is at most `dict_max`.
  void seal(size_t dict_max);

  size_t size() const { return row_count_; }
  ColumnLayout layout() const { return layout_; }
  size_t dictionary_size() const { return dict_.size(); }
  bool has_nulls() const { return has_nulls_; }
  size_t bytes() const;

  /// Appends the positions of rows equal to any probe to `out`, in
  /// ascending order. NULL rows never match.
  void scan_in(const int64_t* probes, size_t n, Selection* out) const;

  /// True when the row equals any probe (point recheck; NULL never matches).
  bool matches(uint32_t row, const int64_t* probes, size_t n) const;

  // Per-cell accessors are inline: materialization and wire encoding call
  // them once per selected cell in their hot loops.
  bool is_null(uint32_t row) const {
    if (layout_ == ColumnLayout::kDictionary) {
      return codes_[row] == dict_.size();
    }
    return has_nulls_ && detail::get_bit(null_words_, row);
  }
  /// Value of a non-NULL row.
  int64_t at(uint32_t row) const {
    if (layout_ == ColumnLayout::kDictionary) return dict_[codes_[row]];
    return raw_[row];
  }

 private:
  // Build state (cleared by seal except when the plain layout keeps raw_).
  std::vector<int64_t> raw_;
  std::vector<uint64_t> null_words_;  // bit-packed; empty when no NULLs
  size_t row_count_ = 0;
  bool has_nulls_ = false;

  ColumnLayout layout_ = ColumnLayout::kPlain;
  std::vector<int64_t> dict_;    // sorted distinct values
  std::vector<uint32_t> codes_;  // per row; NULL rows hold dict_.size()
};

/// Variable-width TEXT/BLOB column: packed bytes + offsets, optionally
/// dictionary-compressed. Encrypted payload columns (ciphertexts) always
/// take the plain layout and stay packed until materialization.
class BytesColumn {
 public:
  explicit BytesColumn(sql::ValueType type) : type_(type) {}

  void append(std::string_view v);
  void append_null();
  void seal(size_t dict_max);

  size_t size() const { return row_count_; }
  ColumnLayout layout() const { return layout_; }
  size_t dictionary_size() const { return dict_offsets_.empty() ? 0 : dict_offsets_.size() - 1; }
  bool has_nulls() const { return has_nulls_; }
  size_t bytes() const;
  sql::ValueType value_type() const { return type_; }

  void scan_in(const std::string_view* probes, size_t n, Selection* out) const;
  bool matches(uint32_t row, const std::string_view* probes, size_t n) const;

  bool is_null(uint32_t row) const {
    if (layout_ == ColumnLayout::kDictionary) {
      return codes_[row] == dictionary_size();
    }
    return has_nulls_ && detail::get_bit(null_words_, row);
  }
  /// Bytes of a non-NULL row (borrowed from the packed buffer).
  std::string_view at(uint32_t row) const {
    if (layout_ == ColumnLayout::kDictionary) return dict_entry(codes_[row]);
    const char* base = reinterpret_cast<const char*>(packed_.data());
    return {base + offsets_[row],
            static_cast<size_t>(offsets_[row + 1] - offsets_[row])};
  }

 private:
  std::string_view dict_entry(uint32_t code) const {
    const char* base = reinterpret_cast<const char*>(dict_packed_.data());
    return {base + dict_offsets_[code],
            static_cast<size_t>(dict_offsets_[code + 1] - dict_offsets_[code])};
  }

  sql::ValueType type_;
  std::vector<uint8_t> packed_;    // plain layout: all row bytes, dense
  std::vector<uint64_t> offsets_;  // plain layout: row i = [offsets_[i], offsets_[i+1])
  std::vector<uint64_t> null_words_;
  size_t row_count_ = 0;
  bool has_nulls_ = false;

  ColumnLayout layout_ = ColumnLayout::kPlain;
  std::vector<uint8_t> dict_packed_;     // sorted distinct byte strings
  std::vector<uint64_t> dict_offsets_;   // dict entry i = [i, i+1)
  std::vector<uint32_t> codes_;          // per row; NULL rows hold dict size
};

}  // namespace wre::columnar
