#include "src/columnar/segment.h"

#include <algorithm>
#include <cstring>

#include "src/util/error.h"

namespace wre::columnar {

namespace {

/// Merge-intersects two ascending selections.
Selection intersect(const Selection& a, const Selection& b) {
  Selection out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Merge-unions two ascending selections.
Selection unite(const Selection& a, const Selection& b) {
  Selection out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

std::shared_ptr<const TableSegment> TableSegment::build(
    const sql::Table& t, uint64_t version, const SegmentOptions& opt) {
  auto seg = std::shared_ptr<TableSegment>(new TableSegment());
  seg->version_ = version;
  seg->schema_ = t.schema();
  const sql::Schema& schema = seg->schema_;
  seg->hidden_pk_ = !schema.primary_key_index().has_value();

  const size_t cols = schema.column_count();
  const size_t rows_hint = static_cast<size_t>(t.row_count());
  seg->columns_.reserve(cols);
  for (size_t c = 0; c < cols; ++c) {
    if (schema.column(c).type == sql::ValueType::kInt64) {
      seg->columns_.emplace_back(std::in_place_type<Int64Column>);
      std::get<Int64Column>(seg->columns_.back()).reserve(rows_hint);
    } else {
      seg->columns_.emplace_back(std::in_place_type<BytesColumn>,
                                 schema.column(c).type);
    }
  }
  if (!seg->hidden_pk_) seg->pks_.reserve(rows_hint);

  t.scan([&](int64_t pk, const sql::Row& row) {
    if (!seg->hidden_pk_) seg->pks_.push_back(pk);
    for (size_t c = 0; c < cols; ++c) {
      const sql::Value& v = row[c];
      std::visit(
          [&](auto& col) {
            using C = std::decay_t<decltype(col)>;
            if (v.is_null()) {
              col.append_null();
            } else if constexpr (std::is_same_v<C, Int64Column>) {
              col.append(v.as_int64());
            } else {
              if (col.value_type() == sql::ValueType::kText) {
                col.append(v.as_text());
              } else {
                const Bytes& b = v.as_blob();
                col.append(std::string_view(
                    reinterpret_cast<const char*>(b.data()), b.size()));
              }
            }
          },
          seg->columns_[c]);
    }
    ++seg->row_count_;
  });

  for (auto& col : seg->columns_) {
    std::visit([&](auto& c) { c.seal(opt.dict_max); }, col);
  }
  if (!seg->hidden_pk_) {
    seg->pk_sorted_.reserve(seg->pks_.size());
    for (uint32_t i = 0; i < seg->pks_.size(); ++i) {
      seg->pk_sorted_.emplace_back(seg->pks_[i], i);
    }
    std::sort(seg->pk_sorted_.begin(), seg->pk_sorted_.end());
  }
  return seg;
}

Selection TableSegment::select_all() const {
  Selection out(row_count_);
  for (uint32_t i = 0; i < row_count_; ++i) out[i] = i;
  return out;
}

Selection TableSegment::select(const sql::Expr& expr) const {
  switch (expr.kind) {
    case sql::Expr::Kind::kEquals:
    case sql::Expr::Kind::kIn: {
      auto idx = schema_.index_of(expr.column);
      if (!idx) throw SqlError("unknown column " + expr.column);
      Selection out;
      std::visit(
          [&](const auto& col) {
            using C = std::decay_t<decltype(col)>;
            if constexpr (std::is_same_v<C, Int64Column>) {
              // Only INTEGER probes can match an INTEGER column
              // (sql_equals is false across types and for NULL).
              std::vector<int64_t> probes;
              probes.reserve(expr.values.size());
              for (const sql::Value& v : expr.values) {
                if (v.type() == sql::ValueType::kInt64) {
                  probes.push_back(v.as_int64());
                }
              }
              col.scan_in(probes.data(), probes.size(), &out);
            } else {
              std::vector<std::string_view> probes;
              probes.reserve(expr.values.size());
              for (const sql::Value& v : expr.values) {
                if (v.type() != col.value_type()) continue;
                if (v.type() == sql::ValueType::kText) {
                  probes.push_back(v.as_text());
                } else {
                  const Bytes& b = v.as_blob();
                  probes.push_back(std::string_view(
                      reinterpret_cast<const char*>(b.data()), b.size()));
                }
              }
              col.scan_in(probes.data(), probes.size(), &out);
            }
          },
          columns_[*idx]);
      return out;
    }
    case sql::Expr::Kind::kAnd: {
      Selection out = select(expr.children.front());
      for (size_t i = 1; i < expr.children.size() && !out.empty(); ++i) {
        out = intersect(out, select(expr.children[i]));
      }
      return out;
    }
    case sql::Expr::Kind::kOr: {
      Selection out;
      for (const sql::Expr& child : expr.children) {
        out = unite(out, select(child));
      }
      return out;
    }
  }
  throw SqlError("columnar select: corrupt expression");
}

bool TableSegment::row_matches(const sql::Expr& expr, uint32_t row) const {
  switch (expr.kind) {
    case sql::Expr::Kind::kEquals:
    case sql::Expr::Kind::kIn: {
      auto idx = schema_.index_of(expr.column);
      if (!idx) throw SqlError("unknown column " + expr.column);
      return std::visit(
          [&](const auto& col) {
            using C = std::decay_t<decltype(col)>;
            if constexpr (std::is_same_v<C, Int64Column>) {
              for (const sql::Value& v : expr.values) {
                if (v.type() != sql::ValueType::kInt64) continue;
                int64_t p = v.as_int64();
                if (col.matches(row, &p, 1)) return true;
              }
              return false;
            } else {
              for (const sql::Value& v : expr.values) {
                if (v.type() != col.value_type()) continue;
                std::string_view p;
                if (v.type() == sql::ValueType::kText) {
                  p = v.as_text();
                } else {
                  const Bytes& b = v.as_blob();
                  p = std::string_view(
                      reinterpret_cast<const char*>(b.data()), b.size());
                }
                if (col.matches(row, &p, 1)) return true;
              }
              return false;
            }
          },
          columns_[*idx]);
    }
    case sql::Expr::Kind::kAnd:
      return std::all_of(
          expr.children.begin(), expr.children.end(),
          [&](const sql::Expr& c) { return row_matches(c, row); });
    case sql::Expr::Kind::kOr:
      return std::any_of(
          expr.children.begin(), expr.children.end(),
          [&](const sql::Expr& c) { return row_matches(c, row); });
  }
  throw SqlError("columnar row_matches: corrupt expression");
}

sql::Value TableSegment::value_at(size_t col, uint32_t row) const {
  return std::visit(
      [&](const auto& c) -> sql::Value {
        using C = std::decay_t<decltype(c)>;
        if (c.is_null(row)) return sql::Value::null();
        if constexpr (std::is_same_v<C, Int64Column>) {
          return sql::Value::int64(c.at(row));
        } else {
          std::string_view v = c.at(row);
          if (c.value_type() == sql::ValueType::kText) {
            return sql::Value::text(std::string(v));
          }
          const uint8_t* p = reinterpret_cast<const uint8_t*>(v.data());
          return sql::Value::blob(Bytes(p, p + v.size()));
        }
      },
      columns_[col]);
}

sql::Row TableSegment::materialize(
    uint32_t row, const std::vector<size_t>& projection) const {
  sql::Row out;
  out.reserve(projection.size());
  for (size_t col : projection) out.push_back(value_at(col, row));
  return out;
}

void TableSegment::materialize_rows(const Selection& sel,
                                    const std::vector<size_t>& projection,
                                    std::vector<sql::Row>* out) const {
  const size_t base = out->size();
  const size_t nproj = projection.size();
  out->resize(base + sel.size());
  for (size_t i = 0; i < sel.size(); ++i) (*out)[base + i].resize(nproj);

  for (size_t c = 0; c < nproj; ++c) {
    std::visit(
        [&](const auto& col) {
          using C = std::decay_t<decltype(col)>;
          for (size_t i = 0; i < sel.size(); ++i) {
            const uint32_t row = sel[i];
            if (col.has_nulls() && col.is_null(row)) continue;  // stays NULL
            sql::Value& cell = (*out)[base + i][c];
            if constexpr (std::is_same_v<C, Int64Column>) {
              cell = sql::Value::int64(col.at(row));
            } else {
              std::string_view v = col.at(row);
              if (col.value_type() == sql::ValueType::kText) {
                cell = sql::Value::text(std::string(v));
              } else {
                const uint8_t* p = reinterpret_cast<const uint8_t*>(v.data());
                cell = sql::Value::blob(Bytes(p, p + v.size()));
              }
            }
          }
        },
        columns_[projection[c]]);
  }
}

void TableSegment::wire_encode_rows(const Selection& sel,
                                    const std::vector<size_t>& projection,
                                    Bytes* out) const {
  // Resolve each projected column's encoder once; both passes below are
  // then flat runs over dense arrays with no dispatch.
  struct Cell {
    const Int64Column* i64 = nullptr;
    const BytesColumn* bytes = nullptr;
    uint8_t type = 0;
    bool nulls = false;
  };
  std::vector<Cell> cells;
  cells.reserve(projection.size());
  for (size_t col : projection) {
    Cell cell;
    if (const auto* i = std::get_if<Int64Column>(&columns_[col])) {
      cell.i64 = i;
      cell.type = static_cast<uint8_t>(sql::ValueType::kInt64);
      cell.nulls = i->has_nulls();
    } else {
      cell.bytes = &std::get<BytesColumn>(columns_[col]);
      cell.type = static_cast<uint8_t>(cell.bytes->value_type());
      cell.nulls = cell.bytes->has_nulls();
    }
    cells.push_back(cell);
  }

  // Pass 1: exact response size, so pass 2 writes through a raw pointer
  // into a single resize — no per-byte append, no reallocation.
  size_t total = sel.size() * (4 + cells.size());  // u32 arity + type bytes
  for (const Cell& cell : cells) {
    if (cell.i64 != nullptr) {
      if (!cell.nulls) {
        total += sel.size() * 8;
      } else {
        for (uint32_t row : sel) {
          if (!cell.i64->is_null(row)) total += 8;
        }
      }
    } else {
      for (uint32_t row : sel) {
        if (cell.nulls && cell.bytes->is_null(row)) continue;
        total += 4 + cell.bytes->at(row).size();
      }
    }
  }

  const size_t base = out->size();
  out->resize(base + total);
  uint8_t* p = out->data() + base;

  const uint32_t arity = static_cast<uint32_t>(cells.size());
  for (uint32_t row : sel) {
    store_le32(p, arity);
    p += 4;
    for (const Cell& cell : cells) {
      if (cell.i64 != nullptr) {
        if (cell.nulls && cell.i64->is_null(row)) {
          *p++ = static_cast<uint8_t>(sql::ValueType::kNull);
          continue;
        }
        *p++ = cell.type;
        store_le64(p, static_cast<uint64_t>(cell.i64->at(row)));
        p += 8;
      } else {
        if (cell.nulls && cell.bytes->is_null(row)) {
          *p++ = static_cast<uint8_t>(sql::ValueType::kNull);
          continue;
        }
        *p++ = cell.type;
        std::string_view v = cell.bytes->at(row);
        store_le32(p, static_cast<uint32_t>(v.size()));
        p += 4;
        std::memcpy(p, v.data(), v.size());
        p += v.size();
      }
    }
  }
}

int64_t TableSegment::pk_at(uint32_t row) const {
  return hidden_pk_ ? static_cast<int64_t>(row) : pks_[row];
}

std::optional<uint32_t> TableSegment::row_of_pk(int64_t pk) const {
  if (hidden_pk_) {
    if (pk < 0 || static_cast<uint64_t>(pk) >= row_count_) {
      return std::nullopt;
    }
    return static_cast<uint32_t>(pk);
  }
  auto it = std::lower_bound(
      pk_sorted_.begin(), pk_sorted_.end(), pk,
      [](const std::pair<int64_t, uint32_t>& e, int64_t key) {
        return e.first < key;
      });
  if (it == pk_sorted_.end() || it->first != pk) return std::nullopt;
  return it->second;
}

size_t TableSegment::bytes() const {
  size_t total = pks_.capacity() * sizeof(int64_t) +
                 pk_sorted_.capacity() * sizeof(std::pair<int64_t, uint32_t>);
  for (const auto& col : columns_) {
    total += std::visit([](const auto& c) { return c.bytes(); }, col);
  }
  return total;
}

ColumnLayout TableSegment::column_layout(size_t col) const {
  return std::visit([](const auto& c) { return c.layout(); }, columns_[col]);
}

size_t TableSegment::column_dictionary_size(size_t col) const {
  return std::visit([](const auto& c) { return c.dictionary_size(); },
                    columns_[col]);
}

}  // namespace wre::columnar
