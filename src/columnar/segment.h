// An immutable columnar snapshot of one table (DESIGN.md §5.9).
//
// A TableSegment is built from a single heap scan under the engine's
// shared latch (writers excluded by the engine's single-writer rule) and
// is immutable afterwards: queries hold it through a shared_ptr, so a
// rebuild triggered by a later mutation never invalidates a scan already
// in flight — readers drain on their own snapshot while new queries see
// the fresh one.
//
// Row positions are heap order, the order Table::scan emits and the row
// path's sequential scan preserves — so a columnar scan's selection
// vector, materialized in order, is byte-identical to the row path's
// result. For index-probe plans the segment also serves the record-fetch
// phase: row_of_pk() replaces the pk-index descent + heap read + record
// decode with a binary search and a column gather (late materialization:
// only selected rows ever touch the packed payload bytes).
#pragma once

#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "src/columnar/column.h"
#include "src/sql/ast.h"
#include "src/sql/table.h"

namespace wre::columnar {

struct SegmentOptions {
  /// Per-column dictionary cardinality cap; above it a column falls back
  /// to the plain dense layout.
  size_t dict_max = size_t{1} << 16;
};

class TableSegment {
 public:
  /// Scans `t` and freezes the result. `version` is the table's mutation
  /// version at build time (captured by the caller before the scan; the
  /// engine excludes writers for the duration).
  static std::shared_ptr<const TableSegment> build(const sql::Table& t,
                                                   uint64_t version,
                                                   const SegmentOptions& opt);

  uint64_t build_version() const { return version_; }
  uint32_t row_count() const { return row_count_; }
  const sql::Schema& schema() const { return schema_; }

  /// Evaluates a predicate over every row: ascending selection of the
  /// matching positions. Column types mirror sql_equals — a probe value
  /// whose type differs from the column's declared type (or NULL) never
  /// matches.
  Selection select(const sql::Expr& expr) const;

  /// Every row (the unfiltered select_star selection).
  Selection select_all() const;

  /// Point predicate recheck at one row, without materializing values.
  bool row_matches(const sql::Expr& expr, uint32_t row) const;

  /// Materializes the projected columns of one row.
  sql::Row materialize(uint32_t row,
                       const std::vector<size_t>& projection) const;

  /// Bulk variant: appends one Row per selection entry to `out`,
  /// column-at-a-time so the type dispatch happens once per column rather
  /// than once per cell. Identical output to calling materialize() per row.
  void materialize_rows(const Selection& sel,
                        const std::vector<size_t>& projection,
                        std::vector<sql::Row>* out) const;

  /// Late materialization straight to the network: appends the wire
  /// encoding of every selected row (u32 value count, then each projected
  /// cell in sql::Value::wire_encode layout) directly from the packed
  /// columns — no sql::Value or Row is ever built. Byte-identical to
  /// wire-encoding the rows materialize_rows() would produce.
  void wire_encode_rows(const Selection& sel,
                        const std::vector<size_t>& projection,
                        Bytes* out) const;

  int64_t pk_at(uint32_t row) const;
  /// Position of the row with primary key `pk`, if present.
  std::optional<uint32_t> row_of_pk(int64_t pk) const;

  /// Resident size (memory accounting / stats).
  size_t bytes() const;
  ColumnLayout column_layout(size_t col) const;
  size_t column_dictionary_size(size_t col) const;

 private:
  TableSegment() = default;

  sql::Value value_at(size_t col, uint32_t row) const;

  uint64_t version_ = 0;
  uint32_t row_count_ = 0;
  sql::Schema schema_;
  std::vector<std::variant<Int64Column, BytesColumn>> columns_;
  // Primary keys in heap order, plus a pk-sorted lookup table for the
  // record-fetch phase. Tables with a hidden pk use position == pk and
  // keep both empty.
  std::vector<int64_t> pks_;
  std::vector<std::pair<int64_t, uint32_t>> pk_sorted_;
  bool hidden_pk_ = false;
};

}  // namespace wre::columnar
