#include "src/columnar/column.h"

#include <algorithm>
#include <cstring>

#include "src/util/error.h"

namespace wre::columnar {

namespace {

using detail::get_bit;

void set_bit(std::vector<uint64_t>& words, size_t i) {
  size_t w = i / 64;
  if (w >= words.size()) words.resize(w + 1, 0);
  words[w] |= uint64_t{1} << (i % 64);
}

/// The shared code-comparison kernel: append positions whose code is in
/// `codes` (deduplicated dictionary codes) to `out`. Small probe sets use
/// direct compares — a single branchless OR-tree per row the compiler
/// vectorizes over the dense uint32 array — larger ones one bitmap pass.
void scan_codes(const std::vector<uint32_t>& column_codes,
                std::vector<uint32_t> codes, size_t dict_size,
                Selection* out) {
  if (codes.empty()) return;
  const uint32_t* c = column_codes.data();
  const uint32_t n = static_cast<uint32_t>(column_codes.size());
  if (codes.size() == 1) {
    const uint32_t p = codes[0];
    for (uint32_t i = 0; i < n; ++i) {
      if (c[i] == p) out->push_back(i);
    }
  } else if (codes.size() <= 4) {
    uint32_t p[4];
    for (size_t k = 0; k < 4; ++k) p[k] = codes[std::min(k, codes.size() - 1)];
    for (uint32_t i = 0; i < n; ++i) {
      bool hit = (c[i] == p[0]) | (c[i] == p[1]) | (c[i] == p[2]) |
                 (c[i] == p[3]);
      if (hit) out->push_back(i);
    }
  } else {
    // The NULL sentinel (code == dict_size) gets a dedicated never-set
    // slot, keeping the row loop free of a null branch.
    std::vector<uint8_t> hit(dict_size + 1, 0);
    for (uint32_t code : codes) hit[code] = 1;
    for (uint32_t i = 0; i < n; ++i) {
      if (hit[c[i]]) out->push_back(i);
    }
  }
}

}  // namespace

// ------------------------------------------------------------ Int64Column

void Int64Column::append(int64_t v) {
  raw_.push_back(v);
  ++row_count_;
}

void Int64Column::append_null() {
  set_bit(null_words_, row_count_);
  has_nulls_ = true;
  raw_.push_back(0);  // placeholder; never compared or materialized
  ++row_count_;
}

void Int64Column::seal(size_t dict_max) {
  std::vector<int64_t> distinct;
  distinct.reserve(raw_.size());
  if (has_nulls_) {
    for (size_t i = 0; i < raw_.size(); ++i) {
      if (!get_bit(null_words_, i)) distinct.push_back(raw_[i]);
    }
  } else {
    distinct = raw_;
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  if (distinct.size() > std::min<size_t>(dict_max, UINT32_MAX - 1) ||
      distinct.size() * 2 > row_count_) {
    // High cardinality: keep raw_ + null bitmap. The second clause demands
    // that compression actually pays (every value repeated twice on
    // average) — near-unique columns gain nothing from codes and lose the
    // heap-ordered locality that makes materialization sequential.
    layout_ = ColumnLayout::kPlain;
    return;
  }
  layout_ = ColumnLayout::kDictionary;
  dict_ = std::move(distinct);
  codes_.resize(raw_.size());
  const uint32_t null_code = static_cast<uint32_t>(dict_.size());
  for (size_t i = 0; i < raw_.size(); ++i) {
    if (has_nulls_ && get_bit(null_words_, i)) {
      codes_[i] = null_code;
      continue;
    }
    auto it = std::lower_bound(dict_.begin(), dict_.end(), raw_[i]);
    codes_[i] = static_cast<uint32_t>(it - dict_.begin());
  }
  raw_.clear();
  raw_.shrink_to_fit();
  null_words_.clear();
  null_words_.shrink_to_fit();
}

size_t Int64Column::bytes() const {
  return raw_.capacity() * sizeof(int64_t) +
         null_words_.capacity() * sizeof(uint64_t) +
         dict_.capacity() * sizeof(int64_t) +
         codes_.capacity() * sizeof(uint32_t);
}

void Int64Column::scan_in(const int64_t* probes, size_t n,
                          Selection* out) const {
  if (layout_ == ColumnLayout::kDictionary) {
    std::vector<uint32_t> codes;
    codes.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      auto it = std::lower_bound(dict_.begin(), dict_.end(), probes[k]);
      if (it != dict_.end() && *it == probes[k]) {
        codes.push_back(static_cast<uint32_t>(it - dict_.begin()));
      }
    }
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    scan_codes(codes_, std::move(codes), dict_.size(), out);
    return;
  }

  const int64_t* v = raw_.data();
  const uint32_t rows = static_cast<uint32_t>(raw_.size());
  if (n == 1 && !has_nulls_) {
    const int64_t p = probes[0];
    for (uint32_t i = 0; i < rows; ++i) {
      if (v[i] == p) out->push_back(i);
    }
    return;
  }
  std::vector<int64_t> sorted(probes, probes + n);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const bool few = sorted.size() <= 4;
  for (uint32_t i = 0; i < rows; ++i) {
    if (has_nulls_ && get_bit(null_words_, i)) continue;
    bool hit;
    if (few) {
      hit = false;
      for (int64_t p : sorted) hit |= v[i] == p;
    } else {
      hit = std::binary_search(sorted.begin(), sorted.end(), v[i]);
    }
    if (hit) out->push_back(i);
  }
}

bool Int64Column::matches(uint32_t row, const int64_t* probes,
                          size_t n) const {
  if (is_null(row)) return false;
  int64_t v = at(row);
  for (size_t k = 0; k < n; ++k) {
    if (probes[k] == v) return true;
  }
  return false;
}

// ------------------------------------------------------------ BytesColumn

void BytesColumn::append(std::string_view v) {
  if (offsets_.empty()) offsets_.push_back(0);
  packed_.insert(packed_.end(), v.begin(), v.end());
  offsets_.push_back(packed_.size());
  ++row_count_;
}

void BytesColumn::append_null() {
  if (offsets_.empty()) offsets_.push_back(0);
  offsets_.push_back(packed_.size());
  set_bit(null_words_, row_count_);
  has_nulls_ = true;
  ++row_count_;
}

void BytesColumn::seal(size_t dict_max) {
  auto row_view = [&](size_t i) -> std::string_view {
    const char* base = reinterpret_cast<const char*>(packed_.data());
    return {base + offsets_[i],
            static_cast<size_t>(offsets_[i + 1] - offsets_[i])};
  };

  std::vector<std::string_view> distinct;
  distinct.reserve(row_count_);
  for (size_t i = 0; i < row_count_; ++i) {
    if (has_nulls_ && get_bit(null_words_, i)) continue;
    distinct.push_back(row_view(i));
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  if (distinct.size() > std::min<size_t>(dict_max, UINT32_MAX - 1) ||
      distinct.size() * 2 > row_count_) {
    // See Int64Column::seal: unique-ish columns (AES-CTR ciphertexts
    // foremost) stay packed in heap order, so materializing a scan is a
    // sequential walk instead of a per-row gather through the dictionary.
    layout_ = ColumnLayout::kPlain;
    return;
  }
  layout_ = ColumnLayout::kDictionary;
  dict_offsets_.reserve(distinct.size() + 1);
  dict_offsets_.push_back(0);
  for (std::string_view v : distinct) {
    dict_packed_.insert(dict_packed_.end(), v.begin(), v.end());
    dict_offsets_.push_back(dict_packed_.size());
  }
  codes_.resize(row_count_);
  const uint32_t null_code = static_cast<uint32_t>(distinct.size());
  for (size_t i = 0; i < row_count_; ++i) {
    if (has_nulls_ && get_bit(null_words_, i)) {
      codes_[i] = null_code;
      continue;
    }
    auto it =
        std::lower_bound(distinct.begin(), distinct.end(), row_view(i));
    codes_[i] = static_cast<uint32_t>(it - distinct.begin());
  }
  packed_.clear();
  packed_.shrink_to_fit();
  offsets_.clear();
  offsets_.shrink_to_fit();
  null_words_.clear();
  null_words_.shrink_to_fit();
}

size_t BytesColumn::bytes() const {
  return packed_.capacity() + offsets_.capacity() * sizeof(uint64_t) +
         null_words_.capacity() * sizeof(uint64_t) + dict_packed_.capacity() +
         dict_offsets_.capacity() * sizeof(uint64_t) +
         codes_.capacity() * sizeof(uint32_t);
}

void BytesColumn::scan_in(const std::string_view* probes, size_t n,
                          Selection* out) const {
  if (layout_ == ColumnLayout::kDictionary) {
    const size_t dict_size = dictionary_size();
    std::vector<uint32_t> codes;
    codes.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      // Binary search over the sorted dictionary entries.
      size_t lo = 0, hi = dict_size;
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (dict_entry(static_cast<uint32_t>(mid)) < probes[k]) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < dict_size && dict_entry(static_cast<uint32_t>(lo)) == probes[k]) {
        codes.push_back(static_cast<uint32_t>(lo));
      }
    }
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    scan_codes(codes_, std::move(codes), dict_size, out);
    return;
  }

  for (uint32_t i = 0; i < row_count_; ++i) {
    if (has_nulls_ && get_bit(null_words_, i)) continue;
    std::string_view v = at(i);
    for (size_t k = 0; k < n; ++k) {
      if (v == probes[k]) {
        out->push_back(i);
        break;
      }
    }
  }
}

bool BytesColumn::matches(uint32_t row, const std::string_view* probes,
                          size_t n) const {
  if (is_null(row)) return false;
  std::string_view v = at(row);
  for (size_t k = 0; k < n; ++k) {
    if (v == probes[k]) return true;
  }
  return false;
}

}  // namespace wre::columnar
