#include "src/core/wre_scheme.h"

#include <algorithm>

namespace wre::core {

WreScheme::WreScheme(crypto::KeyBundle keys,
                     std::unique_ptr<SaltAllocator> allocator,
                     UnseenValuePolicy unseen_policy)
    : WreScheme(std::move(keys),
                std::shared_ptr<const SaltAllocator>(std::move(allocator)),
                unseen_policy) {}

WreScheme::WreScheme(crypto::KeyBundle keys,
                     std::shared_ptr<const SaltAllocator> allocator,
                     UnseenValuePolicy unseen_policy)
    : keys_(std::move(keys)),
      prf_(keys_.tag_key),
      payload_(keys_.payload_key),
      allocator_(std::move(allocator)),
      unseen_policy_(unseen_policy) {
  if (!allocator_) throw WreError("WreScheme: null allocator");
}

std::unique_ptr<WreScheme> WreScheme::clone() const {
  return std::unique_ptr<WreScheme>(
      new WreScheme(keys_, allocator_, unseen_policy_));
}

crypto::Tag WreScheme::tag_for(uint64_t salt, const std::string& m) const {
  // The deterministic fallback tag is always message-bound, even for the
  // bucketized scheme whose regular tags bind to the salt alone: a shared
  // "unseen" tag would merge all unseen values into one equality class.
  if (salt == kUnseenSalt) return prf_.tag(salt, to_bytes(m));
  return allocator_->bucketized() ? prf_.bucket_tag(salt)
                                  : prf_.tag(salt, to_bytes(m));
}

SaltSet WreScheme::salts_with_policy(const std::string& m) const {
  if (allocator_->covers(m)) return allocator_->salts_for(m);
  switch (unseen_policy_) {
    case UnseenValuePolicy::kReject:
      throw WreError("value outside the plaintext distribution: '" + m +
                     "' (configure kDeterministicFallback to accept it)");
    case UnseenValuePolicy::kDeterministicFallback:
      return SaltSet{{kUnseenSalt}, {1.0}};
  }
  throw WreError("corrupt unseen-value policy");
}

EncryptedCell WreScheme::encrypt(const std::string& m,
                                 crypto::SecureRandom& rng) const {
  SaltSet salts = salts_with_policy(m);
  uint64_t salt = salts.sample(rng);
  return EncryptedCell{tag_for(salt, m), payload_.encrypt(to_bytes(m), rng)};
}

std::string WreScheme::decrypt(ByteView ciphertext) const {
  return to_string(payload_.decrypt(ciphertext));
}

std::vector<crypto::Tag> WreScheme::search_tags(const std::string& m) const {
  SaltSet salts = salts_with_policy(m);
  std::vector<crypto::Tag> tags(salts.salts.size());
  // The unseen-value fallback is a single message-bound tag even for the
  // bucketized scheme (see tag_for); everything else goes through the
  // batched PRF so per-call overhead amortizes across the salt set.
  if (salts.salts.size() == 1 && salts.salts[0] == kUnseenSalt) {
    tags[0] = tag_for(kUnseenSalt, m);
  } else if (allocator_->bucketized()) {
    prf_.bucket_tags(salts.salts.data(), salts.salts.size(), tags.data());
  } else {
    prf_.tags(salts.salts.data(), salts.salts.size(), to_bytes(m),
              tags.data());
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  return tags;
}

}  // namespace wre::core
