// Client-side multi-tenancy: one TenantPool turns a single service master
// secret into per-tenant encrypted views of ONE shared server-side table.
//
// The model (the paper's deployment story scaled out): a service operator
// holds one master secret and serves millions of end users ("tenants").
// Each tenant's columns are encrypted under keys derived via
// crypto::TenantKeyring — HKDF per tenant id — so two tenants' tag
// namespaces are cryptographically disjoint even though their rows live
// interleaved in the same physical table with the same physical schema.
// A search by tenant A probes tags only A's PRF key can produce; B's rows
// match only as negligible-probability 64-bit collisions, which A's
// client-side filtering then discards like any other false positive.
//
// What the server learns: which physical rows/tags each request touched —
// the same per-request leakage as single-tenant WRE — plus whatever tenant
// id the client stamps into the wire extension (used only to scope the
// idempotency cache). It never learns a key, a plaintext, or whether two
// tenants' rows encode the same value (different PRF keys make equal
// plaintexts land on independent tags).
//
// Usage:
//   TenantPool pool(transport, service_master, config);
//   pool.connection(42).insert(cfg.table, row);          // tenant 42's view
//   pool.connection(7).select_ids(cfg.table, "city", "rome");
//
// Threading: connection() is internally locked, but the returned
// EncryptedConnection has the same rules as any other (reads concurrent,
// writes exclusive) and a shared DbTransport serializes round trips — for
// parallel load, shard tenants across threads, each thread owning its own
// TenantPool over its own transport (bench_scale does exactly this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/encrypted_client.h"
#include "src/crypto/tenant_keys.h"

namespace wre::core {

/// The shared-table layout every tenant attaches to: one logical schema,
/// one set of column specs, one registered distribution per encrypted
/// column. (Tenants draw from the same plaintext universe — the paper's
/// P_M is a property of the data domain, not of who encrypts it.)
struct TenantTableConfig {
  std::string table;
  sql::Schema logical;
  std::vector<EncryptedColumnSpec> specs;
  std::map<std::string, PlaintextDistribution> distributions;
  std::vector<RangeColumnSpec> range_specs;
};

class TenantPool {
 public:
  /// `on_switch(tenant_id)` — if provided — runs every time connection()
  /// hands out a tenant's view, before any of that tenant's requests. Use
  /// it to stamp the tenant id into the shared transport (e.g.
  /// RemoteConnection::set_tenant_id), which core cannot do itself: the
  /// DbTransport interface is tenant-agnostic by design.
  TenantPool(DbTransport& transport, ByteView service_master,
             TenantTableConfig config,
             std::function<void(uint64_t)> on_switch = {});

  /// The tenant's encrypted view of the shared table, created on first use:
  /// derives the tenant's keys, then creates the server-side table if it
  /// does not exist yet or attaches to it if it does.
  EncryptedConnection& connection(uint64_t tenant_id);

  /// Tenants with a live client-side view in this pool.
  size_t open_tenants() const;

  const TenantTableConfig& config() const { return config_; }

 private:
  DbTransport* transport_;
  crypto::TenantKeyring keyring_;
  TenantTableConfig config_;
  std::function<void(uint64_t)> on_switch_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<EncryptedConnection>>
      tenants_;
};

}  // namespace wre::core
