// The client-side query proxy: the "easily deployable" layer that turns a
// plaintext table + WRE configuration into plain SQL against an unmodified
// relational server (Section I-A / IV).
//
// Server-side layout: each encrypted column `c` of the logical schema is
// replaced by two physical columns,
//   c_tag INTEGER  — the weakly randomized search tag (indexed), and
//   c_enc BLOB     — the strongly randomized AES-CTR payload,
// mirroring the evaluation's layout ("Each encrypted column is expanded into
// two columns: one 64 bit Integer column for the WRE search tag and another
// column to hold the ... AES-encrypted data", Section VI-A).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/ingest_pipeline.h"
#include "src/core/range.h"
#include "src/core/transport.h"
#include "src/core/wre_scheme.h"
#include "src/sql/database.h"

namespace wre::core {

/// getSalts strategy selector for one column.
enum class SaltMethod {
  kDeterministic,       // DET baseline (no salt)
  kFixed,               // Section V-A; parameter = N salts
  kProportional,        // Section V-B; parameter = N_T total tags
  kPoisson,             // Section V-C; parameter = lambda
  kBucketizedPoisson,   // Section V-C1; parameter = lambda
};

const char* salt_method_name(SaltMethod m);

/// Per-column encryption configuration.
struct EncryptedColumnSpec {
  std::string column;
  SaltMethod method = SaltMethod::kPoisson;
  double parameter = 1000;  // N, N_T or lambda depending on method
  /// Handling of values outside the registered distribution (see
  /// UnseenValuePolicy in wre_scheme.h for the leakage trade-off).
  UnseenValuePolicy unseen = UnseenValuePolicy::kReject;
};

/// Configuration for a range-searchable encrypted INTEGER column
/// (bucketized ranges; see src/core/range.h for the leakage trade-off).
struct RangeColumnSpec {
  RangeColumnSpec() = default;
  RangeColumnSpec(std::string column, int64_t lo, int64_t hi,
                  uint32_t buckets, std::vector<int64_t> uppers = {})
      : column(std::move(column)),
        domain_lo(lo),
        domain_hi(hi),
        buckets(buckets),
        uppers(std::move(uppers)) {}

  std::string column;
  int64_t domain_lo = 0;
  int64_t domain_hi = 0;
  uint32_t buckets = 256;
  /// Non-empty = explicit (e.g. equi-depth) partition: bucket i covers
  /// (uppers[i-1], uppers[i]], starting at domain_lo. domain_hi and
  /// `buckets` are then derived from the cut points. Build with
  /// RangeBucketizer::equi_depth over a sample of the column.
  std::vector<int64_t> uppers;
};

/// Result of an encrypted query, post client-side processing.
struct EncryptedQueryResult {
  /// select_star: decrypted plaintext rows (false positives removed).
  std::vector<sql::Row> rows;
  /// select_ids: matching primary keys as returned by the server. With a
  /// bucketized column these may include false positives — without payloads
  /// the client cannot filter them, which is precisely the masking effect
  /// Figures 8 and 9 measure.
  std::vector<int64_t> ids;

  uint64_t server_rows_returned = 0;  // before client-side filtering
  uint64_t false_positives = 0;       // removed by filtering (select_star)
  uint64_t tags_in_query = 0;         // fan-out of the rewritten predicate
  std::string sql;                    // the rewritten query text
};

/// A connection that transparently encrypts configured columns.
///
/// Usage: construct over a Database with a 32-byte master secret, call
/// create_table() with the logical schema, the per-column specs and the
/// plaintext distribution of each encrypted column, then insert() and
/// select_*() in terms of plaintext values.
///
/// Concurrency: the query methods (select_ids, select_star, select_star_and,
/// select_star_range, rewrite_select) are safe to call from multiple threads
/// on one connection — the crypto contexts are stateless for reads and the
/// per-column tag cache takes its own lock. Everything that writes or
/// rebuilds state (insert, insert_bulk, create/attach/open/migrate_table,
/// save_manifest) requires exclusion from all other calls.
class EncryptedConnection {
 public:
  /// In-process form: wraps `db` in a LocalTransport it owns.
  EncryptedConnection(sql::Database& db, ByteView master_secret);

  /// Transport form: the server may be anywhere (net::RemoteConnection runs
  /// it over TCP). The transport must outlive the connection.
  EncryptedConnection(DbTransport& transport, ByteView master_secret);

  /// The server transport this connection issues its rewritten SQL through.
  DbTransport& transport() { return *transport_; }

  /// Creates the server-side table and tag indexes. Encrypted columns must
  /// be TEXT in the logical schema; every encrypted column needs an entry
  /// in `distributions` unless its method is kDeterministic or kFixed
  /// (which do not use P_M).
  void create_table(
      const std::string& table, const sql::Schema& logical_schema,
      const std::vector<EncryptedColumnSpec>& specs,
      const std::map<std::string, PlaintextDistribution>& distributions,
      const std::vector<RangeColumnSpec>& range_specs = {});

  /// Rebuilds client-side state for a table that already exists on the
  /// server (e.g. after a client restart). The same master secret, logical
  /// schema, specs and distributions must be supplied; keys and salt
  /// layouts are re-derived deterministically, so previously written tags
  /// remain searchable.
  void attach_table(
      const std::string& table, const sql::Schema& logical_schema,
      const std::vector<EncryptedColumnSpec>& specs,
      const std::map<std::string, PlaintextDistribution>& distributions,
      const std::vector<RangeColumnSpec>& range_specs = {});

  /// Reopens a table created by this connection (or any connection holding
  /// the same master secret) using the encrypted manifest that create_table
  /// stored in the server-side `_wre_manifest` table. The server only ever
  /// sees the manifest as an opaque AES-CTR blob.
  void open_table(const std::string& table);

  /// Re-persists the manifest for `table` (e.g. after the data owner
  /// updates a column's distribution estimate out of band).
  void save_manifest(const std::string& table);

  /// Encrypts and inserts one logical row.
  void insert(const std::string& table, const sql::Row& row);

  /// Encrypts and inserts many logical rows through the parallel bulk-ingest
  /// pipeline (see ingest_pipeline.h): tags and payloads are computed across
  /// a worker pool, then written in input order via the batched insert path.
  /// One-shot convenience over IngestPipeline; streaming callers that ingest
  /// chunk by chunk should hold an IngestPipeline so record indices (and the
  /// randomness stream) continue across chunks.
  IngestStats insert_bulk(const std::string& table,
                          const std::vector<sql::Row>& rows,
                          const IngestOptions& options = {});

  /// SELECT id FROM table WHERE column = value  (index-only on the server).
  EncryptedQueryResult select_ids(const std::string& table,
                                  const std::string& column,
                                  const std::string& value);

  /// SELECT id FROM table WHERE column IN (v1, v2, ...): one server round
  /// trip probing the union of every value's tag expansion. The IN-scan of
  /// the multi-tenant workload — fan-out grows with values * lambda, which
  /// is exactly what the tag index's multi-probe path is built for.
  EncryptedQueryResult select_ids_in(const std::string& table,
                                     const std::string& column,
                                     const std::vector<std::string>& values);

  /// SELECT * FROM table WHERE column = value. Rows are decrypted and,
  /// because payloads are available, false positives are filtered out.
  EncryptedQueryResult select_star(const std::string& table,
                                   const std::string& column,
                                   const std::string& value);

  /// One equality conjunct of a multi-column query. Encrypted columns take
  /// TEXT values (rewritten to tag disjunctions); plaintext columns accept
  /// any value and are passed through verbatim.
  struct Conjunct {
    std::string column;
    sql::Value value;
  };

  /// SELECT * FROM table WHERE c1 = v1 AND c2 = v2 AND ... across any mix
  /// of encrypted and plaintext columns. The server probes the most
  /// selective tag index and rechecks the rest; the client decrypts and
  /// removes residual false positives per encrypted conjunct.
  EncryptedQueryResult select_star_and(const std::string& table,
                                       const std::vector<Conjunct>& conjuncts);

  /// SELECT * FROM table WHERE lo <= column <= hi over a range-encrypted
  /// INTEGER column. The server matches whole buckets; the client decrypts
  /// and trims to the exact range.
  EncryptedQueryResult select_star_range(const std::string& table,
                                         const std::string& column,
                                         int64_t lo, int64_t hi);

  /// The rewritten SQL for an equality query (exposed for inspection).
  std::string rewrite_select(const std::string& table,
                             const std::string& column,
                             const std::string& value, bool star);

  /// Distribution-drift report for one encrypted column, computed from the
  /// inserts made through *this connection instance*. Large drift (or any
  /// unseen rows) means the registered P_M no longer matches the data and
  /// the tag frequencies are no longer fully smoothed; migrate_table() with
  /// a refreshed distribution restores the guarantee.
  struct ColumnDrift {
    uint64_t observed_rows = 0;
    uint64_t unseen_rows = 0;   // values outside the registered P_M
    double tv_distance = 0;     // TV(P_M, observed empirical distribution)
  };
  ColumnDrift column_drift(const std::string& table,
                           const std::string& column) const;

  /// Decrypts every row of `source`, re-encrypts under the new
  /// configuration and loads it into (newly created) `destination`. For any
  /// encrypted column missing from `distributions` the distribution is
  /// estimated from the decrypted data itself — the "calculated during
  /// database initialization" option of Section IV.
  void migrate_table(
      const std::string& source, const std::string& destination,
      const std::vector<EncryptedColumnSpec>& specs,
      std::map<std::string, PlaintextDistribution> distributions,
      const std::vector<RangeColumnSpec>& range_specs = {});

  /// The logical schema registered for `table`.
  const sql::Schema& logical_schema(const std::string& table) const;

  /// Direct access to a column's scheme (attack harnesses use this).
  const WreScheme& scheme(const std::string& table,
                          const std::string& column) const;

 private:
  // The bulk-ingest pipeline snapshots per-worker encryption contexts from
  // TableState and shares this connection's drift counters and rng.
  friend class IngestPipeline;

  // Memoizes WreScheme::search_tags per plaintext value. A repeated search
  // recomputes up to lambda HMAC invocations otherwise; the expansion is
  // deterministic per column key, so it can be cached for the lifetime of
  // the column state. Invalidation is structural: create/attach/open/migrate
  // rebuild the owning ColumnState (and thus a fresh cache) whenever keys,
  // salt layout or distribution change.
  struct TagCache {
    std::mutex mu;
    std::unordered_map<std::string,
                       std::shared_ptr<const std::vector<crypto::Tag>>>
        by_value;
  };

  struct ColumnState {
    EncryptedColumnSpec spec;
    std::unique_ptr<WreScheme> scheme;
    size_t logical_index = 0;
    std::unique_ptr<TagCache> tag_cache = std::make_unique<TagCache>();
    // Drift tracking over this connection's inserts.
    std::unordered_map<std::string, uint64_t> observed;
    uint64_t observed_total = 0;
    uint64_t unseen_total = 0;
  };

  struct RangeColumnState {
    RangeColumnSpec spec;
    std::unique_ptr<RangeBucketizer> bucketizer;
    std::unique_ptr<crypto::TagPrf> prf;
    std::unique_ptr<crypto::AesCtr> payload;
    size_t logical_index = 0;
  };

  struct TableState {
    sql::Schema logical;
    sql::Schema physical;
    // logical column name -> encryption state (encrypted columns only).
    std::map<std::string, ColumnState> encrypted;
    // logical column name -> range-column state.
    std::map<std::string, RangeColumnState> ranges;
    // logical index -> physical index of the first column representing it.
    std::vector<size_t> physical_offset;
    // Inputs retained for manifest persistence.
    std::vector<EncryptedColumnSpec> specs;
    std::map<std::string, PlaintextDistribution> distributions;
    std::vector<RangeColumnSpec> range_specs;
  };

  const TableState& state(const std::string& table) const;
  TableState& mutable_state(const std::string& table);
  const ColumnState& column_state(const std::string& table,
                                  const std::string& column) const;
  /// search_tags through the column's TagCache (thread-safe; the HMAC
  /// expansion runs outside the cache lock).
  std::shared_ptr<const std::vector<crypto::Tag>> search_tags_cached(
      const ColumnState& cs, const std::string& value) const;
  void build_table_state(
      const std::string& table, const sql::Schema& logical_schema,
      const std::vector<EncryptedColumnSpec>& specs,
      const std::map<std::string, PlaintextDistribution>& distributions,
      const std::vector<RangeColumnSpec>& range_specs);
  std::unique_ptr<WreScheme> build_scheme(
      const std::string& table, const EncryptedColumnSpec& spec,
      const PlaintextDistribution* dist) const;
  sql::Row decrypt_row(const TableState& ts, const sql::Row& physical) const;

  std::unique_ptr<DbTransport> owned_transport_;  // only the Database& ctor
  DbTransport* transport_;
  Bytes master_secret_;
  crypto::SecureRandom rng_;
  std::map<std::string, TableState> tables_;
};

}  // namespace wre::core
