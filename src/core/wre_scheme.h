// The WRE scheme of Figure 1 (and its bucketized variant from Section
// V-C1): Gen / Enc / Dec / Search over one column.
//
//   Enc(k0, k1, m): s <-$ P_S(m);  t = F_{k1}(s || m);  c = Enc'_{k0}(m)
//   Dec(k0, (t, c)): discard t, return Dec'_{k0}(c)
//   Search(k1, m):  { F_{k1}(s_i || m) : s_i in S(m) }
//
// For a bucketized allocator the PRF input is the salt alone (t = F_{k1}(s)).
// F is HMAC-SHA-256 truncated to 64 bits (crypto::TagPrf); Enc' is
// AES-256-CTR with a fresh random nonce (crypto::AesCtr).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/salts.h"
#include "src/crypto/aes_ctr.h"
#include "src/crypto/keys.h"
#include "src/crypto/prf.h"

namespace wre::core {

/// One encrypted cell: the weakly randomized search tag plus the strongly
/// randomized payload ciphertext.
struct EncryptedCell {
  crypto::Tag tag = 0;
  Bytes ciphertext;
};

/// What to do when encrypting a value outside the column's plaintext
/// distribution (new values arriving after initialization — the paper's
/// "future work" on distribution change).
enum class UnseenValuePolicy {
  /// Refuse (throw WreError). Safe default: an out-of-distribution tag
  /// would otherwise appear with a frequency the smoothing never shaped.
  kReject,
  /// Fall back to a single deterministic tag for the value. Keeps the
  /// application running but leaks the unseen value's frequency exactly
  /// like DET would — callers should monitor drift (see
  /// EncryptedConnection::column_drift) and re-encrypt when it grows.
  kDeterministicFallback,
};

/// A WRE instance for a single column. Owns the salt allocator.
class WreScheme {
 public:
  /// `keys` supplies k0 (payload) and k1 (tag PRF). The allocator defines
  /// the getSalts strategy (and whether the scheme is bucketized).
  WreScheme(crypto::KeyBundle keys, std::unique_ptr<SaltAllocator> allocator,
            UnseenValuePolicy unseen_policy = UnseenValuePolicy::kReject);

  /// Clones this scheme for a parallel-ingest worker: the clone gets its own
  /// PRF and AES contexts (no state shared with other workers) while the
  /// salt allocator — immutable after construction, and potentially large
  /// (distribution tables, bucket layouts) — is shared read-only. Clones
  /// produce bit-identical output to the original for the same (m, rng)
  /// inputs, which is what makes parallel ingest equivalent to serial.
  std::unique_ptr<WreScheme> clone() const;

  /// Enc: draws a salt from P_S(m) using `rng` and produces (tag, c).
  EncryptedCell encrypt(const std::string& m, crypto::SecureRandom& rng) const;

  /// Dec: recovers m from the payload ciphertext.
  std::string decrypt(ByteView ciphertext) const;

  /// Search: all tags that encryptions of m may carry, deduplicated. The
  /// query proxy turns these into `tag IN (...)` SQL.
  std::vector<crypto::Tag> search_tags(const std::string& m) const;

  const SaltAllocator& allocator() const { return *allocator_; }

  /// True if query results can contain false positives (bucketized variant)
  /// and must be filtered by decrypting payloads client-side.
  bool may_return_false_positives() const { return allocator_->bucketized(); }

  UnseenValuePolicy unseen_policy() const { return unseen_policy_; }

 private:
  WreScheme(crypto::KeyBundle keys,
            std::shared_ptr<const SaltAllocator> allocator,
            UnseenValuePolicy unseen_policy);

  crypto::Tag tag_for(uint64_t salt, const std::string& m) const;
  /// Salt set for m, applying the unseen-value policy when m is outside the
  /// allocator's support.
  SaltSet salts_with_policy(const std::string& m) const;

  /// Reserved salt identifier for deterministic-fallback tags; outside any
  /// allocator's range (Poisson/fixed salt ids are small; bucket indices
  /// are bounded by the bucket count).
  static constexpr uint64_t kUnseenSalt = ~uint64_t{0};

  crypto::KeyBundle keys_;
  crypto::TagPrf prf_;
  crypto::AesCtr payload_;
  std::shared_ptr<const SaltAllocator> allocator_;
  UnseenValuePolicy unseen_policy_;
};

}  // namespace wre::core
