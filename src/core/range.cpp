#include "src/core/range.h"

#include <algorithm>

namespace wre::core {

RangeBucketizer::RangeBucketizer(int64_t lo, std::vector<int64_t> uppers)
    : lo_(lo), uppers_(std::move(uppers)) {
  if (uppers_.empty()) {
    throw WreError("RangeBucketizer: explicit partition needs cut points");
  }
  if (uppers_.front() < lo_) {
    throw WreError("RangeBucketizer: first cut point below domain start");
  }
  for (size_t i = 1; i < uppers_.size(); ++i) {
    if (uppers_[i] <= uppers_[i - 1]) {
      throw WreError("RangeBucketizer: cut points must strictly increase");
    }
  }
  hi_ = uppers_.back();
  buckets_ = static_cast<uint32_t>(uppers_.size());
}

RangeBucketizer RangeBucketizer::equi_depth(std::vector<int64_t> sample,
                                            uint32_t buckets) {
  if (sample.empty()) throw WreError("equi_depth: empty sample");
  if (buckets == 0) throw WreError("equi_depth: need >= 1 bucket");
  std::sort(sample.begin(), sample.end());

  // Cut at the b/buckets quantiles; duplicate cut points (heavy values
  // spanning a whole quantile) are merged, so the result may have fewer
  // than `buckets` buckets.
  std::vector<int64_t> uppers;
  uppers.reserve(buckets);
  size_t n = sample.size();
  for (uint32_t b = 1; b < buckets; ++b) {
    size_t idx = (static_cast<size_t>(b) * n) / buckets;
    int64_t cut = sample[idx > 0 ? idx - 1 : 0];
    if (uppers.empty() || cut > uppers.back()) uppers.push_back(cut);
  }
  if (uppers.empty() || uppers.back() < sample.back()) {
    uppers.push_back(sample.back());
  }
  return RangeBucketizer(sample.front(), std::move(uppers));
}

RangeBucketizer::RangeBucketizer(int64_t lo, int64_t hi, uint32_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets) {
  if (lo > hi) throw WreError("RangeBucketizer: lo > hi");
  if (buckets == 0) throw WreError("RangeBucketizer: need >= 1 bucket");
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  // span may wrap to 0 for the full int64 domain; treat as 2^64.
  if (span == 0) {
    width_ = (~uint64_t{0} / buckets) + 1;
  } else {
    width_ = (span + buckets - 1) / buckets;  // ceil
  }
  if (width_ == 0) width_ = 1;
}

uint32_t RangeBucketizer::bucket_of(int64_t v) const {
  if (v < lo_ || v > hi_) {
    throw WreError("RangeBucketizer: value outside domain");
  }
  if (!uppers_.empty()) {
    auto it = std::lower_bound(uppers_.begin(), uppers_.end(), v);
    return static_cast<uint32_t>(it - uppers_.begin());
  }
  uint64_t offset = static_cast<uint64_t>(v) - static_cast<uint64_t>(lo_);
  auto b = static_cast<uint32_t>(offset / width_);
  return b < buckets_ ? b : buckets_ - 1;
}

std::pair<uint32_t, uint32_t> RangeBucketizer::buckets_for_range(
    int64_t a, int64_t b) const {
  if (a > b || b < lo_ || a > hi_) return {1, 0};  // empty
  int64_t ca = a < lo_ ? lo_ : a;
  int64_t cb = b > hi_ ? hi_ : b;
  return {bucket_of(ca), bucket_of(cb)};
}

std::pair<int64_t, int64_t> RangeBucketizer::bucket_bounds(uint32_t i) const {
  if (i >= buckets_) throw WreError("RangeBucketizer: bucket out of range");
  if (!uppers_.empty()) {
    int64_t start = i == 0 ? lo_ : uppers_[i - 1] + 1;
    return {start, uppers_[i]};
  }
  uint64_t start = static_cast<uint64_t>(lo_) + i * width_;
  uint64_t end = start + width_ - 1;
  auto hi = static_cast<int64_t>(end);
  if (hi > hi_ || i == buckets_ - 1) hi = hi_;
  return {static_cast<int64_t>(start), hi};
}

}  // namespace wre::core
