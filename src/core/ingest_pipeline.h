// Parallel bulk-ingest pipeline: encrypt record batches across a worker
// pool, then drain them — in input order — through the SQL layer's batched
// insert path.
//
// The paper's evaluation treats database creation time as a first-class
// cost (Section VI-B: 10M records, ~9x slower than plaintext, dominated by
// client-side AES + HMAC per cell). That work is embarrassingly parallel
// *provided* parallel ingest stays bit-identical to serial ingest, which WRE
// makes possible: a value's salt set derives pseudorandomly from (key, m)
// alone, and the remaining per-record randomness (salt choice, AES-CTR
// nonces) is drawn here from a per-record PRF stream keyed by
// (master secret, stream nonce, record index) — independent of scheduling.
//
// Threading model:
//   - construction snapshots per-worker encryption contexts: each worker
//     owns a clone of every column's PRF/AES state (WreScheme::clone), while
//     the large immutable salt-allocator tables are shared read-only;
//   - workers only encrypt; the storage engine stays single-threaded — the
//     caller's thread is the single writer that drains encrypted batches in
//     order through Table::insert_batch.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/crypto/hmac_sha256.h"
#include "src/sql/schema.h"
#include "src/util/bytes.h"
#include "src/util/thread_pool.h"

namespace wre::core {

class EncryptedConnection;

struct IngestOptions {
  /// Worker threads. 0 = one per hardware thread; 1 = encrypt inline on the
  /// caller's thread (no pool), still using the batched write path.
  unsigned threads = 0;
  /// Rows per work unit handed to a worker / to Table::insert_batch.
  size_t batch_rows = 512;
  /// Record index of the first ingested row; later ingest() calls continue
  /// from where the previous one stopped. Indices key per-record randomness,
  /// so re-using an (index, stream_nonce) pair re-uses randomness.
  uint64_t start_index = 0;
  /// Fixed randomness-stream nonce for reproducible ingest (tests, the
  /// determinism suite). Empty = a fresh random nonce per pipeline, which is
  /// what production callers want: distinct pipelines then never share
  /// per-record randomness even for equal record indices.
  Bytes stream_nonce;
};

struct IngestStats {
  uint64_t rows = 0;
  size_t batches = 0;
  unsigned threads = 1;
  /// Wall-clock seconds until the last batch finished encrypting.
  double encrypt_seconds = 0;
  /// Seconds the writer spent inside the batched insert path.
  double write_seconds = 0;
  double total_seconds = 0;
};

/// A reusable bulk-ingest channel into one encrypted table.
///
/// Failure semantics match serial insert at batch granularity: batches are
/// written in input order, and the first batch whose encryption or write
/// fails aborts the run — batches before it are durably inserted, the
/// failing batch and everything after it are discarded.
///
/// Not thread-safe itself: one caller thread drives ingest() (it is the
/// single writer); parallelism lives inside.
class IngestPipeline {
 public:
  /// Snapshots per-worker encryption contexts for `table`. The connection
  /// and its table state must outlive the pipeline; encryption-relevant
  /// reconfiguration of the table (e.g. migrate) invalidates it.
  IngestPipeline(EncryptedConnection& conn, std::string table,
                 IngestOptions options = {});
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Encrypts `rows` across the workers and inserts them in order. May be
  /// called repeatedly; record indices continue across calls.
  IngestStats ingest(const std::vector<sql::Row>& rows);

  /// Record index the next ingest() call will start at.
  uint64_t next_index() const { return next_index_; }

  unsigned threads() const { return threads_; }

 private:
  struct Worker;  // per-worker cloned crypto contexts (ingest_pipeline.cpp)

  Worker* acquire_worker();
  void release_worker(Worker* w);

  /// Encrypts rows [begin, end) of `rows` into physical rows, drawing each
  /// record's randomness from its global index.
  std::vector<sql::Row> encrypt_batch(Worker& w,
                                      const std::vector<sql::Row>& rows,
                                      size_t begin, size_t end,
                                      uint64_t base_index) const;

  /// Drift bookkeeping for one written batch (caller thread only).
  void record_drift(const std::vector<sql::Row>& rows, size_t begin,
                    size_t end);

  EncryptedConnection& conn_;
  std::string table_;
  IngestOptions options_;
  unsigned threads_ = 1;
  /// Midstate-cached key of the per-record randomness PRF: every record seed
  /// is an HMAC under the same derived key, so the key-block compressions
  /// are paid once at pipeline construction.
  std::unique_ptr<crypto::HmacSha256::Key> record_key_;
  Bytes nonce_;  // stream nonce mixed into every record seed
  uint64_t next_index_ = 0;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex workers_mu_;            // guards the freelist below
  std::vector<Worker*> free_workers_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when threads_ == 1
};

}  // namespace wre::core
