#include "src/core/encrypted_client.h"

#include <algorithm>
#include <cmath>

#include "src/core/manifest.h"
#include "src/crypto/aes_ctr.h"
#include "src/crypto/hkdf.h"

namespace wre::core {

using sql::Column;
using sql::Row;
using sql::Schema;
using sql::Value;
using sql::ValueType;

const char* salt_method_name(SaltMethod m) {
  switch (m) {
    case SaltMethod::kDeterministic: return "deterministic";
    case SaltMethod::kFixed: return "fixed";
    case SaltMethod::kProportional: return "proportional";
    case SaltMethod::kPoisson: return "poisson";
    case SaltMethod::kBucketizedPoisson: return "bucketized-poisson";
  }
  return "?";
}

EncryptedConnection::EncryptedConnection(sql::Database& db,
                                         ByteView master_secret)
    : owned_transport_(std::make_unique<LocalTransport>(db)),
      transport_(owned_transport_.get()),
      master_secret_(master_secret.begin(), master_secret.end()) {}

EncryptedConnection::EncryptedConnection(DbTransport& transport,
                                         ByteView master_secret)
    : transport_(&transport),
      master_secret_(master_secret.begin(), master_secret.end()) {}

std::unique_ptr<WreScheme> EncryptedConnection::build_scheme(
    const std::string& table, const EncryptedColumnSpec& spec,
    const PlaintextDistribution* dist) const {
  // Independent keys per (table, column) via HKDF context separation.
  Bytes context = to_bytes("wre-column:" + table + ":" + spec.column);
  Bytes column_secret = crypto::hkdf(to_bytes("wre-column-keys-v1"),
                                     master_secret_, context, 32);
  crypto::KeyBundle keys = crypto::KeyBundle::derive(column_secret);

  auto need_dist = [&]() -> const PlaintextDistribution& {
    if (dist == nullptr) {
      throw WreError("column " + spec.column + " with method " +
                     salt_method_name(spec.method) +
                     " requires a plaintext distribution");
    }
    return *dist;
  };

  std::unique_ptr<SaltAllocator> allocator;
  switch (spec.method) {
    case SaltMethod::kDeterministic:
      allocator = std::make_unique<DeterministicAllocator>();
      break;
    case SaltMethod::kFixed:
      allocator = std::make_unique<FixedSaltAllocator>(
          static_cast<uint32_t>(spec.parameter));
      break;
    case SaltMethod::kProportional:
      allocator = std::make_unique<ProportionalSaltAllocator>(
          need_dist(), static_cast<uint32_t>(spec.parameter));
      break;
    case SaltMethod::kPoisson:
      allocator = std::make_unique<PoissonSaltAllocator>(
          need_dist(), spec.parameter, keys.shuffle_key);
      break;
    case SaltMethod::kBucketizedPoisson:
      allocator = std::make_unique<BucketizedPoissonAllocator>(
          need_dist(), spec.parameter, keys.shuffle_key, context);
      break;
  }
  return std::make_unique<WreScheme>(std::move(keys), std::move(allocator),
                                     spec.unseen);
}

namespace {

constexpr const char* kManifestTable = "_wre_manifest";
// Manifests routinely exceed one storage page (five columns of
// distributions over thousands of values), so blobs are chunked across
// rows. A "generation" groups one save's chunks; the highest complete
// generation per table name is current.
constexpr size_t kManifestChunkBytes = 2048;

}  // namespace

void EncryptedConnection::create_table(
    const std::string& table, const Schema& logical_schema,
    const std::vector<EncryptedColumnSpec>& specs,
    const std::map<std::string, PlaintextDistribution>& distributions,
    const std::vector<RangeColumnSpec>& range_specs) {
  build_table_state(table, logical_schema, specs, distributions, range_specs);
  const TableState& ts = tables_.at(sql::to_lower(table));
  transport_->create_table(table, ts.physical);
  for (const auto& [col, cs] : ts.encrypted) {
    transport_->create_index(table, col + "_tag");
  }
  for (const auto& [col, rs] : ts.ranges) {
    transport_->create_index(table, col + "_tag");
  }
  save_manifest(table);
}

void EncryptedConnection::save_manifest(const std::string& table) {
  const TableState& ts = state(table);
  TableManifest manifest{ts.logical, ts.specs, ts.distributions,
                         ts.range_specs};

  Bytes key = crypto::hkdf(to_bytes("wre-manifest-v1"), master_secret_,
                           to_bytes("manifest-key"), 32);
  crypto::AesCtr cipher(key);
  Bytes blob = cipher.encrypt(serialize_manifest(manifest), rng_);

  if (!transport_->has_table(kManifestTable)) {
    transport_->create_table(
        kManifestTable, Schema({Column{"id", ValueType::kInt64, true},
                                Column{"tname", ValueType::kText},
                                Column{"gen", ValueType::kInt64},
                                Column{"seq", ValueType::kInt64},
                                Column{"nchunks", ValueType::kInt64},
                                Column{"data", ValueType::kBlob}}));
  }
  int64_t gen = static_cast<int64_t>(transport_->row_count(kManifestTable));
  auto nchunks = static_cast<int64_t>(
      (blob.size() + kManifestChunkBytes - 1) / kManifestChunkBytes);
  if (nchunks == 0) nchunks = 1;
  std::vector<Row> chunks;
  chunks.reserve(static_cast<size_t>(nchunks));
  for (int64_t seq = 0; seq < nchunks; ++seq) {
    size_t begin = static_cast<size_t>(seq) * kManifestChunkBytes;
    size_t end = std::min(blob.size(), begin + kManifestChunkBytes);
    chunks.push_back(
        {Value::int64(gen + seq), Value::text(sql::to_lower(table)),
         Value::int64(gen), Value::int64(seq), Value::int64(nchunks),
         Value::blob(Bytes(blob.begin() + static_cast<ptrdiff_t>(begin),
                           blob.begin() + static_cast<ptrdiff_t>(end)))});
  }
  transport_->insert_batch(kManifestTable, chunks);
}

void EncryptedConnection::open_table(const std::string& table) {
  if (!transport_->has_table(kManifestTable)) {
    throw WreError("open_table: no manifest table in this database");
  }
  std::string lowered = sql::to_lower(table);
  // Collect chunks of the highest generation for this table.
  std::map<int64_t, std::map<int64_t, Bytes>> generations;  // gen -> seq -> chunk
  std::map<int64_t, int64_t> expected_chunks;
  transport_->scan(kManifestTable, [&](const Row& row) {
    if (row[1].is_null() || row[1].as_text() != lowered) return;
    int64_t gen = row[2].as_int64();
    generations[gen][row[3].as_int64()] = row[5].as_blob();
    expected_chunks[gen] = row[4].as_int64();
  });

  std::optional<Bytes> latest;
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    if (static_cast<int64_t>(it->second.size()) !=
        expected_chunks[it->first]) {
      continue;  // torn write; fall back to the previous generation
    }
    Bytes assembled;
    for (const auto& [seq, chunk] : it->second) append(assembled, chunk);
    latest = std::move(assembled);
    break;
  }
  if (!latest) {
    throw WreError("open_table: no manifest recorded for table " + table);
  }

  Bytes key = crypto::hkdf(to_bytes("wre-manifest-v1"), master_secret_,
                           to_bytes("manifest-key"), 32);
  crypto::AesCtr cipher(key);
  TableManifest manifest = [&] {
    try {
      return deserialize_manifest(cipher.decrypt(*latest));
    } catch (const WreError&) {
      throw WreError(
          "open_table: cannot decode manifest (wrong master secret?)");
    } catch (const std::exception&) {
      // Wrong master secret decrypts to garbage, which can also surface as
      // allocation/length failures while parsing; normalize the error.
      throw WreError(
          "open_table: cannot decode manifest (wrong master secret?)");
    }
  }();
  attach_table(table, manifest.logical_schema, manifest.specs,
               manifest.distributions, manifest.range_specs);
}

void EncryptedConnection::attach_table(
    const std::string& table, const Schema& logical_schema,
    const std::vector<EncryptedColumnSpec>& specs,
    const std::map<std::string, PlaintextDistribution>& distributions,
    const std::vector<RangeColumnSpec>& range_specs) {
  if (!transport_->has_table(table)) {
    throw WreError("attach_table: no such table on the server: " + table);
  }
  build_table_state(table, logical_schema, specs, distributions, range_specs);
  // Sanity check the physical layout against the server's catalog.
  const TableState& ts = tables_.at(sql::to_lower(table));
  const Schema server = transport_->table_schema(table);
  if (server.column_count() != ts.physical.column_count()) {
    throw WreError("attach_table: schema mismatch with server table " + table);
  }
}

void EncryptedConnection::build_table_state(
    const std::string& table, const Schema& logical_schema,
    const std::vector<EncryptedColumnSpec>& specs,
    const std::map<std::string, PlaintextDistribution>& distributions,
    const std::vector<RangeColumnSpec>& range_specs) {
  TableState ts;
  ts.logical = logical_schema;

  std::map<std::string, const EncryptedColumnSpec*> by_column;
  for (const auto& spec : specs) {
    by_column[sql::to_lower(spec.column)] = &spec;
  }
  std::map<std::string, const RangeColumnSpec*> range_by_column;
  for (const auto& spec : range_specs) {
    if (by_column.contains(sql::to_lower(spec.column))) {
      throw WreError("column cannot be both equality- and range-encrypted: " +
                     spec.column);
    }
    range_by_column[sql::to_lower(spec.column)] = &spec;
  }

  std::vector<Column> physical_columns;
  for (size_t i = 0; i < logical_schema.column_count(); ++i) {
    const Column& col = logical_schema.column(i);
    ts.physical_offset.push_back(physical_columns.size());

    if (auto rit = range_by_column.find(col.name);
        rit != range_by_column.end()) {
      if (col.type != ValueType::kInt64) {
        throw WreError("range-encrypted column must be INTEGER: " + col.name);
      }
      if (col.primary_key) {
        throw WreError("primary key cannot be range-encrypted: " + col.name);
      }
      physical_columns.push_back(Column{col.name + "_tag", ValueType::kInt64});
      physical_columns.push_back(Column{col.name + "_enc", ValueType::kBlob});

      Bytes context = to_bytes("wre-range-column:" + table + ":" + col.name);
      Bytes column_secret = crypto::hkdf(to_bytes("wre-column-keys-v1"),
                                         master_secret_, context, 32);
      crypto::KeyBundle keys = crypto::KeyBundle::derive(column_secret);

      RangeColumnState rs;
      rs.spec = *rit->second;
      rs.bucketizer =
          rs.spec.uppers.empty()
              ? std::make_unique<RangeBucketizer>(
                    rs.spec.domain_lo, rs.spec.domain_hi, rs.spec.buckets)
              : std::make_unique<RangeBucketizer>(rs.spec.domain_lo,
                                                  rs.spec.uppers);
      rs.prf = std::make_unique<crypto::TagPrf>(keys.tag_key);
      rs.payload = std::make_unique<crypto::AesCtr>(keys.payload_key);
      rs.logical_index = i;
      ts.ranges.emplace(col.name, std::move(rs));
      continue;
    }

    auto it = by_column.find(col.name);
    if (it == by_column.end()) {
      physical_columns.push_back(col);
      continue;
    }
    if (col.type != ValueType::kText) {
      throw WreError("encrypted column must be TEXT: " + col.name);
    }
    physical_columns.push_back(Column{col.name + "_tag", ValueType::kInt64});
    physical_columns.push_back(Column{col.name + "_enc", ValueType::kBlob});

    const PlaintextDistribution* dist = nullptr;
    auto dit = distributions.find(col.name);
    if (dit != distributions.end()) dist = &dit->second;

    ColumnState cs;
    cs.spec = *it->second;
    cs.scheme = build_scheme(table, cs.spec, dist);
    cs.logical_index = i;
    ts.encrypted.emplace(col.name, std::move(cs));
  }
  if (ts.encrypted.size() != by_column.size() ||
      ts.ranges.size() != range_by_column.size()) {
    throw WreError("create_table: spec references unknown column");
  }

  ts.physical = Schema(physical_columns);
  ts.specs = specs;
  ts.distributions = distributions;
  ts.range_specs = range_specs;
  tables_.insert_or_assign(sql::to_lower(table), std::move(ts));
}

const EncryptedConnection::TableState& EncryptedConnection::state(
    const std::string& table) const {
  auto it = tables_.find(sql::to_lower(table));
  if (it == tables_.end()) {
    throw WreError("EncryptedConnection: unknown table " + table);
  }
  return it->second;
}

EncryptedConnection::TableState& EncryptedConnection::mutable_state(
    const std::string& table) {
  auto it = tables_.find(sql::to_lower(table));
  if (it == tables_.end()) {
    throw WreError("EncryptedConnection: unknown table " + table);
  }
  return it->second;
}

const EncryptedConnection::ColumnState& EncryptedConnection::column_state(
    const std::string& table, const std::string& column) const {
  const TableState& ts = state(table);
  auto it = ts.encrypted.find(sql::to_lower(column));
  if (it == ts.encrypted.end()) {
    throw WreError("EncryptedConnection: column not encrypted: " + column);
  }
  return it->second;
}

std::shared_ptr<const std::vector<crypto::Tag>>
EncryptedConnection::search_tags_cached(const ColumnState& cs,
                                        const std::string& value) const {
  // Bounds client memory at ~kMaxCachedValues * lambda tags per column;
  // overflow wipes the map wholesale (cheap, and query workloads that blow
  // past it are uniform sweeps that would not re-hit entries anyway).
  constexpr size_t kMaxCachedValues = 4096;
  TagCache& cache = *cs.tag_cache;
  {
    std::lock_guard<std::mutex> lk(cache.mu);
    auto it = cache.by_value.find(value);
    if (it != cache.by_value.end()) return it->second;
  }
  // Compute outside the lock: the expansion is up to lambda HMACs and must
  // not serialize concurrent searches for different values.
  auto tags = std::make_shared<const std::vector<crypto::Tag>>(
      cs.scheme->search_tags(value));
  std::lock_guard<std::mutex> lk(cache.mu);
  if (cache.by_value.size() >= kMaxCachedValues) cache.by_value.clear();
  // On a lost race the first writer's (identical) vector wins.
  return cache.by_value.emplace(value, std::move(tags)).first->second;
}

const Schema& EncryptedConnection::logical_schema(
    const std::string& table) const {
  return state(table).logical;
}

const WreScheme& EncryptedConnection::scheme(const std::string& table,
                                             const std::string& column) const {
  const TableState& ts = state(table);
  auto it = ts.encrypted.find(sql::to_lower(column));
  if (it == ts.encrypted.end()) {
    throw WreError("EncryptedConnection: column not encrypted: " + column);
  }
  return *it->second.scheme;
}

void EncryptedConnection::insert(const std::string& table, const Row& row) {
  // Mutable access: drift counters are updated per encrypted cell.
  TableState& ts = mutable_state(table);
  ts.logical.check_row(row);

  Row physical;
  physical.reserve(ts.physical.column_count());
  for (size_t i = 0; i < ts.logical.column_count(); ++i) {
    const Column& col = ts.logical.column(i);

    if (auto rit = ts.ranges.find(col.name); rit != ts.ranges.end()) {
      if (row[i].is_null()) {
        physical.push_back(Value::null());
        physical.push_back(Value::null());
        continue;
      }
      const RangeColumnState& rs = rit->second;
      int64_t v = row[i].as_int64();
      uint32_t bucket = rs.bucketizer->bucket_of(v);
      Bytes plain;
      store_le64(plain, static_cast<uint64_t>(v));
      physical.push_back(Value::tag(rs.prf->range_tag(bucket)));
      physical.push_back(Value::blob(rs.payload->encrypt(plain, rng_)));
      continue;
    }

    auto it = ts.encrypted.find(col.name);
    if (it == ts.encrypted.end()) {
      physical.push_back(row[i]);
      continue;
    }
    if (row[i].is_null()) {
      physical.push_back(Value::null());
      physical.push_back(Value::null());
      continue;
    }
    ColumnState& cs = it->second;
    const std::string& value = row[i].as_text();
    EncryptedCell cell = cs.scheme->encrypt(value, rng_);
    // Drift bookkeeping (after encrypt, so rejected values don't count).
    ++cs.observed[value];
    ++cs.observed_total;
    if (!cs.scheme->allocator().covers(value)) ++cs.unseen_total;
    physical.push_back(Value::tag(cell.tag));
    physical.push_back(Value::blob(std::move(cell.ciphertext)));
  }
  transport_->insert_batch(table, {std::move(physical)});
}

IngestStats EncryptedConnection::insert_bulk(const std::string& table,
                                             const std::vector<Row>& rows,
                                             const IngestOptions& options) {
  IngestPipeline pipeline(*this, table, options);
  return pipeline.ingest(rows);
}

namespace {

/// "<column>_tag IN (t1, t2, ...)" for a tag expansion.
std::string tag_in_clause(const std::string& column,
                          const std::vector<crypto::Tag>& tags) {
  std::string sql = sql::to_lower(column) + "_tag IN (";
  for (size_t i = 0; i < tags.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += Value::tag(tags[i]).to_sql_literal();
  }
  sql += ")";
  return sql;
}

std::string tag_select_sql(const std::string& table, const std::string& column,
                           const std::vector<crypto::Tag>& tags, bool star) {
  return tag_scan_sql(table, sql::to_lower(column) + "_tag", tags, star);
}

}  // namespace

std::string EncryptedConnection::rewrite_select(const std::string& table,
                                                const std::string& column,
                                                const std::string& value,
                                                bool star) {
  const ColumnState& cs = column_state(table, column);
  auto tags = search_tags_cached(cs, value);
  return tag_select_sql(table, column, *tags, star);
}

Row EncryptedConnection::decrypt_row(const TableState& ts,
                                     const Row& physical) const {
  Row logical;
  logical.reserve(ts.logical.column_count());
  for (size_t i = 0; i < ts.logical.column_count(); ++i) {
    const Column& col = ts.logical.column(i);
    size_t off = ts.physical_offset[i];

    if (auto rit = ts.ranges.find(col.name); rit != ts.ranges.end()) {
      const Value& enc = physical[off + 1];
      if (enc.is_null()) {
        logical.push_back(Value::null());
        continue;
      }
      Bytes plain = rit->second.payload->decrypt(enc.as_blob());
      if (plain.size() != 8) {
        throw WreError("corrupt range-column payload in " + col.name);
      }
      logical.push_back(
          Value::int64(static_cast<int64_t>(load_le64(plain.data()))));
      continue;
    }

    auto it = ts.encrypted.find(col.name);
    if (it == ts.encrypted.end()) {
      logical.push_back(physical[off]);
      continue;
    }
    const Value& enc = physical[off + 1];
    if (enc.is_null()) {
      logical.push_back(Value::null());
      continue;
    }
    logical.push_back(Value::text(it->second.scheme->decrypt(enc.as_blob())));
  }
  return logical;
}

EncryptedQueryResult EncryptedConnection::select_ids(
    const std::string& table, const std::string& column,
    const std::string& value) {
  const ColumnState& cs = column_state(table, column);
  auto tags = search_tags_cached(cs, value);
  EncryptedQueryResult result;
  result.sql = tag_select_sql(table, column, *tags, /*star=*/false);
  result.tags_in_query = tags->size();

  sql::ResultSet rs = transport_->tag_scan(
      table, sql::to_lower(column) + "_tag", *tags, /*star=*/false);
  result.server_rows_returned = rs.rows.size();
  result.ids.reserve(rs.rows.size());
  for (const Row& row : rs.rows) result.ids.push_back(row[0].as_int64());
  return result;
}

EncryptedQueryResult EncryptedConnection::select_ids_in(
    const std::string& table, const std::string& column,
    const std::vector<std::string>& values) {
  if (values.empty()) {
    throw WreError("select_ids_in: need at least one value");
  }
  const ColumnState& cs = column_state(table, column);
  // Union of every value's expansion, one round trip. Duplicate tags are
  // harmless (the server's IN probe dedups matches), but dropping them
  // keeps the wire fan-out at the true union size.
  std::vector<crypto::Tag> tags;
  for (const std::string& value : values) {
    auto expansion = search_tags_cached(cs, value);
    tags.insert(tags.end(), expansion->begin(), expansion->end());
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());

  EncryptedQueryResult result;
  result.sql = tag_select_sql(table, column, tags, /*star=*/false);
  result.tags_in_query = tags.size();
  sql::ResultSet rs = transport_->tag_scan(
      table, sql::to_lower(column) + "_tag", tags, /*star=*/false);
  result.server_rows_returned = rs.rows.size();
  result.ids.reserve(rs.rows.size());
  for (const Row& row : rs.rows) result.ids.push_back(row[0].as_int64());
  return result;
}

EncryptedQueryResult EncryptedConnection::select_star_and(
    const std::string& table, const std::vector<Conjunct>& conjuncts) {
  if (conjuncts.empty()) {
    throw WreError("select_star_and: need at least one conjunct");
  }
  const TableState& ts = state(table);
  EncryptedQueryResult result;

  std::string sql = "SELECT * FROM " + sql::to_lower(table) + " WHERE ";
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const Conjunct& c = conjuncts[i];
    std::string col = sql::to_lower(c.column);
    if (i > 0) sql += " AND ";
    auto it = ts.encrypted.find(col);
    if (it == ts.encrypted.end()) {
      if (!ts.logical.index_of(col)) {
        throw WreError("select_star_and: unknown column " + col);
      }
      sql += col + " = " + c.value.to_sql_literal();
      continue;
    }
    auto tags = search_tags_cached(it->second, c.value.as_text());
    result.tags_in_query += tags->size();
    sql += "(" + tag_in_clause(col, *tags) + ")";
  }
  result.sql = sql;

  sql::ResultSet rs = transport_->execute(sql);
  result.server_rows_returned = rs.rows.size();

  for (const Row& physical : rs.rows) {
    Row logical = decrypt_row(ts, physical);
    bool keep = true;
    for (const Conjunct& c : conjuncts) {
      std::string col = sql::to_lower(c.column);
      if (!ts.encrypted.contains(col)) continue;  // server matched exactly
      const Value& cell = logical[*ts.logical.index_of(col)];
      if (cell.is_null() || cell.as_text() != c.value.as_text()) {
        keep = false;
        break;
      }
    }
    if (keep) {
      result.rows.push_back(std::move(logical));
    } else {
      ++result.false_positives;
    }
  }
  return result;
}

EncryptedQueryResult EncryptedConnection::select_star_range(
    const std::string& table, const std::string& column, int64_t lo,
    int64_t hi) {
  const TableState& ts = state(table);
  auto rit = ts.ranges.find(sql::to_lower(column));
  if (rit == ts.ranges.end()) {
    throw WreError("select_star_range: column is not range-encrypted: " +
                   column);
  }
  const RangeColumnState& rs = rit->second;
  EncryptedQueryResult result;

  auto [b_lo, b_hi] = rs.bucketizer->buckets_for_range(lo, hi);
  std::string sql = "SELECT * FROM " + sql::to_lower(table) + " WHERE " +
                    sql::to_lower(column) + "_tag IN (";
  bool first = true;
  for (uint32_t b = b_lo; b <= b_hi && b_lo <= b_hi; ++b) {
    if (!first) sql += ", ";
    first = false;
    sql += Value::tag(rs.prf->range_tag(b)).to_sql_literal();
    ++result.tags_in_query;
  }
  sql += ")";
  result.sql = sql;
  if (result.tags_in_query == 0) return result;  // empty range

  sql::ResultSet server = transport_->execute(sql);
  result.server_rows_returned = server.rows.size();

  size_t col_idx = rs.logical_index;
  for (const Row& physical : server.rows) {
    Row logical = decrypt_row(ts, physical);
    const Value& v = logical[col_idx];
    if (!v.is_null() && v.as_int64() >= lo && v.as_int64() <= hi) {
      result.rows.push_back(std::move(logical));
    } else {
      ++result.false_positives;  // bucket-granularity overshoot, trimmed
    }
  }
  return result;
}

EncryptedQueryResult EncryptedConnection::select_star(
    const std::string& table, const std::string& column,
    const std::string& value) {
  const TableState& ts = state(table);
  const ColumnState& cs = column_state(table, column);
  auto tags = search_tags_cached(cs, value);
  EncryptedQueryResult result;
  result.sql = tag_select_sql(table, column, *tags, /*star=*/true);
  result.tags_in_query = tags->size();

  sql::ResultSet rs = transport_->tag_scan(
      table, sql::to_lower(column) + "_tag", *tags, /*star=*/true);
  result.server_rows_returned = rs.rows.size();

  size_t col_idx = *ts.logical.index_of(column);
  for (const Row& physical : rs.rows) {
    Row logical = decrypt_row(ts, physical);
    // Client-side filtering: drop bucketized false positives (and the
    // cryptographically negligible tag-collision ones) by comparing the
    // decrypted value against the query.
    if (!logical[col_idx].is_null() && logical[col_idx].as_text() == value) {
      result.rows.push_back(std::move(logical));
    } else {
      ++result.false_positives;
    }
  }
  return result;
}

EncryptedConnection::ColumnDrift EncryptedConnection::column_drift(
    const std::string& table, const std::string& column) const {
  const TableState& ts = state(table);
  auto it = ts.encrypted.find(sql::to_lower(column));
  if (it == ts.encrypted.end()) {
    throw WreError("column_drift: column not encrypted: " + column);
  }
  const ColumnState& cs = it->second;

  ColumnDrift drift;
  drift.observed_rows = cs.observed_total;
  drift.unseen_rows = cs.unseen_total;
  if (cs.observed_total == 0) return drift;

  // TV distance between the registered distribution and the empirical one,
  // over the union of supports.
  auto dit = ts.distributions.find(sql::to_lower(column));
  double tv = 0;
  double total = static_cast<double>(cs.observed_total);
  if (dit == ts.distributions.end()) {
    // No registered distribution (fixed/deterministic methods): drift is
    // defined as 0; only unseen_rows is meaningful (always 0 here too).
    return drift;
  }
  const PlaintextDistribution& registered = dit->second;
  for (const std::string& m : registered.messages()) {
    auto oit = cs.observed.find(m);
    double observed =
        oit == cs.observed.end()
            ? 0.0
            : static_cast<double>(oit->second) / total;
    tv += std::abs(registered.probability(m) - observed);
  }
  for (const auto& [m, count] : cs.observed) {
    if (!registered.contains(m)) {
      tv += static_cast<double>(count) / total;
    }
  }
  drift.tv_distance = tv / 2.0;
  return drift;
}

void EncryptedConnection::migrate_table(
    const std::string& source, const std::string& destination,
    const std::vector<EncryptedColumnSpec>& specs,
    std::map<std::string, PlaintextDistribution> distributions,
    const std::vector<RangeColumnSpec>& range_specs) {
  const TableState& src = state(source);
  if (transport_->has_table(destination)) {
    throw WreError("migrate_table: destination exists: " + destination);
  }

  // Pass 1: decrypt every row (the whole point of migration is that only
  // the key holder can re-encrypt).
  std::vector<Row> rows;
  rows.reserve(transport_->row_count(source));
  transport_->scan(source, [&](const Row& physical) {
    rows.push_back(decrypt_row(src, physical));
  });

  // Estimate any missing distribution from the data itself.
  for (const EncryptedColumnSpec& spec : specs) {
    std::string col = sql::to_lower(spec.column);
    if (distributions.contains(col)) continue;
    if (spec.method == SaltMethod::kDeterministic ||
        spec.method == SaltMethod::kFixed) {
      continue;  // methods that do not use P_M
    }
    auto idx = src.logical.index_of(col);
    if (!idx) throw WreError("migrate_table: unknown column " + col);
    std::unordered_map<std::string, uint64_t> counts;
    for (const Row& row : rows) {
      if (!row[*idx].is_null()) ++counts[row[*idx].as_text()];
    }
    if (counts.empty()) {
      throw WreError("migrate_table: cannot estimate distribution for empty "
                     "column " + col);
    }
    distributions.emplace(col, PlaintextDistribution::from_counts(counts));
  }

  create_table(destination, src.logical, specs, distributions, range_specs);
  insert_bulk(destination, rows);
}

}  // namespace wre::core
