#include "src/core/tenant.h"

namespace wre::core {

TenantPool::TenantPool(DbTransport& transport, ByteView service_master,
                       TenantTableConfig config,
                       std::function<void(uint64_t)> on_switch)
    : transport_(&transport),
      keyring_(service_master),
      config_(std::move(config)),
      on_switch_(std::move(on_switch)) {}

EncryptedConnection& TenantPool::connection(uint64_t tenant_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    // First use: derive this tenant's keys and build its view of the
    // shared table. The tenant secret is the tenant's own "master secret"
    // — everything below it (per-column PRF/payload keys, salt layouts)
    // derives exactly like the single-tenant path.
    auto conn = std::make_unique<EncryptedConnection>(
        *transport_, keyring_.tenant_secret(tenant_id));
    if (on_switch_) on_switch_(tenant_id);
    if (transport_->has_table(config_.table)) {
      conn->attach_table(config_.table, config_.logical, config_.specs,
                         config_.distributions, config_.range_specs);
    } else {
      conn->create_table(config_.table, config_.logical, config_.specs,
                         config_.distributions, config_.range_specs);
    }
    it = tenants_.emplace(tenant_id, std::move(conn)).first;
  } else if (on_switch_) {
    on_switch_(tenant_id);
  }
  return *it->second;
}

size_t TenantPool::open_tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

}  // namespace wre::core
