#include "src/core/transport.h"

namespace wre::core {

std::string tag_scan_sql(const std::string& table,
                         const std::string& tag_column,
                         const std::vector<uint64_t>& tags, bool star) {
  std::string sql = star ? "SELECT * FROM " : "SELECT id FROM ";
  sql += sql::to_lower(table);
  sql += " WHERE " + sql::to_lower(tag_column) + " IN (";
  for (size_t i = 0; i < tags.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += sql::Value::tag(tags[i]).to_sql_literal();
  }
  sql += ")";
  return sql;
}

sql::ResultSet DbTransport::tag_scan(const std::string& table,
                                     const std::string& tag_column,
                                     const std::vector<uint64_t>& tags,
                                     bool star) {
  return execute(tag_scan_sql(table, tag_column, tags, star));
}

sql::ResultSet LocalTransport::execute(const std::string& sql) {
  return db_.execute(sql);
}

void LocalTransport::create_table(const std::string& table,
                                  const sql::Schema& schema) {
  db_.create_table(table, schema);
}

void LocalTransport::create_index(const std::string& table,
                                  const std::string& column) {
  db_.create_index(table, column);
}

bool LocalTransport::has_table(const std::string& table) {
  return db_.has_table(table);
}

uint64_t LocalTransport::row_count(const std::string& table) {
  return db_.table(table).row_count();
}

sql::Schema LocalTransport::table_schema(const std::string& table) {
  return db_.table(table).schema();
}

std::vector<int64_t> LocalTransport::insert_batch(
    const std::string& table, const std::vector<sql::Row>& rows) {
  return db_.insert_batch(table, rows);
}

void LocalTransport::scan(const std::string& table,
                          const std::function<void(const sql::Row&)>& fn) {
  db_.table(table).scan([&](int64_t, const sql::Row& row) { fn(row); });
}

}  // namespace wre::core
