// Encrypted client manifests: self-describing encrypted tables.
//
// create_table()/attach_table() need the logical schema, the per-column
// specs, and each column's plaintext distribution. Rather than forcing every
// client to re-supply these after a restart, the connection can persist them
// *in the untrusted database itself*, AES-CTR-encrypted under a key derived
// from the master secret. The server learns only an opaque blob; a client
// holding the master secret can reopen any table with open_table(name).
//
// This mirrors how deployable encrypted-database proxies (e.g. CryptDB)
// store their own metadata in the DBMS they protect.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/core/distribution.h"
#include "src/sql/schema.h"
#include "src/util/bytes.h"

namespace wre::core {

struct EncryptedColumnSpec;  // encrypted_client.h
struct RangeColumnSpec;      // encrypted_client.h

/// Everything needed to rebuild a table's client-side state.
struct TableManifest {
  sql::Schema logical_schema;
  std::vector<EncryptedColumnSpec> specs;
  std::map<std::string, PlaintextDistribution> distributions;
  std::vector<RangeColumnSpec> range_specs;
};

/// Versioned binary serialization. Throws WreError on malformed input.
Bytes serialize_manifest(const TableManifest& manifest);
TableManifest deserialize_manifest(ByteView data);

}  // namespace wre::core
