#include "src/core/ingest_pipeline.h"

#include <algorithm>
#include <condition_variable>
#include <thread>

#include "src/core/encrypted_client.h"
#include "src/crypto/hkdf.h"
#include "src/crypto/hmac_sha256.h"
#include "src/util/timer.h"

namespace wre::core {

// Per-worker encryption contexts. Every worker owns private PRF/AES state
// (cloned, so no two threads ever touch the same cipher object) plus a
// column plan mapping logical columns to those contexts; the salt
// allocators and range bucketizers behind the pointers are immutable after
// construction and shared by all workers.
struct IngestPipeline::Worker {
  struct EncCol {
    size_t logical_index;
    std::unique_ptr<WreScheme> scheme;  // cloned contexts, shared allocator
  };
  struct RangeCol {
    size_t logical_index;
    const RangeBucketizer* bucketizer;  // shared, immutable
    crypto::TagPrf prf;                 // worker-private copies
    crypto::AesCtr payload;
  };
  enum Kind : uint8_t { kPlain, kEncrypted, kRange };
  struct Slot {
    Kind kind;
    size_t pos;  // index into enc / ranges for the non-plain kinds
  };

  std::vector<Slot> plan;  // one entry per logical column
  std::vector<EncCol> enc;
  std::vector<RangeCol> ranges;
  size_t physical_columns = 0;
};

IngestPipeline::IngestPipeline(EncryptedConnection& conn, std::string table,
                               IngestOptions options)
    : conn_(conn), table_(std::move(table)), options_(std::move(options)) {
  threads_ = options_.threads;
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
  if (options_.batch_rows == 0) options_.batch_rows = 1;
  next_index_ = options_.start_index;

  // Record g's randomness stream is seeded with
  //   HMAC(record_key, nonce || le64(g)),
  // so an encryption depends only on (master secret, table, nonce, g, row)
  // — never on which worker ran it or how rows were batched. That is the
  // whole determinism argument: together with salt sets being pseudorandom
  // in (key, m), parallel ingest is bit-identical to serial ingest.
  record_key_ = std::make_unique<crypto::HmacSha256::Key>(
      crypto::hkdf(to_bytes("wre-ingest-rng-v1"), conn_.master_secret_,
                   to_bytes("ingest:" + sql::to_lower(table_)), 32));
  nonce_ = options_.stream_nonce.empty() ? conn_.rng_.bytes(16)
                                         : options_.stream_nonce;

  const EncryptedConnection::TableState& ts = conn_.state(table_);
  workers_.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) {
    auto w = std::make_unique<Worker>();
    w->plan.reserve(ts.logical.column_count());
    for (size_t i = 0; i < ts.logical.column_count(); ++i) {
      const sql::Column& col = ts.logical.column(i);
      if (auto rit = ts.ranges.find(col.name); rit != ts.ranges.end()) {
        w->plan.push_back({Worker::kRange, w->ranges.size()});
        w->ranges.push_back(Worker::RangeCol{i, rit->second.bucketizer.get(),
                                             *rit->second.prf,
                                             *rit->second.payload});
      } else if (auto it = ts.encrypted.find(col.name);
                 it != ts.encrypted.end()) {
        w->plan.push_back({Worker::kEncrypted, w->enc.size()});
        w->enc.push_back(Worker::EncCol{i, it->second.scheme->clone()});
      } else {
        w->plan.push_back({Worker::kPlain, 0});
      }
    }
    w->physical_columns = ts.physical.column_count();
    free_workers_.push_back(w.get());
    workers_.push_back(std::move(w));
  }
  if (threads_ > 1) pool_ = std::make_unique<util::ThreadPool>(threads_);
}

IngestPipeline::~IngestPipeline() = default;

IngestPipeline::Worker* IngestPipeline::acquire_worker() {
  std::lock_guard<std::mutex> lk(workers_mu_);
  // Never empty: the pool runs at most threads_ tasks at once and there are
  // exactly threads_ contexts.
  Worker* w = free_workers_.back();
  free_workers_.pop_back();
  return w;
}

void IngestPipeline::release_worker(Worker* w) {
  std::lock_guard<std::mutex> lk(workers_mu_);
  free_workers_.push_back(w);
}

std::vector<sql::Row> IngestPipeline::encrypt_batch(
    Worker& w, const std::vector<sql::Row>& rows, size_t begin, size_t end,
    uint64_t base_index) const {
  std::vector<sql::Row> out;
  out.reserve(end - begin);
  uint8_t index_le[8];
  for (size_t r = begin; r < end; ++r) {
    const sql::Row& row = rows[r];
    store_le64(index_le, base_index + (r - begin));
    crypto::HmacSha256 h(*record_key_);
    h.update(nonce_);
    h.update(ByteView(index_le, sizeof(index_le)));
    auto seed = h.finish();
    crypto::SecureRandom rng{ByteView(seed.data(), seed.size())};

    sql::Row physical;
    physical.reserve(w.physical_columns);
    for (size_t i = 0; i < w.plan.size(); ++i) {
      const Worker::Slot& slot = w.plan[i];
      if (slot.kind == Worker::kPlain) {
        physical.push_back(row[i]);
        continue;
      }
      if (row[i].is_null()) {
        physical.push_back(sql::Value::null());
        physical.push_back(sql::Value::null());
        continue;
      }
      if (slot.kind == Worker::kEncrypted) {
        EncryptedCell cell = w.enc[slot.pos].scheme->encrypt(row[i].as_text(),
                                                             rng);
        physical.push_back(sql::Value::tag(cell.tag));
        physical.push_back(sql::Value::blob(std::move(cell.ciphertext)));
      } else {
        const Worker::RangeCol& rc = w.ranges[slot.pos];
        int64_t v = row[i].as_int64();
        Bytes plain;
        store_le64(plain, static_cast<uint64_t>(v));
        physical.push_back(
            sql::Value::tag(rc.prf.range_tag(rc.bucketizer->bucket_of(v))));
        physical.push_back(sql::Value::blob(rc.payload.encrypt(plain, rng)));
      }
    }
    out.push_back(std::move(physical));
  }
  return out;
}

void IngestPipeline::record_drift(const std::vector<sql::Row>& rows,
                                  size_t begin, size_t end) {
  EncryptedConnection::TableState& ts = conn_.mutable_state(table_);
  for (auto& [name, cs] : ts.encrypted) {
    for (size_t r = begin; r < end; ++r) {
      const sql::Value& v = rows[r][cs.logical_index];
      if (v.is_null()) continue;
      const std::string& value = v.as_text();
      ++cs.observed[value];
      ++cs.observed_total;
      if (!cs.scheme->allocator().covers(value)) ++cs.unseen_total;
    }
  }
}

IngestStats IngestPipeline::ingest(const std::vector<sql::Row>& rows) {
  Timer total;
  IngestStats stats;
  stats.threads = threads_;
  stats.rows = rows.size();
  if (rows.empty()) return stats;

  {
    const EncryptedConnection::TableState& ts = conn_.state(table_);
    for (const sql::Row& row : rows) ts.logical.check_row(row);
  }
  DbTransport& out = conn_.transport();

  const size_t batch = options_.batch_rows;
  const size_t nbatches = (rows.size() + batch - 1) / batch;
  stats.batches = nbatches;
  const uint64_t base = next_index_;

  if (threads_ <= 1) {
    Worker& w = *workers_.front();
    for (size_t b = 0; b < nbatches; ++b) {
      size_t begin = b * batch;
      size_t end = std::min(rows.size(), begin + batch);
      Timer enc_timer;
      std::vector<sql::Row> physical =
          encrypt_batch(w, rows, begin, end, base + begin);
      stats.encrypt_seconds += enc_timer.elapsed_seconds();
      Timer write_timer;
      out.insert_batch(table_, physical);
      stats.write_seconds += write_timer.elapsed_seconds();
      record_drift(rows, begin, end);
      next_index_ += end - begin;
    }
    stats.total_seconds = total.elapsed_seconds();
    return stats;
  }

  // Fan out encryption; this thread is the single writer, draining batches
  // strictly in input order.
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::vector<sql::Row>> done;
    std::vector<char> ready;
    size_t first_error;
    std::exception_ptr error;
    size_t outstanding;
    double encrypt_seconds = 0;
  } sh;
  sh.done.resize(nbatches);
  sh.ready.assign(nbatches, 0);
  sh.first_error = nbatches;
  sh.outstanding = nbatches;
  Timer enc_timer;

  for (size_t b = 0; b < nbatches; ++b) {
    const size_t begin = b * batch;
    const size_t end = std::min(rows.size(), begin + batch);
    pool_->submit([this, &rows, &sh, &enc_timer, b, begin, end, base] {
      std::vector<sql::Row> physical;
      std::exception_ptr err;
      Worker* w = acquire_worker();
      try {
        physical = encrypt_batch(*w, rows, begin, end, base + begin);
      } catch (...) {
        err = std::current_exception();
      }
      release_worker(w);
      std::lock_guard<std::mutex> lk(sh.mu);
      if (err) {
        if (b < sh.first_error) {
          sh.first_error = b;
          sh.error = err;
        }
      } else {
        sh.done[b] = std::move(physical);
        sh.ready[b] = 1;
      }
      if (--sh.outstanding == 0) {
        sh.encrypt_seconds = enc_timer.elapsed_seconds();
      }
      sh.cv.notify_all();
    });
  }

  try {
    for (size_t b = 0; b < nbatches; ++b) {
      std::vector<sql::Row> physical;
      {
        std::unique_lock<std::mutex> lk(sh.mu);
        sh.cv.wait(lk, [&] { return sh.ready[b] || sh.first_error <= b; });
        if (sh.first_error <= b) break;
        physical = std::move(sh.done[b]);
      }
      const size_t begin = b * batch;
      const size_t end = std::min(rows.size(), begin + batch);
      Timer write_timer;
      out.insert_batch(table_, physical);
      stats.write_seconds += write_timer.elapsed_seconds();
      record_drift(rows, begin, end);
      next_index_ += end - begin;
    }
  } catch (...) {
    // A write failure must not leave workers touching `sh` (stack memory)
    // after we unwind.
    pool_->wait_idle();
    throw;
  }

  pool_->wait_idle();
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    stats.encrypt_seconds = sh.encrypt_seconds;
    if (sh.error) std::rethrow_exception(sh.error);
  }
  stats.total_seconds = total.elapsed_seconds();
  return stats;
}

}  // namespace wre::core
