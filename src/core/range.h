// Bucketized range queries over encrypted INTEGER columns.
//
// WRE itself supports only equality. For range predicates the paper's
// related-work line (Hore et al., Wang-Du) bucketizes the numeric domain:
// each value's search tag binds to its *bucket*, a range query expands to
// the OR of the bucket tags overlapping [a, b], and the client filters the
// decrypted payloads to the exact range. This keeps the deployability
// story — ordinary B-tree indexes, no order-revealing encryption — at the
// cost of (a) bucket-granularity false positives and (b) leaking bucket
// frequencies rather than value frequencies.
//
// Leakage note: bucket histograms are coarser than value histograms but are
// NOT frequency-smoothed; choose bucket boundaries so bucket populations
// are roughly uniform (equi-depth) when the domain distribution is known.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/error.h"

namespace wre::core {

/// Partition of an integer domain [lo, hi] into buckets — fixed-width by
/// default, or explicit cut points for equi-depth partitions.
class RangeBucketizer {
 public:
  /// Fixed-width partition. Throws WreError unless lo <= hi, buckets >= 1.
  RangeBucketizer(int64_t lo, int64_t hi, uint32_t buckets);

  /// Explicit partition: bucket i covers (uppers[i-1], uppers[i]], with
  /// bucket 0 starting at `lo`. `uppers` must be strictly increasing and
  /// end at the domain maximum. Used for equi-depth bucketization, which
  /// equalizes bucket *populations* so the (unsmoothed) bucket-frequency
  /// leakage is as flat as possible.
  RangeBucketizer(int64_t lo, std::vector<int64_t> uppers);

  /// Computes equi-depth cut points from a sample of the column's values:
  /// each bucket receives ~|sample|/buckets values. Returns (lo, uppers)
  /// ready for the explicit constructor. Throws WreError on empty samples.
  static RangeBucketizer equi_depth(std::vector<int64_t> sample,
                                    uint32_t buckets);

  int64_t domain_lo() const { return lo_; }
  int64_t domain_hi() const { return hi_; }
  uint32_t bucket_count() const { return buckets_; }

  /// Bucket index of a value. Throws WreError if v is outside the domain
  /// (encrypting out-of-domain values would leak them as outlier tags).
  uint32_t bucket_of(int64_t v) const;

  /// Inclusive bucket index range covering the value range [a, b], clamped
  /// to the domain. Returns nullopt-like empty pair (1, 0) when the query
  /// range misses the domain entirely.
  std::pair<uint32_t, uint32_t> buckets_for_range(int64_t a, int64_t b) const;

  /// Value interval [lo, hi] covered by bucket i (for diagnostics/tuning).
  std::pair<int64_t, int64_t> bucket_bounds(uint32_t i) const;

  /// Explicit cut points (empty for fixed-width partitions). Exposed so the
  /// client manifest can persist the partition.
  const std::vector<int64_t>& uppers() const { return uppers_; }

 private:
  int64_t lo_;
  int64_t hi_;
  uint32_t buckets_;
  // Fixed-width mode: width as unsigned 64-bit to dodge overflow on
  // full-int64 domains. Ignored when uppers_ is non-empty.
  uint64_t width_ = 0;
  std::vector<int64_t> uppers_;
};

}  // namespace wre::core
