#include "src/core/distribution.h"

#include <cmath>

namespace wre::core {

PlaintextDistribution PlaintextDistribution::from_counts(
    const std::unordered_map<std::string, uint64_t>& counts) {
  uint64_t total = 0;
  for (const auto& [m, c] : counts) total += c;
  if (total == 0) throw WreError("PlaintextDistribution: empty counts");
  std::map<std::string, double> probs;
  for (const auto& [m, c] : counts) {
    if (c == 0) continue;
    probs[m] = static_cast<double>(c) / static_cast<double>(total);
  }
  return from_probabilities(std::move(probs));
}

PlaintextDistribution PlaintextDistribution::from_probabilities(
    std::map<std::string, double> probabilities) {
  if (probabilities.empty()) {
    throw WreError("PlaintextDistribution: empty support");
  }
  double total = 0;
  PlaintextDistribution dist;
  dist.min_p_ = 1.0;
  dist.max_p_ = 0.0;
  for (const auto& [m, p] : probabilities) {
    if (p <= 0) {
      throw WreError("PlaintextDistribution: non-positive probability for '" +
                     m + "'");
    }
    total += p;
    dist.min_p_ = std::min(dist.min_p_, p);
    dist.max_p_ = std::max(dist.max_p_, p);
    dist.messages_.push_back(m);
  }
  if (std::abs(total - 1.0) > 1e-6) {
    throw WreError("PlaintextDistribution: probabilities sum to " +
                   std::to_string(total) + ", expected 1");
  }
  dist.probabilities_ = std::move(probabilities);
  return dist;
}

double PlaintextDistribution::probability(const std::string& m) const {
  auto it = probabilities_.find(m);
  if (it == probabilities_.end()) {
    throw WreError("PlaintextDistribution: message outside support: '" + m +
                   "'");
  }
  return it->second;
}

double lambda_for_advantage(double omega,
                            const PlaintextDistribution& dist) {
  if (omega <= 0 || omega >= 1) {
    throw WreError("lambda_for_advantage: omega must be in (0, 1)");
  }
  return -std::log(omega) / dist.min_probability();
}

double advantage_for_lambda(double lambda,
                            const PlaintextDistribution& dist) {
  if (lambda <= 0) throw WreError("advantage_for_lambda: lambda must be > 0");
  return std::exp(-lambda * dist.min_probability());
}

}  // namespace wre::core
