// The getSalts strategies of Sections V-A through V-C1.
//
// A salt allocator answers, for a plaintext m, the set S of salts that may
// be prepended to m and the distribution P_S over them (Figure 1's getSalts
// subroutine). Search must reproduce the exact same set at query time, so
// every randomized allocator derives its randomness pseudorandomly from a
// key and the message (or, for the bucketized variant, from the key alone).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/distribution.h"
#include "src/crypto/hmac_sha256.h"
#include "src/crypto/secure_random.h"
#include "src/util/bytes.h"

namespace wre::core {

/// The salt set S and distribution P_S for one plaintext.
struct SaltSet {
  std::vector<uint64_t> salts;
  std::vector<double> weights;  // same length; sums to 1 (within fp error)

  /// Draws a salt according to the weights.
  uint64_t sample(crypto::SecureRandom& rng) const;
};

/// Strategy interface for getSalts.
class SaltAllocator {
 public:
  virtual ~SaltAllocator() = default;

  /// S and P_S for message m. Deterministic per (allocator state, m).
  virtual SaltSet salts_for(const std::string& m) const = 0;

  /// Whether m is inside the allocator's plaintext support. Allocators that
  /// ignore P_M (deterministic, fixed) cover everything.
  virtual bool covers(const std::string& /*m*/) const { return true; }

  /// True for the bucketized construction, whose tags bind to the salt only
  /// (PRF input excludes the message, Section V-C1).
  virtual bool bucketized() const { return false; }

  /// Human-readable strategy name for logs and benches.
  virtual std::string name() const = 0;
};

/// Degenerate baseline: one fixed salt — plain deterministic encryption
/// (DET). Included as the inference-attack baseline.
class DeterministicAllocator final : public SaltAllocator {
 public:
  SaltSet salts_for(const std::string& m) const override;
  std::string name() const override { return "deterministic"; }
};

/// Section V-A, the "folklore" fixed-salts method: N salts per plaintext,
/// uniform, regardless of frequency.
class FixedSaltAllocator final : public SaltAllocator {
 public:
  explicit FixedSaltAllocator(uint32_t num_salts);
  SaltSet salts_for(const std::string& m) const override;
  std::string name() const override;

 private:
  uint32_t num_salts_;
};

/// Section V-B, proportional salts: plaintext m gets about P_M(m) * N_T
/// salts (at least one), uniform. Equivalent to Lacharité-Paterson
/// frequency-smoothing homophonic encoding. Suffers integer-rounding
/// aliasing (demonstrated in bench_ablation_salt_schemes).
class ProportionalSaltAllocator final : public SaltAllocator {
 public:
  ProportionalSaltAllocator(const PlaintextDistribution& dist,
                            uint32_t total_tags);
  SaltSet salts_for(const std::string& m) const override;
  bool covers(const std::string& m) const override {
    return dist_.contains(m);
  }
  std::string name() const override;

 private:
  PlaintextDistribution dist_;  // owned copy: allocators outlive callers' maps
  uint32_t total_tags_;
};

/// Section V-C, Poisson random frequencies (Algorithm 1): for plaintext m,
/// run a rate-lambda Poisson process over [0, P_M(m)]; the inter-arrival
/// lengths are the salt weights. All weights are Exponential(lambda) samples
/// except the last (capped). Randomness is drawn from a PRG keyed by
/// HMAC(key, m) so encryption and search agree.
class PoissonSaltAllocator final : public SaltAllocator {
 public:
  PoissonSaltAllocator(const PlaintextDistribution& dist, double lambda,
                       ByteView key);
  SaltSet salts_for(const std::string& m) const override;
  bool covers(const std::string& m) const override {
    return dist_.contains(m);
  }
  std::string name() const override;

  double lambda() const { return lambda_; }

 private:
  PlaintextDistribution dist_;  // owned copy: allocators outlive callers' maps
  double lambda_;
  // Precomputed HMAC midstates for the salt-seed PRF: every salts_for() call
  // MACs the message under the same key, so the ipad/opad compressions are
  // paid once here instead of per call.
  crypto::HmacSha256::Key seed_key_;
};

/// Section V-C1, bucketized Poisson (Algorithm 2): one rate-lambda Poisson
/// process over [0, 1] shared by all plaintexts. The message space is laid
/// end-to-end on [0, 1] in a keyed pseudo-random-shuffle order; a message's
/// salts are the (global) buckets its interval overlaps. Tag frequencies are
/// independent of the plaintext, at the price of false positives where a
/// bucket straddles two messages.
class BucketizedPoissonAllocator final : public SaltAllocator {
 public:
  /// `context` domain-separates deployments/columns (it keys both the
  /// global bucket weights and the message shuffle).
  BucketizedPoissonAllocator(const PlaintextDistribution& dist, double lambda,
                             ByteView key, ByteView context);

  SaltSet salts_for(const std::string& m) const override;
  bool bucketized() const override { return true; }
  bool covers(const std::string& m) const override {
    return interval_start_.contains(m);
  }
  std::string name() const override;

  double lambda() const { return lambda_; }

  /// Total number of global buckets (== distinct tags in the column).
  size_t bucket_count() const { return boundaries_.size() - 1; }

  /// Width of bucket i — the fraction of all records expected to carry its
  /// tag. Precondition: i < bucket_count().
  double bucket_width(size_t i) const {
    return boundaries_[i + 1] - boundaries_[i];
  }

 private:
  double lambda_;
  // boundaries_[i]..boundaries_[i+1] is bucket i; boundaries_.front() == 0,
  // boundaries_.back() == 1.
  std::vector<double> boundaries_;
  // message -> start of its interval in the shuffled layout.
  std::unordered_map<std::string, double> interval_start_;
  std::unordered_map<std::string, double> interval_width_;
};

}  // namespace wre::core
