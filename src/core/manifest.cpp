#include "src/core/manifest.h"

#include <bit>

#include "src/core/encrypted_client.h"

namespace wre::core {

namespace {

constexpr uint8_t kVersion = 1;

void put_string(Bytes& out, const std::string& s) {
  store_le32(out, static_cast<uint32_t>(s.size()));
  append(out, to_bytes(s));
}

void put_double(Bytes& out, double d) {
  store_le64(out, std::bit_cast<uint64_t>(d));
}

/// Cursor-based reader with bounds checking.
class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  uint32_t u32() {
    need(4);
    uint32_t v = load_le32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }

  uint64_t u64() {
    need(8);
    uint64_t v = load_le64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    uint32_t len = u32();
    need(len);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return out;
  }

  void expect_end() const {
    if (pos_ != data_.size()) {
      throw WreError("manifest: trailing bytes");
    }
  }

 private:
  void need(size_t n) const {
    if (pos_ + n > data_.size()) throw WreError("manifest: truncated");
  }

  ByteView data_;
  size_t pos_ = 0;
};

}  // namespace

Bytes serialize_manifest(const TableManifest& manifest) {
  Bytes out;
  out.push_back(kVersion);

  // Logical schema.
  store_le32(out,
             static_cast<uint32_t>(manifest.logical_schema.column_count()));
  for (const sql::Column& col : manifest.logical_schema.columns()) {
    put_string(out, col.name);
    out.push_back(static_cast<uint8_t>(col.type));
    out.push_back(col.primary_key ? 1 : 0);
  }

  // Column specs.
  store_le32(out, static_cast<uint32_t>(manifest.specs.size()));
  for (const EncryptedColumnSpec& spec : manifest.specs) {
    put_string(out, spec.column);
    out.push_back(static_cast<uint8_t>(spec.method));
    put_double(out, spec.parameter);
    out.push_back(static_cast<uint8_t>(spec.unseen));
  }

  // Distributions.
  store_le32(out, static_cast<uint32_t>(manifest.distributions.size()));
  for (const auto& [column, dist] : manifest.distributions) {
    put_string(out, column);
    store_le32(out, static_cast<uint32_t>(dist.support_size()));
    for (const std::string& m : dist.messages()) {
      put_string(out, m);
      put_double(out, dist.probability(m));
    }
  }

  // Range-column specs.
  store_le32(out, static_cast<uint32_t>(manifest.range_specs.size()));
  for (const RangeColumnSpec& spec : manifest.range_specs) {
    put_string(out, spec.column);
    store_le64(out, static_cast<uint64_t>(spec.domain_lo));
    store_le64(out, static_cast<uint64_t>(spec.domain_hi));
    store_le32(out, spec.buckets);
    store_le32(out, static_cast<uint32_t>(spec.uppers.size()));
    for (int64_t cut : spec.uppers) {
      store_le64(out, static_cast<uint64_t>(cut));
    }
  }
  return out;
}

TableManifest deserialize_manifest(ByteView data) {
  Reader in(data);
  if (in.u8() != kVersion) throw WreError("manifest: unsupported version");

  TableManifest out;

  uint32_t ncols = in.u32();
  std::vector<sql::Column> cols;
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    sql::Column col;
    col.name = in.str();
    col.type = static_cast<sql::ValueType>(in.u8());
    col.primary_key = in.u8() != 0;
    cols.push_back(std::move(col));
  }
  out.logical_schema = sql::Schema(std::move(cols));

  uint32_t nspecs = in.u32();
  for (uint32_t i = 0; i < nspecs; ++i) {
    EncryptedColumnSpec spec;
    spec.column = in.str();
    auto method = in.u8();
    if (method > static_cast<uint8_t>(SaltMethod::kBucketizedPoisson)) {
      throw WreError("manifest: bad salt method");
    }
    spec.method = static_cast<SaltMethod>(method);
    spec.parameter = in.f64();
    auto unseen = in.u8();
    if (unseen >
        static_cast<uint8_t>(UnseenValuePolicy::kDeterministicFallback)) {
      throw WreError("manifest: bad unseen-value policy");
    }
    spec.unseen = static_cast<UnseenValuePolicy>(unseen);
    out.specs.push_back(std::move(spec));
  }

  uint32_t ndists = in.u32();
  for (uint32_t i = 0; i < ndists; ++i) {
    std::string column = in.str();
    uint32_t support = in.u32();
    std::map<std::string, double> probs;
    for (uint32_t j = 0; j < support; ++j) {
      std::string m = in.str();
      probs[m] = in.f64();
    }
    out.distributions.emplace(
        std::move(column),
        PlaintextDistribution::from_probabilities(std::move(probs)));
  }

  uint32_t nranges = in.u32();
  for (uint32_t i = 0; i < nranges; ++i) {
    RangeColumnSpec spec;
    spec.column = in.str();
    spec.domain_lo = static_cast<int64_t>(in.u64());
    spec.domain_hi = static_cast<int64_t>(in.u64());
    spec.buckets = in.u32();
    uint32_t ncuts = in.u32();
    spec.uppers.reserve(ncuts);
    for (uint32_t j = 0; j < ncuts; ++j) {
      spec.uppers.push_back(static_cast<int64_t>(in.u64()));
    }
    out.range_specs.push_back(std::move(spec));
  }

  in.expect_end();
  return out;
}

}  // namespace wre::core
