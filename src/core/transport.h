// The client's view of the untrusted server: every interaction the WRE
// layer has with the relational backend goes through this interface, so the
// same EncryptedConnection runs against an in-process sql::Database
// (LocalTransport) or a remote wre_server over TCP (net::RemoteConnection).
//
// The interface *is* the paper's trust boundary (Section I-A): everything
// that crosses it — SQL text, physical rows, tag lists — contains only
// search tags, AES ciphertexts and plaintext-by-configuration columns.
// Salts, keys and decrypted values never appear in these calls.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sql/database.h"

namespace wre::core {

/// Abstract server transport. Implementations must preserve sql::Database
/// semantics: statements execute in call order, SELECTs return rows in the
/// engine's deterministic order, and errors surface as the same wre::Error
/// subclass the engine would throw in process.
///
/// Fault semantics: a call returns successfully exactly once or throws.
/// Implementations may retry internally across transient transport
/// failures — including for mutating calls — but only if the retry cannot
/// double-apply (net::RemoteConnection stamps every request with an
/// idempotency key the server dedups, DESIGN.md §5.6). When retries are
/// exhausted the typed error (RetriesExhaustedError) reports attempts and
/// elapsed time; the caller cannot assume the last attempt didn't land.
class DbTransport {
 public:
  virtual ~DbTransport() = default;

  /// Parses and executes one SQL statement.
  virtual sql::ResultSet execute(const std::string& sql) = 0;

  /// DDL fast paths (equivalent to CREATE TABLE / CREATE INDEX).
  virtual void create_table(const std::string& table,
                            const sql::Schema& schema) = 0;
  virtual void create_index(const std::string& table,
                            const std::string& column) = 0;

  virtual bool has_table(const std::string& table) = 0;
  virtual uint64_t row_count(const std::string& table) = 0;

  /// The server-side (physical) schema of `table`.
  virtual sql::Schema table_schema(const std::string& table) = 0;

  /// Batched insert; returns the assigned primary keys.
  virtual std::vector<int64_t> insert_batch(
      const std::string& table, const std::vector<sql::Row>& rows) = 0;

  /// The WRE hot path: SELECT id / SELECT * with `tag_column IN (tags)`.
  /// The base implementation renders SQL text and goes through execute();
  /// remote transports override it with a dedicated wire opcode so a
  /// thousands-of-tags probe list never pays SQL rendering + parsing.
  virtual sql::ResultSet tag_scan(const std::string& table,
                                  const std::string& tag_column,
                                  const std::vector<uint64_t>& tags,
                                  bool star);

  /// Full-table scan in heap order (manifest recovery, migration).
  virtual void scan(const std::string& table,
                    const std::function<void(const sql::Row&)>& fn) = 0;
};

/// In-process transport over an embedded sql::Database — the configuration
/// every pre-network caller uses, and the one wre_server hosts server-side.
class LocalTransport final : public DbTransport {
 public:
  explicit LocalTransport(sql::Database& db) : db_(db) {}

  sql::ResultSet execute(const std::string& sql) override;
  void create_table(const std::string& table,
                    const sql::Schema& schema) override;
  void create_index(const std::string& table,
                    const std::string& column) override;
  bool has_table(const std::string& table) override;
  uint64_t row_count(const std::string& table) override;
  sql::Schema table_schema(const std::string& table) override;
  std::vector<int64_t> insert_batch(
      const std::string& table, const std::vector<sql::Row>& rows) override;
  void scan(const std::string& table,
            const std::function<void(const sql::Row&)>& fn) override;

  sql::Database& database() { return db_; }

 private:
  sql::Database& db_;
};

/// Renders "SELECT id|* FROM table WHERE tag_column IN (t1, ...)" — the
/// query shape WRE Search produces. Shared by the default tag_scan path and
/// by EncryptedConnection's rewritten-SQL reporting.
std::string tag_scan_sql(const std::string& table,
                         const std::string& tag_column,
                         const std::vector<uint64_t>& tags, bool star);

}  // namespace wre::core
