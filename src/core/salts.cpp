#include "src/core/salts.h"

#include <algorithm>
#include <cmath>

#include "src/crypto/hmac_sha256.h"
#include "src/crypto/prs.h"

namespace wre::core {

uint64_t SaltSet::sample(crypto::SecureRandom& rng) const {
  if (salts.empty() || weights.size() != salts.size()) {
    throw WreError("SaltSet::sample: malformed salt set");
  }
  double x = rng.next_double();
  // The weights sum to 1 only up to floating-point error. When the sum falls
  // slightly short and x lands in the slack, the draw is clamped into the
  // final *positive-weight* bucket — never a zero-weight salt, which the
  // Poisson allocators can legitimately emit at the tail and which must
  // appear with probability 0 for the frequency-smoothing argument to hold.
  double cum = 0;
  size_t last_positive = salts.size();
  for (size_t i = 0; i < salts.size(); ++i) {
    if (!(weights[i] > 0)) continue;  // also skips NaN defensively
    last_positive = i;
    cum += weights[i];
    if (x < cum) return salts[i];
  }
  if (last_positive == salts.size()) {
    throw WreError("SaltSet::sample: no positive-weight salt");
  }
  return salts[last_positive];
}

SaltSet DeterministicAllocator::salts_for(const std::string&) const {
  return SaltSet{{0}, {1.0}};
}

FixedSaltAllocator::FixedSaltAllocator(uint32_t num_salts)
    : num_salts_(num_salts) {
  if (num_salts_ == 0) throw WreError("FixedSaltAllocator: need >= 1 salt");
}

SaltSet FixedSaltAllocator::salts_for(const std::string&) const {
  SaltSet out;
  out.salts.reserve(num_salts_);
  out.weights.assign(num_salts_, 1.0 / num_salts_);
  for (uint32_t s = 0; s < num_salts_; ++s) out.salts.push_back(s);
  return out;
}

std::string FixedSaltAllocator::name() const {
  return "fixed-" + std::to_string(num_salts_);
}

ProportionalSaltAllocator::ProportionalSaltAllocator(
    const PlaintextDistribution& dist, uint32_t total_tags)
    : dist_(dist), total_tags_(total_tags) {
  if (total_tags_ == 0) {
    throw WreError("ProportionalSaltAllocator: need >= 1 total tag");
  }
}

SaltSet ProportionalSaltAllocator::salts_for(const std::string& m) const {
  double p = dist_.probability(m);
  // Integer rounding is the aliasing weakness analyzed in Section V-B; it is
  // deliberately preserved.
  auto n = static_cast<uint32_t>(
      std::max<long long>(1, std::llround(p * total_tags_)));
  SaltSet out;
  out.salts.reserve(n);
  out.weights.assign(n, 1.0 / n);
  for (uint32_t s = 0; s < n; ++s) out.salts.push_back(s);
  return out;
}

std::string ProportionalSaltAllocator::name() const {
  return "proportional-" + std::to_string(total_tags_);
}

PoissonSaltAllocator::PoissonSaltAllocator(const PlaintextDistribution& dist,
                                           double lambda, ByteView key)
    : dist_(dist), lambda_(lambda), seed_key_(key) {
  if (lambda_ <= 0) throw WreError("PoissonSaltAllocator: lambda must be > 0");
}

SaltSet PoissonSaltAllocator::salts_for(const std::string& m) const {
  double p = dist_.probability(m);

  // Algorithm 1: sample Exponential(lambda) inter-arrivals until the
  // interval [0, P_M(m)] is covered; the last weight is capped at the
  // interval end. Randomness is pseudorandom in (key, m); the HMAC resumes
  // from the key's cached midstates.
  crypto::HmacSha256 h(seed_key_);
  h.update(to_bytes("wre-poisson-salts-v1:"));
  h.update(to_bytes(m));
  auto seed = h.finish();
  crypto::SecureRandom rng{ByteView(seed.data(), seed.size())};

  SaltSet out;
  double total = 0;
  uint64_t s = 0;
  while (total < p) {
    double w = rng.next_exponential(lambda_);
    if (total + w > p) w = p - total;  // cap the final inter-arrival
    total += w;
    // Guard against pathological zero-width weights from fp underflow.
    if (w <= 0 && !out.salts.empty()) break;
    out.salts.push_back(s++);
    out.weights.push_back(w / p);
  }
  return out;
}

std::string PoissonSaltAllocator::name() const {
  return "poisson-" + std::to_string(static_cast<long long>(lambda_));
}

BucketizedPoissonAllocator::BucketizedPoissonAllocator(
    const PlaintextDistribution& dist, double lambda, ByteView key,
    ByteView context)
    : lambda_(lambda) {
  if (lambda_ <= 0) {
    throw WreError("BucketizedPoissonAllocator: lambda must be > 0");
  }

  // Algorithm 2, lines 2-10: one Poisson process over [0, 1], independent of
  // the plaintexts. Keyed by (key, context) only.
  Bytes seed_input = to_bytes("wre-bucketized-global-v1:");
  append(seed_input, context);
  auto seed = crypto::HmacSha256::mac(key, seed_input);
  crypto::SecureRandom rng{ByteView(seed.data(), seed.size())};

  boundaries_.push_back(0.0);
  double total = 0;
  while (total < 1.0) {
    double w = rng.next_exponential(lambda_);
    total += w;
    boundaries_.push_back(std::min(total, 1.0));
  }
  boundaries_.back() = 1.0;

  // Algorithm 2, line 11: lay the messages end-to-end on [0, 1] in a keyed
  // pseudo-random-shuffle order, so interval adjacency reveals nothing.
  std::vector<std::string> order = dist.messages();
  crypto::PseudoRandomShuffle prs(key, context);
  prs.apply(order);

  double cursor = 0;
  for (const std::string& m : order) {
    double p = dist.probability(m);
    interval_start_.emplace(m, cursor);
    interval_width_.emplace(m, p);
    cursor += p;
  }
}

SaltSet BucketizedPoissonAllocator::salts_for(const std::string& m) const {
  auto it = interval_start_.find(m);
  if (it == interval_start_.end()) {
    throw WreError("BucketizedPoissonAllocator: message outside support: '" +
                   m + "'");
  }
  double start = it->second;
  double width = interval_width_.at(m);
  double end = std::min(start + width, 1.0);

  // Buckets overlapping [start, end] (Algorithm 2, lines 12-27, expressed as
  // interval overlap). boundaries_ is sorted; find the bucket containing
  // `start`: the last boundary <= start.
  auto bit = std::upper_bound(boundaries_.begin(), boundaries_.end(), start);
  size_t bucket = static_cast<size_t>(bit - boundaries_.begin()) - 1;

  SaltSet out;
  for (; bucket + 1 < boundaries_.size(); ++bucket) {
    double lo = std::max(boundaries_[bucket], start);
    double hi = std::min(boundaries_[bucket + 1], end);
    if (hi <= lo) break;
    out.salts.push_back(bucket);
    out.weights.push_back((hi - lo) / width);
  }
  if (out.salts.empty()) {
    // Zero-width interval squeezed between boundaries (fp corner); assign
    // the containing bucket with full weight.
    out.salts.push_back(bucket);
    out.weights.push_back(1.0);
  }
  return out;
}

std::string BucketizedPoissonAllocator::name() const {
  return "bucketized-poisson-" + std::to_string(static_cast<long long>(lambda_));
}

}  // namespace wre::core
