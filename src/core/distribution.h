// Plaintext probability distributions P_M.
//
// Every WRE variant beyond fixed salts needs the plaintext distribution of
// the column being encrypted (Section IV: "one must know the probability
// distribution of the plaintexts ... the distribution can also be calculated
// during database initialization"). This module represents P_M and derives
// the security-parameter arithmetic of Section V-C.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/error.h"

namespace wre::core {

/// An immutable probability distribution over plaintext strings.
class PlaintextDistribution {
 public:
  /// From observed counts (e.g. collected during database initialization).
  static PlaintextDistribution from_counts(
      const std::unordered_map<std::string, uint64_t>& counts);

  /// From explicit probabilities; they must be positive and sum to 1 within
  /// 1e-6, else WreError.
  static PlaintextDistribution from_probabilities(
      std::map<std::string, double> probabilities);

  /// P_M(m). Throws WreError for messages outside the support: encrypting a
  /// value the distribution does not cover would leak it as an outlier
  /// frequency, so the caller must decide how to handle it (the client adds
  /// unseen values to an "other" smoothing mass explicitly).
  double probability(const std::string& m) const;

  bool contains(const std::string& m) const {
    return probabilities_.contains(m);
  }

  /// Support in a deterministic (lexicographic) order — the order matters
  /// because the bucketized construction shuffles it with a keyed PRS and
  /// client and server-side query building must agree on the pre-shuffle
  /// order.
  const std::vector<std::string>& messages() const { return messages_; }

  size_t support_size() const { return messages_.size(); }

  /// Smallest / largest probability in the support.
  double min_probability() const { return min_p_; }
  double max_probability() const { return max_p_; }

 private:
  std::map<std::string, double> probabilities_;
  std::vector<std::string> messages_;
  double min_p_ = 0;
  double max_p_ = 0;
};

/// The Poisson rate lambda required so that a snapshot adversary's advantage
/// from the capped-Exponential deviation (Section V-C) is at most `omega`:
///   advantage = e^{-lambda * tau}  with  tau = min_m P_M(m),
/// so lambda >= -ln(omega) / tau. (The paper's text writes "tau = max_m
/// P_M(m)" but calls it "the smallest plaintext frequency"; the bound is
/// driven by the smallest frequency, which maximizes e^{-lambda tau}.)
double lambda_for_advantage(double omega, const PlaintextDistribution& dist);

/// The advantage bound e^{-lambda * tau} for a given lambda.
double advantage_for_lambda(double lambda, const PlaintextDistribution& dist);

}  // namespace wre::core
