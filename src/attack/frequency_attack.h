// Inference attacks against efficiently searchable encryption.
//
// These are the adversaries the paper defends against: a snapshot attacker
// holding (a) the encrypted database — in particular the multiset of search
// tags — and (b) auxiliary knowledge of the plaintext distribution P_M.
//
// Implemented attacks:
//  * rank-matching frequency analysis (Naveed-Kamara-Wright style): sort
//    tags and plaintexts by frequency and match by rank — devastating
//    against deterministic encryption;
//  * mass-matching: a homophone-aware generalization that walks plaintexts
//    in decreasing probability and greedily claims the heaviest unclaimed
//    tags until the plaintext's expected mass is covered — effective against
//    fixed and (aliased) proportional salts;
//  * tag-combination (subset-sum) matching per Lacharité-Paterson: find a
//    subset of tag counts summing to a target plaintext's expected count —
//    the attack that motivates the bucketized construction (Section V-C
//    "Limitations").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/crypto/prf.h"

namespace wre::attack {

/// The adversary's view of one column: tag -> number of occurrences.
using TagHistogram = std::unordered_map<crypto::Tag, uint64_t>;

/// Auxiliary knowledge: plaintext -> probability.
using AuxDistribution = std::unordered_map<std::string, double>;

/// Ground truth for scoring: tag -> the plaintext that produced it. In the
/// bucketized scheme a tag can cover several plaintexts; scoring then uses
/// record-level truth via `records`.
struct AttackScore {
  uint64_t records_total = 0;
  uint64_t records_recovered = 0;
  double recovery_rate = 0;  // records_recovered / records_total
};

/// A guessed assignment tag -> plaintext.
using TagAssignment = std::unordered_map<crypto::Tag, std::string>;

/// Rank-matching frequency analysis. Assumes one tag per plaintext (DET);
/// with more tags than plaintexts the lowest-rank tags stay unassigned.
TagAssignment rank_matching_attack(const TagHistogram& tags,
                                   const AuxDistribution& aux);

/// Homophone-aware greedy mass matching.
TagAssignment mass_matching_attack(const TagHistogram& tags,
                                   const AuxDistribution& aux,
                                   uint64_t db_size);

/// Lacharité-Paterson tag-combination attack against a single target
/// plaintext: search for a subset of tag counts whose sum is within
/// `tolerance` (relative) of round(P_M(target) * db_size). Exhaustive
/// depth-first search with pruning, bounded by `max_nodes` explored;
/// returns the matched tag set, or empty if none found within the budget.
std::vector<crypto::Tag> subset_sum_attack(const TagHistogram& tags,
                                           double target_probability,
                                           uint64_t db_size, double tolerance,
                                           uint64_t max_nodes = 2'000'000);

/// Scores an assignment against per-record ground truth. `records` maps each
/// record's tag to its true plaintext (one entry per record, so duplicate
/// tags appear multiple times).
AttackScore score_assignment(
    const TagAssignment& guess,
    const std::vector<std::pair<crypto::Tag, std::string>>& records);

}  // namespace wre::attack
