#include "src/attack/optimal_matching.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wre::attack {

std::vector<size_t> solve_assignment(const std::vector<double>& cost,
                                     size_t n) {
  if (cost.size() != n * n) {
    throw std::invalid_argument("solve_assignment: cost is not n x n");
  }
  // Hungarian algorithm with row/column potentials; 1-based internal
  // indexing per the classic formulation (e-maxx). O(n^3).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0), v(n + 1, 0);
  std::vector<size_t> p(n + 1, 0), way(n + 1, 0);

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      size_t i0 = p[j0], j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = cost[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<size_t> match(n);
  for (size_t j = 1; j <= n; ++j) {
    if (p[j] != 0) match[p[j] - 1] = j - 1;
  }
  return match;
}

TagAssignment optimal_matching_attack(const TagHistogram& tags,
                                      const AuxDistribution& aux,
                                      uint64_t db_size, size_t max_size) {
  if (db_size == 0 || tags.empty() || aux.empty()) return {};

  // Rows: the most frequent tags (up to max_size). Columns: plaintexts,
  // then padding columns meaning "assign to nothing".
  std::vector<std::pair<crypto::Tag, double>> tag_freqs;
  tag_freqs.reserve(tags.size());
  for (const auto& [tag, count] : tags) {
    tag_freqs.emplace_back(
        tag, static_cast<double>(count) / static_cast<double>(db_size));
  }
  std::sort(tag_freqs.begin(), tag_freqs.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  if (tag_freqs.size() > max_size) tag_freqs.resize(max_size);

  std::vector<std::pair<std::string, double>> plaintexts(aux.begin(),
                                                         aux.end());
  std::sort(plaintexts.begin(), plaintexts.end());
  if (plaintexts.size() > max_size) {
    std::sort(plaintexts.begin(), plaintexts.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    plaintexts.resize(max_size);
  }

  size_t n = std::max(tag_freqs.size(), plaintexts.size());
  std::vector<double> cost(n * n, 0.0);
  for (size_t r = 0; r < n; ++r) {
    double tf = r < tag_freqs.size() ? tag_freqs[r].second : 0.0;
    for (size_t c = 0; c < n; ++c) {
      double pf = c < plaintexts.size() ? plaintexts[c].second : 0.0;
      // Padding column (pf = 0) costs the tag's whole mass; padding row
      // (tf = 0) costs the plaintext's mass — both express "unmatched".
      cost[r * n + c] = std::abs(tf - pf);
    }
  }

  auto match = solve_assignment(cost, n);

  TagAssignment out;
  for (size_t r = 0; r < tag_freqs.size(); ++r) {
    size_t c = match[r];
    if (c < plaintexts.size()) {
      out.emplace(tag_freqs[r].first, plaintexts[c].first);
    }
  }
  return out;
}

}  // namespace wre::attack
