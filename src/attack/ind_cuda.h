// Executable IND-CUDA game (Definition 7): a harness that plays the
// indistinguishability-under-chosen-unordered-database experiment between a
// WRE scheme and a caller-supplied adversary, estimating the adversary's
// success probability over repeated trials.
//
// Per the definition, the challenger (1) generates fresh keys, (2) picks a
// uniform bit b, (3) applies a uniformly random shuffle to M_b, (4) encrypts
// every message and hands the encrypted list to the adversary. The scheme's
// plaintext distribution is computed from the selected list, matching the
// deployment model where the data owner knows the distribution of what is
// being encrypted.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/distribution.h"
#include "src/core/wre_scheme.h"

namespace wre::attack {

/// Builds a fresh scheme instance for one trial. `keygen` supplies the
/// trial's key material so every trial uses independent keys.
using SchemeFactory = std::function<std::unique_ptr<core::WreScheme>(
    const core::PlaintextDistribution& dist, crypto::SecureRandom& keygen)>;

/// The adversary sees its own chosen lists and the encrypted database (in
/// shuffled order) and outputs a guess for b.
using Adversary = std::function<int(const std::vector<std::string>& m0,
                                    const std::vector<std::string>& m1,
                                    const std::vector<core::EncryptedCell>& edb)>;

struct IndCudaResult {
  uint64_t trials = 0;
  uint64_t successes = 0;
  double success_rate = 0;  // Pr[b' == b]
  double advantage = 0;     // |success_rate - 1/2|
};

/// Runs `trials` independent IND-CUDA games. The message lists must be
/// non-empty and the same length (the harness enforces the definition's
/// |M_0| == |M_1| constraint; equal message sizes are the caller's duty when
/// the adversary is meant to be legal).
IndCudaResult run_ind_cuda(const SchemeFactory& factory,
                           const std::vector<std::string>& m0,
                           const std::vector<std::string>& m1,
                           const Adversary& adversary, uint64_t trials,
                           uint64_t seed);

/// A generic frequency-moment adversary: computes the tag histogram's
/// collision statistic sum_t c_t^2 and guesses the list whose *expected*
/// statistic (estimated by encrypting each candidate list itself with fresh
/// keys `calibration_rounds` times) is nearer. This models an attacker with
/// auxiliary knowledge of both candidate databases — exactly the IND-CUDA
/// adversary's position.
Adversary make_collision_adversary(const SchemeFactory& factory,
                                   uint64_t calibration_rounds, uint64_t seed);

}  // namespace wre::attack
