#include "src/attack/ind_cuda.h"

#include <cmath>
#include <unordered_map>

#include "src/util/error.h"

namespace wre::attack {

namespace {

core::PlaintextDistribution distribution_of(
    const std::vector<std::string>& messages) {
  std::unordered_map<std::string, uint64_t> counts;
  for (const auto& m : messages) ++counts[m];
  return core::PlaintextDistribution::from_counts(counts);
}

std::vector<core::EncryptedCell> encrypt_shuffled(
    const SchemeFactory& factory, const std::vector<std::string>& messages,
    crypto::SecureRandom& rng) {
  auto scheme = factory(distribution_of(messages), rng);

  // Uniformly random shuffle of the selected list (the PRS of Definition 7;
  // the harness uses true randomness, which a PRS is indistinguishable
  // from by definition).
  std::vector<std::string> shuffled = messages;
  for (size_t i = shuffled.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.next_below(i));
    std::swap(shuffled[i - 1], shuffled[j]);
  }

  std::vector<core::EncryptedCell> edb;
  edb.reserve(shuffled.size());
  for (const auto& m : shuffled) edb.push_back(scheme->encrypt(m, rng));
  return edb;
}

double collision_statistic(const std::vector<core::EncryptedCell>& edb) {
  std::unordered_map<crypto::Tag, uint64_t> hist;
  for (const auto& cell : edb) ++hist[cell.tag];
  double s = 0;
  for (const auto& [tag, c] : hist) {
    s += static_cast<double>(c) * static_cast<double>(c);
  }
  return s;
}

}  // namespace

IndCudaResult run_ind_cuda(const SchemeFactory& factory,
                           const std::vector<std::string>& m0,
                           const std::vector<std::string>& m1,
                           const Adversary& adversary, uint64_t trials,
                           uint64_t seed) {
  if (m0.empty() || m0.size() != m1.size()) {
    throw WreError("run_ind_cuda: lists must be non-empty and equal length");
  }
  crypto::SecureRandom rng = crypto::SecureRandom::for_testing(seed);

  IndCudaResult result;
  result.trials = trials;
  for (uint64_t t = 0; t < trials; ++t) {
    int b = static_cast<int>(rng.next_below(2));
    auto edb = encrypt_shuffled(factory, b == 0 ? m0 : m1, rng);
    int guess = adversary(m0, m1, edb);
    if (guess == b) ++result.successes;
  }
  result.success_rate =
      static_cast<double>(result.successes) / static_cast<double>(trials);
  result.advantage = std::abs(result.success_rate - 0.5);
  return result;
}

Adversary make_collision_adversary(const SchemeFactory& factory,
                                   uint64_t calibration_rounds,
                                   uint64_t seed) {
  // The adversary owns its own randomness, independent of the challenger's.
  auto rng = std::make_shared<crypto::SecureRandom>(
      crypto::SecureRandom::for_testing(seed ^ 0xadbeef));
  return [factory, calibration_rounds, rng](
             const std::vector<std::string>& m0,
             const std::vector<std::string>& m1,
             const std::vector<core::EncryptedCell>& edb) -> int {
    auto expected = [&](const std::vector<std::string>& list) {
      double total = 0;
      for (uint64_t r = 0; r < calibration_rounds; ++r) {
        total += collision_statistic(encrypt_shuffled(factory, list, *rng));
      }
      return total / static_cast<double>(calibration_rounds);
    };
    double observed = collision_statistic(edb);
    double e0 = expected(m0);
    double e1 = expected(m1);
    return std::abs(observed - e0) <= std::abs(observed - e1) ? 0 : 1;
  };
}

}  // namespace wre::attack
