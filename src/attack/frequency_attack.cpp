#include "src/attack/frequency_attack.h"

#include <algorithm>
#include <cmath>

namespace wre::attack {

namespace {

/// Tags sorted by descending count (ties broken by tag value for
/// determinism).
std::vector<std::pair<crypto::Tag, uint64_t>> sorted_tags(
    const TagHistogram& tags) {
  std::vector<std::pair<crypto::Tag, uint64_t>> out(tags.begin(), tags.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

/// Plaintexts sorted by descending probability (ties by name).
std::vector<std::pair<std::string, double>> sorted_aux(
    const AuxDistribution& aux) {
  std::vector<std::pair<std::string, double>> out(aux.begin(), aux.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

}  // namespace

TagAssignment rank_matching_attack(const TagHistogram& tags,
                                   const AuxDistribution& aux) {
  auto ts = sorted_tags(tags);
  auto ms = sorted_aux(aux);
  TagAssignment out;
  for (size_t i = 0; i < ts.size() && i < ms.size(); ++i) {
    out.emplace(ts[i].first, ms[i].first);
  }
  return out;
}

TagAssignment mass_matching_attack(const TagHistogram& tags,
                                   const AuxDistribution& aux,
                                   uint64_t db_size) {
  auto ts = sorted_tags(tags);
  auto ms = sorted_aux(aux);

  TagAssignment out;
  size_t next_tag = 0;
  for (const auto& [m, p] : ms) {
    double budget = p * static_cast<double>(db_size);
    double claimed = 0;
    // Claim the heaviest unclaimed tags. Allow the final claim to overshoot
    // only if more than half of it fits the remaining budget — a simple
    // rounding rule that keeps totals aligned.
    while (next_tag < ts.size() && claimed < budget) {
      double c = static_cast<double>(ts[next_tag].second);
      if (claimed + c > budget && (budget - claimed) < c / 2) break;
      out.emplace(ts[next_tag].first, m);
      claimed += c;
      ++next_tag;
    }
    if (next_tag >= ts.size()) break;
  }
  return out;
}

std::vector<crypto::Tag> subset_sum_attack(const TagHistogram& tags,
                                           double target_probability,
                                           uint64_t db_size, double tolerance,
                                           uint64_t max_nodes) {
  auto ts = sorted_tags(tags);
  auto target = static_cast<int64_t>(
      std::llround(target_probability * static_cast<double>(db_size)));
  auto slack = static_cast<int64_t>(
      std::llround(tolerance * static_cast<double>(target)));

  // Suffix sums enable pruning: if even taking every remaining tag cannot
  // reach the target, backtrack.
  std::vector<int64_t> suffix(ts.size() + 1, 0);
  for (size_t i = ts.size(); i > 0; --i) {
    suffix[i - 1] = suffix[i] + static_cast<int64_t>(ts[i - 1].second);
  }

  std::vector<crypto::Tag> chosen;
  uint64_t nodes = 0;

  // Iterative DFS over (index, remaining target).
  std::function<bool(size_t, int64_t)> dfs = [&](size_t i,
                                                 int64_t remaining) -> bool {
    if (std::llabs(remaining) <= slack) return true;
    if (i >= ts.size() || remaining < -slack) return false;
    if (suffix[i] < remaining - slack) return false;  // cannot reach target
    if (++nodes > max_nodes) return false;

    // Take tag i.
    chosen.push_back(ts[i].first);
    if (dfs(i + 1, remaining - static_cast<int64_t>(ts[i].second))) return true;
    chosen.pop_back();
    // Skip tag i.
    return dfs(i + 1, remaining);
  };

  if (dfs(0, target)) return chosen;
  return {};
}

AttackScore score_assignment(
    const TagAssignment& guess,
    const std::vector<std::pair<crypto::Tag, std::string>>& records) {
  AttackScore score;
  score.records_total = records.size();
  for (const auto& [tag, truth] : records) {
    auto it = guess.find(tag);
    if (it != guess.end() && it->second == truth) ++score.records_recovered;
  }
  if (score.records_total > 0) {
    score.recovery_rate = static_cast<double>(score.records_recovered) /
                          static_cast<double>(score.records_total);
  }
  return score;
}

}  // namespace wre::attack
