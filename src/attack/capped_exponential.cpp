#include "src/attack/capped_exponential.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wre::attack {

double exponential_pdf(double lambda, double x) {
  return x < 0 ? 0.0 : lambda * std::exp(-lambda * x);
}

double exponential_cdf(double lambda, double x) {
  return x < 0 ? 0.0 : 1.0 - std::exp(-lambda * x);
}

double exponential_ccdf(double lambda, double x) {
  return x < 0 ? 1.0 : std::exp(-lambda * x);
}

double capped_exponential_cdf(double lambda, double tau, double x) {
  if (x < 0) return 0.0;
  if (x >= tau) return 1.0;  // the cap absorbs the upper tail
  return exponential_cdf(lambda, x);
}

double capped_exponential_ccdf(double lambda, double tau, double x) {
  return 1.0 - capped_exponential_cdf(lambda, tau, x);
}

double capped_exponential_distance(double lambda, double tau) {
  // The distributions agree below tau; the whole difference is the
  // Exponential's mass above tau, which the cap moves to the atom at tau:
  // Delta = Pr[X > tau | X ~ Exp(lambda)] = e^{-lambda tau}.
  return std::exp(-lambda * tau);
}

CcdfSeries ccdf_series(double lambda, double tau, double x_max,
                       std::size_t points) {
  if (points < 2) throw std::invalid_argument("ccdf_series: need >= 2 points");
  CcdfSeries out;
  out.x.reserve(points);
  out.exponential.reserve(points);
  out.capped.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    double x = x_max * static_cast<double>(i) / static_cast<double>(points - 1);
    out.x.push_back(x);
    out.exponential.push_back(exponential_ccdf(lambda, x));
    out.capped.push_back(capped_exponential_ccdf(lambda, tau, x));
  }
  return out;
}

double empirical_tv_distance(const std::vector<double>& a,
                             const std::vector<double>& b, std::size_t bins) {
  if (a.empty() || b.empty() || bins == 0) {
    throw std::invalid_argument("empirical_tv_distance: empty input");
  }
  double lo = std::min(*std::min_element(a.begin(), a.end()),
                       *std::min_element(b.begin(), b.end()));
  double hi = std::max(*std::max_element(a.begin(), a.end()),
                       *std::max_element(b.begin(), b.end()));
  if (hi <= lo) return 0.0;

  std::vector<double> ha(bins, 0), hb(bins, 0);
  auto bin_of = [&](double x) {
    auto b_idx = static_cast<std::size_t>((x - lo) / (hi - lo) * bins);
    return std::min(b_idx, bins - 1);
  };
  for (double x : a) ha[bin_of(x)] += 1.0 / static_cast<double>(a.size());
  for (double x : b) hb[bin_of(x)] += 1.0 / static_cast<double>(b.size());

  double tv = 0;
  for (std::size_t i = 0; i < bins; ++i) tv += std::abs(ha[i] - hb[i]);
  return tv / 2.0;
}

double ks_statistic_exponential(std::vector<double> sample, double lambda) {
  if (sample.empty()) {
    throw std::invalid_argument("ks_statistic_exponential: empty sample");
  }
  std::sort(sample.begin(), sample.end());
  double n = static_cast<double>(sample.size());
  double d = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    double f = exponential_cdf(lambda, sample[i]);
    double lo = static_cast<double>(i) / n;
    double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
  }
  return d;
}

}  // namespace wre::attack
