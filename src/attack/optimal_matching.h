// Optimal-assignment frequency matching (the l1-optimization attack of
// Naveed, Kamara and Wright [41]).
//
// Rank matching is a greedy heuristic; the full attack finds the assignment
// of tags to plaintexts minimizing the total l1 distance between observed
// tag frequencies and auxiliary plaintext probabilities. We solve the
// assignment exactly with the Hungarian algorithm (Kuhn-Munkres with
// potentials, O(n^3)).
//
// When there are more tags than plaintexts (every randomized scheme), the
// cost matrix is padded with "unassigned" plaintext slots of cost equal to
// the tag's own frequency (matching a tag to nothing costs its full mass).
#pragma once

#include <cstdint>
#include <vector>

#include "src/attack/frequency_attack.h"

namespace wre::attack {

/// Exact minimum-cost assignment between tags and plaintexts under l1
/// frequency cost. `max_size` bounds the (padded) problem size; if the
/// number of tags exceeds it, only the `max_size` most frequent tags are
/// assigned (the tail carries negligible mass). db_size scales observed
/// counts into frequencies.
TagAssignment optimal_matching_attack(const TagHistogram& tags,
                                      const AuxDistribution& aux,
                                      uint64_t db_size,
                                      size_t max_size = 512);

/// Solves the square assignment problem for `cost` (row-major n x n),
/// returning for each row the matched column. Exposed for direct testing.
std::vector<size_t> solve_assignment(const std::vector<double>& cost,
                                     size_t n);

}  // namespace wre::attack
