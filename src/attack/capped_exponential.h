// The capped Exponential distribution of Section V-C and its distance to
// the standard Exponential — the quantity behind Figure 2 and the paper's
// lambda-selection rule.
//
// In Poisson WRE the frequency of every salt but the last is an
// Exponential(lambda) sample; the *last* salt's frequency for plaintext m is
// "capped": all probability mass the Exponential puts above tau = P_M(m) is
// lumped onto the point tau. The adversary's best distinguishing advantage
// between the two is their statistical distance, e^{-lambda * tau}.
#pragma once

#include <cstddef>
#include <vector>

namespace wre::attack {

/// Standard Exponential(lambda).
double exponential_pdf(double lambda, double x);
double exponential_cdf(double lambda, double x);
/// Complementary CDF Pr[X > x] (the curve plotted in Figure 2).
double exponential_ccdf(double lambda, double x);

/// Capped Exponential(lambda, tau): identical to Exponential(lambda) on
/// [0, tau), with Pr[X = tau] = e^{-lambda * tau}.
double capped_exponential_cdf(double lambda, double tau, double x);
double capped_exponential_ccdf(double lambda, double tau, double x);

/// Exact statistical distance Delta(Exp(lambda), CappedExp(lambda, tau))
/// = e^{-lambda * tau} (Section V-C).
double capped_exponential_distance(double lambda, double tau);

/// A sampled CCDF series for plotting: pairs (x, ccdf(x)) over [0, x_max].
struct CcdfSeries {
  std::vector<double> x;
  std::vector<double> exponential;
  std::vector<double> capped;
};
CcdfSeries ccdf_series(double lambda, double tau, double x_max,
                       std::size_t points);

/// Empirical distribution helpers used by the statistical tests.
///
/// Total variation distance between two empirical samples, computed over the
/// union of observed values after binning into `bins` equal-width bins.
double empirical_tv_distance(const std::vector<double>& a,
                             const std::vector<double>& b, std::size_t bins);

/// One-sample Kolmogorov-Smirnov statistic of `sample` against
/// Exponential(lambda).
double ks_statistic_exponential(std::vector<double> sample, double lambda);

}  // namespace wre::attack
