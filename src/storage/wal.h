// Write-ahead log: segmented redo log with group commit and crash recovery.
//
// The engine's durability story before this file was "checkpoint on
// SIGTERM": a crash lost every acknowledged write since the last flush. The
// WAL closes that hole with the canonical redo-log design (MariaDB/InnoDB
// shape, scaled to this engine's single-writer discipline):
//
//   * Physical redo, page-image grained. A commit carries the after-image of
//     every page dirtied since the previous commit, the resulting extent
//     (page count) of each touched file, and — when it changed — the SQL
//     catalog. Replay is pure last-writer-wins redo: applying any committed
//     prefix of the log in order reproduces exactly that committed state, so
//     recovery is idempotent and restartable (a crash *during* recovery just
//     replays again).
//
//   * No-steal buffering upstream (BufferPool refuses to evict or flush
//     pages whose changes are not yet durably logged — including pages in
//     a commit group still awaiting its fsync; WalCommitRequest::on_durable
//     ends that window), so the data files never contain unlogged
//     mutations. Together: log-before-data, the WAL invariant.
//
//   * Group commit. commit() enqueues a pre-encoded batch and returns a
//     CommitHandle; a dedicated log-writer thread drains every queued batch,
//     writes them with one fdatasync, and releases all their waiters. A
//     writer that releases the engine's write lock before waiting overlaps
//     its fsync with the next writer's work — the fsync batches across
//     concurrent bulk-ingest sessions.
//
//   * Segmented on-disk format. Records are CRC32C-framed and
//     length-prefixed; segments rotate at a configurable size so checkpoint
//     truncation is file deletion, not rewriting. A torn or bit-flipped tail
//     fails its CRC (or its length prefix overruns the file) and recovery
//     discards everything from the first invalid byte onward — a corrupt
//     record is never replayed, and neither is anything after it.
//
// On-disk format (all integers little-endian):
//   segment file  wal-NNNNNN.log := header record*
//   header        "WREWAL01" (8 bytes) | u64 segment_seq
//   record        u32 crc32c(body) | u32 body_len | body
//   body          u8 type | payload
//   kPageImage    u16 name_len | name | u32 page_no | u32 len | page bytes
//   kFileExtent   u16 name_len | name | u32 page_count
//   kCatalog      u32 len | catalog text
//   kCommit       u64 commit_seq | u32 records_in_batch
//
// File identity is the file's basename relative to the database directory,
// so a recovered log replays onto a copied/moved directory unchanged.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/storage/page.h"
#include "src/util/bytes.h"

namespace wre::storage {

struct WalOptions {
  /// Rotate to a fresh segment once the current one exceeds this.
  uint64_t segment_bytes = 16ull << 20;
  /// fdatasync every group (true for durability; tests may disable to
  /// isolate logic from I/O latency).
  bool fsync = true;
  /// After draining the queue, wait this long for stragglers before
  /// syncing — enlarges commit groups under light concurrency. 0 = sync
  /// whatever one drain finds (natural batching under load).
  uint32_t group_window_us = 0;
};

enum class WalRecordType : uint8_t {
  kPageImage = 1,
  kFileExtent = 2,
  kCatalog = 3,
  kCommit = 4,
};

/// After-image of one page, addressed by file basename.
struct WalPageImage {
  std::string file;  // basename within the database directory
  PageNumber page = 0;
  Bytes data;  // exactly kPageSize bytes
};

/// Committed size of one file, applied by ftruncate during replay so
/// uncommitted physical extensions disappear.
struct WalFileExtent {
  std::string file;
  PageNumber page_count = 0;
};

/// One durability unit: everything a single engine mutation dirtied.
struct WalCommitRequest {
  std::vector<WalPageImage> pages;
  std::vector<WalFileExtent> extents;
  std::optional<std::string> catalog;  // present iff the catalog changed
  /// Invoked on the log-writer thread after this batch's group fdatasync
  /// completes, strictly before the CommitHandle becomes ready. Never
  /// invoked if the write or sync fails. The engine uses it to end the
  /// batch's no-steal window (BufferPool::wal_durable): only once the
  /// records are durable may the pages reach the data files. Must not
  /// throw.
  std::function<void()> on_durable;
};

struct WalStats {
  uint64_t commits = 0;          // commit() calls accepted
  uint64_t records = 0;          // records appended (incl. commit markers)
  uint64_t fsyncs = 0;           // fdatasync calls on segment files
  uint64_t groups = 0;           // write+sync rounds (== batches flushed)
  uint64_t max_group = 0;        // largest commit count in one round
  uint64_t segments_created = 0;
  uint64_t bytes_appended = 0;
};

struct WalRecoveryStats {
  uint64_t segments_scanned = 0;
  uint64_t commits_applied = 0;
  uint64_t pages_replayed = 0;
  uint64_t extents_applied = 0;
  uint64_t catalogs_replayed = 0;
  uint64_t bytes_scanned = 0;
  /// Records after the last commit marker, discarded (never acknowledged).
  uint64_t uncommitted_records_discarded = 0;
  /// True if a CRC mismatch, impossible length, or short frame was found;
  /// everything from that byte on was discarded.
  bool tail_truncated = false;
};

/// Waitable acknowledgement of one commit(). Default-constructed handles are
/// immediately ready (the non-durable no-op). wait() rethrows the log
/// writer's failure, so a caller never acknowledges a write the log lost.
class CommitHandle {
 public:
  CommitHandle() = default;
  /// Blocks until the commit's group is durable (records + fdatasync).
  void wait() const {
    if (fut_.valid()) fut_.get();
  }

 private:
  friend class Wal;
  explicit CommitHandle(std::shared_future<void> fut) : fut_(std::move(fut)) {}
  std::shared_future<void> fut_;
};

class Wal {
 public:
  /// Opens the log in `dir` (created if absent) and starts the log-writer
  /// thread. Call recover() on the directory first: construction begins a
  /// fresh segment after any existing ones but never replays them.
  explicit Wal(std::string dir, WalOptions options = {});

  /// Drains pending commits (completing their handles), then stops.
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Crash recovery, run before opening a database: scans `wal_dir`,
  /// replays every committed batch onto the files in `data_dir` (creating
  /// them as needed), fsyncs the results, then deletes all segments. A
  /// missing or empty `wal_dir` is a no-op. Throws StorageError only on
  /// environmental failure (unwritable data files); log corruption is not
  /// an error — it marks the truncation point.
  static WalRecoveryStats recover(const std::string& wal_dir,
                                  const std::string& data_dir);

  /// Enqueues one commit for the group-commit thread. The returned handle
  /// becomes ready once the batch and its commit marker are durable.
  /// Thread-safe. Throws StorageError if the log is broken (a previous
  /// write failed): the engine must not acknowledge writes it cannot log.
  CommitHandle commit(WalCommitRequest request);

  /// commit() + wait().
  void commit_sync(WalCommitRequest request) { commit(std::move(request)).wait(); }

  /// Queue barrier: blocks until every commit enqueued before this call is
  /// durable and has run its on_durable callback. Checkpoint needs this
  /// before flushing data pages — a commit whose group fsync is still in
  /// flight has frames inside their no-steal window, and truncating the log
  /// while skipping them would lose the acknowledged batch. Throws
  /// StorageError if the log is broken.
  void sync();

  /// Checkpoint truncation: deletes every segment and starts a fresh one.
  /// Caller contract: every committed record is already reflected in
  /// fsync'd data files (Database::checkpoint guarantees this). Pending
  /// uncommitted batches survive — they are written to the fresh segment.
  void truncate_all();

  /// Bytes in live segments — the replay bound a crash right now would pay.
  uint64_t live_bytes() const;

  WalStats stats() const;

  const std::string& dir() const { return dir_; }

 private:
  struct Pending {
    Bytes encoded;  // framed records, commit marker last
    uint64_t commits = 1;
    std::function<void()> on_durable;  // see WalCommitRequest
    std::promise<void> done;
  };

  void writer_loop();
  void flush_group(std::vector<Pending>& group);
  void open_fresh_segment();  // requires io_mu_
  void write_fully(const uint8_t* data, size_t len);  // requires io_mu_

  std::string dir_;
  WalOptions options_;

  // Queue state (mu_/cv_): producers enqueue, the writer thread drains.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  bool broken_ = false;  // a log write failed; all later commits fail fast

  // Segment I/O state, serialized between the writer thread and
  // truncate_all() by io_mu_.
  mutable std::mutex io_mu_;
  int fd_ = -1;
  uint64_t segment_seq_ = 0;
  uint64_t segment_bytes_written_ = 0;
  uint64_t next_commit_seq_ = 1;  // guarded by mu_

  uint64_t live_bytes_ = 0;  // guarded by mu_
  WalStats stats_;           // guarded by mu_

  std::thread writer_;
};

}  // namespace wre::storage
