#include "src/storage/bptree.h"

#include <algorithm>
#include <cstring>

#include "src/util/bytes.h"
#include "src/util/error.h"

namespace wre::storage {

// Node page layout (both kinds):
//   [0]     u8  node type: 1 = leaf, 2 = internal
//   [1]     pad
//   [2..3]  u16 entry count
//   [4..7]  u32 leaf: next-leaf page (kInvalidPage = none)
//               internal: leftmost child (child 0)
//   [8..]   entries
// Leaf entry (16 bytes):     u64 key, u64 value — sorted by (key, value).
// Internal entry (20 bytes): u64 key, u64 value, u32 right child. The
//   (key, value) pair is the smallest composite key in the right child's
//   subtree; child 0 holds everything smaller than entry 0.
//
// Metadata page (page 0):
//   [0..3] magic 'WRBT', [4..7] u32 root, [8..15] u64 entry count,
//   [16..19] u32 height
namespace {

constexpr uint32_t kMagic = 0x57524254;  // "WRBT"
constexpr uint8_t kLeaf = 1;
constexpr uint8_t kInternal = 2;
constexpr size_t kHeader = 8;
constexpr size_t kLeafEntry = 16;
constexpr size_t kInternalEntry = 20;
constexpr size_t kLeafCapacity = (kPageSize - kHeader) / kLeafEntry;       // 255
constexpr size_t kInternalCapacity = (kPageSize - kHeader) / kInternalEntry;  // 204

uint16_t node_count(const uint8_t* p) {
  return static_cast<uint16_t>(p[2] | (p[3] << 8));
}
void set_node_count(uint8_t* p, uint16_t v) {
  p[2] = static_cast<uint8_t>(v);
  p[3] = static_cast<uint8_t>(v >> 8);
}
uint32_t node_link(const uint8_t* p) { return load_le32(p + 4); }
void set_node_link(uint8_t* p, uint32_t v) {
  Bytes tmp;
  store_le32(tmp, v);
  std::memcpy(p + 4, tmp.data(), 4);
}

struct LeafEntry {
  uint64_t key;
  uint64_t value;

  friend auto operator<=>(const LeafEntry&, const LeafEntry&) = default;
};

struct InternalEntry {
  uint64_t key;
  uint64_t value;
  PageNumber child;
};

LeafEntry read_leaf_entry(const uint8_t* p, size_t i) {
  const uint8_t* e = p + kHeader + i * kLeafEntry;
  return LeafEntry{load_le64(e), load_le64(e + 8)};
}

void write_leaf_entry(uint8_t* p, size_t i, const LeafEntry& entry) {
  uint8_t* e = p + kHeader + i * kLeafEntry;
  Bytes tmp;
  store_le64(tmp, entry.key);
  store_le64(tmp, entry.value);
  std::memcpy(e, tmp.data(), kLeafEntry);
}

InternalEntry read_internal_entry(const uint8_t* p, size_t i) {
  const uint8_t* e = p + kHeader + i * kInternalEntry;
  return InternalEntry{load_le64(e), load_le64(e + 8), load_le32(e + 16)};
}

void write_internal_entry(uint8_t* p, size_t i, const InternalEntry& entry) {
  uint8_t* e = p + kHeader + i * kInternalEntry;
  Bytes tmp;
  store_le64(tmp, entry.key);
  store_le64(tmp, entry.value);
  store_le32(tmp, entry.child);
  std::memcpy(e, tmp.data(), kInternalEntry);
}

/// Index of the child to descend into for composite target (key, value):
/// the child to the left of the first separator strictly greater than the
/// target, so equal separators send us right (separator = smallest key of
/// the right subtree).
size_t child_index(const uint8_t* p, uint64_t key, uint64_t value) {
  size_t lo = 0, hi = node_count(p);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    InternalEntry e = read_internal_entry(p, mid);
    if (LeafEntry{e.key, e.value} <= LeafEntry{key, value}) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;  // 0 => child 0; i => entry[i-1].child
}

PageNumber child_at(const uint8_t* p, size_t idx) {
  return idx == 0 ? node_link(p) : read_internal_entry(p, idx - 1).child;
}

}  // namespace

BPlusTree::BPlusTree(BufferPool& pool, FileId file) : pool_(pool), file_(file) {
  load_or_init_meta();
}

void BPlusTree::load_or_init_meta() {
  PageGuard meta = pool_.fetch(PageId{file_, 0});
  const uint8_t* p = meta.data();
  if (load_be32(p) == kMagic) {
    root_ = load_le32(p + 4);
    entry_count_ = load_le64(p + 8);
    height_ = load_le32(p + 16);
    return;
  }
  meta.release();
  root_ = new_leaf();
  entry_count_ = 0;
  height_ = 1;
  save_meta();
}

void BPlusTree::save_meta() {
  PageGuard meta = pool_.fetch(PageId{file_, 0});
  uint8_t* p = meta.mutable_data();
  store_be32(p, kMagic);
  Bytes tmp;
  store_le32(tmp, root_);
  store_le64(tmp, entry_count_);
  store_le32(tmp, height_);
  std::memcpy(p + 4, tmp.data(), tmp.size());
}

PageNumber BPlusTree::new_leaf() {
  PageGuard page = pool_.allocate(file_);
  uint8_t* p = page.mutable_data();
  p[0] = kLeaf;
  set_node_count(p, 0);
  set_node_link(p, kInvalidPage);
  return page.id().page;
}

PageNumber BPlusTree::new_internal(PageNumber leftmost_child) {
  PageGuard page = pool_.allocate(file_);
  uint8_t* p = page.mutable_data();
  p[0] = kInternal;
  set_node_count(p, 0);
  set_node_link(p, leftmost_child);
  return page.id().page;
}

bool BPlusTree::insert_into(PageNumber page_no, uint64_t key, uint64_t value,
                            SplitResult* split) {
  PageGuard page = pool_.fetch(PageId{file_, page_no});

  if (page.data()[0] == kLeaf) {
    uint16_t count = node_count(page.data());
    LeafEntry target{key, value};

    // Position via binary search on the composite key.
    size_t lo = 0, hi = count;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (read_leaf_entry(page.data(), mid) < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }

    if (count < kLeafCapacity) {
      uint8_t* p = page.mutable_data();
      std::memmove(p + kHeader + (lo + 1) * kLeafEntry,
                   p + kHeader + lo * kLeafEntry, (count - lo) * kLeafEntry);
      write_leaf_entry(p, lo, target);
      set_node_count(p, static_cast<uint16_t>(count + 1));
      return false;
    }

    // Split: gather all entries plus the new one, divide in half.
    std::vector<LeafEntry> entries;
    entries.reserve(count + 1);
    for (size_t i = 0; i < count; ++i) {
      entries.push_back(read_leaf_entry(page.data(), i));
    }
    entries.insert(entries.begin() + static_cast<ptrdiff_t>(lo), target);

    size_t mid = entries.size() / 2;
    PageNumber right_no = new_leaf();
    PageGuard right = pool_.fetch(PageId{file_, right_no});

    uint8_t* lp = page.mutable_data();
    uint8_t* rp = right.mutable_data();
    set_node_link(rp, node_link(lp));
    set_node_link(lp, right_no);
    for (size_t i = 0; i < mid; ++i) write_leaf_entry(lp, i, entries[i]);
    set_node_count(lp, static_cast<uint16_t>(mid));
    for (size_t i = mid; i < entries.size(); ++i) {
      write_leaf_entry(rp, i - mid, entries[i]);
    }
    set_node_count(rp, static_cast<uint16_t>(entries.size() - mid));

    *split = SplitResult{entries[mid].key, entries[mid].value, right_no};
    return true;
  }

  // Internal node.
  size_t idx = child_index(page.data(), key, value);
  PageNumber child = child_at(page.data(), idx);
  page.release();  // avoid holding a pin across the recursive descent

  SplitResult child_split;
  if (!insert_into(child, key, value, &child_split)) return false;

  page = pool_.fetch(PageId{file_, page_no});
  uint16_t count = node_count(page.data());
  InternalEntry new_entry{child_split.sep_key, child_split.sep_value,
                          child_split.right_page};

  if (count < kInternalCapacity) {
    uint8_t* p = page.mutable_data();
    std::memmove(p + kHeader + (idx + 1) * kInternalEntry,
                 p + kHeader + idx * kInternalEntry,
                 (count - idx) * kInternalEntry);
    write_internal_entry(p, idx, new_entry);
    set_node_count(p, static_cast<uint16_t>(count + 1));
    return false;
  }

  // Split internal node: promote the middle separator.
  std::vector<InternalEntry> entries;
  entries.reserve(count + 1);
  for (size_t i = 0; i < count; ++i) {
    entries.push_back(read_internal_entry(page.data(), i));
  }
  entries.insert(entries.begin() + static_cast<ptrdiff_t>(idx), new_entry);

  size_t mid = entries.size() / 2;
  InternalEntry promoted = entries[mid];

  PageNumber right_no = new_internal(promoted.child);
  PageGuard right = pool_.fetch(PageId{file_, right_no});
  uint8_t* lp = page.mutable_data();
  uint8_t* rp = right.mutable_data();
  for (size_t i = 0; i < mid; ++i) write_internal_entry(lp, i, entries[i]);
  set_node_count(lp, static_cast<uint16_t>(mid));
  for (size_t i = mid + 1; i < entries.size(); ++i) {
    write_internal_entry(rp, i - mid - 1, entries[i]);
  }
  set_node_count(rp, static_cast<uint16_t>(entries.size() - mid - 1));

  *split = SplitResult{promoted.key, promoted.value, right_no};
  return true;
}

void BPlusTree::insert(uint64_t key, uint64_t value) {
  SplitResult split;
  if (insert_into(root_, key, value, &split)) {
    PageNumber new_root = new_internal(root_);
    PageGuard page = pool_.fetch(PageId{file_, new_root});
    uint8_t* p = page.mutable_data();
    write_internal_entry(p, 0,
                         InternalEntry{split.sep_key, split.sep_value,
                                       split.right_page});
    set_node_count(p, 1);
    page.release();
    root_ = new_root;
    ++height_;
  }
  ++entry_count_;
  save_meta();
}

PageNumber BPlusTree::find_leaf(uint64_t key) const {
  PageNumber page_no = root_;
  for (;;) {
    PageGuard page = pool_.fetch(PageId{file_, page_no}, LatchMode::kShared);
    if (page.data()[0] == kLeaf) return page_no;
    size_t idx = child_index(page.data(), key, 0);
    page_no = child_at(page.data(), idx);
  }
}

std::vector<uint64_t> BPlusTree::find(uint64_t key) const {
  std::vector<uint64_t> out;
  PageNumber page_no = find_leaf(key);
  while (page_no != kInvalidPage) {
    PageGuard page = pool_.fetch(PageId{file_, page_no}, LatchMode::kShared);
    const uint8_t* p = page.data();
    uint16_t count = node_count(p);

    // First entry >= (key, 0) within this leaf.
    size_t lo = 0, hi = count;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (read_leaf_entry(p, mid) < LeafEntry{key, 0}) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    for (size_t i = lo; i < count; ++i) {
      LeafEntry e = read_leaf_entry(p, i);
      if (e.key != key) return out;
      out.push_back(e.value);
    }
    page_no = node_link(p);  // key run may continue in the next leaf
  }
  return out;
}

void BPlusTree::scan_all(const std::function<void(uint64_t, uint64_t)>& fn) const {
  // Walk down the leftmost spine, then follow leaf links.
  PageNumber page_no = root_;
  for (;;) {
    PageGuard page = pool_.fetch(PageId{file_, page_no}, LatchMode::kShared);
    if (page.data()[0] == kLeaf) break;
    page_no = child_at(page.data(), 0);
  }
  while (page_no != kInvalidPage) {
    PageGuard page = pool_.fetch(PageId{file_, page_no}, LatchMode::kShared);
    const uint8_t* p = page.data();
    uint16_t count = node_count(p);
    for (size_t i = 0; i < count; ++i) {
      LeafEntry e = read_leaf_entry(p, i);
      fn(e.key, e.value);
    }
    page_no = node_link(p);
  }
}

PageNumber BPlusTree::page_count() const {
  return pool_.disk().page_count(file_);
}

}  // namespace wre::storage
