#include "src/storage/disk_manager.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "src/util/error.h"

namespace wre::storage {

namespace {

void synthetic_delay(uint32_t micros) {
  if (micros == 0) return;
  // sleep_for has coarse granularity for sub-millisecond delays on some
  // kernels, but the benches use it for relative comparisons only, where a
  // constant scheduling overhead per page I/O is itself realistic.
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace

DiskManager::~DiskManager() {
  for (auto& f : files_) {
    if (f.handle != nullptr) std::fclose(f.handle);
  }
}

DiskManager::File& DiskManager::file_at(FileId id) {
  if (id >= files_.size()) throw StorageError("DiskManager: bad file id");
  return files_[id];
}

const DiskManager::File& DiskManager::file_at(FileId id) const {
  if (id >= files_.size()) throw StorageError("DiskManager: bad file id");
  return files_[id];
}

FileId DiskManager::open_file(const std::string& path) {
  File f;
  f.path = path;
  // Open for read/update; create if missing.
  f.handle = std::fopen(path.c_str(), "rb+");
  if (f.handle == nullptr) {
    f.handle = std::fopen(path.c_str(), "wb+");
  }
  if (f.handle == nullptr) {
    throw StorageError("DiskManager: cannot open " + path);
  }

  if (std::fseek(f.handle, 0, SEEK_END) != 0) {
    throw StorageError("DiskManager: seek failed on " + path);
  }
  long size = std::ftell(f.handle);
  if (size < 0) throw StorageError("DiskManager: ftell failed on " + path);
  f.pages = static_cast<PageNumber>(size / kPageSize);

  files_.push_back(f);
  FileId id = static_cast<FileId>(files_.size() - 1);

  if (f.pages == 0) {
    // Reserve page 0 as the metadata page.
    allocate_page(id);
  }
  return id;
}

PageNumber DiskManager::page_count(FileId file) const {
  return file_at(file).pages;
}

PageNumber DiskManager::allocate_page(FileId file) {
  File& f = file_at(file);
  PageNumber page = f.pages;
  uint8_t zeros[kPageSize] = {0};
  if (std::fseek(f.handle, static_cast<long>(page) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(zeros, 1, kPageSize, f.handle) != kPageSize) {
    throw StorageError("DiskManager: allocate failed on " + f.path);
  }
  ++f.pages;
  ++stats_.pages_allocated;
  return page;
}

void DiskManager::read_page(PageId id, uint8_t* out) {
  File& f = file_at(id.file);
  if (id.page >= f.pages) {
    throw StorageError("DiskManager: read past end of " + f.path);
  }
  if (std::fseek(f.handle, static_cast<long>(id.page) * kPageSize, SEEK_SET) !=
          0 ||
      std::fread(out, 1, kPageSize, f.handle) != kPageSize) {
    throw StorageError("DiskManager: read failed on " + f.path);
  }
  ++stats_.page_reads;
  synthetic_delay(read_latency_us_);
}

void DiskManager::write_page(PageId id, const uint8_t* data) {
  File& f = file_at(id.file);
  if (id.page >= f.pages) {
    throw StorageError("DiskManager: write past end of " + f.path);
  }
  if (std::fseek(f.handle, static_cast<long>(id.page) * kPageSize, SEEK_SET) !=
          0 ||
      std::fwrite(data, 1, kPageSize, f.handle) != kPageSize) {
    throw StorageError("DiskManager: write failed on " + f.path);
  }
  std::fflush(f.handle);
  ++stats_.page_writes;
  synthetic_delay(write_latency_us_);
}

uint64_t DiskManager::file_size_bytes(FileId file) const {
  return static_cast<uint64_t>(file_at(file).pages) * kPageSize;
}

}  // namespace wre::storage
