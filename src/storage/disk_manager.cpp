#include "src/storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "src/storage/fault_injector.h"
#include "src/util/bytes.h"
#include "src/util/crc32c.h"
#include "src/util/error.h"

namespace wre::storage {

namespace {

void synthetic_delay(uint32_t micros) {
  if (micros == 0) return;
  // sleep_for has coarse granularity for sub-millisecond delays on some
  // kernels, but the benches use it for relative comparisons only, where a
  // constant scheduling overhead per page I/O is itself realistic.
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

/// Full-record positioned read/write of one physical page (header + data);
/// retries short transfers (signals, pipe-ish filesystems) until complete.
bool pread_page(int fd, uint8_t* out, uint64_t offset) {
  size_t done = 0;
  while (done < kPhysicalPageBytes) {
    ssize_t n = ::pread(fd, out + done, kPhysicalPageBytes - done,
                        static_cast<off_t>(offset + done));
    if (n <= 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

bool pwrite_page(int fd, const uint8_t* data, uint64_t offset) {
  size_t done = 0;
  while (done < kPhysicalPageBytes) {
    ssize_t n = ::pwrite(fd, data + done, kPhysicalPageBytes - done,
                         static_cast<off_t>(offset + done));
    if (n <= 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

uint64_t physical_offset(PageNumber page) {
  return static_cast<uint64_t>(page) * kPhysicalPageBytes;
}

}  // namespace

void frame_page_record(const uint8_t* data, uint8_t* out) {
  uint32_t crc = util::crc32c(data, kPageSize);
  store_le32(out, crc);
  store_le32(out + 4, 0);  // reserved
  std::memcpy(out + kPageDiskHeaderBytes, data, kPageSize);
}

DiskManager::~DiskManager() {
  for (auto& f : files_) {
    if (f->fd >= 0) ::close(f->fd);
  }
}

DiskManager::File& DiskManager::file_at(FileId id) {
  if (id >= files_.size()) throw StorageError("DiskManager: bad file id");
  return *files_[id];
}

const DiskManager::File& DiskManager::file_at(FileId id) const {
  if (id >= files_.size()) throw StorageError("DiskManager: bad file id");
  return *files_[id];
}

FileId DiskManager::open_file(const std::string& path) {
  auto f = std::make_unique<File>();
  f->path = path;
  f->fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (f->fd < 0) {
    throw StorageError("DiskManager: cannot open " + path);
  }
  off_t size = ::lseek(f->fd, 0, SEEK_END);
  if (size < 0) throw StorageError("DiskManager: seek failed on " + path);
  if (size % kPhysicalPageBytes != 0) {
    throw CorruptionError("DiskManager: " + path + " is " +
                          std::to_string(size) +
                          " bytes, not a multiple of the physical page size " +
                          std::to_string(kPhysicalPageBytes) +
                          " (truncated or pre-checksum format)");
  }
  f->pages.store(static_cast<PageNumber>(size / kPhysicalPageBytes),
                 std::memory_order_relaxed);

  bool fresh = f->pages.load(std::memory_order_relaxed) == 0;
  files_.push_back(std::move(f));
  FileId id = static_cast<FileId>(files_.size() - 1);

  if (fresh) {
    // Reserve page 0 as the metadata page.
    allocate_page(id);
  }
  return id;
}

PageNumber DiskManager::page_count(FileId file) const {
  return file_at(file).pages.load(std::memory_order_acquire);
}

PageNumber DiskManager::allocate_page(FileId file) {
  File& f = file_at(file);
  PageNumber page = f.pages.load(std::memory_order_relaxed);
  uint8_t zeros[kPageSize] = {0};
  uint8_t framed[kPhysicalPageBytes];
  frame_page_record(zeros, framed);
  if (!pwrite_page(f.fd, framed, physical_offset(page))) {
    throw StorageError("DiskManager: allocate failed on " + f.path);
  }
  f.pages.store(page + 1, std::memory_order_release);
  pages_allocated_.fetch_add(1, std::memory_order_relaxed);
  return page;
}

void DiskManager::read_page(PageId id, uint8_t* out) {
  File& f = file_at(id.file);
  if (id.page >= f.pages.load(std::memory_order_acquire)) {
    throw StorageError("DiskManager: read past end of " + f.path);
  }
  uint8_t framed[kPhysicalPageBytes];
  if (!pread_page(f.fd, framed, physical_offset(id.page))) {
    throw StorageError("DiskManager: read failed on " + f.path);
  }
  uint32_t stored = load_le32(framed);
  uint32_t actual = util::crc32c(framed + kPageDiskHeaderBytes, kPageSize);
  if (stored != actual) {
    throw CorruptionError(
        "DiskManager: checksum mismatch on page " + std::to_string(id.page) +
        " of " + f.path + " (stored " + std::to_string(stored) + ", data " +
        std::to_string(actual) + ") — refusing to serve corrupted data");
  }
  std::memcpy(out, framed + kPageDiskHeaderBytes, kPageSize);
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  synthetic_delay(read_latency_us_.load(std::memory_order_relaxed));
}

void DiskManager::write_page(PageId id, const uint8_t* data) {
  File& f = file_at(id.file);
  if (id.page >= f.pages.load(std::memory_order_acquire)) {
    throw StorageError("DiskManager: write past end of " + f.path);
  }
  if (FaultInjector::instance().should_drop_page_write(f.path)) {
    // Injected silent write loss: the caller believes the page landed.
    // Models a flush that never reached the platter (crash-consistency
    // tests pair this with WAL replay, which must restore the page).
    page_writes_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint8_t framed[kPhysicalPageBytes];
  frame_page_record(data, framed);
  if (FaultInjector::instance().should_bitflip_page_write(f.path)) {
    // Injected silent media corruption: the checksum covers the pristine
    // image but one data bit lands inverted. Only the next read can (and
    // must) notice.
    framed[kPageDiskHeaderBytes + kPageSize / 2] ^= 0x04;
  }
  if (!pwrite_page(f.fd, framed, physical_offset(id.page))) {
    throw StorageError("DiskManager: write failed on " + f.path);
  }
  page_writes_.fetch_add(1, std::memory_order_relaxed);
  synthetic_delay(write_latency_us_.load(std::memory_order_relaxed));
}

uint64_t DiskManager::file_size_bytes(FileId file) const {
  return static_cast<uint64_t>(page_count(file)) * kPageSize;
}

const std::string& DiskManager::file_path(FileId file) const {
  return file_at(file).path;
}

void DiskManager::fsync_file(FileId file) {
  File& f = file_at(file);
  if (::fsync(f.fd) != 0) {
    throw StorageError("DiskManager: fsync failed on " + f.path);
  }
}

void DiskManager::fsync_all() {
  for (FileId id = 0; id < files_.size(); ++id) fsync_file(id);
}

DiskStats DiskManager::stats() const {
  DiskStats s;
  s.page_reads = page_reads_.load(std::memory_order_relaxed);
  s.page_writes = page_writes_.load(std::memory_order_relaxed);
  s.pages_allocated = pages_allocated_.load(std::memory_order_relaxed);
  return s;
}

void DiskManager::reset_stats() {
  page_reads_.store(0, std::memory_order_relaxed);
  page_writes_.store(0, std::memory_order_relaxed);
  pages_allocated_.store(0, std::memory_order_relaxed);
}

}  // namespace wre::storage
