// Fault-injection hooks for the durability layer.
//
// Crash-recovery correctness cannot be argued from happy-path tests: the
// interesting states are a log whose tail was torn mid-write, a data file
// whose page writes were lost because the crash beat the flush, and a
// checkpoint that died halfway. FaultInjector is the single switchboard the
// storage layer consults so tests (and the external kill -9 harness) can
// manufacture exactly those states deterministically:
//
//   * wal_torn_after=N   — once N bytes have been appended to the WAL, the
//                          next append persists only a prefix and then fails
//                          (StorageError), leaving a torn record on disk.
//                          Recovery must detect and discard it.
//   * page_write_drop=S  — DiskManager::write_page silently drops writes to
//                          any file whose path contains S, simulating dirty
//                          pages that never reached the platter. With the
//                          WAL enabled this must be invisible after replay
//                          (log-before-data).
//   * page_bitflip=S     — one-shot: the next page write to a file whose
//                          path contains S lands with one data bit flipped
//                          while its header checksum still covers the
//                          pristine image — a silent media corruption. The
//                          next read of that page must raise
//                          CorruptionError, never return the bytes.
//
// Faults arm either programmatically (unit tests) or from the WRE_FAULT
// environment variable (external processes): a ';'-separated list such as
//   WRE_FAULT="wal_torn_after=4096;page_write_drop=.tbl"
// parsed once at first use. All hooks are thread-safe; the default state is
// "no faults", with zero overhead beyond one relaxed atomic load per site.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace wre::storage {

class FaultInjector {
 public:
  /// Process-wide instance. Parses WRE_FAULT on first call.
  static FaultInjector& instance();

  /// Disarms every fault and zeroes the counters (tests).
  void reset();

  // -- arming (tests; WRE_FAULT covers external processes) -----------------

  /// Tear the WAL: appends succeed until `bytes` total WAL bytes have been
  /// written; the append that crosses the threshold writes only up to it,
  /// then fails. Later appends fail without writing.
  void arm_wal_torn_after(uint64_t bytes);

  /// Drop page writes to files whose path contains `path_substring`.
  void arm_page_write_drop(const std::string& path_substring);

  /// Corrupt exactly one bit of the next page write to a matching file (the
  /// stored checksum still covers the pristine data, so the corruption is
  /// silent until read back). One-shot: disarms after firing.
  void arm_page_bitflip(const std::string& path_substring);

  // -- storage-layer hooks --------------------------------------------------

  /// Called by the WAL before appending `len` bytes. Returns how many of
  /// them may actually be written; a short return means the caller must
  /// write that prefix and then raise a torn-write failure.
  size_t wal_writable_bytes(size_t len);

  /// True if the write to `path` must be silently dropped.
  bool should_drop_page_write(const std::string& path);

  /// True if this page write to `path` must land with a flipped bit.
  /// Consuming: fires at most once per arm_page_bitflip().
  bool should_bitflip_page_write(const std::string& path);

  /// Pages whose writes were dropped so far (test assertions).
  uint64_t dropped_page_writes() const {
    return dropped_page_writes_.load(std::memory_order_relaxed);
  }

  /// True if any fault is armed (lets hot paths skip string work).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

 private:
  FaultInjector();
  void load_env(const char* spec);
  void refresh_armed();

  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};

  bool wal_torn_armed_ = false;
  uint64_t wal_torn_after_ = 0;
  uint64_t wal_bytes_written_ = 0;

  std::string page_drop_substring_;     // empty = disarmed
  std::string page_bitflip_substring_;  // empty = disarmed; one-shot
  std::atomic<uint64_t> dropped_page_writes_{0};
};

}  // namespace wre::storage
