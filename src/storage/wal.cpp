#include "src/storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>

#include "src/storage/disk_manager.h"
#include "src/storage/fault_injector.h"
#include "src/util/crc32c.h"
#include "src/util/error.h"

namespace wre::storage {

namespace {

constexpr char kMagic[8] = {'W', 'R', 'E', 'W', 'A', 'L', '0', '1'};
constexpr size_t kHeaderBytes = 16;  // magic + u64 segment_seq
constexpr size_t kFrameBytes = 8;    // u32 crc + u32 body_len
/// Upper bound on one record body; anything larger in a length prefix is
/// corruption, not data (a page image — the largest record — is ~4.1 KiB).
constexpr uint32_t kMaxBodyBytes = 1u << 20;

void store_u16(Bytes& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

std::string segment_name(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Appends one framed record (crc | len | type | payload) to `out`.
void frame_record(Bytes& out, WalRecordType type, ByteView payload) {
  // Writer-side enforcement of the recovery-side bound: next_record()
  // treats any length prefix over kMaxBodyBytes as corruption and truncates
  // the tail there, so a larger record (an enormous catalog is the only
  // unbounded one) must fail the commit loudly now — otherwise it would be
  // acknowledged and then silently discarded, along with every commit
  // after it, on the next recovery.
  if (payload.size() >= kMaxBodyBytes) {
    throw StorageError("wal: record exceeds maximum body size");
  }
  Bytes body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<uint8_t>(type));
  append(body, payload);
  store_le32(out, util::crc32c(body));
  store_le32(out, static_cast<uint32_t>(body.size()));
  append(out, body);
}

void frame_name(Bytes& payload, const std::string& name) {
  if (name.size() > UINT16_MAX) {
    throw StorageError("wal: file name too long: " + name);
  }
  store_u16(payload, static_cast<uint16_t>(name.size()));
  append(payload, to_bytes(name));
}

void fsync_fd(int fd, const std::string& what) {
  if (::fdatasync(fd) != 0) {
    throw StorageError("wal: fdatasync failed on " + what);
  }
}

void fsync_path(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;  // directory fsync is best-effort on odd filesystems
  ::fsync(fd);
  ::close(fd);
}

/// Segment files in `dir`, sorted by sequence number.
std::vector<std::pair<uint64_t, std::string>> list_segments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    unsigned long long seq = 0;
    int consumed = 0;
    // No width cap on the sequence — segment_name() zero-pads to six digits
    // but emits more once the monotonically growing seq passes 999999, and
    // a misparsed name would fail the header seq check and discard the
    // segment's committed records. %n pins the match to the whole name.
    if (std::sscanf(name.c_str(), "wal-%llu.log%n", &seq, &consumed) == 1 &&
        consumed == static_cast<int>(name.size())) {
      segments.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

// ----------------------------------------------------------- recovery

/// Bounds-checked cursor over one segment's bytes.
struct Cursor {
  const uint8_t* p;
  size_t remaining;

  bool take(size_t n, const uint8_t** out) {
    if (remaining < n) return false;
    *out = p;
    p += n;
    remaining -= n;
    return true;
  }
};

struct ParsedRecord {
  WalRecordType type;
  Bytes payload;
};

/// Parses the next framed record; returns false on clean end-of-segment.
/// Throws nothing: corruption (bad crc, impossible length, short frame) is
/// reported through `*corrupt`.
bool next_record(Cursor& cur, ParsedRecord* out, bool* corrupt) {
  if (cur.remaining == 0) return false;
  const uint8_t* frame;
  if (!cur.take(kFrameBytes, &frame)) {
    *corrupt = true;  // torn mid-frame
    return false;
  }
  uint32_t crc = load_le32(frame);
  uint32_t body_len = load_le32(frame + 4);
  const uint8_t* body;
  if (body_len == 0 || body_len > kMaxBodyBytes ||
      !cur.take(body_len, &body)) {
    *corrupt = true;  // length prefix overruns the file (torn tail)
    return false;
  }
  if (util::crc32c(body, body_len) != crc) {
    *corrupt = true;  // bit flip
    return false;
  }
  uint8_t type = body[0];
  if (type < static_cast<uint8_t>(WalRecordType::kPageImage) ||
      type > static_cast<uint8_t>(WalRecordType::kCommit)) {
    *corrupt = true;
    return false;
  }
  out->type = static_cast<WalRecordType>(type);
  out->payload.assign(body + 1, body + body_len);
  return true;
}

/// Payload mini-reader with hard bounds checks; any overrun marks the
/// record corrupt (CRC passed but the structure is impossible — treat it
/// the same as a torn tail rather than replaying garbage).
struct PayloadReader {
  const Bytes& b;
  size_t pos = 0;

  bool u16(uint16_t* out) {
    if (b.size() - pos < 2) return false;
    *out = static_cast<uint16_t>(b[pos] | (b[pos + 1] << 8));
    pos += 2;
    return true;
  }
  bool u32(uint32_t* out) {
    if (b.size() - pos < 4) return false;
    *out = load_le32(b.data() + pos);
    pos += 4;
    return true;
  }
  bool u64(uint64_t* out) {
    if (b.size() - pos < 8) return false;
    *out = load_le64(b.data() + pos);
    pos += 8;
    return true;
  }
  bool bytes(size_t n, const uint8_t** out) {
    if (b.size() - pos < n) return false;
    *out = b.data() + pos;
    pos += n;
    return true;
  }
  bool name(std::string* out) {
    uint16_t len;
    const uint8_t* p;
    if (!u16(&len) || !bytes(len, &p)) return false;
    out->assign(reinterpret_cast<const char*>(p), len);
    // A basename with a path separator can only come from corruption (or an
    // attack on the log file); never let replay escape the data directory.
    return !out->empty() && out->find('/') == std::string::npos &&
           *out != "." && *out != "..";
  }
};

/// Applies one committed batch onto the data files.
class Replayer {
 public:
  explicit Replayer(std::string data_dir) : data_dir_(std::move(data_dir)) {}

  ~Replayer() {
    for (auto& [name, fd] : fds_) ::close(fd);
  }

  void page_image(const std::string& name, PageNumber page, ByteView data) {
    int fd = fd_for(name);
    // The log carries the logical (kPageSize) image; on disk every page is
    // a checksummed physical record, so replay re-frames it exactly like
    // DiskManager::write_page would. Writing past the current end would
    // leave zero-filled holes (invalid records) for the pages in between,
    // so frame those as zero pages first.
    uint64_t offset = static_cast<uint64_t>(page) * kPhysicalPageBytes;
    fill_framed_zeros_up_to(fd, name, static_cast<off_t>(offset));
    uint8_t framed[kPhysicalPageBytes];
    frame_page_record(data.data(), framed);
    write_record_at(fd, name, framed, static_cast<off_t>(offset));
  }

  void extent(const std::string& name, PageNumber page_count) {
    int fd = fd_for(name);
    off_t target = static_cast<off_t>(page_count) *
                   static_cast<off_t>(kPhysicalPageBytes);
    off_t current = ::lseek(fd, 0, SEEK_END);
    if (current < 0) {
      throw StorageError("wal recover: cannot size " + name);
    }
    // Growing: plain ftruncate would zero-fill, which is not a valid
    // checksummed record. Append properly framed zero pages instead (the
    // same image DiskManager::allocate_page writes).
    if (current < target) {
      fill_framed_zeros_up_to(fd, name, target);
      return;
    }
    if (::ftruncate(fd, target) != 0) {
      throw StorageError("wal recover: cannot truncate " + name);
    }
  }

  void catalog(const std::string& text) {
    std::string path = data_dir_ + "/catalog.wre";
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) throw StorageError("wal recover: cannot write catalog");
    size_t done = 0;
    while (done < text.size()) {
      ssize_t n = ::write(fd, text.data() + done, text.size() - done);
      if (n <= 0) {
        ::close(fd);
        throw StorageError("wal recover: cannot write catalog");
      }
      done += static_cast<size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
  }

  void fsync_all() {
    for (auto& [name, fd] : fds_) fsync_fd(fd, name);
    fsync_path(data_dir_);
  }

 private:
  /// pwrites one full physical record at `off`, retrying short transfers.
  static void write_record_at(int fd, const std::string& name,
                              const uint8_t* framed, off_t off) {
    size_t done = 0;
    while (done < kPhysicalPageBytes) {
      ssize_t n = ::pwrite(fd, framed + done, kPhysicalPageBytes - done,
                           off + static_cast<off_t>(done));
      if (n <= 0) {
        throw StorageError("wal recover: cannot write " + name);
      }
      done += static_cast<size_t>(n);
    }
  }

  /// Extends the file with framed zero pages (the image allocate_page
  /// writes) until it is at least `target` bytes. A crash can leave a torn
  /// record at the tail; round down so every appended record starts on a
  /// physical-page boundary.
  static void fill_framed_zeros_up_to(int fd, const std::string& name,
                                      off_t target) {
    off_t current = ::lseek(fd, 0, SEEK_END);
    if (current < 0) {
      throw StorageError("wal recover: cannot size " + name);
    }
    if (current >= target) return;
    current -= current % static_cast<off_t>(kPhysicalPageBytes);
    uint8_t zeros[kPageSize] = {0};
    uint8_t framed[kPhysicalPageBytes];
    frame_page_record(zeros, framed);
    for (off_t off = current; off < target;
         off += static_cast<off_t>(kPhysicalPageBytes)) {
      write_record_at(fd, name, framed, off);
    }
  }

  int fd_for(const std::string& name) {
    auto it = fds_.find(name);
    if (it != fds_.end()) return it->second;
    std::string path = data_dir_ + "/" + name;
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) throw StorageError("wal recover: cannot open " + path);
    fds_.emplace(name, fd);
    return fd;
  }

  std::string data_dir_;
  std::map<std::string, int> fds_;
};

Bytes read_file(const std::string& path) {
  Bytes out;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw StorageError("wal recover: cannot read " + path);
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    size_t done = 0;
    while (done < out.size()) {
      ssize_t n = ::pread(fd, out.data() + done, out.size() - done,
                          static_cast<off_t>(done));
      if (n <= 0) {
        ::close(fd);
        throw StorageError("wal recover: short read on " + path);
      }
      done += static_cast<size_t>(n);
    }
  }
  ::close(fd);
  return out;
}

}  // namespace

// ----------------------------------------------------------------- recover

WalRecoveryStats Wal::recover(const std::string& wal_dir,
                              const std::string& data_dir) {
  WalRecoveryStats stats;
  if (!std::filesystem::exists(wal_dir)) return stats;
  auto segments = list_segments(wal_dir);
  if (segments.empty()) return stats;

  Replayer replayer(data_dir);
  std::vector<ParsedRecord> batch;  // records since the last commit marker
  bool stop = false;  // corruption found: ignore everything after it

  for (const auto& [seq, path] : segments) {
    if (stop) break;
    Bytes data = read_file(path);
    stats.bytes_scanned += data.size();
    ++stats.segments_scanned;

    Cursor cur{data.data(), data.size()};
    const uint8_t* header;
    if (!cur.take(kHeaderBytes, &header) ||
        std::memcmp(header, kMagic, sizeof(kMagic)) != 0 ||
        load_le64(header + 8) != seq) {
      stats.tail_truncated = true;
      break;
    }

    ParsedRecord rec;
    bool corrupt = false;
    while (next_record(cur, &rec, &corrupt)) {
      if (rec.type != WalRecordType::kCommit) {
        batch.push_back(std::move(rec));
        continue;
      }
      // Validate the commit marker and decode the whole batch before
      // applying any of it: a CRC-valid record with an impossible payload
      // structure is treated exactly like a torn tail, and must not leave
      // a half-applied commit behind.
      PayloadReader r{rec.payload};
      uint64_t commit_seq;
      uint32_t count;
      if (!r.u64(&commit_seq) || !r.u32(&count) ||
          count != batch.size()) {
        corrupt = true;
        break;
      }
      struct PageAction {
        std::string name;
        uint32_t page;
        const uint8_t* bytes;
      };
      struct ExtentAction {
        std::string name;
        uint32_t pages;
      };
      std::vector<PageAction> page_actions;
      std::vector<ExtentAction> extent_actions;
      std::vector<std::string> catalog_actions;
      for (const ParsedRecord& b : batch) {
        PayloadReader pr{b.payload};
        switch (b.type) {
          case WalRecordType::kPageImage: {
            PageAction a;
            uint32_t len;
            if (!pr.name(&a.name) || !pr.u32(&a.page) || !pr.u32(&len) ||
                len != kPageSize || !pr.bytes(len, &a.bytes)) {
              corrupt = true;
              break;
            }
            page_actions.push_back(std::move(a));
            break;
          }
          case WalRecordType::kFileExtent: {
            ExtentAction a;
            if (!pr.name(&a.name) || !pr.u32(&a.pages)) {
              corrupt = true;
              break;
            }
            extent_actions.push_back(std::move(a));
            break;
          }
          case WalRecordType::kCatalog: {
            uint32_t len;
            const uint8_t* bytes;
            if (!pr.u32(&len) || !pr.bytes(len, &bytes)) {
              corrupt = true;
              break;
            }
            catalog_actions.emplace_back(
                reinterpret_cast<const char*>(bytes), len);
            break;
          }
          case WalRecordType::kCommit:
            corrupt = true;  // nested commit: impossible by construction
            break;
        }
        if (corrupt) break;
      }
      if (corrupt) break;
      for (const PageAction& a : page_actions) {
        replayer.page_image(a.name, a.page, ByteView(a.bytes, kPageSize));
        ++stats.pages_replayed;
      }
      for (const ExtentAction& a : extent_actions) {
        replayer.extent(a.name, a.pages);
        ++stats.extents_applied;
      }
      for (const std::string& text : catalog_actions) {
        replayer.catalog(text);
        ++stats.catalogs_replayed;
      }
      ++stats.commits_applied;
      batch.clear();
    }
    if (corrupt) {
      stats.tail_truncated = true;
      stop = true;
    }
  }

  // Records after the last commit marker (or after the corruption point)
  // were never acknowledged: discard them.
  stats.uncommitted_records_discarded = batch.size();

  if (stats.commits_applied > 0) replayer.fsync_all();

  // The committed state is durable in the data files; the log is spent.
  for (const auto& [seq, path] : segments) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  fsync_path(wal_dir);
  return stats;
}

// -------------------------------------------------------------------- Wal

Wal::Wal(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {
  std::filesystem::create_directories(dir_);
  // Never append into an existing segment (its tail may be torn); start a
  // fresh one after the highest existing sequence number.
  auto segments = list_segments(dir_);
  segment_seq_ = segments.empty() ? 0 : segments.back().first;
  {
    std::lock_guard<std::mutex> lk(io_mu_);
    open_fresh_segment();
  }
  writer_ = std::thread([this] { writer_loop(); });
}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (fd_ >= 0) ::close(fd_);
}

void Wal::open_fresh_segment() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ++segment_seq_;
  std::string path = dir_ + "/" + segment_name(segment_seq_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) throw StorageError("wal: cannot create " + path);
  Bytes header;
  append(header, ByteView(reinterpret_cast<const uint8_t*>(kMagic),
                          sizeof(kMagic)));
  store_le64(header, segment_seq_);
  write_fully(header.data(), header.size());
  segment_bytes_written_ = header.size();
  {
    std::lock_guard<std::mutex> lk(mu_);
    live_bytes_ += header.size();
    ++stats_.segments_created;
  }
  // Make the new directory entry durable before any record lands in it.
  if (options_.fsync) {
    fsync_fd(fd_, path);
    fsync_path(dir_);
  }
}

void Wal::write_fully(const uint8_t* data, size_t len) {
  // Fault hook: a torn write persists only a prefix, then fails — exactly
  // what a crash mid-write leaves on disk.
  size_t writable = FaultInjector::instance().wal_writable_bytes(len);
  size_t done = 0;
  while (done < writable) {
    ssize_t n = ::write(fd_, data + done, writable - done);
    if (n <= 0) throw StorageError("wal: write failed");
    done += static_cast<size_t>(n);
  }
  if (writable < len) {
    if (options_.fsync) ::fdatasync(fd_);  // persist the torn prefix
    throw StorageError("wal: injected torn write");
  }
}

CommitHandle Wal::commit(WalCommitRequest request) {
  Pending pending;
  pending.on_durable = std::move(request.on_durable);
  // Encode on the caller's thread: the writer thread should spend its time
  // in write()/fdatasync(), not serialization.
  Bytes& out = pending.encoded;
  uint32_t records = 0;
  for (const WalPageImage& image : request.pages) {
    if (image.data.size() != kPageSize) {
      throw StorageError("wal: page image must be exactly one page");
    }
    Bytes payload;
    payload.reserve(image.file.size() + kPageSize + 16);
    frame_name(payload, image.file);
    store_le32(payload, image.page);
    store_le32(payload, static_cast<uint32_t>(image.data.size()));
    append(payload, image.data);
    frame_record(out, WalRecordType::kPageImage, payload);
    ++records;
  }
  for (const WalFileExtent& extent : request.extents) {
    Bytes payload;
    frame_name(payload, extent.file);
    store_le32(payload, extent.page_count);
    frame_record(out, WalRecordType::kFileExtent, payload);
    ++records;
  }
  if (request.catalog) {
    Bytes payload;
    store_le32(payload, static_cast<uint32_t>(request.catalog->size()));
    append(payload, to_bytes(*request.catalog));
    frame_record(out, WalRecordType::kCatalog, payload);
    ++records;
  }

  std::shared_future<void> fut;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (broken_ || stop_) {
      throw StorageError("wal: log is broken; cannot accept commits");
    }
    Bytes marker;
    store_le64(marker, next_commit_seq_++);
    store_le32(marker, records);
    frame_record(out, WalRecordType::kCommit, marker);

    ++stats_.commits;
    stats_.records += records + 1;
    fut = pending.done.get_future().share();
    queue_.push_back(std::move(pending));
  }
  cv_.notify_all();
  return CommitHandle(fut);
}

void Wal::sync() {
  // An empty Pending rides the FIFO queue as a pure barrier: by the time
  // the writer thread completes it, every earlier group has been written,
  // fsync'd, and has run its on_durable callbacks (those fire before each
  // group's promises are satisfied, and groups drain in order).
  Pending pending;
  pending.commits = 0;
  std::shared_future<void> fut;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (broken_ || stop_) {
      throw StorageError("wal: log is broken; cannot sync");
    }
    fut = pending.done.get_future().share();
    queue_.push_back(std::move(pending));
  }
  cv_.notify_all();
  fut.get();
}

void Wal::writer_loop() {
  for (;;) {
    std::vector<Pending> group;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty() && stop_) return;
      // Optionally linger so near-simultaneous commits share one fsync.
      if (options_.group_window_us > 0) {
        cv_.wait_for(lk, std::chrono::microseconds(options_.group_window_us),
                     [&] { return stop_; });
      }
      while (!queue_.empty()) {
        group.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (!group.empty()) flush_group(group);
  }
}

void Wal::flush_group(std::vector<Pending>& group) {
  try {
    uint64_t bytes = 0;
    {
      std::lock_guard<std::mutex> io(io_mu_);
      if (segment_bytes_written_ >= options_.segment_bytes) {
        open_fresh_segment();
      }
      for (const Pending& p : group) {
        write_fully(p.encoded.data(), p.encoded.size());
        segment_bytes_written_ += p.encoded.size();
        bytes += p.encoded.size();
      }
      if (options_.fsync) fsync_fd(fd_, "wal segment");
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      live_bytes_ += bytes;
      stats_.bytes_appended += bytes;
      ++stats_.groups;
      if (options_.fsync) ++stats_.fsyncs;
      stats_.max_group = std::max(stats_.max_group,
                                  static_cast<uint64_t>(group.size()));
    }
    // Durability callbacks run before the handles become ready: a waiter
    // that observes its commit acknowledged must also observe the frames
    // released from their no-steal window (and in no case may an eviction
    // see them released earlier than this point).
    for (Pending& p : group) {
      if (p.on_durable) p.on_durable();
      p.done.set_value();
    }
  } catch (...) {
    // The log can no longer guarantee durability: fail this group and every
    // later commit. Acknowledged writes stay acknowledged (their records
    // are already durable); unacknowledged ones surface the error.
    {
      std::lock_guard<std::mutex> lk(mu_);
      broken_ = true;
    }
    for (Pending& p : group) {
      // Members completed before the failure keep their satisfied promise;
      // set_exception on them would itself throw.
      try {
        p.done.set_exception(std::current_exception());
      } catch (const std::future_error&) {
      }
    }
    std::lock_guard<std::mutex> lk(mu_);
    for (Pending& p : queue_) {
      p.done.set_exception(std::make_exception_ptr(
          StorageError("wal: log is broken; commit aborted")));
    }
    queue_.clear();
  }
}

void Wal::truncate_all() {
  std::lock_guard<std::mutex> io(io_mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  for (const auto& [seq, path] : list_segments(dir_)) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  open_fresh_segment();
  std::lock_guard<std::mutex> lk(mu_);
  live_bytes_ = segment_bytes_written_;
}

uint64_t Wal::live_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_bytes_;
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace wre::storage
