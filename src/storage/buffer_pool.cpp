#include "src/storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "src/util/error.h"

namespace wre::storage {

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_), mode_(other.mode_) {
  other.pool_ = nullptr;
  other.frame_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    mode_ = other.mode_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { release(); }

void PageGuard::release() {
  if (frame_ != nullptr) {
    pool_->unpin(frame_, mode_);
    frame_ = nullptr;
    pool_ = nullptr;
  }
}

PageId PageGuard::id() const { return frame_->id; }

const uint8_t* PageGuard::data() const { return frame_->data.data(); }

uint8_t* PageGuard::mutable_data() {
  if (mode_ != LatchMode::kExclusive) {
    throw StorageError("PageGuard: mutable_data on a shared latch");
  }
  frame_->dirty = true;
  if (pool_->wal_tracking()) frame_->wal_dirty = true;
  return frame_->data.data();
}

BufferPool::BufferPool(DiskManager& disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

BufferPool::~BufferPool() {
  // Best-effort flush; storage errors in a destructor cannot be surfaced.
  try {
    flush_all();
  } catch (const Error&) {
  }
}

void BufferPool::touch(PageGuard::Frame* frame) {
  if (frame->in_lru) {
    lru_.erase(frame->lru_pos);
    frame->in_lru = false;
  }
  lru_.push_front(frame);
  frame->lru_pos = lru_.begin();
  frame->in_lru = true;
}

bool BufferPool::wal_flushable(const PageGuard::Frame& frame) const {
  if (!wal_tracking()) return true;
  return !frame.wal_dirty && frame.wal_epoch <= wal_durable_epoch_;
}

void BufferPool::flush_frame(PageGuard::Frame& frame) {
  if (frame.dirty && !frame.io_failed.load(std::memory_order_relaxed) &&
      wal_flushable(frame)) {
    disk_.write_page(frame.id, frame.data.data());
    frame.dirty = false;
  }
}

void BufferPool::evict_if_needed() {
  while (frames_.size() >= capacity_) {
    // Scan from least-recently-used; skip pinned frames. The acquire load
    // pairs with the release decrement in unpin(): observing pins == 0
    // means every prior latch holder has fully released, so the frame's
    // data and dirty flag are safe to read without its latch.
    auto it = lru_.end();
    PageGuard::Frame* victim = nullptr;
    while (it != lru_.begin()) {
      --it;
      if ((*it)->pins.load(std::memory_order_acquire) != 0) continue;
      // No-steal: a frame must not reach the data file before its log
      // record is durable. That covers frames mutated since the last
      // collection (wal_dirty) AND frames whose collected images sit in a
      // commit group the log-writer has not yet fsync'd (epoch ahead of
      // the durable mark) — the server waits on its CommitHandle outside
      // the write lock, so reads (and their evictions) run concurrently
      // with the pending fsync. Durably-committed dirty frames are fine:
      // their images are in the fsync'd log, so flushing them early is
      // redundant, not unsafe.
      if (!wal_flushable(**it)) continue;
      victim = *it;
      break;
    }
    if (victim == nullptr) return;  // everything pinned: allow overflow
    flush_frame(*victim);
    lru_.erase(victim->lru_pos);
    frames_.erase(victim->id);
    ++stats_.evictions;
  }
}

PageGuard BufferPool::fetch(PageId id, LatchMode mode) {
  // Lock-order discipline: frame latches are never *blocking-acquired* while
  // mu_ is held (callers legitimately hold page latches when they re-enter
  // the pool, so mu_-then-latch would be an inversion). Fresh frames are
  // latched while still private, before mu_; the io-retry path uses
  // try_lock, which by the pin invariant (unpin releases the latch before
  // dropping the pin) always succeeds when pins == 0 was observed.
  PageGuard::Frame* frame = nullptr;
  bool need_io = false;
  std::unique_ptr<PageGuard::Frame> fresh;
  while (frame == nullptr) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = frames_.find(id);
      if (it != frames_.end() &&
          !(it->second->io_failed.load(std::memory_order_relaxed) &&
            it->second->pins.load(std::memory_order_acquire) == 0)) {
        ++stats_.hits;
        frame = it->second.get();
        frame->pins.fetch_add(1, std::memory_order_relaxed);
        touch(frame);
      } else if (it != frames_.end()) {
        // A previous read of this page failed and nobody holds it: retry
        // the I/O in place, reusing the frame.
        if (it->second->latch.try_lock()) {
          ++stats_.misses;
          frame = it->second.get();
          frame->pins.store(1, std::memory_order_relaxed);
          frame->io_failed.store(false, std::memory_order_relaxed);
          touch(frame);
          need_io = true;
        }
        // try_lock failure is a transient impossibility; loop and retry.
      } else if (fresh != nullptr) {
        ++stats_.misses;
        evict_if_needed();
        fresh->id = id;
        frame = fresh.get();
        // The frame enters the map already exclusively latched, so
        // concurrent fetchers of the same page block until the read lands.
        frames_.emplace(id, std::move(fresh));
        touch(frame);
        need_io = true;
      }
      // else: miss with no prepared frame — build one below, then retry.
    }
    if (frame == nullptr && fresh == nullptr) {
      fresh = std::make_unique<PageGuard::Frame>();
      fresh->pins.store(1, std::memory_order_relaxed);
      fresh->latch.lock();  // private frame: uncontended by construction
    }
  }
  if (fresh != nullptr) {
    // Raced with another fetcher who inserted first; discard our spare.
    fresh->latch.unlock();
    fresh.reset();
  }

  if (need_io) {
    try {
      disk_.read_page(id, frame->data.data());
    } catch (...) {
      // Leave the frame resident but flagged: waiters and later fetches
      // see io_failed and either throw or retry the read.
      frame->io_failed.store(true, std::memory_order_release);
      frame->latch.unlock();
      frame->pins.fetch_sub(1, std::memory_order_release);
      throw;
    }
    if (mode == LatchMode::kShared) {
      // Downgrade: safe because the pin keeps the frame resident, and an
      // intervening exclusive locker is indistinguishable from one that
      // arrives after our shared lock.
      frame->latch.unlock();
      frame->latch.lock_shared();
    }
    return PageGuard(this, frame, mode);
  }

  if (mode == LatchMode::kShared) {
    frame->latch.lock_shared();
  } else {
    frame->latch.lock();
  }
  if (frame->io_failed.load(std::memory_order_relaxed)) {
    // We pinned a frame whose concurrent disk read failed.
    unpin(frame, mode);
    throw StorageError("BufferPool: page read failed");
  }
  return PageGuard(this, frame, mode);
}

PageGuard BufferPool::allocate(FileId file) {
  auto owned = std::make_unique<PageGuard::Frame>();
  owned->data.fill(0);
  owned->dirty = true;
  owned->wal_dirty = wal_tracking();
  PageGuard::Frame* frame = owned.get();
  frame->pins.store(1, std::memory_order_relaxed);
  // Latch while the frame is still private — see the lock-order note in
  // fetch(): blocking latch acquisition under mu_ is forbidden.
  frame->latch.lock();
  {
    std::lock_guard<std::mutex> lk(mu_);
    PageNumber page = disk_.allocate_page(file);
    frame->id = PageId{file, page};
    evict_if_needed();
    frames_.emplace(frame->id, std::move(owned));
    touch(frame);
  }
  return PageGuard(this, frame, LatchMode::kExclusive);
}

void BufferPool::unpin(PageGuard::Frame* frame, LatchMode mode) {
  if (mode == LatchMode::kShared) {
    frame->latch.unlock_shared();
  } else {
    frame->latch.unlock();
  }
  // Release ordering publishes any page writes made under the exclusive
  // latch to whoever observes pins == 0 with an acquire load (eviction).
  frame->pins.fetch_sub(1, std::memory_order_release);
}

void BufferPool::flush_all() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, frame] : frames_) flush_frame(*frame);
}

BufferPool::WalDirtySet BufferPool::collect_wal_dirty() {
  // Single-writer exclusion (caller's contract) makes the frame contents
  // stable: concurrent readers only read, and nobody mutates. Copying under
  // mu_ also excludes eviction, though WAL-dirty frames are never victims
  // anyway. Harvested frames trade their wal_dirty mark for the new
  // collection epoch, which keeps them no-steal until wal_durable(epoch)
  // confirms the group fsync — only then may their images reach the data
  // files.
  std::lock_guard<std::mutex> lk(mu_);
  WalDirtySet set;
  set.epoch = ++wal_collect_epoch_;
  for (auto& [id, frame] : frames_) {
    if (!frame->wal_dirty) continue;
    set.images.emplace_back(id, Bytes(frame->data.begin(), frame->data.end()));
    frame->wal_dirty = false;
    frame->wal_epoch = set.epoch;
  }
  return set;
}

void BufferPool::wal_durable(uint64_t epoch) {
  // Called from the log-writer thread after a group's fdatasync. Groups
  // flush in enqueue order (the engine's single-writer rule serializes
  // collections, and the WAL drains its queue FIFO), so the durable mark
  // only ever advances; std::max guards the invariant regardless.
  std::lock_guard<std::mutex> lk(mu_);
  wal_durable_epoch_ = std::max(wal_durable_epoch_, epoch);
}

void BufferPool::wal_abort(uint64_t epoch) {
  // The batch never reached the log (Wal::commit threw before enqueue):
  // its frames are unlogged again, so put them back on the dirty list for
  // the next collection. Requires the same single-writer exclusion as
  // collect_wal_dirty().
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, frame] : frames_) {
    if (frame->wal_epoch != epoch) continue;
    frame->wal_dirty = true;
    frame->wal_epoch = 0;
  }
}

void BufferPool::clear_cache() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, frame] : frames_) {
    if (frame->pins.load(std::memory_order_acquire) > 0) {
      throw StorageError("BufferPool::clear_cache: page still pinned");
    }
    // Dropping a frame whose mutations are not yet durably logged would
    // silently lose them; callers must commit (and wait) first.
    if (frame->dirty && !wal_flushable(*frame)) {
      throw StorageError("BufferPool::clear_cache: unlogged dirty page");
    }
  }
  for (auto& [id, frame] : frames_) flush_frame(*frame);
  lru_.clear();
  frames_.clear();
}

size_t BufferPool::resident_pages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return frames_.size();
}

BufferStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void BufferPool::reset_stats() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_ = BufferStats{};
}

}  // namespace wre::storage
