#include "src/storage/buffer_pool.h"

#include <cstring>

#include "src/util/error.h"

namespace wre::storage {

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { release(); }

void PageGuard::release() {
  if (frame_ != nullptr) {
    pool_->unpin(frame_);
    frame_ = nullptr;
    pool_ = nullptr;
  }
}

PageId PageGuard::id() const { return frame_->id; }

const uint8_t* PageGuard::data() const { return frame_->data.data(); }

uint8_t* PageGuard::mutable_data() {
  frame_->dirty = true;
  return frame_->data.data();
}

BufferPool::BufferPool(DiskManager& disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

BufferPool::~BufferPool() {
  // Best-effort flush; storage errors in a destructor cannot be surfaced.
  try {
    flush_all();
  } catch (const Error&) {
  }
}

void BufferPool::touch(PageGuard::Frame* frame) {
  if (frame->in_lru) {
    lru_.erase(frame->lru_pos);
    frame->in_lru = false;
  }
  lru_.push_front(frame);
  frame->lru_pos = lru_.begin();
  frame->in_lru = true;
}

void BufferPool::flush_frame(PageGuard::Frame& frame) {
  if (frame.dirty) {
    disk_.write_page(frame.id, frame.data.data());
    frame.dirty = false;
  }
}

void BufferPool::evict_if_needed() {
  while (frames_.size() >= capacity_) {
    // Scan from least-recently-used; skip pinned frames.
    auto it = lru_.end();
    PageGuard::Frame* victim = nullptr;
    while (it != lru_.begin()) {
      --it;
      if ((*it)->pins == 0) {
        victim = *it;
        break;
      }
    }
    if (victim == nullptr) return;  // everything pinned: allow overflow
    flush_frame(*victim);
    lru_.erase(victim->lru_pos);
    frames_.erase(victim->id);
    ++stats_.evictions;
  }
}

PageGuard BufferPool::fetch(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.hits;
    PageGuard::Frame* frame = it->second.get();
    touch(frame);
    ++frame->pins;
    return PageGuard(this, frame);
  }

  ++stats_.misses;
  evict_if_needed();
  auto frame = std::make_unique<PageGuard::Frame>();
  frame->id = id;
  disk_.read_page(id, frame->data.data());
  PageGuard::Frame* raw = frame.get();
  frames_.emplace(id, std::move(frame));
  touch(raw);
  ++raw->pins;
  return PageGuard(this, raw);
}

PageGuard BufferPool::allocate(FileId file) {
  PageNumber page = disk_.allocate_page(file);
  evict_if_needed();
  auto frame = std::make_unique<PageGuard::Frame>();
  frame->id = PageId{file, page};
  frame->data.fill(0);
  frame->dirty = true;
  PageGuard::Frame* raw = frame.get();
  frames_.emplace(raw->id, std::move(frame));
  touch(raw);
  ++raw->pins;
  return PageGuard(this, raw);
}

void BufferPool::unpin(PageGuard::Frame* frame) { --frame->pins; }

void BufferPool::flush_all() {
  for (auto& [id, frame] : frames_) flush_frame(*frame);
}

void BufferPool::clear_cache() {
  for (auto& [id, frame] : frames_) {
    if (frame->pins > 0) {
      throw StorageError("BufferPool::clear_cache: page still pinned");
    }
  }
  flush_all();
  lru_.clear();
  frames_.clear();
}

}  // namespace wre::storage
