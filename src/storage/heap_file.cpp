#include "src/storage/heap_file.h"

#include <cstring>

#include "src/util/error.h"

namespace wre::storage {

// Data page layout:
//   [0..1]  u16 slot count
//   [2..3]  u16 data_low — offset of the lowest record byte; records grow
//           downward from kPageSize, slots grow upward from byte 4.
//   [4..]   slot directory: per slot, u16 offset + u16 length
//
// Metadata page (page 0) layout:
//   [0..3]  magic 'WRHP'
//   [4..11] u64 record count
//   [12..15] u32 tail page
namespace {

constexpr uint32_t kMagic = 0x57524850;  // "WRHP"
constexpr size_t kPageHeader = 4;
constexpr size_t kSlotSize = 4;

uint16_t load_u16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
void store_u16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

size_t free_space(const uint8_t* page) {
  uint16_t count = load_u16(page);
  uint16_t data_low = load_u16(page + 2);
  size_t slots_end = kPageHeader + kSlotSize * count;
  return data_low > slots_end ? data_low - slots_end : 0;
}

}  // namespace

HeapFile::HeapFile(BufferPool& pool, FileId file) : pool_(pool), file_(file) {
  load_or_init_meta();
}

void HeapFile::load_or_init_meta() {
  PageGuard meta = pool_.fetch(PageId{file_, 0});
  const uint8_t* p = meta.data();
  if (load_be32(p) == kMagic) {
    record_count_ = load_le64(p + 4);
    tail_page_ = load_le32(p + 12);
    return;
  }
  uint8_t* mp = meta.mutable_data();
  store_be32(mp, kMagic);
  record_count_ = 0;
  tail_page_ = kInvalidPage;
  meta.release();  // save_meta re-latches page 0; never hold it twice
  save_meta();
}

void HeapFile::save_meta() {
  PageGuard meta = pool_.fetch(PageId{file_, 0});
  uint8_t* p = meta.mutable_data();
  store_be32(p, kMagic);
  Bytes tmp;
  store_le64(tmp, record_count_);
  store_le32(tmp, tail_page_);
  std::memcpy(p + 4, tmp.data(), tmp.size());
}

RecordId HeapFile::append(ByteView record) {
  RecordId rid = append_record(record);
  save_meta();
  return rid;
}

std::vector<RecordId> HeapFile::append_batch(const std::vector<Bytes>& records) {
  std::vector<RecordId> rids;
  rids.reserve(records.size());
  for (const Bytes& record : records) {
    rids.push_back(append_record(record));
  }
  if (!records.empty()) save_meta();
  return rids;
}

RecordId HeapFile::append_record(ByteView record) {
  if (record.size() + kPageHeader + kSlotSize > kPageSize) {
    throw StorageError("HeapFile: record larger than a page");
  }

  PageGuard page;
  if (tail_page_ != kInvalidPage) {
    page = pool_.fetch(PageId{file_, tail_page_});
    if (free_space(page.data()) < record.size() + kSlotSize) {
      page.release();
    }
  }
  if (!page) {
    page = pool_.allocate(file_);
    uint8_t* p = page.mutable_data();
    store_u16(p, 0);
    store_u16(p + 2, static_cast<uint16_t>(kPageSize));
    tail_page_ = page.id().page;
  }

  uint8_t* p = page.mutable_data();
  uint16_t count = load_u16(p);
  uint16_t data_low = load_u16(p + 2);

  data_low = static_cast<uint16_t>(data_low - record.size());
  std::memcpy(p + data_low, record.data(), record.size());
  uint8_t* slot = p + kPageHeader + kSlotSize * count;
  store_u16(slot, data_low);
  store_u16(slot + 2, static_cast<uint16_t>(record.size()));
  store_u16(p, static_cast<uint16_t>(count + 1));
  store_u16(p + 2, data_low);

  RecordId rid{page.id().page, count};
  page.release();

  ++record_count_;
  return rid;
}

Bytes HeapFile::read(const RecordId& rid) const {
  if (rid.page == kInvalidPage) throw StorageError("HeapFile: invalid record id");
  PageGuard page = pool_.fetch(PageId{file_, rid.page}, LatchMode::kShared);
  const uint8_t* p = page.data();
  uint16_t count = load_u16(p);
  if (rid.slot >= count) throw StorageError("HeapFile: slot out of range");
  const uint8_t* slot = p + kPageHeader + kSlotSize * rid.slot;
  uint16_t offset = load_u16(slot);
  uint16_t length = load_u16(slot + 2);
  return Bytes(p + offset, p + offset + length);
}

void HeapFile::scan(const std::function<void(RecordId, ByteView)>& fn) const {
  PageNumber pages = pool_.disk().page_count(file_);
  for (PageNumber pn = 1; pn < pages; ++pn) {
    PageGuard page = pool_.fetch(PageId{file_, pn}, LatchMode::kShared);
    const uint8_t* p = page.data();
    uint16_t count = load_u16(p);
    for (uint16_t s = 0; s < count; ++s) {
      const uint8_t* slot = p + kPageHeader + kSlotSize * s;
      uint16_t offset = load_u16(slot);
      uint16_t length = load_u16(slot + 2);
      fn(RecordId{pn, s}, ByteView(p + offset, length));
    }
  }
}

PageNumber HeapFile::page_count() const {
  return pool_.disk().page_count(file_);
}

}  // namespace wre::storage
