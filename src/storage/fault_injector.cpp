#include "src/storage/fault_injector.h"

#include <cstdlib>

namespace wre::storage {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() { load_env(std::getenv("WRE_FAULT")); }

void FaultInjector::load_env(const char* spec) {
  if (spec == nullptr || *spec == '\0') return;
  std::string s(spec);
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t end = s.find(';', pos);
    if (end == std::string::npos) end = s.size();
    std::string item = s.substr(pos, end - pos);
    pos = end + 1;
    size_t eq = item.find('=');
    if (eq == std::string::npos) continue;
    std::string key = item.substr(0, eq);
    std::string value = item.substr(eq + 1);
    if (key == "wal_torn_after") {
      arm_wal_torn_after(std::strtoull(value.c_str(), nullptr, 10));
    } else if (key == "page_write_drop") {
      arm_page_write_drop(value);
    } else if (key == "page_bitflip") {
      arm_page_bitflip(value);
    }
    // Unknown keys are ignored: an old binary driven by a newer harness
    // should not crash over a fault mode it does not implement.
  }
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  wal_torn_armed_ = false;
  wal_torn_after_ = 0;
  wal_bytes_written_ = 0;
  page_drop_substring_.clear();
  page_bitflip_substring_.clear();
  dropped_page_writes_.store(0, std::memory_order_relaxed);
  refresh_armed();
}

void FaultInjector::arm_wal_torn_after(uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  wal_torn_armed_ = true;
  wal_torn_after_ = bytes;
  wal_bytes_written_ = 0;
  refresh_armed();
}

void FaultInjector::arm_page_write_drop(const std::string& path_substring) {
  std::lock_guard<std::mutex> lk(mu_);
  page_drop_substring_ = path_substring;
  refresh_armed();
}

void FaultInjector::arm_page_bitflip(const std::string& path_substring) {
  std::lock_guard<std::mutex> lk(mu_);
  page_bitflip_substring_ = path_substring;
  refresh_armed();
}

void FaultInjector::refresh_armed() {
  armed_.store(wal_torn_armed_ || !page_drop_substring_.empty() ||
                   !page_bitflip_substring_.empty(),
               std::memory_order_relaxed);
}

size_t FaultInjector::wal_writable_bytes(size_t len) {
  if (!armed()) return len;
  std::lock_guard<std::mutex> lk(mu_);
  if (!wal_torn_armed_) return len;
  uint64_t budget = wal_torn_after_ > wal_bytes_written_
                        ? wal_torn_after_ - wal_bytes_written_
                        : 0;
  size_t writable = static_cast<size_t>(
      budget < static_cast<uint64_t>(len) ? budget : len);
  wal_bytes_written_ += writable;
  return writable;
}

bool FaultInjector::should_drop_page_write(const std::string& path) {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (page_drop_substring_.empty() ||
      path.find(page_drop_substring_) == std::string::npos) {
    return false;
  }
  dropped_page_writes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::should_bitflip_page_write(const std::string& path) {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (page_bitflip_substring_.empty() ||
      path.find(page_bitflip_substring_) == std::string::npos) {
    return false;
  }
  page_bitflip_substring_.clear();  // one-shot
  refresh_armed();
  return true;
}

}  // namespace wre::storage
