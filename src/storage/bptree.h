// Disk-paged B+-tree mapping uint64 keys to uint64 values, with duplicate
// keys. This is the secondary-index structure behind CREATE INDEX — the
// server-side index the WRE scheme relies on ("the server can use built-in
// indexing techniques", Section IV).
//
// Entries are ordered by the composite (key, value), which makes every entry
// unique and lets equal keys span leaf boundaries without special cases.
// The tree is insert+lookup only, matching the append-only engine.
//
// Concurrency: find()/scan_all() traverse with shared page latches and never
// hold more than one at a time, so any number of reader threads may probe
// one tree (or many trees over one buffer pool) concurrently. insert()
// requires exclusion from all other access to the same tree — the engine's
// single-writer rule.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/storage/buffer_pool.h"
#include "src/storage/page.h"

namespace wre::storage {

/// B+-tree index over one page file.
class BPlusTree {
 public:
  /// Binds to `file` in `pool`'s disk manager; initializes a fresh tree or
  /// resumes an existing one from the file's metadata page.
  BPlusTree(BufferPool& pool, FileId file);

  /// Inserts (key, value). Duplicates — both duplicate keys and fully
  /// duplicate pairs — are allowed.
  void insert(uint64_t key, uint64_t value);

  /// Returns all values stored under `key`, in insertion-independent
  /// (value-sorted) order. Thread-safe against other readers.
  std::vector<uint64_t> find(uint64_t key) const;

  /// Invokes fn(key, value) for every entry in (key, value) order.
  /// Thread-safe against other readers.
  void scan_all(const std::function<void(uint64_t, uint64_t)>& fn) const;

  /// Total number of entries.
  uint64_t size() const { return entry_count_; }

  /// Height of the tree (1 = root is a leaf).
  uint32_t height() const { return height_; }

  /// Pages occupied, including the metadata page.
  PageNumber page_count() const;

  FileId file() const { return file_; }

 private:
  struct SplitResult {
    uint64_t sep_key;
    uint64_t sep_value;
    PageNumber right_page;
  };

  void load_or_init_meta();
  void save_meta();
  PageNumber new_leaf();
  PageNumber new_internal(PageNumber leftmost_child);

  /// Recursive insert; returns a split description if `page` overflowed.
  bool insert_into(PageNumber page, uint64_t key, uint64_t value,
                   SplitResult* split);

  /// Descends to the first leaf that may contain (key, 0).
  PageNumber find_leaf(uint64_t key) const;

  BufferPool& pool_;
  FileId file_;
  PageNumber root_ = kInvalidPage;
  uint64_t entry_count_ = 0;
  uint32_t height_ = 0;
};

}  // namespace wre::storage
