// Slotted-page heap file: the row store backing each SQL table.
//
// The engine is append-only by design: the paper's evaluation workload is
// bulk load followed by read-only queries, and WRE's update story
// (Section IV, "Updates") is itself append-only — new records get a fresh
// tag and ciphertext and are appended. Nothing in the scheme requires
// in-place mutation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/storage/buffer_pool.h"
#include "src/util/bytes.h"

namespace wre::storage {

/// Location of a record: (page number, slot within page).
struct RecordId {
  PageNumber page = kInvalidPage;
  uint16_t slot = 0;

  friend bool operator==(const RecordId&, const RecordId&) = default;

  /// Packs into a 64-bit value for storage in index leaves.
  uint64_t pack() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static RecordId unpack(uint64_t v) {
    return RecordId{static_cast<PageNumber>(v >> 16),
                    static_cast<uint16_t>(v & 0xffff)};
  }
};

/// Variable-length record heap over one page file.
///
/// Page 0 holds metadata (record count, tail page). Records must fit in a
/// single page (<= kPageSize - 8 bytes); the SQL layer enforces row sizes
/// well below that.
class HeapFile {
 public:
  /// Binds to `file` inside `pool`'s disk manager. A fresh file is
  /// initialized on first use; an existing file resumes from its metadata.
  HeapFile(BufferPool& pool, FileId file);

  /// Appends a record, returning its id.
  RecordId append(ByteView record);

  /// Appends every record in `records`, returning their ids in order. One
  /// metadata write covers the whole batch (append() persists the record
  /// count per call), which is the heap-file half of the bulk-ingest
  /// amortization. Equivalent to calling append() per record.
  std::vector<RecordId> append_batch(const std::vector<Bytes>& records);

  /// Reads the record at `rid`. Throws StorageError for invalid ids.
  /// Thread-safe against other readers (shared page latches).
  Bytes read(const RecordId& rid) const;

  /// Invokes fn(rid, record_bytes) for every record in file order.
  /// Thread-safe against other readers.
  void scan(const std::function<void(RecordId, ByteView)>& fn) const;

  uint64_t record_count() const { return record_count_; }

  /// Pages occupied, including the metadata page.
  PageNumber page_count() const;

  FileId file() const { return file_; }

 private:
  void load_or_init_meta();
  void save_meta();
  /// Places one record without persisting metadata; callers save_meta().
  RecordId append_record(ByteView record);

  BufferPool& pool_;
  FileId file_;
  uint64_t record_count_ = 0;
  PageNumber tail_page_ = kInvalidPage;  // page currently accepting appends
};

}  // namespace wre::storage
