// LRU buffer pool shared by all files of a database.
//
// This is the "cache" of the cold/warm experiments: clear_cache() flushes
// dirty pages and drops every frame, reproducing the paper's
// `echo 3 > /proc/sys/vm/drop_caches` + Postgres restart between queries.
//
// Pages are pinned through RAII PageGuards. The engine is single-threaded;
// pins exist to keep parent/child page references valid across nested
// fetches (e.g. during B+-tree splits), not for concurrency.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "src/storage/disk_manager.h"
#include "src/storage/page.h"

namespace wre::storage {

class BufferPool;

/// Buffer pool hit/miss statistics.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// RAII pin on a cached page. Movable, not copyable. The underlying frame
/// stays resident (and its data pointer valid) until the guard is destroyed.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  /// True if the guard refers to a page.
  explicit operator bool() const { return frame_ != nullptr; }

  PageId id() const;

  /// Read-only page bytes.
  const uint8_t* data() const;

  /// Mutable page bytes; automatically marks the page dirty.
  uint8_t* mutable_data();

  /// Releases the pin early (the destructor is then a no-op).
  void release();

 private:
  friend class BufferPool;
  struct Frame;
  PageGuard(BufferPool* pool, Frame* frame) : pool_(pool), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  Frame* frame_ = nullptr;
};

/// Fixed-capacity page cache with LRU eviction over unpinned frames.
class BufferPool {
 public:
  /// `capacity_pages` bounds resident frames; pinned frames may push the
  /// pool temporarily above capacity (bounded by the engine's nesting
  /// depth, which is small).
  BufferPool(DiskManager& disk, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned guard on the page, reading it from disk on a miss.
  PageGuard fetch(PageId id);

  /// Allocates a fresh page in `file` and returns it pinned (zeroed, dirty).
  PageGuard allocate(FileId file);

  /// Writes all dirty frames back to disk (frames stay cached).
  void flush_all();

  /// Flushes then drops every frame: the next access to any page is a cold
  /// read. Throws StorageError if any page is still pinned.
  void clear_cache();

  size_t resident_pages() const { return frames_.size(); }
  size_t capacity() const { return capacity_; }
  const BufferStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BufferStats{}; }

  DiskManager& disk() { return disk_; }

 private:
  friend class PageGuard;

  void unpin(PageGuard::Frame* frame);
  void touch(PageGuard::Frame* frame);
  void evict_if_needed();
  void flush_frame(PageGuard::Frame& frame);

  DiskManager& disk_;
  size_t capacity_;
  std::unordered_map<PageId, std::unique_ptr<PageGuard::Frame>> frames_;
  // LRU order: front = most recently used. Only unpinned frames are
  // eviction candidates, found by scanning from the back.
  std::list<PageGuard::Frame*> lru_;
  BufferStats stats_;
};

/// Frame definition lives in the header so PageGuard's inline accessors can
/// see it; treat it as private to the storage layer.
struct PageGuard::Frame {
  PageId id;
  std::array<uint8_t, kPageSize> data;
  bool dirty = false;
  int pins = 0;
  std::list<Frame*>::iterator lru_pos;
  bool in_lru = false;
};

}  // namespace wre::storage
