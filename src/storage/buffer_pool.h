// LRU buffer pool shared by all files of a database.
//
// This is the "cache" of the cold/warm experiments: clear_cache() flushes
// dirty pages and drops every frame, reproducing the paper's
// `echo 3 > /proc/sys/vm/drop_caches` + Postgres restart between queries.
//
// Concurrency model (single-writer / multi-reader, like the rest of the
// engine):
//  * The pool's bookkeeping (frame map, LRU list, stats) is guarded by one
//    pool mutex, held only for map/list manipulation — never across disk
//    I/O for reads, so cold misses from different threads overlap.
//  * Each frame carries a reader-writer latch. fetch(id, LatchMode::kShared)
//    returns a guard holding the latch shared; the default kExclusive mode
//    holds it exclusively and is required for mutable_data(). Any number of
//    shared guards on a page may coexist across threads.
//  * Pins are atomic; a pinned frame is never evicted, so a guard's data
//    pointer stays valid for its lifetime.
//  * Writers (inserts, flush_all, clear_cache) assume no concurrent writer:
//    the storage engine is single-writer by design. Readers are safe
//    against each other and against eviction at any time.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/storage/disk_manager.h"
#include "src/storage/page.h"

namespace wre::storage {

class BufferPool;

/// Buffer pool hit/miss statistics.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// Latch mode requested from fetch(): shared for read-only access,
/// exclusive for mutation through mutable_data().
enum class LatchMode { kShared, kExclusive };

/// RAII pin + latch on a cached page. Movable, not copyable. The underlying
/// frame stays resident (and its data pointer valid) until the guard is
/// destroyed; the latch is held in the mode requested at fetch time.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  /// True if the guard refers to a page.
  explicit operator bool() const { return frame_ != nullptr; }

  PageId id() const;

  /// Read-only page bytes.
  const uint8_t* data() const;

  /// Mutable page bytes; automatically marks the page dirty. Throws
  /// StorageError if the guard holds only a shared latch.
  uint8_t* mutable_data();

  /// Releases the pin and latch early (the destructor is then a no-op).
  void release();

 private:
  friend class BufferPool;
  struct Frame;
  PageGuard(BufferPool* pool, Frame* frame, LatchMode mode)
      : pool_(pool), frame_(frame), mode_(mode) {}

  BufferPool* pool_ = nullptr;
  Frame* frame_ = nullptr;
  LatchMode mode_ = LatchMode::kExclusive;
};

/// Fixed-capacity page cache with LRU eviction over unpinned frames.
class BufferPool {
 public:
  /// `capacity_pages` bounds resident frames; pinned frames may push the
  /// pool temporarily above capacity (bounded by the engine's nesting
  /// depth times the number of concurrent readers, both small).
  BufferPool(DiskManager& disk, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned, latched guard on the page, reading it from disk on a
  /// miss. Concurrent fetches of the same missing page block until the one
  /// performing the read finishes; the disk read itself runs outside the
  /// pool mutex so distinct cold pages load in parallel.
  PageGuard fetch(PageId id, LatchMode mode = LatchMode::kExclusive);

  /// Allocates a fresh page in `file` and returns it pinned exclusively
  /// (zeroed, dirty).
  PageGuard allocate(FileId file);

  /// Writes all dirty frames back to disk (frames stay cached). Requires no
  /// concurrent writer (readers are fine: they never dirty pages).
  void flush_all();

  /// Write-ahead-log integration (DESIGN.md §5.5). With tracking on, every
  /// mutated or freshly allocated frame is additionally marked
  /// "WAL-dirty" — changed since the last commit — and such frames are
  /// never evicted or flushed (the no-steal rule: the data files must not
  /// receive unlogged mutations). collect_wal_dirty() harvests the
  /// after-images for the commit record and stamps the frames with a fresh
  /// collection epoch; they REMAIN no-steal until wal_durable(epoch)
  /// reports that their commit group's fdatasync completed — the window
  /// between enqueue and fsync is exactly when a crash would leave a
  /// half-applied batch if an eviction flushed them early. If the commit
  /// never reaches the log (Wal::commit threw), wal_abort(epoch) puts the
  /// frames back on the dirty list so a later commit re-collects them.
  /// collect/abort require the engine's single-writer exclusion, like
  /// flush_all(); wal_durable is thread-safe (the log-writer calls it).
  void set_wal_tracking(bool on) {
    wal_tracking_.store(on, std::memory_order_relaxed);
  }
  bool wal_tracking() const {
    return wal_tracking_.load(std::memory_order_relaxed);
  }
  struct WalDirtySet {
    uint64_t epoch = 0;
    std::vector<std::pair<PageId, Bytes>> images;
  };
  WalDirtySet collect_wal_dirty();
  void wal_durable(uint64_t epoch);
  void wal_abort(uint64_t epoch);

  /// Flushes then drops every frame: the next access to any page is a cold
  /// read. Throws StorageError if any page is still pinned.
  void clear_cache();

  size_t resident_pages() const;
  size_t capacity() const { return capacity_; }
  BufferStats stats() const;
  void reset_stats();

  DiskManager& disk() { return disk_; }

 private:
  friend class PageGuard;

  void unpin(PageGuard::Frame* frame, LatchMode mode);
  void touch(PageGuard::Frame* frame);    // requires mu_
  void evict_if_needed();                 // requires mu_
  void flush_frame(PageGuard::Frame& frame);

  /// True iff the frame may reach the data file: either WAL tracking is
  /// off, or every mutation in it is covered by a durably fsync'd log
  /// record. Requires mu_.
  bool wal_flushable(const PageGuard::Frame& frame) const;

  DiskManager& disk_;
  size_t capacity_;
  std::atomic<bool> wal_tracking_{false};
  // Collection epochs: collect_wal_dirty() stamps harvested frames with
  // ++wal_collect_epoch_; wal_durable() advances wal_durable_epoch_ once a
  // group's fdatasync lands. A frame is no-steal while its epoch is ahead
  // of the durable mark. Both guarded by mu_.
  uint64_t wal_collect_epoch_ = 0;
  uint64_t wal_durable_epoch_ = 0;
  mutable std::mutex mu_;
  std::unordered_map<PageId, std::unique_ptr<PageGuard::Frame>> frames_;
  // LRU order: front = most recently used. Only unpinned frames are
  // eviction candidates, found by scanning from the back.
  std::list<PageGuard::Frame*> lru_;
  BufferStats stats_;
};

/// Frame definition lives in the header so PageGuard's inline accessors can
/// see it; treat it as private to the storage layer.
struct PageGuard::Frame {
  PageId id;
  std::array<uint8_t, kPageSize> data;
  bool dirty = false;               // written under the exclusive latch
  bool wal_dirty = false;           // mutated since the last WAL collection
  uint64_t wal_epoch = 0;           // collection epoch of the last harvest
  std::atomic<int> pins{0};
  std::atomic<bool> io_failed{false};  // disk read threw; contents invalid
  std::shared_mutex latch;
  std::list<Frame*>::iterator lru_pos;
  bool in_lru = false;
};

}  // namespace wre::storage
