// File-backed page I/O with configurable synthetic latency.
//
// The paper's testbed used an array of 10k-RPM disks; in this reproduction
// physical reads may be served from a RAM-backed filesystem, which would
// erase the cold/warm-cache effect the evaluation measures (Figures 4-7).
// DiskManager therefore supports an optional synthetic per-page read/write
// latency that models seek+transfer cost. Benches enable it; unit tests
// leave it at zero.
//
// I/O uses positioned reads/writes (pread/pwrite) on raw file descriptors,
// so any number of threads may read pages concurrently — there is no shared
// file cursor and no lock on the read path. Writes and page allocation
// follow the engine's single-writer discipline; open_file() must not race
// with I/O on the same manager.
//
// Integrity: each page is stored with a CRC32C header (kPageDiskHeaderBytes
// in page.h) covering its data image. write_page computes it, read_page
// verifies it and throws CorruptionError on mismatch — a flipped bit on the
// platter is detected at the first read instead of being served as data.
// The header is invisible above this layer: callers still see kPageSize
// byte pages, and file_size_bytes() reports the logical (data) size.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/page.h"
#include "src/util/bytes.h"

namespace wre::storage {

/// I/O statistics, cumulative since construction or reset_stats().
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
};

/// Renders the on-disk record for one page into `out` (which must hold
/// kPhysicalPageBytes): CRC32C header followed by the kPageSize data image.
/// Shared by DiskManager and WAL replay, which writes page files directly.
void frame_page_record(const uint8_t* data, uint8_t* out);

/// Manages a set of page files. Reads are thread-safe; writes/opens are
/// single-writer (matching the engine).
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if absent) a page file and returns its handle. A fresh
  /// file is created with one page (page 0, zeroed) reserved for metadata.
  FileId open_file(const std::string& path);

  /// Number of pages currently in the file (including page 0).
  PageNumber page_count(FileId file) const;

  /// Appends a zeroed page to the file and returns its number.
  PageNumber allocate_page(FileId file);

  /// Reads/writes one full page. Throws StorageError on I/O failure or
  /// out-of-range page numbers, and CorruptionError when a read page fails
  /// its checksum. read_page is safe to call from any number of threads
  /// concurrently.
  void read_page(PageId id, uint8_t* out);
  void write_page(PageId id, const uint8_t* data);

  /// File size in bytes (page_count * kPageSize).
  uint64_t file_size_bytes(FileId file) const;

  /// Path the file was opened with.
  const std::string& file_path(FileId file) const;

  /// fsync one file / every open file. Used by checkpoint: data pages must
  /// be durable before the WAL is truncated.
  void fsync_file(FileId file);
  void fsync_all();

  /// Synthetic latency, applied once per physical page read/write. Zero
  /// disables it.
  void set_read_latency_micros(uint32_t us) {
    read_latency_us_.store(us, std::memory_order_relaxed);
  }
  void set_write_latency_micros(uint32_t us) {
    write_latency_us_.store(us, std::memory_order_relaxed);
  }

  /// Snapshot of the cumulative I/O counters.
  DiskStats stats() const;
  void reset_stats();

 private:
  struct File {
    std::string path;
    int fd = -1;
    std::atomic<PageNumber> pages{0};
  };

  File& file_at(FileId id);
  const File& file_at(FileId id) const;

  std::vector<std::unique_ptr<File>> files_;
  std::atomic<uint64_t> page_reads_{0};
  std::atomic<uint64_t> page_writes_{0};
  std::atomic<uint64_t> pages_allocated_{0};
  std::atomic<uint32_t> read_latency_us_{0};
  std::atomic<uint32_t> write_latency_us_{0};
};

}  // namespace wre::storage
