// Page-level constants and identifiers for the storage engine.
//
// The storage engine substitutes for the PostgreSQL server used in the
// paper's evaluation. It is page-based for the same reason the evaluation
// distinguishes cold- and warm-cache runs and SELECT-ID vs SELECT-*: cost is
// dominated by which pages must be touched, and whether they are cached.
#pragma once

#include <cstdint>
#include <functional>

namespace wre::storage {

/// Fixed page size. 4 KiB mirrors a typical DBMS/OS page.
inline constexpr size_t kPageSize = 4096;

/// Page number within one file. Page 0 of every file is reserved for file
/// metadata, so 0 doubles as the "null" page number in link fields.
using PageNumber = uint32_t;
inline constexpr PageNumber kInvalidPage = 0;

/// Identifier of an open file within a DiskManager.
using FileId = uint32_t;

/// Globally unique page identifier: (file, page number).
struct PageId {
  FileId file = 0;
  PageNumber page = kInvalidPage;

  friend bool operator==(const PageId&, const PageId&) = default;
};

}  // namespace wre::storage

template <>
struct std::hash<wre::storage::PageId> {
  size_t operator()(const wre::storage::PageId& id) const noexcept {
    return std::hash<uint64_t>{}(
        (static_cast<uint64_t>(id.file) << 32) | id.page);
  }
};
