// Page-level constants and identifiers for the storage engine.
//
// The storage engine substitutes for the PostgreSQL server used in the
// paper's evaluation. It is page-based for the same reason the evaluation
// distinguishes cold- and warm-cache runs and SELECT-ID vs SELECT-*: cost is
// dominated by which pages must be touched, and whether they are cached.
#pragma once

#include <cstdint>
#include <functional>

namespace wre::storage {

/// Fixed page size. 4 KiB mirrors a typical DBMS/OS page.
inline constexpr size_t kPageSize = 4096;

/// Every page is stored on disk with a small header in front of its data:
///   [0..3]  u32 CRC32C of the kPageSize data bytes, little-endian
///   [4..7]  reserved (zero)
/// The header exists only in the file — the in-memory page image handed to
/// the buffer pool and the engine is exactly kPageSize bytes, so no page
/// layout above DiskManager changes. Reads verify the checksum and raise
/// CorruptionError on mismatch: a bit flip on the platter is detected, never
/// silently served as data.
inline constexpr size_t kPageDiskHeaderBytes = 8;
inline constexpr size_t kPhysicalPageBytes = kPageSize + kPageDiskHeaderBytes;

/// Page number within one file. Page 0 of every file is reserved for file
/// metadata, so 0 doubles as the "null" page number in link fields.
using PageNumber = uint32_t;
inline constexpr PageNumber kInvalidPage = 0;

/// Identifier of an open file within a DiskManager.
using FileId = uint32_t;

/// Globally unique page identifier: (file, page number).
struct PageId {
  FileId file = 0;
  PageNumber page = kInvalidPage;

  friend bool operator==(const PageId&, const PageId&) = default;
};

}  // namespace wre::storage

template <>
struct std::hash<wre::storage::PageId> {
  size_t operator()(const wre::storage::PageId& id) const noexcept {
    return std::hash<uint64_t>{}(
        (static_cast<uint64_t>(id.file) << 32) | id.page);
  }
};
