#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "src/attack/capped_exponential.h"
#include "src/attack/frequency_attack.h"
#include "src/attack/ind_cuda.h"
#include "src/attack/optimal_matching.h"
#include "src/core/encrypted_client.h"
#include "src/core/salts.h"
#include "src/core/wre_scheme.h"

namespace wre::attack {
namespace {

using core::PlaintextDistribution;
using core::SaltAllocator;
using core::WreScheme;

// ------------------------------------------------------ capped exponential

TEST(CappedExponential, CdfMatchesExponentialBelowTau) {
  double lambda = 10, tau = 0.3;
  for (double x : {0.0, 0.05, 0.1, 0.29}) {
    EXPECT_NEAR(capped_exponential_cdf(lambda, tau, x),
                exponential_cdf(lambda, x), 1e-12);
  }
}

TEST(CappedExponential, AllMassAtOrBelowTau) {
  EXPECT_EQ(capped_exponential_cdf(10, 0.3, 0.3), 1.0);
  EXPECT_EQ(capped_exponential_cdf(10, 0.3, 5.0), 1.0);
  EXPECT_EQ(capped_exponential_ccdf(10, 0.3, 0.3), 0.0);
}

TEST(CappedExponential, DistanceIsExpMinusLambdaTau) {
  EXPECT_NEAR(capped_exponential_distance(10, 0.3), std::exp(-3.0), 1e-12);
  EXPECT_NEAR(capped_exponential_distance(1000, 0.01), std::exp(-10.0),
              1e-15);
}

TEST(CappedExponential, DistanceShrinksWithLambda) {
  double tau = 0.05;
  EXPECT_GT(capped_exponential_distance(100, tau),
            capped_exponential_distance(1000, tau));
}

TEST(CappedExponential, CcdfSeriesShapes) {
  auto series = ccdf_series(10, 0.2, 0.5, 51);
  ASSERT_EQ(series.x.size(), 51u);
  EXPECT_EQ(series.exponential.front(), 1.0);
  EXPECT_EQ(series.capped.front(), 1.0);
  // Beyond tau the capped CCDF is exactly zero; the exponential is not.
  for (size_t i = 0; i < series.x.size(); ++i) {
    if (series.x[i] >= 0.2) {
      EXPECT_EQ(series.capped[i], 0.0);
      EXPECT_GT(series.exponential[i], 0.0);
    } else {
      EXPECT_NEAR(series.capped[i], series.exponential[i], 1e-12);
    }
  }
}

TEST(EmpiricalStats, TvDistanceZeroForIdenticalSamples) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_EQ(empirical_tv_distance(a, a, 10), 0.0);
}

TEST(EmpiricalStats, TvDistanceLargeForDisjointSamples) {
  std::vector<double> a = {0, 0.1, 0.2};
  std::vector<double> b = {10, 10.1, 10.2};
  EXPECT_GT(empirical_tv_distance(a, b, 20), 0.9);
}

TEST(EmpiricalStats, KsStatisticSmallForTrueExponential) {
  auto rng = crypto::SecureRandom::for_testing(7);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.next_exponential(5));
  EXPECT_LT(ks_statistic_exponential(sample, 5), 0.02);
  // Against the wrong rate the statistic is large.
  EXPECT_GT(ks_statistic_exponential(sample, 1), 0.3);
}

// --------------------------------------------------------- helper fixtures

/// Encrypts a population drawn from `dist` (db_size records) with the given
/// allocator and returns (tag histogram, per-record truth).
struct SimulatedColumn {
  TagHistogram tags;
  std::vector<std::pair<crypto::Tag, std::string>> records;
};

SimulatedColumn simulate_column(const PlaintextDistribution& dist,
                                std::unique_ptr<SaltAllocator> alloc,
                                uint64_t db_size, uint64_t seed) {
  auto keygen = crypto::SecureRandom::for_testing(seed);
  WreScheme scheme(crypto::KeyBundle::generate(keygen), std::move(alloc));
  auto rng = crypto::SecureRandom::for_testing(seed + 1);

  // Draw records i.i.d. from the distribution.
  std::vector<std::string> messages = dist.messages();
  std::vector<double> cumulative;
  double c = 0;
  for (const auto& m : messages) {
    c += dist.probability(m);
    cumulative.push_back(c);
  }

  SimulatedColumn out;
  for (uint64_t i = 0; i < db_size; ++i) {
    double x = rng.next_double();
    size_t idx = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), x) -
        cumulative.begin());
    if (idx >= messages.size()) idx = messages.size() - 1;
    const std::string& m = messages[idx];
    auto cell = scheme.encrypt(m, rng);
    ++out.tags[cell.tag];
    out.records.emplace_back(cell.tag, m);
  }
  return out;
}

PlaintextDistribution zipf_dist(int n) {
  std::map<std::string, double> probs;
  double h = 0;
  for (int i = 1; i <= n; ++i) h += 1.0 / i;
  for (int i = 1; i <= n; ++i) {
    probs["msg" + std::to_string(i)] = (1.0 / i) / h;
  }
  return PlaintextDistribution::from_probabilities(probs);
}

AuxDistribution aux_of(const PlaintextDistribution& d) {
  AuxDistribution aux;
  for (const auto& m : d.messages()) aux[m] = d.probability(m);
  return aux;
}

// -------------------------------------------------------- frequency attacks

TEST(RankMatching, BreaksDeterministicEncryption) {
  auto dist = zipf_dist(20);
  auto col = simulate_column(dist, std::make_unique<core::DeterministicAllocator>(),
                             20000, 11);
  auto guess = rank_matching_attack(col.tags, aux_of(dist));
  auto score = score_assignment(guess, col.records);
  // With a Zipf head and 20k records, rank matching recovers most records.
  EXPECT_GT(score.recovery_rate, 0.8);
}

TEST(RankMatching, NearUselessAgainstPoisson) {
  auto dist = zipf_dist(20);
  auto keygen = crypto::SecureRandom::for_testing(99);
  auto keys = crypto::KeyBundle::generate(keygen);
  auto col = simulate_column(
      dist,
      std::make_unique<core::PoissonSaltAllocator>(dist, 2000,
                                                   keys.shuffle_key),
      20000, 12);
  auto guess = rank_matching_attack(col.tags, aux_of(dist));
  auto score = score_assignment(guess, col.records);
  // Only 20 plaintexts get assigned to ~2000 tags; recovery collapses.
  EXPECT_LT(score.recovery_rate, 0.05);
}

TEST(MassMatching, BreaksFixedSalts) {
  auto dist = zipf_dist(10);
  auto col = simulate_column(
      dist, std::make_unique<core::FixedSaltAllocator>(10), 50000, 13);
  auto guess = mass_matching_attack(col.tags, aux_of(dist), 50000);
  auto score = score_assignment(guess, col.records);
  // Fixed salts split each plaintext into 10 equal shares; the shares still
  // sort by plaintext frequency, so greedy mass matching recovers most
  // records.
  EXPECT_GT(score.recovery_rate, 0.6);
}

TEST(MassMatching, DegradesAgainstPoisson) {
  auto dist = zipf_dist(10);
  auto keygen = crypto::SecureRandom::for_testing(98);
  auto keys = crypto::KeyBundle::generate(keygen);
  auto col = simulate_column(
      dist,
      std::make_unique<core::PoissonSaltAllocator>(dist, 1000,
                                                   keys.shuffle_key),
      50000, 14);
  auto guess = mass_matching_attack(col.tags, aux_of(dist), 50000);
  auto fixed_col = simulate_column(
      dist, std::make_unique<core::FixedSaltAllocator>(10), 50000, 13);
  auto fixed_guess =
      mass_matching_attack(fixed_col.tags, aux_of(dist), 50000);
  double poisson_rate = score_assignment(guess, col.records).recovery_rate;
  double fixed_rate =
      score_assignment(fixed_guess, fixed_col.records).recovery_rate;
  EXPECT_LT(poisson_rate, fixed_rate * 0.8);
}

TEST(SubsetSum, FindsTargetMassUnderPoisson) {
  // Lacharité-Paterson: under (non-bucketized) Poisson the per-plaintext tag
  // counts sum to ~P_M(m) * n, so a subset-sum exists.
  auto dist = zipf_dist(5);
  auto keygen = crypto::SecureRandom::for_testing(97);
  auto keys = crypto::KeyBundle::generate(keygen);
  auto col = simulate_column(
      dist,
      std::make_unique<core::PoissonSaltAllocator>(dist, 50, keys.shuffle_key),
      20000, 15);
  auto subset =
      subset_sum_attack(col.tags, dist.probability("msg1"), 20000, 0.01);
  EXPECT_FALSE(subset.empty());
  int64_t sum = 0;
  for (auto t : subset) sum += static_cast<int64_t>(col.tags.at(t));
  auto target = static_cast<int64_t>(
      std::llround(dist.probability("msg1") * 20000));
  EXPECT_NEAR(static_cast<double>(sum), static_cast<double>(target),
              0.01 * static_cast<double>(target) + 1);
}

TEST(SubsetSum, SolutionsAreNotUniqueUnderBucketization) {
  // Against the bucketized scheme a subset with the right sum typically
  // still exists (counts are fine-grained), but it no longer identifies the
  // target's true tags: buckets straddle plaintexts. Verify that the found
  // subset covers tags that do NOT all belong to the target.
  auto dist = zipf_dist(5);
  auto keygen = crypto::SecureRandom::for_testing(96);
  auto keys = crypto::KeyBundle::generate(keygen);
  auto col = simulate_column(
      dist,
      std::make_unique<core::BucketizedPoissonAllocator>(
          dist, 50, keys.shuffle_key, to_bytes("col")),
      20000, 16);
  auto subset =
      subset_sum_attack(col.tags, dist.probability("msg1"), 20000, 0.02);
  if (subset.empty()) {
    SUCCEED();  // no subset found: the attack outright fails
    return;
  }
  // Count how many records covered by the subset are actually msg1.
  std::set<crypto::Tag> chosen(subset.begin(), subset.end());
  uint64_t covered = 0, correct = 0;
  for (const auto& [tag, truth] : col.records) {
    if (chosen.contains(tag)) {
      ++covered;
      if (truth == "msg1") ++correct;
    }
  }
  ASSERT_GT(covered, 0u);
  // The matching is polluted: well below perfect attribution.
  EXPECT_LT(static_cast<double>(correct) / static_cast<double>(covered),
            0.95);
}

// ------------------------------------------------------- optimal matching

TEST(HungarianSolver, SolvesKnownThreeByThree) {
  // Classic example: optimal assignment is the anti-diagonal (cost 5).
  std::vector<double> cost = {4, 1, 3,
                              2, 0, 5,
                              3, 2, 2};
  auto match = solve_assignment(cost, 3);
  double total = 0;
  for (size_t r = 0; r < 3; ++r) total += cost[r * 3 + match[r]];
  EXPECT_DOUBLE_EQ(total, 5.0);  // 1 + 2 + 2
  // Assignment must be a permutation.
  std::set<size_t> cols(match.begin(), match.end());
  EXPECT_EQ(cols.size(), 3u);
}

TEST(HungarianSolver, IdentityWhenDiagonalIsFree) {
  std::vector<double> cost = {0, 9, 9,
                              9, 0, 9,
                              9, 9, 0};
  auto match = solve_assignment(cost, 3);
  for (size_t r = 0; r < 3; ++r) EXPECT_EQ(match[r], r);
}

TEST(HungarianSolver, RejectsNonSquare) {
  EXPECT_THROW(solve_assignment({1, 2, 3}, 2), std::invalid_argument);
}

TEST(OptimalMatching, PerfectAgainstDeterministic) {
  auto dist = zipf_dist(20);
  auto col = simulate_column(
      dist, std::make_unique<core::DeterministicAllocator>(), 50000, 21);
  auto guess = optimal_matching_attack(col.tags, aux_of(dist), 50000);
  auto score = score_assignment(guess, col.records);
  // Note: minimizing total l1 cost does not maximize record recovery, so
  // the optimal matcher can differ slightly from greedy ranking under
  // sampling noise; both must devastate DET.
  auto rank_score = score_assignment(
      rank_matching_attack(col.tags, aux_of(dist)), col.records);
  EXPECT_GT(score.recovery_rate, 0.8);
  EXPECT_GT(rank_score.recovery_rate, 0.8);
  EXPECT_NEAR(score.recovery_rate, rank_score.recovery_rate, 0.1);
}

TEST(OptimalMatching, HandlesMoreTagsThanPlaintexts) {
  auto dist = zipf_dist(5);
  auto col = simulate_column(
      dist, std::make_unique<core::FixedSaltAllocator>(8), 30000, 22);
  // 40 tags vs 5 plaintexts: padding absorbs 35 tags.
  auto guess = optimal_matching_attack(col.tags, aux_of(dist), 30000);
  EXPECT_LE(guess.size(), 5u);  // at most one tag per plaintext
  for (const auto& [tag, m] : guess) {
    EXPECT_TRUE(col.tags.contains(tag));
  }
}

TEST(OptimalMatching, CollapsesAgainstPoisson) {
  auto dist = zipf_dist(10);
  auto keygen = crypto::SecureRandom::for_testing(95);
  auto keys = crypto::KeyBundle::generate(keygen);
  auto col = simulate_column(
      dist,
      std::make_unique<core::PoissonSaltAllocator>(dist, 400,
                                                   keys.shuffle_key),
      30000, 23);
  auto guess = optimal_matching_attack(col.tags, aux_of(dist), 30000);
  auto score = score_assignment(guess, col.records);
  EXPECT_LT(score.recovery_rate, 0.15);
}

TEST(OptimalMatching, EmptyInputsYieldEmptyAssignment) {
  EXPECT_TRUE(optimal_matching_attack({}, {{"a", 1.0}}, 10).empty());
  EXPECT_TRUE(optimal_matching_attack({{1, 5}}, {}, 10).empty());
  EXPECT_TRUE(optimal_matching_attack({{1, 5}}, {{"a", 1.0}}, 0).empty());
}

TEST(ScoreAssignment, CountsExactMatchesOnly) {
  TagAssignment guess = {{1, "a"}, {2, "b"}};
  std::vector<std::pair<crypto::Tag, std::string>> records = {
      {1, "a"}, {1, "a"}, {2, "z"}, {3, "a"}};
  auto score = score_assignment(guess, records);
  EXPECT_EQ(score.records_total, 4u);
  EXPECT_EQ(score.records_recovered, 2u);
  EXPECT_NEAR(score.recovery_rate, 0.5, 1e-12);
}

// ----------------------------------------------------------------- IND-CUDA

SchemeFactory factory_for(core::SaltMethod method, double param) {
  return [method, param](const PlaintextDistribution& dist,
                         crypto::SecureRandom& keygen)
             -> std::unique_ptr<WreScheme> {
    auto keys = crypto::KeyBundle::generate(keygen);
    std::unique_ptr<SaltAllocator> alloc;
    switch (method) {
      case core::SaltMethod::kDeterministic:
        alloc = std::make_unique<core::DeterministicAllocator>();
        break;
      case core::SaltMethod::kFixed:
        alloc = std::make_unique<core::FixedSaltAllocator>(
            static_cast<uint32_t>(param));
        break;
      case core::SaltMethod::kPoisson:
        alloc = std::make_unique<core::PoissonSaltAllocator>(
            dist, param, keys.shuffle_key);
        break;
      case core::SaltMethod::kBucketizedPoisson:
        alloc = std::make_unique<core::BucketizedPoissonAllocator>(
            dist, param, keys.shuffle_key, to_bytes("game"));
        break;
      default:
        throw WreError("unsupported method in test factory");
    }
    return std::make_unique<WreScheme>(std::move(keys), std::move(alloc));
  };
}

// The adversary's classic list pair: all-distinct vs all-identical.
std::pair<std::vector<std::string>, std::vector<std::string>> crowd_vs_clone(
    int n) {
  std::vector<std::string> m0, m1;
  for (int i = 0; i < n; ++i) {
    m0.push_back("user" + std::to_string(i));
    m1.push_back("userX");
  }
  return {m0, m1};
}

TEST(IndCuda, DeterministicEncryptionIsTriviallyDistinguishable) {
  auto [m0, m1] = crowd_vs_clone(32);
  auto factory = factory_for(core::SaltMethod::kDeterministic, 0);
  auto adversary = make_collision_adversary(factory, 4, 7);
  auto result = run_ind_cuda(factory, m0, m1, adversary, 60, 1234);
  EXPECT_GT(result.success_rate, 0.95);
}

TEST(IndCuda, FixedSaltsStillDistinguishable) {
  auto [m0, m1] = crowd_vs_clone(64);
  auto factory = factory_for(core::SaltMethod::kFixed, 4);
  auto adversary = make_collision_adversary(factory, 4, 8);
  auto result = run_ind_cuda(factory, m0, m1, adversary, 60, 999);
  EXPECT_GT(result.success_rate, 0.8);
}

TEST(IndCuda, BucketizedPoissonHidesValuesGivenMatchedProfile) {
  // Lists with the same multiplicity profile but disjoint values: the
  // bucketized construction's tag stream is identically distributed for
  // both, so no adversary should win. (This is the meaningful payload of
  // Theorem V.1: the tags reveal the multiset *shape*, never the values.)
  std::vector<std::string> m0, m1;
  for (int v = 0; v < 8; ++v) {
    for (int c = 0; c < 8; ++c) {
      m0.push_back("left" + std::to_string(v));
      m1.push_back("rght" + std::to_string(v));
    }
  }
  auto factory = factory_for(core::SaltMethod::kBucketizedPoisson, 200);
  auto adversary = make_collision_adversary(factory, 4, 9);
  auto result = run_ind_cuda(factory, m0, m1, adversary, 100, 4321);
  EXPECT_LT(result.advantage, 0.15);
}

TEST(IndCuda, BucketizedPoissonBeatsDeterminismOnExtremeLists) {
  // Reproduction note: with adversarially extreme lists (all-distinct vs
  // all-identical) even the bucketized scheme leaks through *second-order*
  // statistics — records of message m only ever sample buckets inside m's
  // interval, so the all-distinct list places points stratified across
  // [0, 1] while the all-identical list places them i.i.d., and collision
  // counts differ. Theorem V.1's proof sketch ("tags have exactly the same
  // values and the same frequency") holds for the expected frequencies, not
  // for these variance statistics. We therefore check the honest ordering:
  // bucketized advantage is far below the deterministic baseline's, though
  // measurably above zero.
  auto [m0, m1] = crowd_vs_clone(64);
  auto det_factory = factory_for(core::SaltMethod::kDeterministic, 0);
  auto det_result = run_ind_cuda(
      det_factory, m0, m1, make_collision_adversary(det_factory, 4, 9), 60,
      4321);
  auto bkt_factory = factory_for(core::SaltMethod::kBucketizedPoisson, 200);
  auto bkt_result = run_ind_cuda(
      bkt_factory, m0, m1, make_collision_adversary(bkt_factory, 4, 9), 60,
      4321);
  EXPECT_GT(det_result.success_rate, 0.95);
  EXPECT_LT(bkt_result.success_rate, det_result.success_rate - 0.03);
}

TEST(IndCuda, PoissonWithAdequateLambdaResists) {
  auto [m0, m1] = crowd_vs_clone(32);
  // tau = 1/32 under m0; lambda = 2000 gives advantage e^{-62.5} per salt.
  auto factory = factory_for(core::SaltMethod::kPoisson, 2000);
  auto adversary = make_collision_adversary(factory, 4, 10);
  auto result = run_ind_cuda(factory, m0, m1, adversary, 100, 777);
  EXPECT_LT(result.advantage, 0.15);
}

TEST(IndCuda, RejectsMalformedLists) {
  auto factory = factory_for(core::SaltMethod::kDeterministic, 0);
  Adversary dummy = [](const auto&, const auto&, const auto&) { return 0; };
  EXPECT_THROW(run_ind_cuda(factory, {}, {}, dummy, 1, 1), WreError);
  EXPECT_THROW(run_ind_cuda(factory, {"a"}, {"a", "b"}, dummy, 1, 1),
               WreError);
}

}  // namespace
}  // namespace wre::attack
