#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>

#include "src/storage/bptree.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"
#include "src/storage/fault_injector.h"
#include "src/storage/heap_file.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace wre::storage {
namespace {

using wre::testing::TempDir;

// ------------------------------------------------------------ DiskManager

TEST(DiskManager, FreshFileHasMetadataPage) {
  TempDir dir;
  DiskManager disk;
  FileId f = disk.open_file(dir.str() + "/a.db");
  EXPECT_EQ(disk.page_count(f), 1u);
  EXPECT_EQ(disk.file_size_bytes(f), kPageSize);
}

TEST(DiskManager, AllocateGrowsFile) {
  TempDir dir;
  DiskManager disk;
  FileId f = disk.open_file(dir.str() + "/a.db");
  PageNumber p1 = disk.allocate_page(f);
  PageNumber p2 = disk.allocate_page(f);
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(p2, 2u);
  EXPECT_EQ(disk.page_count(f), 3u);
}

TEST(DiskManager, WriteThenReadBack) {
  TempDir dir;
  DiskManager disk;
  FileId f = disk.open_file(dir.str() + "/a.db");
  PageNumber p = disk.allocate_page(f);
  uint8_t page[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) page[i] = static_cast<uint8_t>(i);
  disk.write_page({f, p}, page);
  uint8_t back[kPageSize];
  disk.read_page({f, p}, back);
  EXPECT_EQ(0, memcmp(page, back, kPageSize));
}

TEST(DiskManager, PersistsAcrossReopen) {
  TempDir dir;
  std::string path = dir.str() + "/a.db";
  {
    DiskManager disk;
    FileId f = disk.open_file(path);
    PageNumber p = disk.allocate_page(f);
    uint8_t page[kPageSize] = {0xAB};
    disk.write_page({f, p}, page);
  }
  DiskManager disk;
  FileId f = disk.open_file(path);
  EXPECT_EQ(disk.page_count(f), 2u);
  uint8_t back[kPageSize];
  disk.read_page({f, 1}, back);
  EXPECT_EQ(back[0], 0xAB);
}

TEST(DiskManager, ReadPastEndThrows) {
  TempDir dir;
  DiskManager disk;
  FileId f = disk.open_file(dir.str() + "/a.db");
  uint8_t page[kPageSize];
  EXPECT_THROW(disk.read_page({f, 5}, page), StorageError);
}

TEST(DiskManager, BadFileIdThrows) {
  DiskManager disk;
  uint8_t page[kPageSize];
  EXPECT_THROW(disk.read_page({42, 0}, page), StorageError);
}

TEST(DiskManager, ChecksumDetectsBitFlip) {
  TempDir dir;
  std::string path = dir.str() + "/a.db";
  DiskManager disk;
  FileId f = disk.open_file(path);
  PageNumber p = disk.allocate_page(f);
  uint8_t page[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) page[i] = static_cast<uint8_t>(i);

  // Injected silent media corruption: the write computes the checksum over
  // the pristine image but one data bit lands inverted on disk. The read
  // must refuse to serve the corrupted page.
  FaultInjector::instance().arm_page_bitflip("a.db");
  disk.write_page({f, p}, page);
  uint8_t back[kPageSize];
  try {
    disk.read_page({f, p}, back);
    FAIL() << "corrupted page served as data";
  } catch (const CorruptionError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }

  // A clean rewrite heals the page; the injector was one-shot.
  FaultInjector::instance().reset();
  disk.write_page({f, p}, page);
  disk.read_page({f, p}, back);
  EXPECT_EQ(0, memcmp(page, back, kPageSize));
}

TEST(DiskManager, RejectsPreChecksumFormat) {
  TempDir dir;
  std::string path = dir.str() + "/a.db";
  // A file whose size is not a multiple of the physical record (e.g. a
  // pre-checksum database, or one truncated mid-record) must be refused
  // loudly rather than misparsed.
  {
    std::ofstream out(path, std::ios::binary);
    Bytes raw(kPageSize, 0);
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
  }
  DiskManager disk;
  EXPECT_THROW(disk.open_file(path), CorruptionError);
}

TEST(DiskManager, StatsCountOperations) {
  TempDir dir;
  DiskManager disk;
  FileId f = disk.open_file(dir.str() + "/a.db");
  PageNumber p = disk.allocate_page(f);
  uint8_t page[kPageSize] = {};
  disk.write_page({f, p}, page);
  disk.read_page({f, p}, page);
  EXPECT_EQ(disk.stats().page_writes, 1u);
  EXPECT_EQ(disk.stats().page_reads, 1u);
  EXPECT_EQ(disk.stats().pages_allocated, 2u);  // metadata + explicit
}

// ------------------------------------------------------------ BufferPool

TEST(BufferPool, FetchCachesPage) {
  TempDir dir;
  DiskManager disk;
  FileId f = disk.open_file(dir.str() + "/a.db");
  BufferPool pool(disk, 8);
  { PageGuard g = pool.fetch({f, 0}); }
  { PageGuard g = pool.fetch({f, 0}); }
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(disk.stats().page_reads, 1u);
}

TEST(BufferPool, DirtyPageFlushedOnEviction) {
  TempDir dir;
  DiskManager disk;
  FileId f = disk.open_file(dir.str() + "/a.db");
  BufferPool pool(disk, 2);
  PageNumber p = disk.allocate_page(f);
  {
    PageGuard g = pool.fetch({f, p});
    g.mutable_data()[0] = 0x77;
  }
  // Fill the pool to force eviction of the dirty page.
  for (int i = 0; i < 4; ++i) {
    PageNumber q = disk.allocate_page(f);
    PageGuard g = pool.fetch({f, q});
  }
  uint8_t back[kPageSize];
  disk.read_page({f, p}, back);
  EXPECT_EQ(back[0], 0x77);
}

TEST(BufferPool, ClearCacheDropsEverything) {
  TempDir dir;
  DiskManager disk;
  FileId f = disk.open_file(dir.str() + "/a.db");
  BufferPool pool(disk, 8);
  {
    PageGuard g = pool.fetch({f, 0});
    g.mutable_data()[1] = 0x55;
  }
  pool.clear_cache();
  EXPECT_EQ(pool.resident_pages(), 0u);
  disk.reset_stats();
  { PageGuard g = pool.fetch({f, 0}); EXPECT_EQ(g.data()[1], 0x55); }
  EXPECT_EQ(disk.stats().page_reads, 1u);  // cold read after clear
}

TEST(BufferPool, ClearCacheRefusesPinnedPages) {
  TempDir dir;
  DiskManager disk;
  FileId f = disk.open_file(dir.str() + "/a.db");
  BufferPool pool(disk, 8);
  PageGuard g = pool.fetch({f, 0});
  EXPECT_THROW(pool.clear_cache(), StorageError);
}

TEST(BufferPool, PinnedPagesSurviveCapacityPressure) {
  TempDir dir;
  DiskManager disk;
  FileId f = disk.open_file(dir.str() + "/a.db");
  for (int i = 0; i < 10; ++i) disk.allocate_page(f);
  BufferPool pool(disk, 2);
  PageGuard pinned = pool.fetch({f, 1});
  pinned.mutable_data()[0] = 0x42;
  for (PageNumber p = 2; p <= 10; ++p) {
    PageGuard g = pool.fetch({f, p});
  }
  // The pinned frame's data pointer must still be valid and intact.
  EXPECT_EQ(pinned.data()[0], 0x42);
}

TEST(BufferPool, MoveTransfersPin) {
  TempDir dir;
  DiskManager disk;
  FileId f = disk.open_file(dir.str() + "/a.db");
  BufferPool pool(disk, 4);
  PageGuard a = pool.fetch({f, 0});
  PageGuard b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b.release();
  pool.clear_cache();  // would throw if a pin leaked
}

// -------------------------------------------------------------- HeapFile

TEST(HeapFile, AppendAndRead) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 64);
  HeapFile heap(pool, disk.open_file(dir.str() + "/h.db"));
  RecordId rid = heap.append(to_bytes("hello"));
  EXPECT_EQ(heap.read(rid), to_bytes("hello"));
  EXPECT_EQ(heap.record_count(), 1u);
}

TEST(HeapFile, ManyRecordsSpanPages) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 64);
  HeapFile heap(pool, disk.open_file(dir.str() + "/h.db"));
  std::vector<RecordId> rids;
  for (int i = 0; i < 2000; ++i) {
    rids.push_back(heap.append(to_bytes("record-" + std::to_string(i))));
  }
  EXPECT_GT(heap.page_count(), 2u);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(heap.read(rids[i]), to_bytes("record-" + std::to_string(i)));
  }
}

TEST(HeapFile, ScanVisitsAllInOrder) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 64);
  HeapFile heap(pool, disk.open_file(dir.str() + "/h.db"));
  for (int i = 0; i < 500; ++i) heap.append(to_bytes(std::to_string(i)));
  int expected = 0;
  heap.scan([&](RecordId, ByteView record) {
    EXPECT_EQ(to_string(record), std::to_string(expected));
    ++expected;
  });
  EXPECT_EQ(expected, 500);
}

TEST(HeapFile, PersistsAcrossReopen) {
  TempDir dir;
  std::string path = dir.str() + "/h.db";
  RecordId rid;
  {
    DiskManager disk;
    BufferPool pool(disk, 64);
    HeapFile heap(pool, disk.open_file(path));
    rid = heap.append(to_bytes("persist me"));
    pool.flush_all();
  }
  DiskManager disk;
  BufferPool pool(disk, 64);
  HeapFile heap(pool, disk.open_file(path));
  EXPECT_EQ(heap.record_count(), 1u);
  EXPECT_EQ(heap.read(rid), to_bytes("persist me"));
}

TEST(HeapFile, OversizedRecordRejected) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 64);
  HeapFile heap(pool, disk.open_file(dir.str() + "/h.db"));
  EXPECT_THROW(heap.append(Bytes(kPageSize)), StorageError);
}

TEST(HeapFile, MaximalRecordFits) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 64);
  HeapFile heap(pool, disk.open_file(dir.str() + "/h.db"));
  Bytes big(kPageSize - 8, 0x5a);
  RecordId rid = heap.append(big);
  EXPECT_EQ(heap.read(rid), big);
}

TEST(HeapFile, BadSlotThrows) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 64);
  HeapFile heap(pool, disk.open_file(dir.str() + "/h.db"));
  heap.append(to_bytes("x"));
  EXPECT_THROW(heap.read(RecordId{1, 7}), StorageError);
  EXPECT_THROW(heap.read(RecordId{}), StorageError);
}

TEST(RecordId, PackUnpackRoundTrip) {
  RecordId rid{123456, 789};
  EXPECT_EQ(RecordId::unpack(rid.pack()), rid);
}

// --------------------------------------------------------------- BPlusTree

TEST(BPlusTree, EmptyFindReturnsNothing) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 64);
  BPlusTree tree(pool, disk.open_file(dir.str() + "/i.db"));
  EXPECT_TRUE(tree.find(42).empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
}

TEST(BPlusTree, InsertAndFindSingle) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 64);
  BPlusTree tree(pool, disk.open_file(dir.str() + "/i.db"));
  tree.insert(10, 100);
  EXPECT_EQ(tree.find(10), std::vector<uint64_t>{100});
  EXPECT_TRUE(tree.find(11).empty());
}

TEST(BPlusTree, DuplicateKeysReturnAllValues) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 64);
  BPlusTree tree(pool, disk.open_file(dir.str() + "/i.db"));
  for (uint64_t v = 0; v < 50; ++v) tree.insert(7, v);
  auto values = tree.find(7);
  ASSERT_EQ(values.size(), 50u);
  for (uint64_t v = 0; v < 50; ++v) EXPECT_EQ(values[v], v);
}

TEST(BPlusTree, FullyDuplicatePairsAllowed) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 64);
  BPlusTree tree(pool, disk.open_file(dir.str() + "/i.db"));
  tree.insert(1, 1);
  tree.insert(1, 1);
  EXPECT_EQ(tree.find(1).size(), 2u);
}

TEST(BPlusTree, MatchesReferenceMultimapUnderRandomLoad) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 256);
  BPlusTree tree(pool, disk.open_file(dir.str() + "/i.db"));
  std::multimap<uint64_t, uint64_t> reference;
  Xoshiro256 rng(2024);
  constexpr int kInserts = 50000;
  for (int i = 0; i < kInserts; ++i) {
    uint64_t key = rng.next_below(5000);  // heavy duplication
    uint64_t value = rng();
    tree.insert(key, value);
    reference.emplace(key, value);
  }
  EXPECT_EQ(tree.size(), static_cast<uint64_t>(kInserts));
  EXPECT_GT(tree.height(), 1u);

  for (uint64_t key = 0; key < 5000; key += 37) {
    auto [lo, hi] = reference.equal_range(key);
    std::multiset<uint64_t> expected;
    for (auto it = lo; it != hi; ++it) expected.insert(it->second);
    auto found = tree.find(key);
    std::multiset<uint64_t> actual(found.begin(), found.end());
    EXPECT_EQ(actual, expected) << "key=" << key;
  }
}

TEST(BPlusTree, ScanAllIsSortedAndComplete) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 256);
  BPlusTree tree(pool, disk.open_file(dir.str() + "/i.db"));
  Xoshiro256 rng(17);
  constexpr int kInserts = 20000;
  for (int i = 0; i < kInserts; ++i) tree.insert(rng.next_below(1000), rng());

  uint64_t count = 0;
  uint64_t prev_key = 0;
  uint64_t prev_val = 0;
  bool first = true;
  tree.scan_all([&](uint64_t key, uint64_t value) {
    if (!first) {
      EXPECT_TRUE(key > prev_key || (key == prev_key && value >= prev_val));
    }
    prev_key = key;
    prev_val = value;
    first = false;
    ++count;
  });
  EXPECT_EQ(count, static_cast<uint64_t>(kInserts));
}

TEST(BPlusTree, SequentialKeysSplitCorrectly) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 256);
  BPlusTree tree(pool, disk.open_file(dir.str() + "/i.db"));
  constexpr uint64_t kN = 10000;
  for (uint64_t k = 0; k < kN; ++k) tree.insert(k, k * 2);
  for (uint64_t k = 0; k < kN; k += 97) {
    EXPECT_EQ(tree.find(k), std::vector<uint64_t>{k * 2});
  }
}

TEST(BPlusTree, PersistsAcrossReopen) {
  TempDir dir;
  std::string path = dir.str() + "/i.db";
  {
    DiskManager disk;
    BufferPool pool(disk, 64);
    BPlusTree tree(pool, disk.open_file(path));
    for (uint64_t k = 0; k < 1000; ++k) tree.insert(k, k + 1);
    pool.flush_all();
  }
  DiskManager disk;
  BufferPool pool(disk, 64);
  BPlusTree tree(pool, disk.open_file(path));
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_EQ(tree.find(999), std::vector<uint64_t>{1000});
}

TEST(BPlusTree, ExtremeDuplicationSpansLeaves) {
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 256);
  BPlusTree tree(pool, disk.open_file(dir.str() + "/i.db"));
  // 1000 copies of one key forces the run to cross several leaves.
  for (uint64_t v = 0; v < 1000; ++v) tree.insert(5, v);
  tree.insert(4, 40);
  tree.insert(6, 60);
  EXPECT_EQ(tree.find(5).size(), 1000u);
  EXPECT_EQ(tree.find(4), std::vector<uint64_t>{40});
  EXPECT_EQ(tree.find(6), std::vector<uint64_t>{60});
}

TEST(BPlusTree, WorksWithTinyBufferPool) {
  // Forces constant eviction during splits to catch pin bugs.
  TempDir dir;
  DiskManager disk;
  BufferPool pool(disk, 4);
  BPlusTree tree(pool, disk.open_file(dir.str() + "/i.db"));
  for (uint64_t k = 0; k < 5000; ++k) tree.insert(k % 100, k);
  EXPECT_EQ(tree.find(3).size(), 50u);
}

}  // namespace
}  // namespace wre::storage
