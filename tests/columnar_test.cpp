// Unit tests for the in-memory columnar ciphertext store (DESIGN.md §5.9):
// column layouts and scan kernels, segment build/select/materialization,
// the ColumnStoreManager's snapshot/staleness machinery, and the planner
// integration including the wire-protocol fast path — every columnar
// answer checked against the row path it must be indistinguishable from.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/columnar/column.h"
#include "src/columnar/segment.h"
#include "src/columnar/store_manager.h"
#include "src/crypto/prf.h"
#include "src/net/wire.h"
#include "src/sql/database.h"
#include "src/sql/parser.h"
#include "tests/test_util.h"

namespace wre::columnar {
namespace {

using sql::Value;
using wre::testing::TempDir;

// ------------------------------------------------------------ Int64Column

TEST(Int64Column, DictionaryLayoutScansByCode) {
  Int64Column col;
  // 12 rows over 3 distinct values: dictionary clearly pays.
  for (int64_t v : {5, 7, 5, 9, 7, 5, 9, 9, 5, 7, 5, 9}) col.append(v);
  col.seal(/*dict_max=*/1 << 16);
  EXPECT_EQ(col.layout(), ColumnLayout::kDictionary);
  EXPECT_EQ(col.dictionary_size(), 3u);

  int64_t probes[] = {9, 42};
  Selection sel;
  col.scan_in(probes, 2, &sel);
  EXPECT_EQ(sel, (Selection{3, 6, 7, 11}));
  EXPECT_TRUE(col.matches(3, probes, 2));
  EXPECT_FALSE(col.matches(0, probes, 2));
  EXPECT_EQ(col.at(1), 7);
}

TEST(Int64Column, PlainFallbackWhenDictionaryCannotPay) {
  // 8 distinct over 10 rows: under dict_max but compression would not pay
  // (each value must repeat twice on average), so the column stays plain.
  Int64Column col;
  for (int64_t v : {1, 2, 3, 4, 5, 6, 7, 8, 1, 2}) col.append(v);
  col.seal(/*dict_max=*/1 << 16);
  EXPECT_EQ(col.layout(), ColumnLayout::kPlain);

  int64_t probes[] = {2};
  Selection sel;
  col.scan_in(probes, 1, &sel);
  EXPECT_EQ(sel, (Selection{1, 9}));
}

TEST(Int64Column, PlainFallbackAboveDictMax) {
  Int64Column col;
  for (int64_t v : {1, 1, 1, 2, 2, 2, 3, 3, 3}) col.append(v);
  col.seal(/*dict_max=*/2);  // 3 distinct > cap
  EXPECT_EQ(col.layout(), ColumnLayout::kPlain);
  int64_t probes[] = {3, 1};
  Selection sel;
  col.scan_in(probes, 2, &sel);
  EXPECT_EQ(sel, (Selection{0, 1, 2, 6, 7, 8}));
}

TEST(Int64Column, NullsNeverMatchInEitherLayout) {
  for (size_t dict_max : {size_t{1} << 16, size_t{0}}) {
    Int64Column col;
    col.append(4);
    col.append_null();
    col.append(4);
    col.append(4);
    col.append_null();
    col.append(4);
    col.seal(dict_max);
    EXPECT_TRUE(col.has_nulls());
    EXPECT_TRUE(col.is_null(1));
    EXPECT_FALSE(col.is_null(2));
    int64_t probes[] = {4, 0};  // 0 is the internal NULL placeholder value
    Selection sel;
    col.scan_in(probes, 2, &sel);
    EXPECT_EQ(sel, (Selection{0, 2, 3, 5})) << "dict_max=" << dict_max;
    EXPECT_FALSE(col.matches(1, probes, 2));
  }
}

TEST(Int64Column, LargeProbeSetUsesBitmapPath) {
  Int64Column col;
  for (int64_t i = 0; i < 200; ++i) col.append(i % 20);
  col.seal(1 << 16);
  ASSERT_EQ(col.layout(), ColumnLayout::kDictionary);
  // 8 probes (> the 4-wide OR-tree) forces the bitmap kernel.
  std::vector<int64_t> probes = {0, 3, 5, 7, 11, 13, 17, 19};
  Selection sel;
  col.scan_in(probes.data(), probes.size(), &sel);
  Selection expect;
  for (uint32_t i = 0; i < 200; ++i) {
    int64_t v = i % 20;
    if (std::find(probes.begin(), probes.end(), v) != probes.end()) {
      expect.push_back(i);
    }
  }
  EXPECT_EQ(sel, expect);
}

TEST(Int64Column, WreTagProbes) {
  // Search tags are 64-bit PRF outputs bitcast through Value::tag; the
  // column must round-trip them and scan on the same bitcast probes.
  crypto::TagPrf prf(Bytes(32, 0x5a));
  std::vector<uint64_t> tags;
  for (int i = 0; i < 6; ++i) {
    tags.push_back(prf.tag(0, to_bytes("value" + std::to_string(i % 2))));
  }
  Int64Column col;
  for (uint64_t t : tags) col.append(Value::tag(t).as_int64());
  col.seal(1 << 16);
  int64_t probe = Value::tag(tags[0]).as_int64();
  Selection sel;
  col.scan_in(&probe, 1, &sel);
  EXPECT_EQ(sel, (Selection{0, 2, 4}));
}

// ------------------------------------------------------------ BytesColumn

TEST(BytesColumn, DictionaryAndPlainScansAgree) {
  std::vector<std::string> values = {"rome", "oslo", "rome", "kiev",
                                     "oslo", "rome", "kiev", "rome"};
  for (size_t dict_max : {size_t{1} << 16, size_t{0}}) {
    BytesColumn col(sql::ValueType::kText);
    for (const auto& v : values) col.append(v);
    col.append_null();
    col.seal(dict_max);
    EXPECT_EQ(col.layout(), dict_max ? ColumnLayout::kDictionary
                                     : ColumnLayout::kPlain);
    std::string_view probes[] = {"rome", "kiev", "paris"};
    Selection sel;
    col.scan_in(probes, 3, &sel);
    EXPECT_EQ(sel, (Selection{0, 2, 3, 5, 6, 7})) << "dict_max=" << dict_max;
    EXPECT_TRUE(col.is_null(8));
    EXPECT_FALSE(col.matches(8, probes, 3));
    EXPECT_EQ(col.at(1), "oslo");
  }
}

TEST(BytesColumn, UniqueCiphertextsStayPlain) {
  // Unique-ish values (every AES-CTR ciphertext is distinct) must keep the
  // packed heap-ordered layout even under a generous dictionary cap.
  BytesColumn col(sql::ValueType::kBlob);
  for (int i = 0; i < 64; ++i) {
    col.append(std::string(33, static_cast<char>(i)));
  }
  col.seal(1 << 16);
  EXPECT_EQ(col.layout(), ColumnLayout::kPlain);
  std::string probe(33, static_cast<char>(7));
  std::string_view pv = probe;
  Selection sel;
  col.scan_in(&pv, 1, &sel);
  EXPECT_EQ(sel, (Selection{7}));
}

TEST(BytesColumn, EmptyStringIsAValueNotNull) {
  BytesColumn col(sql::ValueType::kText);
  col.append("");
  col.append_null();
  col.append("");
  col.append("x");
  col.seal(1 << 16);
  std::string_view probe = "";
  Selection sel;
  col.scan_in(&probe, 1, &sel);
  EXPECT_EQ(sel, (Selection{0, 2}));
}

// ------------------------------------------------------------ TableSegment

sql::Expr where_of(const std::string& select_sql) {
  auto stmt = std::get<sql::SelectStmt>(sql::parse_statement(select_sql));
  return *stmt.where;
}

class SegmentTest : public ::testing::Test {
 protected:
  SegmentTest() : dir_("wre_columnar"), db_(dir_.str()) {
    db_.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, city TEXT, zip INTEGER, "
        "payload BLOB)");
    const char* cities[] = {"rome", "oslo", "kiev"};
    for (int i = 0; i < 30; ++i) {
      sql::Row row{Value::int64(i), Value::text(cities[i % 3]),
                   i % 5 == 0 ? Value::null() : Value::int64(10000 + i % 4),
                   Value::blob(Bytes(20, static_cast<uint8_t>(i)))};
      db_.insert_batch("t", {row});
    }
  }

  std::shared_ptr<const TableSegment> build() {
    const sql::Table& t = db_.table("t");
    return TableSegment::build(t, t.mutation_version(), SegmentOptions{});
  }

  TempDir dir_;
  sql::Database db_;
};

TEST_F(SegmentTest, SelectMatchesRowPathForEveryQueryShape) {
  auto seg = build();
  ASSERT_EQ(seg->row_count(), 30u);
  const char* shapes[] = {
      "SELECT * FROM t WHERE city = 'rome'",
      "SELECT * FROM t WHERE zip IN (10001, 10003)",
      "SELECT * FROM t WHERE city = 'oslo' AND zip = 10001",
      "SELECT * FROM t WHERE city = 'kiev' OR zip = 10002",
      "SELECT * FROM t WHERE city = 'nowhere'",
  };
  for (const char* sql : shapes) {
    sql::Expr e = where_of(sql);
    Selection sel = seg->select(e);
    // Reference: evaluate the same predicate row-by-row on the heap.
    sql::ResultSet rs = db_.execute(sql);
    ASSERT_EQ(sel.size(), rs.rows.size()) << sql;
    for (size_t i = 0; i < sel.size(); ++i) {
      EXPECT_EQ(seg->materialize(sel[i], {0, 1, 2, 3}), rs.rows[i]) << sql;
      EXPECT_TRUE(seg->row_matches(e, sel[i])) << sql;
    }
  }
}

TEST_F(SegmentTest, CrossTypeProbesNeverMatch) {
  auto seg = build();
  // A text probe against the INTEGER zip column: sql_equals semantics say
  // no row matches, and the kernel must agree rather than coerce.
  Selection sel = seg->select(sql::Expr::equals("zip", Value::text("10001")));
  EXPECT_TRUE(sel.empty());
  sel = seg->select(sql::Expr::equals("city", Value::int64(0)));
  EXPECT_TRUE(sel.empty());
  sel = seg->select(sql::Expr::equals("city", Value::null()));
  EXPECT_TRUE(sel.empty());
}

TEST_F(SegmentTest, MaterializeRowsMatchesPerRowMaterialize) {
  auto seg = build();
  Selection sel = seg->select(where_of("SELECT * FROM t WHERE city = 'rome'"));
  std::vector<size_t> projection{1, 3, 2};
  std::vector<sql::Row> bulk;
  seg->materialize_rows(sel, projection, &bulk);
  ASSERT_EQ(bulk.size(), sel.size());
  for (size_t i = 0; i < sel.size(); ++i) {
    EXPECT_EQ(bulk[i], seg->materialize(sel[i], projection));
  }
}

TEST_F(SegmentTest, WireEncodeRowsIsByteIdenticalToValueEncoding) {
  auto seg = build();
  Selection sel = seg->select_all();
  std::vector<size_t> projection{0, 1, 2, 3};
  Bytes fast;
  seg->wire_encode_rows(sel, projection, &fast);

  net::WireWriter w;
  for (uint32_t row : sel) {
    w.row(seg->materialize(row, projection));
  }
  EXPECT_EQ(fast, w.bytes());
}

TEST_F(SegmentTest, PkLookup) {
  auto seg = build();
  for (int64_t pk : {0, 7, 29}) {
    auto row = seg->row_of_pk(pk);
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ(seg->pk_at(*row), pk);
  }
  EXPECT_FALSE(seg->row_of_pk(1234).has_value());
}

TEST_F(SegmentTest, EmptyTableSegment) {
  db_.execute("CREATE TABLE empty (id INTEGER PRIMARY KEY, v TEXT)");
  const sql::Table& t = db_.table("empty");
  auto seg = TableSegment::build(t, t.mutation_version(), SegmentOptions{});
  EXPECT_EQ(seg->row_count(), 0u);
  EXPECT_TRUE(seg->select_all().empty());
  EXPECT_TRUE(seg->select(sql::Expr::equals("v", Value::text("x"))).empty());
}

// ----------------------------------------------------- ColumnStoreManager

TEST(ColumnStoreManager, SnapshotCachesUntilMutation) {
  TempDir dir("wre_colmgr");
  sql::Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  db.insert_batch("t", {{Value::int64(1), Value::int64(10)},
                        {Value::int64(2), Value::int64(20)}});

  ColumnStoreManager mgr;
  auto s1 = mgr.snapshot(db.table("t"));
  auto s2 = mgr.snapshot(db.table("t"));
  EXPECT_EQ(s1.get(), s2.get());
  auto st = mgr.stats();
  EXPECT_EQ(st.builds, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.segments, 1u);
  EXPECT_GT(st.bytes, 0u);

  db.insert_batch("t", {{Value::int64(3), Value::int64(30)}});
  auto s3 = mgr.snapshot(db.table("t"));
  EXPECT_NE(s1.get(), s3.get());
  EXPECT_EQ(s3->row_count(), 3u);
  // The old snapshot is still readable: in-flight scans drain on it.
  EXPECT_EQ(s1->row_count(), 2u);
  st = mgr.stats();
  EXPECT_EQ(st.builds, 2u);
  EXPECT_EQ(st.rebuilds, 1u);

  mgr.prune("t", db.table("t").mutation_version());
  EXPECT_NE(mgr.cached("t"), nullptr);  // fresh: prune keeps it
  mgr.prune("t", db.table("t").mutation_version() + 1);
  EXPECT_EQ(mgr.cached("t"), nullptr);  // stale: dropped

  mgr.snapshot(db.table("t"));
  mgr.drop_all();
  EXPECT_EQ(mgr.stats().segments, 0u);
}

TEST(ColumnStoreManager, MinRowsGate) {
  TempDir dir("wre_colmgr");
  sql::Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  db.insert_batch("t", {{Value::int64(1), Value::int64(10)}});
  ColumnStoreOptions opt;
  opt.min_rows = 100;
  ColumnStoreManager mgr(opt);
  EXPECT_EQ(mgr.snapshot(db.table("t")), nullptr);
}

// --------------------------------------------------- Database integration

class ColumnarDbTest : public ::testing::Test {
 protected:
  ColumnarDbTest() : dir_("wre_coldb") {
    sql::DatabaseOptions opt;
    opt.columnar = true;
    db_ = std::make_unique<sql::Database>(dir_.str(), opt);
    db_->execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, city TEXT, zip INTEGER)");
    const char* cities[] = {"rome", "oslo", "kiev", "lima"};
    std::vector<sql::Row> rows;
    for (int i = 0; i < 40; ++i) {
      rows.push_back({Value::int64(i), Value::text(cities[i % 4]),
                      Value::int64(10000 + i % 3)});
    }
    db_->insert_batch("t", rows);
  }

  // Runs `sql` on both paths and requires identical results (and that the
  // columnar path actually engaged when `expect_columnar`).
  void check_both_paths(const std::string& sql, bool expect_columnar = true) {
    db_->set_columnar_enabled(false);
    sql::ResultSet row = db_->execute(sql);
    db_->set_columnar_enabled(true);
    sql::ResultSet col = db_->execute(sql);
    EXPECT_EQ(col.used_columnar, expect_columnar) << sql;
    EXPECT_EQ(row.columns, col.columns) << sql;
    EXPECT_EQ(row.rows, col.rows) << sql;
    EXPECT_EQ(row.rows_affected, col.rows_affected) << sql;
  }

  TempDir dir_;
  std::unique_ptr<sql::Database> db_;
};

TEST_F(ColumnarDbTest, ScanShapesMatchRowPath) {
  check_both_paths("SELECT * FROM t");
  check_both_paths("SELECT city FROM t WHERE zip = 10001");
  check_both_paths("SELECT id, zip FROM t WHERE city IN ('rome', 'lima')");
  check_both_paths("SELECT * FROM t WHERE city = 'oslo' AND zip = 10002");
  check_both_paths("SELECT * FROM t WHERE city = 'kiev' OR zip = 10000");
  check_both_paths("SELECT * FROM t WHERE city = 'nowhere'");
  check_both_paths("SELECT * FROM t LIMIT 7");
  check_both_paths("SELECT COUNT(*) FROM t WHERE city = 'rome'");
}

TEST_F(ColumnarDbTest, IndexedPlanStillWinsAndUsesColumnarFetch) {
  db_->execute("CREATE INDEX i_city ON t (city)");
  sql::ResultSet rs = db_->execute("SELECT * FROM t WHERE city = 'rome'");
  EXPECT_TRUE(rs.used_index);
  EXPECT_TRUE(rs.used_columnar);  // record fetch from the segment
  EXPECT_EQ(rs.heap_fetches, 0u);
  check_both_paths("SELECT * FROM t WHERE city = 'rome'", true);
}

TEST_F(ColumnarDbTest, ExplainNamesTheColumnarPlan) {
  sql::ResultSet rs = db_->execute("EXPLAIN SELECT * FROM t WHERE zip = 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_NE(rs.rows[0][0].as_text().find("columnar scan on t"),
            std::string::npos);
  db_->execute("CREATE INDEX i_city ON t (city)");
  rs = db_->execute("EXPLAIN SELECT * FROM t WHERE city = 'rome'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_NE(rs.rows[0][0].as_text().find(", columnar materialization"),
            std::string::npos);
}

TEST_F(ColumnarDbTest, MutationInvalidatesSegment) {
  db_->execute("SELECT * FROM t");  // builds the segment
  auto before = db_->column_store()->stats();
  db_->execute("INSERT INTO t VALUES (100, 'rome', 10000)");
  sql::ResultSet rs = db_->execute("SELECT * FROM t WHERE id = 100");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].as_text(), "rome");
  auto after = db_->column_store()->stats();
  EXPECT_GT(after.rebuilds, before.rebuilds);
}

TEST_F(ColumnarDbTest, ClearCacheDropsSegments) {
  db_->execute("SELECT * FROM t");
  EXPECT_GT(db_->column_store()->stats().segments, 0u);
  db_->clear_cache();
  EXPECT_EQ(db_->column_store()->stats().segments, 0u);
  check_both_paths("SELECT * FROM t");  // rebuilds cold and still matches
}

TEST_F(ColumnarDbTest, MinRowsKeepsSmallTablesOnRowPath) {
  sql::DatabaseOptions opt;
  opt.columnar = true;
  opt.columnar_min_rows = 1000;
  TempDir dir("wre_coldb_min");
  sql::Database db(dir.str(), opt);
  db.execute("CREATE TABLE s (id INTEGER PRIMARY KEY, v TEXT)");
  db.insert_batch("s", {{Value::int64(1), Value::text("a")}});
  sql::ResultSet rs = db.execute("SELECT * FROM s");
  EXPECT_FALSE(rs.used_columnar);
  ASSERT_EQ(rs.rows.size(), 1u);
}

// ------------------------------------------------------ Wire-path fast path

TEST_F(ColumnarDbTest, WireFastPathIsByteIdenticalToEncodedResultSet) {
  const char* shapes[] = {
      "SELECT * FROM t",
      "SELECT city, id FROM t WHERE zip IN (10000, 10002)",
      "SELECT * FROM t LIMIT 5",
  };
  for (const char* sql : shapes) {
    Bytes fast;
    ASSERT_TRUE(db_->execute_sql_wire(sql, &fast)) << sql;
    net::WireWriter w;
    net::encode_result_set(db_->execute(sql), w);
    EXPECT_EQ(fast, w.bytes()) << sql;
  }
}

TEST_F(ColumnarDbTest, WireFastPathDeclinesWhatItCannotServe) {
  Bytes out;
  // Non-SELECT, EXPLAIN and COUNT(*) fall back to the general executor.
  EXPECT_FALSE(db_->execute_sql_wire("INSERT INTO t VALUES (200, 'x', 1)",
                                     &out));
  EXPECT_FALSE(db_->execute_sql_wire("EXPLAIN SELECT * FROM t", &out));
  EXPECT_FALSE(db_->execute_sql_wire("SELECT COUNT(*) FROM t", &out));
  // An indexed probe plan wins over the columnar scan.
  db_->execute("CREATE INDEX i_city ON t (city)");
  EXPECT_FALSE(db_->execute_sql_wire(
      "SELECT * FROM t WHERE city = 'rome'", &out));
  // Columnar off: never engages.
  db_->set_columnar_enabled(false);
  EXPECT_FALSE(db_->execute_sql_wire("SELECT * FROM t", &out));
  db_->set_columnar_enabled(true);
  EXPECT_TRUE(out.empty());  // every decline left the buffer untouched
}

}  // namespace
}  // namespace wre::columnar
