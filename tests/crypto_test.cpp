#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/crypto/aes.h"
#include "src/crypto/aes_ctr.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/cpu_features.h"
#include "src/crypto/hkdf.h"
#include "src/crypto/hmac_sha256.h"
#include "src/crypto/keys.h"
#include "src/crypto/prf.h"
#include "src/crypto/prs.h"
#include "src/crypto/secure_random.h"
#include "src/crypto/sha256.h"
#include "src/util/error.h"

namespace wre::crypto {
namespace {

std::string hex_of(ByteView data) { return to_hex(data); }

template <size_t N>
std::string hex_of(const std::array<uint8_t, N>& a) {
  return to_hex(ByteView(a.data(), a.size()));
}

// Runs every known-answer test under both dispatch settings: hardware
// kernels allowed (param true — falls back to scalar on CPUs without the
// extensions) and scalar forced (param false — what WRE_DISABLE_HWCRYPTO=1
// selects at startup). Either way the answers must be bit-identical.
class CryptoKatBothPaths : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { prev_ = set_hwcrypto_enabled(GetParam()); }
  void TearDown() override { set_hwcrypto_enabled(prev_); }

 private:
  bool prev_ = true;
};

INSTANTIATE_TEST_SUITE_P(Dispatch, CryptoKatBothPaths, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Hardware" : "ForcedScalar";
                         });

// NIST CAVP vectors (SHA256ShortMsg.rsp, HMAC.rsp L=32, SP 800-38A CTR),
// pinned against both kernel paths.

TEST_P(CryptoKatBothPaths, Sha256CavpShortMsgLen8) {
  EXPECT_EQ(hex_of(Sha256::digest(from_hex("d3"))),
            "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1");
}

TEST_P(CryptoKatBothPaths, Sha256CavpShortMsgLen512) {
  Bytes msg = from_hex(
      "5a86b737eaea8ee976a0a24da63e7ed7eefad18a101c1211e2b3650c5187c2a8"
      "a650547208251f6d4237e661c7bf4c77f335390394c37fa1a9f9be836ac28509");
  EXPECT_EQ(hex_of(Sha256::digest(msg)),
            "42e61e174fbb3897d6dd6cef3dd2802fe67b331953b06114a65c772859dfc1aa");
}

TEST_P(CryptoKatBothPaths, Sha256Fips180Abc) {
  EXPECT_EQ(hex_of(Sha256::digest(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST_P(CryptoKatBothPaths, HmacSha256CavpCount30) {
  Bytes key = from_hex(
      "9779d9120642797f1747025d5b22b7ac607cab08e1758f2f3a46c8be1e25c53b"
      "8c6a8f58ffefa176");
  Bytes msg = from_hex(
      "b1689c2591eaf3c9e66070f8a77954ffb81749f1b00346f9dfe0b2ee905dcc28"
      "8baf4a92de3f4001dd9f44c468c3d07d6c6ee82faceafc97c2fc0fc0601719d2"
      "dcd0aa2aec92d1b0ae933c65eb06a03c9c935c2bad0459810241347ab87e9f11"
      "adb30415424c6c7f5f22a003b8ab8de54f6ded0e3ab9245fa79568451dfa258e");
  EXPECT_EQ(hex_of(HmacSha256::mac(key, msg)),
            "769f00d3e6a6cc1fb426a14a4f76c6462e6149726e0dee0ec0cf97a16605ac8b");
}

TEST_P(CryptoKatBothPaths, HmacSha256Rfc4231Case2) {
  EXPECT_EQ(hex_of(HmacSha256::mac(to_bytes("Jefe"),
                                   to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST_P(CryptoKatBothPaths, AesCtrSp80038aF51Aes128) {
  AesCtr ctr(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes nonce = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  EXPECT_EQ(to_hex(ctr.transform(pt, nonce.data())),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST_P(CryptoKatBothPaths, AesCtrSp80038aF53Aes192) {
  AesCtr ctr(from_hex("8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b"));
  Bytes nonce = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  EXPECT_EQ(to_hex(ctr.transform(pt, nonce.data())),
            "1abc932417521ca24f2b0459fe7e6e0b"
            "090339ec0aa6faefd5ccc2c6f4ce8e94"
            "1e36b26bd1ebc670d1bd1d665620abf7"
            "4f78a7f6d29809585a97daec58c6b050");
}

TEST_P(CryptoKatBothPaths, AesCtrSp80038aF55Aes256) {
  AesCtr ctr(from_hex(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4"));
  Bytes nonce = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  EXPECT_EQ(to_hex(ctr.transform(pt, nonce.data())),
            "601ec313775789a5b7a7f504bbf3d228"
            "f443e3ca4d62b59aca84e990cacaf5c5"
            "2b0930daa23de94ce87017ba2d84988d"
            "dfc9c58db67aada613c2dd08457941a6");
}

TEST_P(CryptoKatBothPaths, Aes128Fips197Block) {
  Aes aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  uint8_t ct[16], back[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex_of(ByteView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.decrypt_block(ct, back);
  EXPECT_EQ(hex_of(ByteView(back, 16)), to_hex(pt));
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, EmptyMessage) {
  EXPECT_EQ(hex_of(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(Sha256::digest(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(Sha256::digest(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_of(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes data = to_bytes("the quick brown fox jumps over the lazy dog etc");
  for (size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.update(ByteView(data.data(), split));
    h.update(ByteView(data.data() + split, data.size() - split));
    EXPECT_EQ(hex_of(h.finish()), hex_of(Sha256::digest(data)));
  }
}

TEST(Sha256, BoundaryLengths) {
  // Padding boundary cases: 55, 56, 63, 64, 65 bytes.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    Bytes data(len, 'x');
    Sha256 a;
    a.update(data);
    // Byte-at-a-time must agree.
    Sha256 b;
    for (uint8_t byte : data) b.update(ByteView(&byte, 1));
    EXPECT_EQ(hex_of(a.finish()), hex_of(b.finish())) << "len=" << len;
  }
}

// ----------------------------------------------------------- HMAC-SHA-256

TEST(HmacSha256, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(hex_of(HmacSha256::mac(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(hex_of(HmacSha256::mac(to_bytes("Jefe"),
                                   to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(hex_of(HmacSha256::mac(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6OversizedKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(hex_of(HmacSha256::mac(
                key, to_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, IncrementalMatchesOneShot) {
  Bytes key = to_bytes("test key");
  HmacSha256 h(key);
  h.update(to_bytes("part one "));
  h.update(to_bytes("part two"));
  EXPECT_EQ(hex_of(h.finish()),
            hex_of(HmacSha256::mac(key, to_bytes("part one part two"))));
}

// ------------------------------------------------------------------- AES

TEST(Aes, Fips197Aes128) {
  Aes aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex_of(ByteView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(hex_of(ByteView(back, 16)), to_hex(pt));
}

TEST(Aes, Fips197Aes192) {
  Aes aes(from_hex("000102030405060708090a0b0c0d0e0f1011121314151617"));
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex_of(ByteView(ct, 16)), "dda97ca4864cdfe06eaf70a0ec0d7191");
  uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(hex_of(ByteView(back, 16)), to_hex(pt));
}

TEST(Aes, Fips197Aes256) {
  Aes aes(from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex_of(ByteView(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
  uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(hex_of(ByteView(back, 16)), to_hex(pt));
}

TEST(Aes, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(15)), CryptoError);
  EXPECT_THROW(Aes(Bytes(33)), CryptoError);
  EXPECT_THROW(Aes(Bytes(0)), CryptoError);
}

TEST(Aes, EncryptDecryptRoundTripRandomKeys) {
  SecureRandom rng = SecureRandom::for_testing(7);
  for (size_t key_len : {16u, 24u, 32u}) {
    Aes aes(rng.bytes(key_len));
    for (int i = 0; i < 20; ++i) {
      Bytes pt = rng.bytes(16);
      uint8_t ct[16], back[16];
      aes.encrypt_block(pt.data(), ct);
      aes.decrypt_block(ct, back);
      EXPECT_EQ(Bytes(back, back + 16), pt);
    }
  }
}

// --------------------------------------------------------------- AES-CTR

TEST(AesCtr, Sp80038aF51) {
  // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt.
  AesCtr ctr(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes nonce = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  Bytes ct = ctr.transform(pt, nonce.data());
  EXPECT_EQ(to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(AesCtr, RoundTripWithRandomNonce) {
  SecureRandom rng = SecureRandom::for_testing(11);
  AesCtr ctr(rng.bytes(32));
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1000u}) {
    Bytes pt = rng.bytes(len);
    Bytes ct = ctr.encrypt(pt, rng);
    EXPECT_EQ(ct.size(), len + AesCtr::kNonceSize);
    EXPECT_EQ(ctr.decrypt(ct), pt);
  }
}

TEST(AesCtr, EqualPlaintextsEncryptDifferently) {
  SecureRandom rng = SecureRandom::for_testing(12);
  AesCtr ctr(rng.bytes(32));
  Bytes pt = to_bytes("same message");
  EXPECT_NE(ctr.encrypt(pt, rng), ctr.encrypt(pt, rng));
}

TEST(AesCtr, CounterRollsOverAcrossBlockBoundary) {
  // A nonce of all 0xff forces the 128-bit counter to wrap between the
  // first and second block; transform must still be an involution.
  SecureRandom rng = SecureRandom::for_testing(21);
  AesCtr ctr(rng.bytes(32));
  Bytes nonce(16, 0xff);
  Bytes pt = rng.bytes(100);
  Bytes ct = ctr.transform(pt, nonce.data());
  EXPECT_NE(ct, pt);
  EXPECT_EQ(ctr.transform(ct, nonce.data()), pt);
  // The second keystream block (post-wrap) must differ from the first.
  EXPECT_NE(Bytes(ct.begin(), ct.begin() + 16),
            Bytes(ct.begin() + 16, ct.begin() + 32));
}

TEST(AesCtr, DecryptRejectsTruncated) {
  SecureRandom rng = SecureRandom::for_testing(13);
  AesCtr ctr(rng.bytes(16));
  EXPECT_THROW(ctr.decrypt(Bytes(8)), CryptoError);
}

// -------------------------------------------------------------- ChaCha20

TEST(ChaCha20, Rfc8439Example) {
  Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = from_hex("000000000000004a00000000");
  ChaCha20 stream(key, nonce, 1);
  Bytes pt = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  Bytes ct = stream.transform(pt);
  EXPECT_EQ(to_hex(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, RejectsBadSizes) {
  EXPECT_THROW(ChaCha20(Bytes(16), Bytes(12)), CryptoError);
  EXPECT_THROW(ChaCha20(Bytes(32), Bytes(8)), CryptoError);
}

// ------------------------------------------------------------------ HKDF

TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = from_hex("000102030405060708090a0b0c");
  Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  Bytes prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  Bytes okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ExpandRejectsHugeLength) {
  Bytes prk(32, 1);
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), CryptoError);
}

TEST(Hkdf, DistinctInfosYieldIndependentKeys) {
  Bytes master(32, 0x42);
  Bytes a = hkdf(to_bytes("salt"), master, to_bytes("context-a"), 32);
  Bytes b = hkdf(to_bytes("salt"), master, to_bytes("context-b"), 32);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------- TagPrf

TEST(TagPrf, DeterministicPerKey) {
  TagPrf prf(to_bytes("key-1"));
  EXPECT_EQ(prf.tag(3, to_bytes("alice")), prf.tag(3, to_bytes("alice")));
}

TEST(TagPrf, SaltSeparatesTags) {
  TagPrf prf(to_bytes("key-1"));
  EXPECT_NE(prf.tag(0, to_bytes("alice")), prf.tag(1, to_bytes("alice")));
}

TEST(TagPrf, MessageSeparatesTags) {
  TagPrf prf(to_bytes("key-1"));
  EXPECT_NE(prf.tag(0, to_bytes("alice")), prf.tag(0, to_bytes("bob")));
}

TEST(TagPrf, KeySeparatesTags) {
  TagPrf a(to_bytes("key-1"));
  TagPrf b(to_bytes("key-2"));
  EXPECT_NE(a.tag(0, to_bytes("alice")), b.tag(0, to_bytes("alice")));
}

TEST(TagPrf, LengthAmbiguityResolved) {
  // (salt=0x6261, "t") must not collide with (salt=0x61, "bt")-style
  // packings; the length prefix forces distinct PRF inputs.
  TagPrf prf(to_bytes("key-1"));
  std::set<Tag> tags;
  tags.insert(prf.tag(0x61, to_bytes("bt")));
  tags.insert(prf.tag(0x6261, to_bytes("t")));
  tags.insert(prf.tag(0, to_bytes("abt")));
  EXPECT_EQ(tags.size(), 3u);
}

TEST(TagPrf, BucketTagIndependentOfMessageTag) {
  TagPrf prf(to_bytes("key-1"));
  EXPECT_NE(prf.bucket_tag(7), prf.tag(7, {}));
}

TEST(Sha256, MidstateResumeMatchesStraightThrough) {
  Bytes prefix(64, 0x36);
  Bytes tail = to_bytes("suffix data of arbitrary length");
  Sha256 a;
  a.update(prefix);
  Sha256 b(a.midstate());
  a.update(tail);
  b.update(tail);
  EXPECT_EQ(hex_of(a.finish()), hex_of(b.finish()));
}

TEST(Sha256, MidstateRejectsPartialBlock) {
  Sha256 h;
  h.update(to_bytes("short"));
  EXPECT_THROW(h.midstate(), CryptoError);
}

TEST(HmacSha256, PrecomputedKeyMatchesRawKey) {
  SecureRandom rng = SecureRandom::for_testing(31);
  for (size_t key_len : {0u, 1u, 32u, 64u, 65u, 131u}) {
    Bytes key = rng.bytes(key_len);
    HmacSha256::Key mid(key);
    for (size_t msg_len : {0u, 17u, 64u, 200u}) {
      Bytes msg = rng.bytes(msg_len);
      EXPECT_EQ(hex_of(HmacSha256::mac(mid, msg)),
                hex_of(HmacSha256::mac(key, msg)))
          << "key_len=" << key_len << " msg_len=" << msg_len;
    }
  }
}

TEST(TagPrf, BatchedTagsMatchSingles) {
  TagPrf prf(to_bytes("batch-key"));
  Bytes msg = to_bytes("alice");
  std::vector<uint64_t> salts;
  for (uint64_t s = 0; s < 100; ++s) salts.push_back(s * 31 + 7);
  std::vector<Tag> batch = prf.tags(salts, msg);
  ASSERT_EQ(batch.size(), salts.size());
  for (size_t i = 0; i < salts.size(); ++i) {
    EXPECT_EQ(batch[i], prf.tag(salts[i], msg)) << "i=" << i;
  }
}

TEST(TagPrf, BatchedBucketTagsMatchSingles) {
  TagPrf prf(to_bytes("batch-key"));
  std::vector<uint64_t> salts = {0, 1, 2, 1000, ~uint64_t{0}};
  std::vector<Tag> batch = prf.bucket_tags(salts);
  ASSERT_EQ(batch.size(), salts.size());
  for (size_t i = 0; i < salts.size(); ++i) {
    EXPECT_EQ(batch[i], prf.bucket_tag(salts[i])) << "i=" << i;
  }
}

TEST(TagPrf, TagsLookUniform) {
  TagPrf prf(to_bytes("spread"));
  std::unordered_set<Tag> seen;
  for (uint64_t s = 0; s < 10000; ++s) seen.insert(prf.bucket_tag(s));
  EXPECT_EQ(seen.size(), 10000u);  // no collisions in 10^4 draws
}

// ------------------------------------------------------------------- PRS

TEST(Prs, PermutationIsValidAndDeterministic) {
  PseudoRandomShuffle prs(to_bytes("key"), to_bytes("ctx"));
  auto p1 = prs.permutation(100);
  auto p2 = prs.permutation(100);
  EXPECT_EQ(p1, p2);
  std::set<size_t> unique(p1.begin(), p1.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(Prs, KeyAndContextChangePermutation) {
  auto p1 = PseudoRandomShuffle(to_bytes("k1"), to_bytes("c")).permutation(50);
  auto p2 = PseudoRandomShuffle(to_bytes("k2"), to_bytes("c")).permutation(50);
  auto p3 = PseudoRandomShuffle(to_bytes("k1"), to_bytes("d")).permutation(50);
  EXPECT_NE(p1, p2);
  EXPECT_NE(p1, p3);
}

TEST(Prs, ApplyShufflesInPlace) {
  PseudoRandomShuffle prs(to_bytes("key"), to_bytes("ctx"));
  std::vector<std::string> items = {"a", "b", "c", "d", "e", "f", "g", "h"};
  auto original = items;
  prs.apply(items);
  EXPECT_NE(items, original);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

// ---------------------------------------------------------- SecureRandom

TEST(SecureRandom, SeededStreamsAreReproducible) {
  auto a = SecureRandom::for_testing(9);
  auto b = SecureRandom::for_testing(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SecureRandom, DifferentSeedsDiffer) {
  auto a = SecureRandom::for_testing(1);
  auto b = SecureRandom::for_testing(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(SecureRandom, FillCoversRequestedLength) {
  auto rng = SecureRandom::for_testing(3);
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 200u}) {
    EXPECT_EQ(rng.bytes(n).size(), n);
  }
}

TEST(SecureRandom, NextBelowRespectsBound) {
  auto rng = SecureRandom::for_testing(4);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(SecureRandom, ExponentialMeanMatches) {
  auto rng = SecureRandom::for_testing(5);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

// ------------------------------------------------------------- KeyBundle

TEST(KeyBundle, DerivedKeysAreDistinctAndStable) {
  Bytes master(32, 0x11);
  KeyBundle a = KeyBundle::derive(master);
  KeyBundle b = KeyBundle::derive(master);
  EXPECT_EQ(a.payload_key, b.payload_key);
  EXPECT_EQ(a.tag_key, b.tag_key);
  EXPECT_EQ(a.shuffle_key, b.shuffle_key);
  EXPECT_NE(a.payload_key, a.tag_key);
  EXPECT_NE(a.tag_key, a.shuffle_key);
  EXPECT_EQ(a.payload_key.size(), 32u);
}

TEST(KeyBundle, DifferentMastersDiffer) {
  KeyBundle a = KeyBundle::derive(Bytes(32, 0x01));
  KeyBundle b = KeyBundle::derive(Bytes(32, 0x02));
  EXPECT_NE(a.payload_key, b.payload_key);
}

}  // namespace
}  // namespace wre::crypto
