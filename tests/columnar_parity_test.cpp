// Randomized columnar/row parity suites (DESIGN.md §5.9): every query
// class the engine accepts — equality, IN, AND/OR trees, bucketized
// ranges, select_star — executed on both the row path and the columnar
// path with identical results required, over plain SQL tables, encrypted
// WRE tables, and multi-tenant shared tables from core::TenantPool.
//
// The last suite (ExternalColumnar) targets a `wre_server --columnar`
// process started by the harness (scripts/columnar_smoke.sh): it
// activates only when WRE_SERVER_PORT is set and is skipped otherwise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/encrypted_client.h"
#include "src/core/tenant.h"
#include "src/core/transport.h"
#include "src/net/remote_connection.h"
#include "src/sql/database.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace wre {
namespace {

using sql::Value;
using wre::testing::TempDir;

Bytes fixed_master() { return Bytes(32, 0x42); }

// --------------------------------------------------------------------------
// Randomized plain-SQL parity: no indexes, so every predicate plans as a
// columnar scan when the store is on and a sequential scan when it is off.

class RandomSqlParity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSqlParity, EveryGeneratedQueryMatchesRowPath) {
  Xoshiro256 rng(GetParam());
  TempDir dir("wre_colparity");
  sql::DatabaseOptions opt;
  opt.columnar = true;
  sql::Database db(dir.str(), opt);
  db.execute(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, a TEXT, b INTEGER, c TEXT, "
      "d INTEGER)");

  // a/b: low-cardinality (dictionary layout), c: unique-ish (plain
  // layout), d: low-cardinality with NULLs.
  const char* a_vals[] = {"rome", "oslo", "kiev", "lima", "bonn"};
  std::vector<sql::Row> rows;
  const int64_t n_rows = 200 + static_cast<int64_t>(rng.next_below(100));
  for (int64_t i = 0; i < n_rows; ++i) {
    rows.push_back(
        {Value::int64(i), Value::text(a_vals[rng.next_below(5)]),
         Value::int64(static_cast<int64_t>(rng.next_below(8))),
         Value::text("u" + std::to_string(rng.next_below(1u << 30))),
         rng.next_below(10) == 0
             ? Value::null()
             : Value::int64(static_cast<int64_t>(rng.next_below(6)))});
  }
  db.insert_batch("t", rows);
  // Half the seeds get an index on `a`, covering the indexed plan with
  // columnar record-fetch; the rest stay pure columnar scans.
  if (GetParam() % 2 == 0) db.execute("CREATE INDEX i_a ON t (a)");

  auto random_leaf = [&]() -> std::string {
    switch (rng.next_below(4)) {
      case 0:
        return "a = '" + std::string(a_vals[rng.next_below(5)]) + "'";
      case 1:
        return "b = " + std::to_string(rng.next_below(10));
      case 2: {
        std::string in = "a IN (";
        size_t k = 1 + rng.next_below(3);
        for (size_t j = 0; j < k; ++j) {
          if (j) in += ", ";
          in += "'" + std::string(a_vals[rng.next_below(5)]) + "'";
        }
        return in + ")";
      }
      default:
        return "d = " + std::to_string(rng.next_below(7));
    }
  };

  for (int q = 0; q < 60; ++q) {
    std::string sql = rng.next_below(4) == 0 ? "SELECT a, id FROM t"
                                             : "SELECT * FROM t";
    switch (rng.next_below(4)) {
      case 0:
        break;  // unfiltered select_star
      case 1:
        sql += " WHERE " + random_leaf();
        break;
      case 2:
        sql += " WHERE " + random_leaf() + " AND " + random_leaf();
        break;
      default:
        sql += " WHERE " + random_leaf() + " OR " + random_leaf();
        break;
    }
    if (rng.next_below(3) == 0) {
      sql += " LIMIT " + std::to_string(rng.next_below(50));
    }
    db.set_columnar_enabled(false);
    sql::ResultSet row_rs = db.execute(sql);
    db.set_columnar_enabled(true);
    sql::ResultSet col_rs = db.execute(sql);
    ASSERT_EQ(row_rs.columns, col_rs.columns) << sql;
    ASSERT_EQ(row_rs.rows, col_rs.rows) << sql;
    ASSERT_EQ(row_rs.rows_affected, col_rs.rows_affected) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSqlParity,
                         ::testing::Values(1u, 2u, 3u, 4u));

// --------------------------------------------------------------------------
// WRE query classes through an EncryptedConnection: equality, IN,
// multi-column AND, bucketized ranges, select_star — the decrypted results
// must be independent of the server's scan path.

TEST(WreColumnarParity, AllQueryClassesMatchRowPath) {
  TempDir dir("wre_colwre");
  sql::DatabaseOptions opt;
  opt.columnar = true;
  sql::Database db(dir.str(), opt);
  core::LocalTransport transport(db);
  core::EncryptedConnection conn(transport, fixed_master());

  sql::Schema logical({sql::Column{"id", sql::ValueType::kInt64, true},
                       sql::Column{"city", sql::ValueType::kText},
                       sql::Column{"team", sql::ValueType::kText},
                       sql::Column{"salary", sql::ValueType::kInt64}});
  std::vector<core::EncryptedColumnSpec> specs{
      {"city", core::SaltMethod::kPoisson, 32},
      {"team", core::SaltMethod::kPoisson, 32}};
  std::map<std::string, core::PlaintextDistribution> dists;
  dists.emplace("city", core::PlaintextDistribution::from_probabilities(
                            {{"rome", 0.4}, {"oslo", 0.35}, {"kiev", 0.25}}));
  dists.emplace("team", core::PlaintextDistribution::from_probabilities(
                            {{"red", 0.5}, {"blue", 0.5}}));
  std::vector<core::RangeColumnSpec> range_specs{
      core::RangeColumnSpec{"salary", 0, 100000, 16}};
  conn.create_table("people", logical, specs, dists, range_specs);

  Xoshiro256 rng(99);
  const char* cities[] = {"rome", "oslo", "kiev"};
  const char* teams[] = {"red", "blue"};
  std::vector<sql::Row> rows;
  for (int64_t i = 0; i < 150; ++i) {
    rows.push_back({Value::int64(i), Value::text(cities[rng.next_below(3)]),
                    Value::text(teams[rng.next_below(2)]),
                    Value::int64(static_cast<int64_t>(rng.next_below(100000)))});
  }
  conn.insert_bulk("people", rows);

  auto sorted_ids = [](std::vector<int64_t> ids) {
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  auto sorted_rows = [](std::vector<sql::Row> rs) {
    std::sort(rs.begin(), rs.end(),
              [](const sql::Row& x, const sql::Row& y) {
                return x[0].as_int64() < y[0].as_int64();
              });
    return rs;
  };

  // One probe per query class; each runs on the row path first, then on
  // the columnar path, and must decrypt to the same logical result.
  auto run_all = [&](bool columnar) {
    db.set_columnar_enabled(columnar);
    struct Results {
      std::vector<int64_t> eq_ids, in_ids;
      std::vector<sql::Row> star, conj, range;
    } r;
    r.eq_ids = sorted_ids(conn.select_ids("people", "city", "rome").ids);
    r.in_ids = sorted_ids(
        conn.select_ids_in("people", "city", {"oslo", "kiev"}).ids);
    r.star = sorted_rows(conn.select_star("people", "team", "red").rows);
    r.conj = sorted_rows(
        conn.select_star_and("people", {{"city", Value::text("rome")},
                                        {"team", Value::text("blue")}})
            .rows);
    r.range = sorted_rows(
        conn.select_star_range("people", "salary", 20000, 60000).rows);
    return r;
  };
  auto row_r = run_all(false);
  auto col_r = run_all(true);
  EXPECT_EQ(row_r.eq_ids, col_r.eq_ids);
  EXPECT_EQ(row_r.in_ids, col_r.in_ids);
  EXPECT_EQ(row_r.star, col_r.star);
  EXPECT_EQ(row_r.conj, col_r.conj);
  EXPECT_EQ(row_r.range, col_r.range);

  // And against ground truth: the plaintext rows we inserted.
  std::vector<int64_t> expect_eq;
  for (const auto& row : rows) {
    if (row[1].as_text() == "rome") expect_eq.push_back(row[0].as_int64());
  }
  EXPECT_EQ(col_r.eq_ids, expect_eq);
  for (const auto& row : col_r.range) {
    EXPECT_GE(row[3].as_int64(), 20000);
    EXPECT_LE(row[3].as_int64(), 60000);
  }
}

// --------------------------------------------------------------------------
// Multi-tenant: per-tenant views of one shared physical table must stay
// isolated and identical across scan paths.

TEST(WreColumnarParity, TenantPoolMatchesRowPathAndStaysIsolated) {
  TempDir dir("wre_coltenant");
  sql::DatabaseOptions opt;
  opt.columnar = true;
  sql::Database db(dir.str(), opt);
  core::LocalTransport transport(db);

  core::TenantTableConfig cfg;
  cfg.table = "shared";
  cfg.logical = sql::Schema({sql::Column{"id", sql::ValueType::kInt64, true},
                             sql::Column{"city", sql::ValueType::kText}});
  cfg.specs.push_back(
      core::EncryptedColumnSpec{"city", core::SaltMethod::kPoisson, 8});
  cfg.distributions.emplace(
      "city", core::PlaintextDistribution::from_probabilities(
                  {{"rome", 0.5}, {"oslo", 0.3}, {"lima", 0.2}}));
  core::TenantPool pool(transport, fixed_master(), cfg);

  const std::vector<std::string> values = {"rome", "oslo", "lima"};
  for (uint64_t t = 0; t < 3; ++t) {
    auto& conn = pool.connection(t);
    for (int64_t i = 0; i < 12; ++i) {
      conn.insert("shared",
                  {Value::int64(static_cast<int64_t>(t) * 100 + i),
                   Value::text(values[static_cast<size_t>(i) % 3])});
    }
  }

  for (uint64_t t = 0; t < 3; ++t) {
    auto& conn = pool.connection(t);
    for (const auto& v : values) {
      db.set_columnar_enabled(false);
      auto row_ids = conn.select_ids("shared", "city", v).ids;
      auto row_star = conn.select_star("shared", "city", v).rows;
      db.set_columnar_enabled(true);
      EXPECT_EQ(conn.select_ids("shared", "city", v).ids, row_ids)
          << "tenant " << t << " value " << v;
      EXPECT_EQ(conn.select_star("shared", "city", v).rows, row_star);
      // Isolation survives the columnar path: only this tenant's ids.
      for (int64_t id : row_ids) {
        EXPECT_GE(id, static_cast<int64_t>(t) * 100);
        EXPECT_LT(id, static_cast<int64_t>(t) * 100 + 12);
      }
    }
  }
}

// --------------------------------------------------------------------------
// External-server mode: drives a `wre_server --columnar` process on
// 127.0.0.1:$WRE_SERVER_PORT (the columnar-smoke CI job). The gate is
// remote-vs-local parity: everything the columnar server returns must
// decrypt to exactly the plaintext this test inserted.

class ExternalColumnarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* port = std::getenv("WRE_SERVER_PORT");
    if (port == nullptr) {
      GTEST_SKIP() << "WRE_SERVER_PORT not set; columnar smoke mode only";
    }
    port_ = static_cast<uint16_t>(std::stoi(port));
  }

  uint16_t port_ = 0;
};

TEST_F(ExternalColumnarTest, ColumnarServerMatchesLocalRowPath) {
  net::RemoteConnection remote("127.0.0.1", port_);
  remote.ping();
  core::EncryptedConnection conn(remote, fixed_master());

  sql::Schema logical({sql::Column{"id", sql::ValueType::kInt64, true},
                       sql::Column{"city", sql::ValueType::kText}});
  std::vector<core::EncryptedColumnSpec> specs{
      {"city", core::SaltMethod::kPoisson, 16}};
  std::map<std::string, core::PlaintextDistribution> dists;
  dists.emplace("city", core::PlaintextDistribution::from_probabilities(
                            {{"rome", 0.4}, {"oslo", 0.35}, {"kiev", 0.25}}));
  conn.create_table("colsmoke", logical, specs, dists);

  const char* cities[] = {"rome", "oslo", "kiev"};
  std::vector<sql::Row> rows;
  for (int64_t i = 0; i < 120; ++i) {
    rows.push_back({Value::int64(i), Value::text(cities[i % 3])});
  }
  conn.insert_bulk("colsmoke", rows);

  // Local row-path replay: an independent database ingesting the same
  // plaintext under the same secret. Every remote answer (served by the
  // columnar store) must equal the local row-path answer.
  TempDir dir("wre_colsmoke_local");
  sql::Database local_db(dir.str());  // columnar off: pure row path
  core::LocalTransport local_transport(local_db);
  core::EncryptedConnection local(local_transport, fixed_master());
  local.create_table("colsmoke", logical, specs, dists);
  local.insert_bulk("colsmoke", rows);

  auto sorted_ids = [](std::vector<int64_t> ids) {
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  for (const char* c : cities) {
    EXPECT_EQ(sorted_ids(conn.select_ids("colsmoke", "city", c).ids),
              sorted_ids(local.select_ids("colsmoke", "city", c).ids))
        << c;
    auto star = conn.select_star("colsmoke", "city", c);
    EXPECT_EQ(star.rows.size(), 40u) << c;
    for (const auto& row : star.rows) EXPECT_EQ(row[1].as_text(), c);
  }

  // Full-table scans hit the server's wire fast path; two runs (cold
  // segment build, then cached) must agree with each other and with the
  // local row count.
  sql::ResultSet first = remote.execute("SELECT * FROM colsmoke");
  sql::ResultSet second = remote.execute("SELECT * FROM colsmoke");
  EXPECT_EQ(first.columns, second.columns);
  EXPECT_EQ(first.rows, second.rows);
  EXPECT_EQ(first.rows.size(),
            local_db.execute("SELECT * FROM colsmoke").rows.size());
}

}  // namespace
}  // namespace wre
