// Golden-vector tests: pin every keyed derivation that reaches persistent
// storage. If any of these change, databases written by previous builds
// become unsearchable — a format break that must be deliberate (bump the
// derivation labels, e.g. "wre-key-derivation-v1" -> v2, and migrate).
#include <gtest/gtest.h>

#include "src/core/salts.h"
#include "src/crypto/keys.h"
#include "src/crypto/prf.h"
#include "src/crypto/prs.h"

namespace wre {
namespace {

crypto::KeyBundle golden_keys() {
  return crypto::KeyBundle::derive(Bytes(32, 0x42));
}

TEST(Golden, KeyBundleDerivation) {
  auto keys = golden_keys();
  EXPECT_EQ(to_hex(keys.payload_key),
            "ada40a813b73a2d1f291841580f41bd91d762a9a31fa691ed79ef707c2d8b7a2");
  EXPECT_EQ(to_hex(keys.tag_key),
            "9a9b20bdc36f2080d4357beb1ac7a215396ab580a4999605047a74e8b5506f21");
  EXPECT_EQ(to_hex(keys.shuffle_key),
            "7fc238c1c4d620f6933283b39a5f4f7e9f1740287839c24c5bb3349e365cfddc");
}

TEST(Golden, TagDerivations) {
  crypto::TagPrf prf(golden_keys().tag_key);
  EXPECT_EQ(prf.tag(7, to_bytes("alice")), 10795810256718709864ULL);
  EXPECT_EQ(prf.bucket_tag(7), 8275187307937391664ULL);
  EXPECT_EQ(prf.range_tag(7), 4246672761708013599ULL);
}

TEST(Golden, PoissonSaltLayout) {
  // The pseudorandom salt layout must be stable: search tags written under
  // an old build must stay reachable.
  auto dist = core::PlaintextDistribution::from_probabilities(
      {{"a", 0.5}, {"b", 0.5}});
  core::PoissonSaltAllocator alloc(dist, 10, golden_keys().shuffle_key);
  auto s = alloc.salts_for("a");
  ASSERT_EQ(s.salts.size(), 5u);
  EXPECT_NEAR(s.weights[0], 0.059020230113311277, 1e-15);
}

TEST(Golden, BucketizedLayout) {
  auto dist = core::PlaintextDistribution::from_probabilities(
      {{"a", 0.5}, {"b", 0.5}});
  core::BucketizedPoissonAllocator alloc(dist, 10, golden_keys().shuffle_key,
                                         to_bytes("ctx"));
  ASSERT_EQ(alloc.bucket_count(), 12u);
  EXPECT_NEAR(alloc.bucket_width(0), 0.0067661815982060182, 1e-15);
}

TEST(Golden, PseudoRandomShufflePermutation) {
  crypto::PseudoRandomShuffle prs(golden_keys().shuffle_key, to_bytes("ctx"));
  EXPECT_EQ(prs.permutation(8),
            (std::vector<size_t>{4, 5, 6, 0, 7, 3, 2, 1}));
}

}  // namespace
}  // namespace wre
