// Golden-vector tests: pin every keyed derivation that reaches persistent
// storage. If any of these change, databases written by previous builds
// become unsearchable — a format break that must be deliberate (bump the
// derivation labels, e.g. "wre-key-derivation-v1" -> v2, and migrate).
#include <gtest/gtest.h>

#include <map>

#include "src/core/encrypted_client.h"
#include "src/core/salts.h"
#include "src/crypto/keys.h"
#include "src/crypto/prf.h"
#include "src/crypto/prs.h"
#include "src/sql/database.h"
#include "tests/test_util.h"

namespace wre {
namespace {

crypto::KeyBundle golden_keys() {
  return crypto::KeyBundle::derive(Bytes(32, 0x42));
}

TEST(Golden, KeyBundleDerivation) {
  auto keys = golden_keys();
  EXPECT_EQ(to_hex(keys.payload_key),
            "ada40a813b73a2d1f291841580f41bd91d762a9a31fa691ed79ef707c2d8b7a2");
  EXPECT_EQ(to_hex(keys.tag_key),
            "9a9b20bdc36f2080d4357beb1ac7a215396ab580a4999605047a74e8b5506f21");
  EXPECT_EQ(to_hex(keys.shuffle_key),
            "7fc238c1c4d620f6933283b39a5f4f7e9f1740287839c24c5bb3349e365cfddc");
}

TEST(Golden, TagDerivations) {
  crypto::TagPrf prf(golden_keys().tag_key);
  EXPECT_EQ(prf.tag(7, to_bytes("alice")), 10795810256718709864ULL);
  EXPECT_EQ(prf.bucket_tag(7), 8275187307937391664ULL);
  EXPECT_EQ(prf.range_tag(7), 4246672761708013599ULL);
}

TEST(Golden, PoissonSaltLayout) {
  // The pseudorandom salt layout must be stable: search tags written under
  // an old build must stay reachable.
  auto dist = core::PlaintextDistribution::from_probabilities(
      {{"a", 0.5}, {"b", 0.5}});
  core::PoissonSaltAllocator alloc(dist, 10, golden_keys().shuffle_key);
  auto s = alloc.salts_for("a");
  ASSERT_EQ(s.salts.size(), 5u);
  EXPECT_NEAR(s.weights[0], 0.059020230113311277, 1e-15);
}

TEST(Golden, BucketizedLayout) {
  auto dist = core::PlaintextDistribution::from_probabilities(
      {{"a", 0.5}, {"b", 0.5}});
  core::BucketizedPoissonAllocator alloc(dist, 10, golden_keys().shuffle_key,
                                         to_bytes("ctx"));
  ASSERT_EQ(alloc.bucket_count(), 12u);
  EXPECT_NEAR(alloc.bucket_width(0), 0.0067661815982060182, 1e-15);
}

TEST(Golden, PseudoRandomShufflePermutation) {
  crypto::PseudoRandomShuffle prs(golden_keys().shuffle_key, to_bytes("ctx"));
  EXPECT_EQ(prs.permutation(8),
            (std::vector<size_t>{4, 5, 6, 0, 7, 3, 2, 1}));
}

// End-to-end rewrite snapshot: the exact `WHERE <col>_tag IN (...)` SQL each
// salt method emits for a fixed secret and distribution. This pins the full
// client pipeline — per-table key derivation, salt layout, tag PRF, and the
// IN-list ordering the rewriter produces — so a change to any of them (or to
// the tag cache in front of them) shows up as a diff here, not as silently
// unreachable rows in an existing database.
TEST(Golden, RewriteSelectSqlPerScheme) {
  using core::EncryptedColumnSpec;
  using core::SaltMethod;
  using sql::ValueType;
  wre::testing::TempDir dir("golden_rewrite");
  sql::Database db(dir.str());
  core::EncryptedConnection conn(db, Bytes(32, 0x42));

  sql::Schema schema({sql::Column{"id", ValueType::kInt64, true},
                      sql::Column{"name", ValueType::kText}});
  std::map<std::string, core::PlaintextDistribution> dists;
  dists.emplace("name", core::PlaintextDistribution::from_probabilities(
                            {{"a", 0.5}, {"b", 0.3}, {"c", 0.2}}));

  struct Case {
    SaltMethod method;
    double param;
    const char* table;
    const char* expected_ids;
  };
  const Case cases[] = {
      {SaltMethod::kDeterministic, 0, "det",
       "SELECT id FROM det WHERE name_tag IN (-9156791295657862633)"},
      {SaltMethod::kFixed, 3, "fixed",
       "SELECT id FROM fixed WHERE name_tag IN (-7771228759616087980, "
       "-7502808811393092612, -5219006709707121277)"},
      {SaltMethod::kProportional, 8, "prop",
       "SELECT id FROM prop WHERE name_tag IN (-8407996975896820941, "
       "-7648467024850612320, -2942226087745297077, -3767863325021056)"},
      {SaltMethod::kPoisson, 8, "poisson",
       "SELECT id FROM poisson WHERE name_tag IN (403427692260244646, "
       "2929349728771908421, 3085616558559896958, 5857787028225945054, "
       "-7722191679127353761, -4960886274851977751, -3761296989002391861, "
       "-3224398783151240524)"},
      {SaltMethod::kBucketizedPoisson, 8, "bucket",
       "SELECT id FROM bucket WHERE name_tag IN (7288838754885498471, "
       "-9222182742932684102, -2534173032511802391)"},
  };
  for (const Case& c : cases) {
    conn.create_table(c.table, schema, {{"name", c.method, c.param}}, dists);
    EXPECT_EQ(conn.rewrite_select(c.table, "name", "a", false), c.expected_ids)
        << c.table;
    // SELECT * uses the same tag expansion, so only the projection differs.
    std::string star(c.expected_ids);
    star.replace(star.find("SELECT id"), 9, "SELECT *");
    EXPECT_EQ(conn.rewrite_select(c.table, "name", "a", true), star)
        << c.table;
  }
}

}  // namespace
}  // namespace wre
