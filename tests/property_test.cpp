// Property-based suites: parameterized sweeps over scheme parameters, fuzzed
// distributions, and randomized storage workloads, checking the invariants
// the constructions must satisfy for every parameter choice.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "src/attack/capped_exponential.h"
#include "src/core/salts.h"
#include "src/core/wre_scheme.h"
#include "src/sql/database.h"
#include "src/storage/bptree.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace wre {
namespace {

using core::BucketizedPoissonAllocator;
using core::FixedSaltAllocator;
using core::PlaintextDistribution;
using core::PoissonSaltAllocator;
using core::ProportionalSaltAllocator;
using core::SaltSet;
using wre::testing::TempDir;

/// Random distribution with `n` messages, probabilities from a symmetric
/// Dirichlet-ish draw (normalized exponentials).
PlaintextDistribution random_distribution(int n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::map<std::string, double> probs;
  double total = 0;
  std::vector<double> raw;
  for (int i = 0; i < n; ++i) {
    raw.push_back(rng.next_exponential(1.0) + 1e-6);
    total += raw.back();
  }
  double assigned = 0;
  for (int i = 0; i < n; ++i) {
    double p = raw[i] / total;
    if (i == n - 1) p = 1.0 - assigned;  // exact unit sum
    probs["msg" + std::to_string(i)] = p;
    assigned += p;
  }
  return PlaintextDistribution::from_probabilities(probs);
}

Bytes test_key(uint64_t seed) {
  auto rng = crypto::SecureRandom::for_testing(seed);
  return rng.bytes(32);
}

double weight_sum(const SaltSet& s) {
  return std::accumulate(s.weights.begin(), s.weights.end(), 0.0);
}

// --------------------------------------------- Poisson allocator invariants

class PoissonLambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(PoissonLambdaSweep, WeightsFormDistributionForEveryMessage) {
  double lambda = GetParam();
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto dist = random_distribution(20, seed);
    PoissonSaltAllocator alloc(dist, lambda, test_key(seed));
    for (const auto& m : dist.messages()) {
      auto s = alloc.salts_for(m);
      ASSERT_FALSE(s.salts.empty());
      EXPECT_EQ(s.salts.size(), s.weights.size());
      EXPECT_NEAR(weight_sum(s), 1.0, 1e-6) << m;
      for (double w : s.weights) EXPECT_GE(w, 0.0);
      std::set<uint64_t> unique(s.salts.begin(), s.salts.end());
      EXPECT_EQ(unique.size(), s.salts.size());
    }
  }
}

TEST_P(PoissonLambdaSweep, TotalSaltCountNearLambdaPlusSupport) {
  double lambda = GetParam();
  auto dist = random_distribution(20, 7);
  PoissonSaltAllocator alloc(dist, lambda, test_key(7));
  size_t total = 0;
  for (const auto& m : dist.messages()) {
    total += alloc.salts_for(m).salts.size();
  }
  // E[total] = lambda + |M| (Section V-C); tolerate 5 sigma.
  double expected = lambda + 20;
  EXPECT_NEAR(static_cast<double>(total), expected,
              5 * std::sqrt(lambda) + 10);
}

TEST_P(PoissonLambdaSweep, UncappedFrequenciesLookExponential) {
  double lambda = GetParam();
  if (lambda < 100) GTEST_SKIP() << "needs enough samples";
  auto dist = random_distribution(30, 9);
  PoissonSaltAllocator alloc(dist, lambda, test_key(9));
  std::vector<double> freqs;
  for (const auto& m : dist.messages()) {
    auto s = alloc.salts_for(m);
    double p = dist.probability(m);
    for (size_t i = 0; i + 1 < s.weights.size(); ++i) {
      freqs.push_back(s.weights[i] * p);
    }
  }
  ASSERT_GT(freqs.size(), 50u);
  EXPECT_LT(attack::ks_statistic_exponential(freqs, lambda),
            1.63 / std::sqrt(static_cast<double>(freqs.size())) * 2);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonLambdaSweep,
                         ::testing::Values(10.0, 100.0, 1000.0, 5000.0));

// ------------------------------------------ Bucketized allocator invariants

class BucketizedLambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(BucketizedLambdaSweep, BucketsExactlyPartitionMessages) {
  double lambda = GetParam();
  for (uint64_t seed : {11u, 12u}) {
    auto dist = random_distribution(25, seed);
    BucketizedPoissonAllocator alloc(dist, lambda, test_key(seed),
                                     to_bytes("sweep"));
    // Each message's weights sum to 1; total probability-mass per bucket
    // across messages equals the bucket width, i.e. sums to 1 overall.
    double total_mass = 0;
    std::set<uint64_t> used;
    for (const auto& m : dist.messages()) {
      auto s = alloc.salts_for(m);
      EXPECT_NEAR(weight_sum(s), 1.0, 1e-6);
      used.insert(s.salts.begin(), s.salts.end());
      for (size_t i = 0; i < s.salts.size(); ++i) {
        total_mass += s.weights[i] * dist.probability(m);
      }
    }
    EXPECT_NEAR(total_mass, 1.0, 1e-6);
    EXPECT_EQ(used.size(), alloc.bucket_count());
    // Salt ids are valid bucket indices.
    for (uint64_t s : used) EXPECT_LT(s, alloc.bucket_count());
  }
}

TEST_P(BucketizedLambdaSweep, AdjacentMessagesShareAtMostBoundaryBuckets) {
  double lambda = GetParam();
  auto dist = random_distribution(25, 13);
  BucketizedPoissonAllocator alloc(dist, lambda, test_key(13),
                                   to_bytes("sweep"));
  // A bucket is shared by at most the set of messages whose intervals it
  // straddles; consecutive salt ids within one message must be contiguous.
  for (const auto& m : dist.messages()) {
    auto s = alloc.salts_for(m);
    for (size_t i = 1; i < s.salts.size(); ++i) {
      EXPECT_EQ(s.salts[i], s.salts[i - 1] + 1) << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, BucketizedLambdaSweep,
                         ::testing::Values(5.0, 50.0, 500.0, 2000.0));

// ------------------------------------------------- proportional invariants

class ProportionalSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ProportionalSweep, TotalTagCountTracksParameter) {
  uint32_t n_t = GetParam();
  auto dist = random_distribution(15, 21);
  ProportionalSaltAllocator alloc(dist, n_t);
  size_t total = 0;
  for (const auto& m : dist.messages()) {
    auto s = alloc.salts_for(m);
    EXPECT_NEAR(weight_sum(s), 1.0, 1e-9);
    total += s.salts.size();
  }
  // Rounding gives each message +-0.5 and a floor of 1.
  EXPECT_NEAR(static_cast<double>(total), static_cast<double>(n_t),
              0.5 * 15 + 15);
}

INSTANTIATE_TEST_SUITE_P(TagCounts, ProportionalSweep,
                         ::testing::Values(20u, 100u, 1000u));

// ----------------------------------------------- scheme completeness fuzz

class SchemeCompletenessFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchemeCompletenessFuzz, EveryEncryptionIsSearchable) {
  uint64_t seed = GetParam();
  Xoshiro256 meta_rng(seed);
  int support = 2 + static_cast<int>(meta_rng.next_below(40));
  auto dist = random_distribution(support, seed * 31 + 1);
  auto keygen = crypto::SecureRandom::for_testing(seed * 31 + 2);
  auto keys = crypto::KeyBundle::generate(keygen);

  std::vector<std::unique_ptr<core::SaltAllocator>> allocators;
  allocators.push_back(std::make_unique<FixedSaltAllocator>(
      1 + static_cast<uint32_t>(meta_rng.next_below(64))));
  allocators.push_back(std::make_unique<ProportionalSaltAllocator>(
      dist, 1 + static_cast<uint32_t>(meta_rng.next_below(500))));
  allocators.push_back(std::make_unique<PoissonSaltAllocator>(
      dist, 1.0 + static_cast<double>(meta_rng.next_below(2000)),
      keys.shuffle_key));
  allocators.push_back(std::make_unique<BucketizedPoissonAllocator>(
      dist, 1.0 + static_cast<double>(meta_rng.next_below(2000)),
      keys.shuffle_key, to_bytes("fuzz")));

  for (auto& alloc : allocators) {
    std::string name = alloc->name();
    core::WreScheme scheme(keys, std::move(alloc));
    auto rng = crypto::SecureRandom::for_testing(seed * 31 + 3);
    for (const auto& m : dist.messages()) {
      auto tags = scheme.search_tags(m);
      std::set<crypto::Tag> tag_set(tags.begin(), tags.end());
      for (int i = 0; i < 20; ++i) {
        EXPECT_TRUE(tag_set.contains(scheme.encrypt(m, rng).tag))
            << name << " " << m;
      }
      EXPECT_EQ(scheme.decrypt(scheme.encrypt(m, rng).ciphertext), m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemeCompletenessFuzz,
                         ::testing::Range<uint64_t>(1, 9));

// Completeness across qualitatively different distribution *shapes*: the
// random_distribution draw above rarely produces the extremes (flat ties,
// one dominating message, long geometric tails) where salt-interval
// rounding bugs would hide. For every shape x lambda x allocator, every tag
// Enc can emit must be covered by Search's expansion — no false negatives.
PlaintextDistribution shaped_distribution(const std::string& shape, int n,
                                          uint64_t seed) {
  std::map<std::string, double> probs;
  auto name = [](int i) { return "msg" + std::to_string(i); };
  double total = 0;
  std::vector<double> raw(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double r;
    if (shape == "uniform") {
      r = 1.0;
    } else if (shape == "zipf") {
      r = 1.0 / (i + 1);
    } else if (shape == "geometric") {
      r = std::pow(0.5, i);
    } else if (shape == "heavy-head") {
      r = i == 0 ? static_cast<double>(10 * n) : 1.0;
    } else {  // near-degenerate: one message carries ~all the mass
      r = i == 0 ? 1e6 : 1e-6;
    }
    raw[static_cast<size_t>(i)] = r;
    total += r;
  }
  double assigned = 0;
  for (int i = 0; i < n; ++i) {
    double p = raw[static_cast<size_t>(i)] / total;
    if (i == n - 1) p = 1.0 - assigned;
    probs[name(i)] = p;
    assigned += p;
  }
  (void)seed;
  return PlaintextDistribution::from_probabilities(probs);
}

class SchemeCompletenessShapes
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SchemeCompletenessShapes, SearchCoversEncForEveryAllocator) {
  std::string shape = GetParam();
  for (uint64_t seed : {11u, 29u}) {
    for (int support : {2, 17}) {
      auto dist = shaped_distribution(shape, support, seed);
      auto keygen = crypto::SecureRandom::for_testing(seed);
      auto keys = crypto::KeyBundle::generate(keygen);

      for (double lambda : {3.0, 47.0, 800.0}) {
        std::vector<std::unique_ptr<core::SaltAllocator>> allocators;
        allocators.push_back(std::make_unique<FixedSaltAllocator>(
            1 + static_cast<uint32_t>(lambda / 10)));
        allocators.push_back(std::make_unique<ProportionalSaltAllocator>(
            dist, static_cast<uint32_t>(lambda)));
        allocators.push_back(std::make_unique<PoissonSaltAllocator>(
            dist, lambda, keys.shuffle_key));
        allocators.push_back(std::make_unique<BucketizedPoissonAllocator>(
            dist, lambda, keys.shuffle_key, to_bytes("shape:" + shape)));

        for (auto& alloc : allocators) {
          std::string name = alloc->name();
          core::WreScheme scheme(keys, std::move(alloc));
          auto rng = crypto::SecureRandom::for_testing(seed * 17 + 5);
          for (const auto& m : dist.messages()) {
            auto tags = scheme.search_tags(m);
            ASSERT_FALSE(tags.empty())
                << shape << " " << name << " lambda=" << lambda << " " << m;
            std::set<crypto::Tag> tag_set(tags.begin(), tags.end());
            for (int i = 0; i < 8; ++i) {
              EXPECT_TRUE(tag_set.contains(scheme.encrypt(m, rng).tag))
                  << shape << " " << name << " lambda=" << lambda << " " << m;
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SchemeCompletenessShapes,
                         ::testing::Values("uniform", "zipf", "geometric",
                                           "heavy-head", "near-degenerate"));

// -------------------------------------------------- frequency smoothing

TEST(FrequencySmoothing, PoissonTagFrequenciesIndependentOfPlaintext) {
  // Encrypt a two-message population where one message is 20x more frequent;
  // the per-tag empirical frequencies of the two messages' tags must be
  // statistically close (this is the core smoothing claim).
  auto dist = PlaintextDistribution::from_probabilities(
      {{"common", 20.0 / 21}, {"rare", 1.0 / 21}});
  auto keygen = crypto::SecureRandom::for_testing(77);
  auto keys = crypto::KeyBundle::generate(keygen);
  double lambda = 4000;
  PoissonSaltAllocator alloc(dist, lambda, keys.shuffle_key);

  auto freqs_of = [&](const std::string& m) {
    std::vector<double> freqs;
    auto s = alloc.salts_for(m);
    double p = dist.probability(m);
    for (size_t i = 0; i + 1 < s.weights.size(); ++i) {
      freqs.push_back(s.weights[i] * p);
    }
    return freqs;
  };
  auto common = freqs_of("common");
  auto rare = freqs_of("rare");
  ASSERT_GT(common.size(), 500u);
  ASSERT_GT(rare.size(), 50u);
  EXPECT_LT(attack::empirical_tv_distance(common, rare, 12), 0.25);
}

TEST(FrequencySmoothing, DeterministicTagFrequenciesTrackPlaintext) {
  // Control for the previous test: under DET the tag frequency IS the
  // plaintext frequency, trivially distinguishable.
  auto dist = PlaintextDistribution::from_probabilities(
      {{"common", 20.0 / 21}, {"rare", 1.0 / 21}});
  EXPECT_GT(dist.probability("common") / dist.probability("rare"), 19.0);
}

// -------------------------------------------------- storage fuzz sweeps

class BPlusTreePoolSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BPlusTreePoolSweep, RandomWorkloadMatchesReference) {
  size_t pool_pages = GetParam();
  TempDir dir;
  storage::DiskManager disk;
  storage::BufferPool pool(disk, pool_pages);
  storage::BPlusTree tree(pool, disk.open_file(dir.str() + "/t.idx"));
  std::multimap<uint64_t, uint64_t> reference;
  Xoshiro256 rng(pool_pages * 7919);
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = rng.next_below(997);
    uint64_t value = rng.next_below(100000);
    tree.insert(key, value);
    reference.emplace(key, value);
  }
  for (uint64_t key = 0; key < 997; key += 13) {
    auto [lo, hi] = reference.equal_range(key);
    std::multiset<uint64_t> expected;
    for (auto it = lo; it != hi; ++it) expected.insert(it->second);
    auto got = tree.find(key);
    EXPECT_EQ(std::multiset<uint64_t>(got.begin(), got.end()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, BPlusTreePoolSweep,
                         ::testing::Values(3u, 8u, 64u, 4096u));

// ----------------------------------------------------- SQL roundtrip fuzz

TEST(SqlFuzz, RandomRowsSurviveInsertSelectRoundTrip) {
  TempDir dir;
  sql::Database db(dir.str());
  db.execute(
      "CREATE TABLE fuzz (id INTEGER PRIMARY KEY, a TEXT, b INTEGER, c BLOB)");
  db.execute("CREATE INDEX ON fuzz (b)");

  Xoshiro256 rng(31337);
  std::vector<sql::Row> rows;
  for (int i = 0; i < 300; ++i) {
    std::string text;
    for (int c = 0; c < static_cast<int>(rng.next_below(20)); ++c) {
      // Include quoting hazards.
      text.push_back("abc'\",; x"[rng.next_below(9)]);
    }
    Bytes blob;
    for (int c = 0; c < static_cast<int>(rng.next_below(40)); ++c) {
      blob.push_back(static_cast<uint8_t>(rng.next_below(256)));
    }
    sql::Row row = {sql::Value::int64(i),
                    rng.next_below(5) == 0 ? sql::Value::null()
                                           : sql::Value::text(text),
                    sql::Value::int64(static_cast<int64_t>(rng.next_below(7))),
                    sql::Value::blob(blob)};
    rows.push_back(row);
    db.execute("INSERT INTO fuzz VALUES (" + row[0].to_sql_literal() + ", " +
               row[1].to_sql_literal() + ", " + row[2].to_sql_literal() +
               ", " + row[3].to_sql_literal() + ")");
  }

  // Every row retrievable by an indexed equality on b + recheck by id.
  for (int64_t b = 0; b < 7; ++b) {
    auto rs = db.execute("SELECT * FROM fuzz WHERE b = " + std::to_string(b));
    size_t expected = 0;
    for (const auto& row : rows) {
      if (row[2].as_int64() == b) ++expected;
    }
    EXPECT_EQ(rs.rows.size(), expected) << b;
    for (const auto& got : rs.rows) {
      EXPECT_EQ(got, rows[static_cast<size_t>(got[0].as_int64())]);
    }
  }
}

}  // namespace
}  // namespace wre
