#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/encrypted_client.h"
#include "src/core/manifest.h"
#include "src/sql/database.h"
#include "src/storage/fault_injector.h"
#include "tests/test_util.h"

namespace wre::core {
namespace {

using sql::Column;
using sql::Database;
using sql::Row;
using sql::Schema;
using sql::Value;
using sql::ValueType;
using wre::testing::TempDir;

Schema demo_schema() {
  return Schema({Column{"id", ValueType::kInt64, true},
                 Column{"city", ValueType::kText},
                 Column{"zip", ValueType::kText},
                 Column{"pop", ValueType::kInt64}});
}

TableManifest demo_manifest() {
  TableManifest m;
  m.logical_schema = demo_schema();
  m.specs = {EncryptedColumnSpec{"city", SaltMethod::kPoisson, 500},
             EncryptedColumnSpec{"zip", SaltMethod::kBucketizedPoisson, 250}};
  m.distributions.emplace(
      "city", PlaintextDistribution::from_probabilities(
                  {{"springfield", 0.5}, {"shelbyville", 0.5}}));
  m.distributions.emplace(
      "zip", PlaintextDistribution::from_probabilities(
                 {{"11111", 0.25}, {"22222", 0.75}}));
  return m;
}

TEST(Manifest, SerializationRoundTrip) {
  TableManifest m = demo_manifest();
  TableManifest back = deserialize_manifest(serialize_manifest(m));

  ASSERT_EQ(back.logical_schema.column_count(), 4u);
  EXPECT_EQ(back.logical_schema.column(1).name, "city");
  EXPECT_EQ(back.logical_schema.primary_key_index(), 0u);

  ASSERT_EQ(back.specs.size(), 2u);
  EXPECT_EQ(back.specs[0].column, "city");
  EXPECT_EQ(back.specs[0].method, SaltMethod::kPoisson);
  EXPECT_EQ(back.specs[0].parameter, 500);
  EXPECT_EQ(back.specs[1].method, SaltMethod::kBucketizedPoisson);

  ASSERT_EQ(back.distributions.size(), 2u);
  EXPECT_NEAR(back.distributions.at("zip").probability("22222"), 0.75, 1e-12);
}

TEST(Manifest, EmptySectionsRoundTrip) {
  TableManifest m;
  m.logical_schema = demo_schema();
  TableManifest back = deserialize_manifest(serialize_manifest(m));
  EXPECT_TRUE(back.specs.empty());
  EXPECT_TRUE(back.distributions.empty());
}

TEST(Manifest, RejectsCorruptInput) {
  Bytes good = serialize_manifest(demo_manifest());
  Bytes truncated(good.begin(), good.end() - 3);
  EXPECT_THROW(deserialize_manifest(truncated), WreError);
  Bytes extended = good;
  extended.push_back(0);
  EXPECT_THROW(deserialize_manifest(extended), WreError);
  Bytes bad_version = good;
  bad_version[0] = 99;
  EXPECT_THROW(deserialize_manifest(bad_version), WreError);
  EXPECT_THROW(deserialize_manifest(Bytes{}), WreError);
}

struct ManifestFixture {
  TempDir dir;
  Bytes master = Bytes(32, 0x51);

  void create_and_load() {
    Database db(dir.str());
    EncryptedConnection conn(db, master);
    TableManifest m = demo_manifest();
    conn.create_table("places", demo_schema(), m.specs, m.distributions);
    conn.insert("places", {Value::int64(1), Value::text("springfield"),
                           Value::text("11111"), Value::int64(30000)});
    conn.insert("places", {Value::int64(2), Value::text("shelbyville"),
                           Value::text("22222"), Value::int64(20000)});
    conn.insert("places", {Value::int64(3), Value::text("springfield"),
                           Value::text("22222"), Value::int64(12000)});
    db.checkpoint();
  }
};

TEST(Manifest, OpenTableRestoresSearchabilityAcrossRestart) {
  ManifestFixture f;
  f.create_and_load();

  Database db(f.dir.str());
  EncryptedConnection conn(db, f.master);
  conn.open_table("places");
  auto result = conn.select_star("places", "city", "springfield");
  EXPECT_EQ(result.rows.size(), 2u);
  for (const auto& row : result.rows) {
    EXPECT_EQ(row[1].as_text(), "springfield");
  }
  // The second encrypted column works too.
  EXPECT_EQ(conn.select_star("places", "zip", "22222").rows.size(), 2u);
}

TEST(Manifest, OpenTableWithWrongSecretFailsCleanly) {
  ManifestFixture f;
  f.create_and_load();

  Database db(f.dir.str());
  EncryptedConnection conn(db, Bytes(32, 0x52));
  EXPECT_THROW(conn.open_table("places"), WreError);
}

TEST(Manifest, OpenTableUnknownTableThrows) {
  ManifestFixture f;
  f.create_and_load();
  Database db(f.dir.str());
  EncryptedConnection conn(db, f.master);
  EXPECT_THROW(conn.open_table("ghost"), WreError);
}

TEST(Manifest, OpenTableWithoutManifestTableThrows) {
  TempDir dir;
  Database db(dir.str());
  EncryptedConnection conn(db, Bytes(32, 1));
  EXPECT_THROW(conn.open_table("anything"), WreError);
}

TEST(Manifest, SaveManifestUpdatesLatestVersion) {
  ManifestFixture f;
  f.create_and_load();

  Database db(f.dir.str());
  EncryptedConnection conn(db, f.master);
  conn.open_table("places");
  // Re-save (e.g. refreshed distribution estimate) and reopen: the newest
  // manifest row must win.
  conn.save_manifest("places");
  EncryptedConnection conn2(db, f.master);
  conn2.open_table("places");
  EXPECT_EQ(conn2.select_star("places", "city", "shelbyville").rows.size(),
            1u);
}

TEST(Manifest, ServerSeesOnlyOpaqueBlob) {
  ManifestFixture f;
  f.create_and_load();
  Database db(f.dir.str());
  auto rs = db.execute("SELECT * FROM _wre_manifest");
  ASSERT_GE(rs.rows.size(), 1u);
  // Concatenate every stored chunk; the serialized manifest contains values
  // like "springfield" and column names like "city" — the ciphertext must
  // not.
  std::string as_text;
  for (const auto& row : rs.rows) {
    const Bytes& chunk = row[5].as_blob();
    as_text.append(chunk.begin(), chunk.end());
  }
  EXPECT_EQ(as_text.find("springfield"), std::string::npos);
  EXPECT_EQ(as_text.find("city"), std::string::npos);
}

TEST(Manifest, HalfWrittenCheckpointFallsBackToWalReplay) {
  // A checkpoint that dies halfway: some committed pages reached the data
  // files, the heap writes were silently lost (a flush that never hit the
  // platter), and the machine "crashed" — modeled by snapshotting the
  // directory — before the WAL would have been truncated. Because
  // truncation only happens after flush + fsync succeed, the log still
  // holds every committed image, and the restart replays the missing ones:
  // the encrypted manifest stays decryptable and the table searchable.
  TempDir dir;
  TempDir snap_parent;
  Bytes master(32, 0x51);
  sql::DatabaseOptions opts;
  opts.durability = true;
  std::filesystem::path snapshot = snap_parent.path() / "db";
  {
    Database db(dir.str(), opts);
    EncryptedConnection conn(db, master);
    TableManifest m = demo_manifest();
    conn.create_table("places", demo_schema(), m.specs, m.distributions);
    conn.insert("places", {Value::int64(1), Value::text("springfield"),
                           Value::text("11111"), Value::int64(30000)});
    conn.insert("places", {Value::int64(2), Value::text("shelbyville"),
                           Value::text("22222"), Value::int64(20000)});
    conn.insert("places", {Value::int64(3), Value::text("springfield"),
                           Value::text("22222"), Value::int64(12000)});
    db.commit();

    storage::FaultInjector::instance().arm_page_write_drop(".tbl");
    db.buffer_pool().flush_all();  // the "half-written" checkpoint flush
    uint64_t dropped = storage::FaultInjector::instance().dropped_page_writes();
    storage::FaultInjector::instance().reset();
    ASSERT_GT(dropped, 0u);  // the fixture really did lose heap pages

    std::filesystem::create_directories(snapshot);
    std::filesystem::copy(dir.path(), snapshot,
                          std::filesystem::copy_options::recursive);
    // The live db's destructor re-checkpoints the original directory with
    // the injector disarmed; only the snapshot keeps the torn state.
  }

  Database db(snapshot.string());
  EXPECT_GT(db.recovery_stats().pages_replayed, 0u);
  EncryptedConnection conn(db, master);
  conn.open_table("places");
  auto result = conn.select_star("places", "city", "springfield");
  EXPECT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(conn.select_star("places", "zip", "22222").rows.size(), 2u);
}

}  // namespace
}  // namespace wre::core
