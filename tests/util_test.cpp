#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>

#include "bench/bench_common.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace wre {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "0001abff10");
  EXPECT_EQ(from_hex("0001abff10"), data);
  EXPECT_EQ(from_hex("0001ABFF10"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, StringConversionRoundTrip) {
  std::string s = "hello \0 world";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, LittleEndianRoundTrip32) {
  Bytes out;
  store_le32(out, 0xdeadbeef);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(load_le32(out.data()), 0xdeadbeefu);
  EXPECT_EQ(out[0], 0xef);  // least significant byte first
}

TEST(Bytes, LittleEndianRoundTrip64) {
  Bytes out;
  store_le64(out, 0x0123456789abcdefULL);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(load_le64(out.data()), 0x0123456789abcdefULL);
}

TEST(Bytes, BigEndian32) {
  uint8_t buf[4];
  store_be32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(load_be32(buf), 0x01020304u);
}

TEST(Bytes, BigEndian64) {
  uint8_t buf[8];
  store_be64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
}

TEST(Bytes, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

TEST(Bytes, Append) {
  Bytes out = {1};
  append(out, Bytes{2, 3});
  EXPECT_EQ(out, (Bytes{1, 2, 3}));
}

TEST(Xoshiro, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowUniformish) {
  Xoshiro256 rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Xoshiro, ExponentialMeanMatches) {
  Xoshiro256 rng(123);
  double lambda = 4.0;
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_exponential(lambda);
  EXPECT_NEAR(sum / kDraws, 1.0 / lambda, 0.01);
}

TEST(FisherYates, ProducesPermutation) {
  Xoshiro256 rng(5);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto sorted = v;
  fisher_yates_shuffle(v, rng);
  EXPECT_NE(v, sorted);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(FisherYates, SingleAndEmpty) {
  Xoshiro256 rng(5);
  std::vector<int> empty;
  fisher_yates_shuffle(empty, rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  fisher_yates_shuffle(one, rng);
  EXPECT_EQ(one, std::vector<int>{42});
}

// ---------------------------------------------------------------------------
// bench::Args — the shared bench-harness flag parser.

bench::Args make_args(std::vector<std::string> tokens) {
  std::vector<char*> argv = {const_cast<char*>("prog")};
  static std::vector<std::string> storage;  // keep c_str()s alive
  storage = std::move(tokens);
  for (auto& t : storage) argv.push_back(t.data());
  return bench::Args(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchArgs, SpaceSeparatedForm) {
  auto args = make_args({"--records", "5000", "--verbose"});
  EXPECT_EQ(args.get_int("records", 0), 5000);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_int("missing", 42), 42);
}

TEST(BenchArgs, EqualsForm) {
  auto args = make_args({"--records=123", "--lambda=2.5", "--out=a.json"});
  EXPECT_EQ(args.get_int("records", 0), 123);
  EXPECT_DOUBLE_EQ(args.get_double("lambda", 0), 2.5);
  EXPECT_EQ(args.get_string("out", ""), "a.json");
}

TEST(BenchArgs, EqualsFormAcceptsValuesStartingWithDashes) {
  // `--key=value` is unambiguous even when the value looks like a flag —
  // the space-separated form cannot express this.
  auto args = make_args({"--label=--weird"});
  EXPECT_EQ(args.get_string("label", ""), "--weird");
}

TEST(BenchArgs, NegativeAndBoundaryIntegers) {
  auto args = make_args({"--a=-7", "--b=9223372036854775807"});
  EXPECT_EQ(args.get_int("a", 0), -7);
  EXPECT_EQ(args.get_int("b", 0), std::numeric_limits<int64_t>::max());
}

TEST(BenchArgsDeathTest, NonNumericIntFailsWithClearMessage) {
  auto args = make_args({"--records=abc"});
  EXPECT_EXIT(args.get_int("records", 0), ::testing::ExitedWithCode(2),
              "--records expects an integer, got 'abc'");
}

TEST(BenchArgsDeathTest, TrailingGarbageIntFails) {
  auto args = make_args({"--records", "12x"});
  EXPECT_EXIT(args.get_int("records", 0), ::testing::ExitedWithCode(2),
              "--records expects an integer, got '12x'");
}

TEST(BenchArgsDeathTest, NonNumericDoubleFailsWithClearMessage) {
  auto args = make_args({"--lambda=fast"});
  EXPECT_EXIT(args.get_double("lambda", 0), ::testing::ExitedWithCode(2),
              "--lambda expects a number, got 'fast'");
}

TEST(BenchArgsDeathTest, OutOfRangeIntFails) {
  auto args = make_args({"--records=99999999999999999999"});
  EXPECT_EXIT(args.get_int("records", 0), ::testing::ExitedWithCode(2),
              "expects an integer");
}

TEST(SplitMix, KnownSequenceIsStable) {
  uint64_t state = 0;
  uint64_t first = splitmix64(state);
  uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  // Golden values pin the generator so persisted artifacts stay decodable.
  uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
}

}  // namespace
}  // namespace wre
