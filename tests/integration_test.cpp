// End-to-end tests across the full stack: SPARTA-like data generation ->
// encrypted client -> SQL engine -> storage, checked against a plaintext
// database loaded with the same records.
#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "src/attack/frequency_attack.h"
#include "src/core/encrypted_client.h"
#include "src/datagen/query_generator.h"
#include "src/datagen/record_generator.h"
#include "src/sql/database.h"
#include "tests/test_util.h"

namespace wre {
namespace {

using core::EncryptedColumnSpec;
using core::EncryptedConnection;
using core::PlaintextDistribution;
using core::SaltMethod;
using datagen::ColumnHistogram;
using datagen::GeneratorOptions;
using datagen::QueryGenerator;
using datagen::RecordGenerator;
using sql::Database;
using sql::Row;
using sql::Value;
using wre::testing::TempDir;

constexpr int kRecords = 2000;

/// Builds plaintext and encrypted databases over the same generated
/// records and cross-checks query answers.
struct TwinDatabases {
  TempDir plain_dir, enc_dir;
  Database plain_db, enc_db;
  EncryptedConnection conn;
  RecordGenerator gen;
  ColumnHistogram hist;

  explicit TwinDatabases(SaltMethod method, double param)
      : plain_db(plain_dir.str()),
        enc_db(enc_dir.str()),
        conn(enc_db, Bytes(32, 0x77)),
        gen(small_options()) {
    auto schema = RecordGenerator::schema();

    // Pass 1: collect per-column histograms (the "data owner knows the
    // distribution" step).
    for (int64_t id = 0; id < kRecords; ++id) {
      Row row = gen.record(id);
      for (const auto& col : RecordGenerator::encrypted_columns()) {
        hist.add(col, row[*schema.index_of(col)].as_text());
      }
    }

    // Plaintext database with indexes on the searchable columns.
    plain_db.create_table("main", schema);
    for (const auto& col : RecordGenerator::encrypted_columns()) {
      plain_db.create_index("main", col);
    }

    // Encrypted database.
    std::map<std::string, PlaintextDistribution> dists;
    std::vector<EncryptedColumnSpec> specs;
    for (const auto& col : RecordGenerator::encrypted_columns()) {
      dists.emplace(col, PlaintextDistribution::from_counts(hist.counts(col)));
      specs.push_back(EncryptedColumnSpec{col, method, param});
    }
    conn.create_table("main", schema, specs, dists);

    for (int64_t id = 0; id < kRecords; ++id) {
      Row row = gen.record(id);
      plain_db.table("main").insert(row);
      conn.insert("main", row);
    }
  }

  static GeneratorOptions small_options() {
    GeneratorOptions opts;
    opts.notes_bytes = 30;
    opts.first_name_vocab = 150;
    opts.last_name_vocab = 200;
    opts.city_vocab = 120;
    opts.zip_vocab = 150;
    return opts;
  }

  std::set<int64_t> plain_ids(const std::string& column,
                              const std::string& value) {
    auto rs = plain_db.execute("SELECT id FROM main WHERE " + column + " = " +
                               Value::text(value).to_sql_literal());
    std::set<int64_t> ids;
    for (const auto& row : rs.rows) ids.insert(row[0].as_int64());
    return ids;
  }
};

class TwinDbAllMethods
    : public ::testing::TestWithParam<std::pair<SaltMethod, double>> {};

TEST_P(TwinDbAllMethods, SelectStarMatchesPlaintextExactly) {
  auto [method, param] = GetParam();
  TwinDatabases twin(method, param);
  QueryGenerator qg(twin.hist,
                    RecordGenerator::encrypted_columns());
  auto queries = qg.generate(20);
  ASSERT_FALSE(queries.empty());
  for (const auto& q : queries) {
    auto expected = twin.plain_ids(q.column, q.value);
    auto result = twin.conn.select_star("main", q.column, q.value);
    std::set<int64_t> got;
    for (const auto& row : result.rows) got.insert(row[0].as_int64());
    EXPECT_EQ(got, expected) << q.column << " = " << q.value;
    // Every decrypted row carries the query value in the queried column.
    size_t col_idx = *twin.conn.logical_schema("main").index_of(q.column);
    for (const auto& row : result.rows) {
      EXPECT_EQ(row[col_idx].as_text(), q.value);
    }
  }
}

TEST_P(TwinDbAllMethods, SelectIdsIsSupersetOfTruth) {
  auto [method, param] = GetParam();
  TwinDatabases twin(method, param);
  QueryGenerator qg(twin.hist, RecordGenerator::encrypted_columns());
  for (const auto& q : qg.generate(15)) {
    auto expected = twin.plain_ids(q.column, q.value);
    auto result = twin.conn.select_ids("main", q.column, q.value);
    std::set<int64_t> got(result.ids.begin(), result.ids.end());
    for (int64_t id : expected) {
      EXPECT_TRUE(got.contains(id)) << q.column << " = " << q.value;
    }
    if (method != SaltMethod::kBucketizedPoisson) {
      EXPECT_EQ(got.size(), expected.size());  // no false positives
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, TwinDbAllMethods,
    ::testing::Values(std::pair{SaltMethod::kDeterministic, 0.0},
                      std::pair{SaltMethod::kFixed, 20.0},
                      std::pair{SaltMethod::kProportional, 200.0},
                      std::pair{SaltMethod::kPoisson, 300.0},
                      std::pair{SaltMethod::kBucketizedPoisson, 300.0}));

TEST(Integration, EncryptedDatabaseIsLargerButBounded) {
  TwinDatabases twin(SaltMethod::kPoisson, 300.0);
  twin.plain_db.checkpoint();
  twin.enc_db.checkpoint();
  uint64_t plain = twin.plain_db.data_size_bytes();
  uint64_t enc = twin.enc_db.data_size_bytes();
  EXPECT_GT(enc, plain);
  // The paper reports < 2x for full-size (~1.1 KB) records; with the tiny
  // test records the AES payload dominates, so allow up to 4x here.
  EXPECT_LT(enc, plain * 4);
}

TEST(Integration, SnapshotOfEncryptedFilesRevealsNoPlaintext) {
  TwinDatabases twin(SaltMethod::kPoisson, 300.0);
  twin.enc_db.checkpoint();
  // Read every byte of every file in the encrypted database directory and
  // look for any generated first name. Plaintext columns (e.g. state) do
  // appear; encrypted ones must not.
  std::string blob;
  for (const auto& entry :
       std::filesystem::directory_iterator(twin.enc_dir.path())) {
    std::ifstream in(entry.path(), std::ios::binary);
    blob.append(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_FALSE(blob.empty());
  // Probe with SSNs: 9-digit strings unique to their (encrypted) column, so
  // a hit cannot be a substring collision with a legitimately-plaintext
  // column (first/last names appear inside the plaintext address column).
  auto schema = RecordGenerator::schema();
  size_t ssn_idx = *schema.index_of("ssn");
  for (int64_t id = 0; id < 50; ++id) {
    std::string ssn = twin.gen.record(id)[ssn_idx].as_text();
    EXPECT_EQ(blob.find(ssn), std::string::npos) << ssn;
  }
  // Positive control: the un-encrypted marital_status column's values are
  // stored in the clear, proving the scan can see plaintext when present.
  EXPECT_NE(blob.find("married"), std::string::npos);
}

TEST(Integration, FrequencyAttackAcrossSchemes) {
  // The headline security claim, end-to-end: run the rank-matching attack
  // against the actual encrypted databases and verify the recovery ordering
  // DET >> fixed > poisson.
  auto run = [](SaltMethod method, double param) {
    TwinDatabases twin(method, param);
    auto& table = twin.enc_db.table("main");
    attack::TagHistogram tags;
    std::vector<std::pair<crypto::Tag, std::string>> records;
    auto schema = RecordGenerator::schema();
    size_t fname_idx = *schema.index_of("fname");
    size_t tag_idx = *table.schema().index_of("fname_tag");
    int64_t id = 0;
    table.scan([&](int64_t, const Row& physical) {
      auto tag = physical[tag_idx].as_tag();
      ++tags[tag];
      records.emplace_back(tag, twin.gen.record(id)[fname_idx].as_text());
      ++id;
    });
    attack::AuxDistribution aux;
    for (const auto& [value, count] : twin.hist.counts("fname")) {
      aux[value] =
          static_cast<double>(count) / static_cast<double>(kRecords);
    }
    auto guess = attack::rank_matching_attack(tags, aux);
    return attack::score_assignment(guess, records).recovery_rate;
  };

  double det = run(SaltMethod::kDeterministic, 0);
  double fixed = run(SaltMethod::kFixed, 20);
  double poisson = run(SaltMethod::kPoisson, 1000);
  EXPECT_GT(det, 0.5);
  EXPECT_LT(fixed, det);
  EXPECT_LT(poisson, 0.1);
}

TEST(Integration, ColdQueriesReadMorePagesThanWarm) {
  TwinDatabases twin(SaltMethod::kPoisson, 300.0);
  auto q = QueryGenerator(twin.hist, {"lname"}).generate(1);
  ASSERT_FALSE(q.empty());

  // Warm: run once to populate, measure second run.
  (void)twin.conn.select_star("main", q[0].column, q[0].value);
  twin.enc_db.disk().reset_stats();
  (void)twin.conn.select_star("main", q[0].column, q[0].value);
  uint64_t warm_reads = twin.enc_db.disk().stats().page_reads;

  twin.enc_db.clear_cache();
  twin.enc_db.disk().reset_stats();
  (void)twin.conn.select_star("main", q[0].column, q[0].value);
  uint64_t cold_reads = twin.enc_db.disk().stats().page_reads;

  EXPECT_EQ(warm_reads, 0u);
  EXPECT_GT(cold_reads, 0u);
}

TEST(Integration, ReopenedEncryptedDatabaseStillAnswersQueries) {
  TempDir dir;
  Bytes master(32, 0x42);
  GeneratorOptions opts = TwinDatabases::small_options();
  RecordGenerator gen(opts);
  auto schema = RecordGenerator::schema();
  ColumnHistogram hist;
  for (int64_t id = 0; id < 300; ++id) {
    hist.add("city", gen.record(id)[*schema.index_of("city")].as_text());
  }
  std::map<std::string, PlaintextDistribution> dists;
  dists.emplace("city", PlaintextDistribution::from_counts(hist.counts("city")));

  std::string probe_city =
      gen.record(0)[*schema.index_of("city")].as_text();
  std::vector<EncryptedColumnSpec> specs = {
      EncryptedColumnSpec{"city", SaltMethod::kPoisson, 200}};
  size_t expected = 0;

  {
    Database db(dir.str());
    EncryptedConnection conn(db, master);
    conn.create_table("main", schema, specs, dists);
    for (int64_t id = 0; id < 300; ++id) conn.insert("main", gen.record(id));
    expected = conn.select_star("main", "city", probe_city).rows.size();
    ASSERT_GT(expected, 0u);
    db.checkpoint();
  }

  // Reopen: a fresh connection re-derives the same keys and salt layouts
  // from the master secret and the re-supplied schema/specs/distribution,
  // so tags written before the restart remain searchable.
  Database db(dir.str());
  EncryptedConnection conn(db, master);
  conn.attach_table("main", schema, specs, dists);
  EXPECT_EQ(conn.select_star("main", "city", probe_city).rows.size(),
            expected);

  // A connection with the wrong master secret derives different tags and
  // finds nothing.
  EncryptedConnection wrong(db, Bytes(32, 0x43));
  wrong.attach_table("main", schema, specs, dists);
  EXPECT_TRUE(wrong.select_ids("main", "city", probe_city).ids.empty());
}

TEST(Integration, AttachTableRejectsUnknownOrMismatched) {
  TempDir dir;
  Database db(dir.str());
  EncryptedConnection conn(db, Bytes(32, 1));
  auto schema = RecordGenerator::schema();
  EXPECT_THROW(conn.attach_table("ghost", schema, {}, {}), WreError);

  // Create with one spec, attach with a different encrypted-column set:
  // physical layouts disagree.
  std::map<std::string, PlaintextDistribution> dists;
  conn.create_table(
      "main", schema,
      {EncryptedColumnSpec{"city", SaltMethod::kFixed, 4}}, dists);
  EXPECT_THROW(
      conn.attach_table("main", schema,
                        {EncryptedColumnSpec{"city", SaltMethod::kFixed, 4},
                         EncryptedColumnSpec{"zip", SaltMethod::kFixed, 4}},
                        dists),
      WreError);
}

}  // namespace
}  // namespace wre
