// Determinism suite for the parallel bulk-ingest pipeline.
//
// WRE's salt sets derive pseudorandomly from (key, m), and the pipeline
// draws each record's remaining randomness (salt choice, AES-CTR nonces)
// from a PRF stream keyed by (master secret, stream nonce, record index).
// Ingesting the same record set with a fixed stream nonce must therefore be
// *bit-identical* — tags, ciphertexts, manifest — no matter how many worker
// threads encrypt it, for every salt method.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/encrypted_client.h"
#include "src/core/ingest_pipeline.h"
#include "src/crypto/aes_ctr.h"
#include "src/crypto/hkdf.h"
#include "src/sql/database.h"
#include "tests/test_util.h"

namespace wre::core {
namespace {

using sql::Column;
using sql::Row;
using sql::Schema;
using sql::Value;
using sql::ValueType;
using wre::testing::TempDir;

Bytes test_secret() {
  Bytes secret(32, 0);
  for (size_t i = 0; i < secret.size(); ++i) {
    secret[i] = static_cast<uint8_t>(0xa0 + i);
  }
  return secret;
}

Bytes test_nonce() { return Bytes(16, 0x5c); }

Schema logical_schema() {
  return Schema({Column{"id", ValueType::kInt64, true},
                 Column{"name", ValueType::kText},
                 Column{"city", ValueType::kText},
                 Column{"age", ValueType::kInt64},
                 Column{"note", ValueType::kText}});
}

const std::vector<std::string>& names() {
  static const std::vector<std::string> v{"alice", "bob",   "carol", "dave",
                                          "erin",  "frank", "grace", "heidi"};
  return v;
}

const std::vector<std::string>& cities() {
  static const std::vector<std::string> v{"springfield", "fairview",
                                          "riverton", "salem"};
  return v;
}

PlaintextDistribution dist_over(const std::vector<std::string>& values) {
  std::unordered_map<std::string, uint64_t> counts;
  for (size_t i = 0; i < values.size(); ++i) {
    counts[values[i]] = 3 * i + 1;  // skewed, low-entropy
  }
  return PlaintextDistribution::from_counts(counts);
}

std::vector<Row> make_rows(int64_t n) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({Value::int64(i),
                    Value::text(names()[static_cast<size_t>(i * 7) %
                                        names().size()]),
                    Value::text(cities()[static_cast<size_t>(i * 3) %
                                         cities().size()]),
                    Value::int64((i * 37) % 1000),
                    Value::text("note-" + std::to_string(i))});
  }
  return rows;
}

double parameter_for(SaltMethod method) {
  switch (method) {
    case SaltMethod::kDeterministic: return 0;
    case SaltMethod::kFixed: return 16;
    case SaltMethod::kProportional: return 64;
    case SaltMethod::kPoisson: return 50;
    case SaltMethod::kBucketizedPoisson: return 50;
  }
  return 0;
}

/// Decrypts the stored manifest blob exactly the way open_table does, so
/// runs can be compared on manifest *plaintext* (the stored blob carries a
/// fresh AES nonce per save and legitimately differs between runs).
Bytes manifest_plaintext(sql::Database& db, const std::string& table,
                         ByteView master_secret) {
  std::map<int64_t, Bytes> chunks;
  db.table("_wre_manifest").scan([&](int64_t, const Row& row) {
    if (row[1].as_text() != table) return;
    chunks[row[3].as_int64()] = row[5].as_blob();
  });
  Bytes blob;
  for (const auto& [seq, chunk] : chunks) append(blob, chunk);
  Bytes key = crypto::hkdf(to_bytes("wre-manifest-v1"), master_secret,
                           to_bytes("manifest-key"), 32);
  return crypto::AesCtr(key).decrypt(blob);
}

struct RunResult {
  std::vector<Row> physical_rows;                    // heap order
  std::multiset<uint64_t> name_tags;                 // tag column multiset
  std::multiset<uint64_t> city_tags;
  Bytes manifest_plain;
  std::map<std::string, std::vector<Row>> by_name;   // reopened + decrypted
};

RunResult run_ingest(SaltMethod method, unsigned threads,
                     const std::vector<Row>& rows) {
  TempDir dir("parallel_ingest");
  sql::Database db(dir.str());
  Bytes secret = test_secret();
  EncryptedConnection conn(db, secret);

  std::vector<EncryptedColumnSpec> specs{{"name", method,
                                          parameter_for(method)},
                                         {"city", method,
                                          parameter_for(method)}};
  std::map<std::string, PlaintextDistribution> dists;
  dists.emplace("name", dist_over(names()));
  dists.emplace("city", dist_over(cities()));
  std::vector<RangeColumnSpec> ranges{RangeColumnSpec("age", 0, 1000, 16)};
  conn.create_table("t", logical_schema(), specs, dists, ranges);

  IngestOptions options;
  options.threads = threads;
  options.batch_rows = 7;  // ragged batches: last one is partial
  options.stream_nonce = test_nonce();
  IngestPipeline pipeline(conn, "t", options);
  IngestStats stats = pipeline.ingest(rows);
  EXPECT_EQ(stats.rows, rows.size());
  EXPECT_EQ(stats.threads, threads);

  RunResult result;
  const Schema& physical = db.table("t").schema();
  size_t name_tag = *physical.index_of("name_tag");
  size_t city_tag = *physical.index_of("city_tag");
  db.table("t").scan([&](int64_t, const Row& row) {
    result.physical_rows.push_back(row);
    result.name_tags.insert(row[name_tag].as_tag());
    result.city_tags.insert(row[city_tag].as_tag());
  });
  result.manifest_plain = manifest_plaintext(db, "t", secret);

  // Reopen through the manifest with a fresh connection and decrypt: the
  // payload side must round-trip regardless of ingest parallelism.
  EncryptedConnection reader(db, secret);
  reader.open_table("t");
  for (const std::string& name : names()) {
    auto selected = reader.select_star("t", "name", name);
    std::sort(selected.rows.begin(), selected.rows.end(),
              [](const Row& a, const Row& b) {
                return a[0].as_int64() < b[0].as_int64();
              });
    result.by_name[name] = std::move(selected.rows);
  }
  return result;
}

class ParallelIngestDeterminism
    : public ::testing::TestWithParam<SaltMethod> {};

TEST_P(ParallelIngestDeterminism, BitIdenticalAcrossThreadCounts) {
  const SaltMethod method = GetParam();
  const std::vector<Row> rows = make_rows(120);

  RunResult serial = run_ingest(method, 1, rows);
  ASSERT_EQ(serial.physical_rows.size(), rows.size());

  // Sanity on the serial run: decrypted rows match what was ingested.
  size_t matched = 0;
  for (const auto& [name, selected] : serial.by_name) {
    for (const Row& row : selected) {
      EXPECT_EQ(row[1].as_text(), name);
      ++matched;
    }
  }
  EXPECT_EQ(matched, rows.size());

  for (unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    RunResult parallel = run_ingest(method, threads, rows);
    // Bit-identical physical table: tags AND ciphertexts, row for row.
    EXPECT_EQ(parallel.physical_rows, serial.physical_rows);
    // The ISSUE-level invariants, asserted explicitly: tag multisets,
    // decrypted plaintexts, manifest.
    EXPECT_EQ(parallel.name_tags, serial.name_tags);
    EXPECT_EQ(parallel.city_tags, serial.city_tags);
    EXPECT_EQ(parallel.by_name, serial.by_name);
    EXPECT_EQ(parallel.manifest_plain, serial.manifest_plain);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSaltMethods, ParallelIngestDeterminism,
    ::testing::Values(SaltMethod::kDeterministic, SaltMethod::kFixed,
                      SaltMethod::kProportional, SaltMethod::kPoisson,
                      SaltMethod::kBucketizedPoisson),
    [](const ::testing::TestParamInfo<SaltMethod>& info) {
      std::string name = salt_method_name(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// Bulk ingest must be semantically interchangeable with row-at-a-time
// insert(): same decrypted contents, same query results, same drift
// accounting (tags themselves differ — serial insert draws salts from the
// connection's entropy stream, not the pipeline's per-record PRF stream).
TEST(ParallelIngest, MatchesSerialInsertSemantics) {
  const std::vector<Row> rows = make_rows(80);

  TempDir serial_dir("ingest_serial");
  TempDir bulk_dir("ingest_bulk");
  sql::Database serial_db(serial_dir.str());
  sql::Database bulk_db(bulk_dir.str());
  EncryptedConnection serial_conn(serial_db, test_secret());
  EncryptedConnection bulk_conn(bulk_db, test_secret());

  std::vector<EncryptedColumnSpec> specs{
      {"name", SaltMethod::kPoisson, 50}, {"city", SaltMethod::kPoisson, 50}};
  std::map<std::string, PlaintextDistribution> dists;
  dists.emplace("name", dist_over(names()));
  dists.emplace("city", dist_over(cities()));
  std::vector<RangeColumnSpec> ranges{RangeColumnSpec("age", 0, 1000, 16)};
  serial_conn.create_table("t", logical_schema(), specs, dists, ranges);
  bulk_conn.create_table("t", logical_schema(), specs, dists, ranges);

  for (const Row& row : rows) serial_conn.insert("t", row);
  IngestOptions options;
  options.threads = 4;
  options.batch_rows = 16;
  bulk_conn.insert_bulk("t", rows, options);

  ASSERT_EQ(serial_db.table("t").row_count(), bulk_db.table("t").row_count());
  for (const std::string& name : names()) {
    auto a = serial_conn.select_star("t", "name", name);
    auto b = bulk_conn.select_star("t", "name", name);
    auto key = [](const Row& r) { return r[0].as_int64(); };
    std::sort(a.rows.begin(), a.rows.end(),
              [&](const Row& x, const Row& y) { return key(x) < key(y); });
    std::sort(b.rows.begin(), b.rows.end(),
              [&](const Row& x, const Row& y) { return key(x) < key(y); });
    EXPECT_EQ(a.rows, b.rows) << "name=" << name;
  }
  auto range_a = serial_conn.select_star_range("t", "age", 100, 400);
  auto range_b = bulk_conn.select_star_range("t", "age", 100, 400);
  EXPECT_EQ(range_a.rows.size(), range_b.rows.size());

  for (const char* col : {"name", "city"}) {
    auto da = serial_conn.column_drift("t", col);
    auto db = bulk_conn.column_drift("t", col);
    EXPECT_EQ(da.observed_rows, db.observed_rows);
    EXPECT_EQ(da.unseen_rows, db.unseen_rows);
    EXPECT_DOUBLE_EQ(da.tv_distance, db.tv_distance);
  }
}

// Record indices continue across ingest() calls on one pipeline, so chunked
// streaming with a fixed nonce equals one big ingest of the concatenation.
TEST(ParallelIngest, ChunkedStreamingMatchesOneShot) {
  const std::vector<Row> rows = make_rows(60);

  auto load = [&](const std::vector<size_t>& chunk_sizes) {
    TempDir dir("ingest_chunked");
    auto db = std::make_unique<sql::Database>(dir.str());
    EncryptedConnection conn(*db, test_secret());
    std::vector<EncryptedColumnSpec> specs{{"name", SaltMethod::kPoisson, 50},
                                           {"city", SaltMethod::kPoisson, 50}};
    std::map<std::string, PlaintextDistribution> dists;
    dists.emplace("name", dist_over(names()));
    dists.emplace("city", dist_over(cities()));
    conn.create_table("t", logical_schema(), specs, dists);

    IngestOptions options;
    options.threads = 2;
    options.batch_rows = 8;
    options.stream_nonce = test_nonce();
    IngestPipeline pipeline(conn, "t", options);
    size_t at = 0;
    for (size_t n : chunk_sizes) {
      std::vector<Row> chunk(rows.begin() + static_cast<ptrdiff_t>(at),
                             rows.begin() + static_cast<ptrdiff_t>(at + n));
      pipeline.ingest(chunk);
      at += n;
    }
    EXPECT_EQ(pipeline.next_index(), rows.size());

    std::vector<Row> physical;
    db->table("t").scan(
        [&](int64_t, const Row& row) { physical.push_back(row); });
    return physical;
  };

  auto one_shot = load({60});
  auto chunked = load({13, 1, 20, 26});
  EXPECT_EQ(one_shot, chunked);
}

// Unseen-value rejection surfaces from worker threads as the same WreError
// a serial insert throws, and batches before the failure are kept.
TEST(ParallelIngest, WorkerErrorsPropagate) {
  TempDir dir("ingest_error");
  sql::Database db(dir.str());
  EncryptedConnection conn(db, test_secret());
  std::vector<EncryptedColumnSpec> specs{{"name", SaltMethod::kPoisson, 50}};
  std::map<std::string, PlaintextDistribution> dists;
  dists.emplace("name", dist_over(names()));
  Schema schema({Column{"id", ValueType::kInt64, true},
                 Column{"name", ValueType::kText}});
  conn.create_table("t", schema, specs, dists);

  std::vector<Row> rows;
  for (int64_t i = 0; i < 40; ++i) {
    rows.push_back({Value::int64(i), Value::text(names()[0])});
  }
  rows.push_back({Value::int64(1000), Value::text("mallory")});  // unseen

  IngestOptions options;
  options.threads = 4;
  options.batch_rows = 8;
  EXPECT_THROW(conn.insert_bulk("t", rows, options), WreError);
  // Full batches before the failing one were written; the failing batch and
  // later ones were discarded.
  EXPECT_EQ(db.table("t").row_count() % options.batch_rows, 0u);
  EXPECT_LE(db.table("t").row_count(), 40u);
}

}  // namespace
}  // namespace wre::core
