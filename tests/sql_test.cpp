#include <gtest/gtest.h>

#include "src/sql/database.h"
#include "src/sql/parser.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace wre::sql {
namespace {

using wre::testing::TempDir;

// ------------------------------------------------------------------ Value

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value::null().is_null());
  EXPECT_EQ(Value::int64(-5).as_int64(), -5);
  EXPECT_EQ(Value::text("hi").as_text(), "hi");
  EXPECT_EQ(Value::blob({1, 2}).as_blob(), (Bytes{1, 2}));
}

TEST(Value, TagBitcastRoundTrip) {
  uint64_t big = 0xfedcba9876543210ULL;
  EXPECT_EQ(Value::tag(big).as_tag(), big);
}

TEST(Value, AccessorTypeMismatchThrows) {
  EXPECT_THROW(Value::int64(1).as_text(), SqlError);
  EXPECT_THROW(Value::text("x").as_int64(), SqlError);
  EXPECT_THROW(Value::null().as_blob(), SqlError);
}

TEST(Value, SqlEqualsNullSemantics) {
  EXPECT_FALSE(Value::null().sql_equals(Value::null()));
  EXPECT_FALSE(Value::null().sql_equals(Value::int64(0)));
  EXPECT_TRUE(Value::int64(3).sql_equals(Value::int64(3)));
  EXPECT_FALSE(Value::int64(3).sql_equals(Value::text("3")));
}

TEST(Value, SqlLiteralRendering) {
  EXPECT_EQ(Value::null().to_sql_literal(), "NULL");
  EXPECT_EQ(Value::int64(-42).to_sql_literal(), "-42");
  EXPECT_EQ(Value::text("it's").to_sql_literal(), "'it''s'");
  EXPECT_EQ(Value::blob({0xab, 0xcd}).to_sql_literal(), "X'abcd'");
}

// ----------------------------------------------------------------- Schema

Schema person_schema() {
  return Schema({Column{"id", ValueType::kInt64, true},
                 Column{"name", ValueType::kText},
                 Column{"data", ValueType::kBlob}});
}

TEST(Schema, IndexOfIsCaseInsensitive) {
  Schema s = person_schema();
  EXPECT_EQ(s.index_of("NAME"), 1u);
  EXPECT_EQ(s.index_of("nope"), std::nullopt);
}

TEST(Schema, PrimaryKeyDetected) {
  EXPECT_EQ(person_schema().primary_key_index(), 0u);
  Schema no_pk({Column{"a", ValueType::kText}});
  EXPECT_EQ(no_pk.primary_key_index(), std::nullopt);
}

TEST(Schema, RejectsTextPrimaryKey) {
  EXPECT_THROW(Schema({Column{"a", ValueType::kText, true}}), SqlError);
}

TEST(Schema, RejectsDuplicateColumns) {
  EXPECT_THROW(Schema({Column{"a", ValueType::kText},
                       Column{"A", ValueType::kInt64}}),
               SqlError);
}

TEST(Schema, RowRoundTrip) {
  Schema s = person_schema();
  Row row = {Value::int64(7), Value::text("Ada"), Value::blob({9, 8, 7})};
  EXPECT_EQ(s.decode_row(s.encode_row(row)), row);
}

TEST(Schema, RowRoundTripWithNull) {
  Schema s = person_schema();
  Row row = {Value::int64(7), Value::null(), Value::null()};
  EXPECT_EQ(s.decode_row(s.encode_row(row)), row);
}

TEST(Schema, CheckRowRejectsArityMismatch) {
  Schema s = person_schema();
  EXPECT_THROW(s.check_row({Value::int64(1)}), SqlError);
}

TEST(Schema, CheckRowRejectsTypeMismatch) {
  Schema s = person_schema();
  EXPECT_THROW(
      s.check_row({Value::int64(1), Value::int64(2), Value::blob({})}),
      SqlError);
}

TEST(Schema, CheckRowRejectsNullPrimaryKey) {
  Schema s = person_schema();
  EXPECT_THROW(s.check_row({Value::null(), Value::text("x"), Value::null()}),
               SqlError);
}

TEST(Schema, DecodeRejectsCorruptRecords) {
  Schema s = person_schema();
  Row row = {Value::int64(7), Value::text("Ada"), Value::blob({1})};
  Bytes enc = s.encode_row(row);
  Bytes truncated(enc.begin(), enc.end() - 1);
  EXPECT_THROW(s.decode_row(truncated), SqlError);
  Bytes extended = enc;
  extended.push_back(0);
  EXPECT_THROW(s.decode_row(extended), SqlError);
}

// ----------------------------------------------------------------- Parser

TEST(Parser, CreateTable) {
  auto stmt = parse_statement(
      "CREATE TABLE People (id INTEGER PRIMARY KEY, name TEXT, data BLOB)");
  auto& ct = std::get<CreateTableStmt>(stmt);
  EXPECT_EQ(ct.table, "people");
  ASSERT_EQ(ct.columns.size(), 3u);
  EXPECT_TRUE(ct.columns[0].primary_key);
  EXPECT_EQ(ct.columns[1].type, ValueType::kText);
  EXPECT_EQ(ct.columns[2].type, ValueType::kBlob);
}

TEST(Parser, CreateIndexWithAndWithoutName) {
  auto a = std::get<CreateIndexStmt>(
      parse_statement("CREATE INDEX idx_tag ON main (fname_tag)"));
  EXPECT_EQ(a.index_name, "idx_tag");
  EXPECT_EQ(a.table, "main");
  EXPECT_EQ(a.column, "fname_tag");
  auto b = std::get<CreateIndexStmt>(
      parse_statement("CREATE INDEX ON main (city)"));
  EXPECT_TRUE(b.index_name.empty());
  EXPECT_EQ(b.column, "city");
}

TEST(Parser, InsertMultiRow) {
  auto stmt = std::get<InsertStmt>(parse_statement(
      "INSERT INTO t VALUES (1, 'a', X'00ff'), (2, NULL, X'')"));
  ASSERT_EQ(stmt.rows.size(), 2u);
  EXPECT_EQ(stmt.rows[0][0].as_int64(), 1);
  EXPECT_EQ(stmt.rows[0][2].as_blob(), (Bytes{0x00, 0xff}));
  EXPECT_TRUE(stmt.rows[1][1].is_null());
}

TEST(Parser, StringEscapes) {
  auto stmt = std::get<InsertStmt>(
      parse_statement("INSERT INTO t VALUES ('it''s ok')"));
  EXPECT_EQ(stmt.rows[0][0].as_text(), "it's ok");
}

TEST(Parser, SelectStarWithWhere) {
  auto stmt = std::get<SelectStmt>(
      parse_statement("SELECT * FROM main WHERE fname = 'Alice'"));
  EXPECT_TRUE(stmt.star);
  ASSERT_TRUE(stmt.where.has_value());
  EXPECT_EQ(stmt.where->kind, Expr::Kind::kEquals);
  EXPECT_EQ(stmt.where->column, "fname");
}

TEST(Parser, SelectColumnsOrChain) {
  auto stmt = std::get<SelectStmt>(parse_statement(
      "SELECT id, fname FROM main WHERE tag = 1 OR tag = 2 OR tag = 3"));
  EXPECT_EQ(stmt.columns, (std::vector<std::string>{"id", "fname"}));
  EXPECT_EQ(stmt.where->kind, Expr::Kind::kOr);
  EXPECT_EQ(stmt.where->children.size(), 3u);
}

TEST(Parser, SelectInList) {
  auto stmt = std::get<SelectStmt>(
      parse_statement("SELECT id FROM main WHERE tag IN (1, 2, 3)"));
  EXPECT_EQ(stmt.where->kind, Expr::Kind::kIn);
  EXPECT_EQ(stmt.where->values.size(), 3u);
}

TEST(Parser, SelectCountStar) {
  auto stmt = std::get<SelectStmt>(
      parse_statement("SELECT COUNT(*) FROM main WHERE a = 1"));
  EXPECT_TRUE(stmt.count_star);
}

TEST(Parser, SelectWithLimitAndSemicolon) {
  auto stmt = std::get<SelectStmt>(
      parse_statement("SELECT * FROM t LIMIT 10;"));
  EXPECT_EQ(stmt.limit, 10u);
}

TEST(Parser, AndOrPrecedenceAndParens) {
  Expr e = parse_expression("a = 1 AND b = 2 OR c = 3");
  // OR binds loosest: (a AND b) OR c.
  ASSERT_EQ(e.kind, Expr::Kind::kOr);
  ASSERT_EQ(e.children.size(), 2u);
  EXPECT_EQ(e.children[0].kind, Expr::Kind::kAnd);
  Expr f = parse_expression("a = 1 AND (b = 2 OR c = 3)");
  ASSERT_EQ(f.kind, Expr::Kind::kAnd);
  EXPECT_EQ(f.children[1].kind, Expr::Kind::kOr);
}

TEST(Parser, GarbageNeverCrashes) {
  // Random byte soup must either parse or throw SqlError — no crashes, no
  // other exception types.
  wre::Xoshiro256 rng(0xbadf00d);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    size_t len = rng.next_below(60);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(
          " ()',=*;xX0123456789abcSELECTFROMWHEREINSERT\t\n\"%-"[rng.next_below(
              51)]);
    }
    try {
      (void)parse_statement(input);
    } catch (const SqlError&) {
      // expected for most inputs
    }
  }
}

TEST(Parser, SyntaxErrorsAreReported) {
  EXPECT_THROW(parse_statement("SELEKT * FROM t"), SqlError);
  EXPECT_THROW(parse_statement("SELECT * FROM"), SqlError);
  EXPECT_THROW(parse_statement("INSERT INTO t VALUES (1"), SqlError);
  EXPECT_THROW(parse_statement("SELECT * FROM t WHERE a ="), SqlError);
  EXPECT_THROW(parse_statement("SELECT * FROM t trailing junk"), SqlError);
  EXPECT_THROW(parse_statement("CREATE TABLE t (a FLOAT)"), SqlError);
  EXPECT_THROW(parse_statement("INSERT INTO t VALUES ('unterminated"),
               SqlError);
}

// ----------------------------------------------------- extract disjunction

TEST(Planner, ExtractsSingleColumnDisjunction) {
  auto got = extract_single_column_disjunction(
      parse_expression("tag = 1 OR tag = 2 OR tag IN (3, 4)"));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->first, "tag");
  EXPECT_EQ(got->second.size(), 4u);
}

TEST(Planner, RejectsMultiColumnDisjunction) {
  EXPECT_FALSE(extract_single_column_disjunction(
                   parse_expression("a = 1 OR b = 2"))
                   .has_value());
}

TEST(Planner, RejectsConjunction) {
  EXPECT_FALSE(extract_single_column_disjunction(
                   parse_expression("a = 1 AND a = 2"))
                   .has_value());
}

// ------------------------------------------------------------ Table & DB

TEST(Database, CreateInsertSelectViaSql) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)");
  db.execute("INSERT INTO t VALUES (1, 'alice'), (2, 'bob'), (3, 'alice')");
  auto rs = db.execute("SELECT * FROM t WHERE name = 'alice'");
  EXPECT_EQ(rs.rows.size(), 2u);
  EXPECT_FALSE(rs.used_index);  // no index on name yet
}

TEST(Database, IndexProbeIsUsedWhenAvailable) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)");
  db.execute("CREATE INDEX ON t (name)");
  db.execute("INSERT INTO t VALUES (1, 'alice'), (2, 'bob'), (3, 'alice')");
  auto rs = db.execute("SELECT * FROM t WHERE name = 'alice'");
  EXPECT_TRUE(rs.used_index);
  EXPECT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.index_probes, 1u);
}

TEST(Database, IndexOnlySelectIdAvoidsHeap) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER)");
  db.execute("CREATE INDEX ON t (tag)");
  db.execute("INSERT INTO t VALUES (1, 100), (2, 100), (3, 200)");
  auto rs = db.execute("SELECT id FROM t WHERE tag = 100");
  EXPECT_TRUE(rs.used_index);
  EXPECT_EQ(rs.heap_fetches, 0u);  // resolved from the index alone
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].as_int64(), 1);
  EXPECT_EQ(rs.rows[1][0].as_int64(), 2);
}

TEST(Database, SelectStarFetchesHeap) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER)");
  db.execute("CREATE INDEX ON t (tag)");
  db.execute("INSERT INTO t VALUES (1, 100), (2, 100)");
  auto rs = db.execute("SELECT * FROM t WHERE tag = 100");
  EXPECT_EQ(rs.heap_fetches, 2u);
}

TEST(Database, TextIndexSelectIdIsIndexOnly) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)");
  db.execute("CREATE INDEX ON t (name)");
  db.execute("INSERT INTO t VALUES (1, 'x')");
  // SELECT id over a hashed text index answers from the index alone (the
  // 64-bit hash key's collision risk is accepted, like a hash index).
  auto rs = db.execute("SELECT id FROM t WHERE name = 'x'");
  EXPECT_EQ(rs.heap_fetches, 0u);
  EXPECT_EQ(rs.rows.size(), 1u);
}

TEST(Database, TextIndexSelectStarStillRechecks) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)");
  db.execute("CREATE INDEX ON t (name)");
  db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  auto rs = db.execute("SELECT * FROM t WHERE name = 'x'");
  EXPECT_EQ(rs.heap_fetches, 1u);
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].as_text(), "x");
}

TEST(Database, InClauseProbesOncePerDistinctValue) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER)");
  db.execute("CREATE INDEX ON t (tag)");
  db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  auto rs = db.execute("SELECT id FROM t WHERE tag IN (10, 20, 20, 10)");
  EXPECT_EQ(rs.index_probes, 2u);
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST(Database, CountStar) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER)");
  db.execute("INSERT INTO t VALUES (1, 10), (2, 10), (3, 30)");
  auto rs = db.execute("SELECT COUNT(*) FROM t WHERE tag = 10");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int64(), 2);
}

TEST(Database, LimitCapsResults) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER)");
  for (int i = 0; i < 20; ++i) {
    db.execute("INSERT INTO t VALUES (" + std::to_string(i) + ", 5)");
  }
  EXPECT_EQ(db.execute("SELECT * FROM t WHERE tag = 5 LIMIT 7").rows.size(),
            7u);
}

TEST(Database, DuplicatePrimaryKeyRejected) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)");
  db.execute("INSERT INTO t VALUES (1, 'a')");
  EXPECT_THROW(db.execute("INSERT INTO t VALUES (1, 'b')"), SqlError);
}

TEST(Database, NullsAreNotIndexedAndNeverEqual) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)");
  db.execute("CREATE INDEX ON t (name)");
  db.execute("INSERT INTO t VALUES (1, NULL), (2, 'x')");
  EXPECT_EQ(db.execute("SELECT * FROM t WHERE name = 'x'").rows.size(), 1u);
}

TEST(Database, UnknownTableAndColumnErrors) {
  TempDir dir;
  Database db(dir.str());
  EXPECT_THROW(db.execute("SELECT * FROM nope"), SqlError);
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)");
  EXPECT_THROW(db.execute("SELECT nope FROM t"), SqlError);
  EXPECT_THROW(db.execute("SELECT * FROM t WHERE ghost = 1"), SqlError);
  EXPECT_THROW(db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)"),
               SqlError);
}

TEST(Database, CatalogPersistsAcrossReopen) {
  TempDir dir;
  {
    Database db(dir.str());
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)");
    db.execute("CREATE INDEX ON t (name)");
    db.execute("INSERT INTO t VALUES (1, 'alice')");
    db.checkpoint();
  }
  Database db(dir.str());
  auto rs = db.execute("SELECT * FROM t WHERE name = 'alice'");
  EXPECT_TRUE(rs.used_index);
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].as_text(), "alice");
}

TEST(Database, HiddenRowidTablesWork) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (name TEXT, v INTEGER)");
  db.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)");
  auto rs = db.execute("SELECT * FROM t WHERE name = 'b'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].as_int64(), 2);
}

TEST(Database, CreateIndexBackfillsExistingRows) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER)");
  db.execute("INSERT INTO t VALUES (1, 9), (2, 9), (3, 8)");
  db.execute("CREATE INDEX ON t (tag)");
  auto rs = db.execute("SELECT id FROM t WHERE tag = 9");
  EXPECT_TRUE(rs.used_index);
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST(Database, ClearCacheKeepsResultsCorrect) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER)");
  db.execute("CREATE INDEX ON t (tag)");
  for (int i = 0; i < 500; ++i) {
    db.execute("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
               std::to_string(i % 10) + ")");
  }
  auto warm = db.execute("SELECT id FROM t WHERE tag = 3");
  db.clear_cache();
  auto cold = db.execute("SELECT id FROM t WHERE tag = 3");
  EXPECT_EQ(warm.rows.size(), cold.rows.size());
  EXPECT_EQ(cold.rows.size(), 50u);
}

TEST(Database, SizesGrowWithData) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)");
  db.execute("CREATE INDEX ON t (name)");
  uint64_t d0 = db.data_size_bytes();
  uint64_t i0 = db.index_size_bytes();
  for (int i = 0; i < 2000; ++i) {
    db.execute("INSERT INTO t VALUES (" + std::to_string(i) + ", 'name" +
               std::to_string(i) + "')");
  }
  EXPECT_GT(db.data_size_bytes(), d0);
  EXPECT_GT(db.index_size_bytes(), i0);
}

TEST(Database, ConjunctionUsesIndexAndRechecks) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER, grp INTEGER)");
  db.execute("CREATE INDEX ON t (tag)");
  for (int i = 0; i < 100; ++i) {
    db.execute("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
               std::to_string(i % 10) + ", " + std::to_string(i % 3) + ")");
  }
  auto rs = db.execute("SELECT * FROM t WHERE tag = 4 AND grp = 1");
  EXPECT_TRUE(rs.used_index);
  // 10 rows have tag=4; of those, ids 4,34,64,94 -> grp = 1,1,1,1.
  size_t expected = 0;
  for (int i = 4; i < 100; i += 10) {
    if (i % 3 == 1) ++expected;
  }
  EXPECT_EQ(rs.rows.size(), expected);
  EXPECT_EQ(rs.heap_fetches, 10u);  // all tag=4 rows fetched, then rechecked
}

TEST(Database, ConjunctionPicksMostSelectiveIndexedChild) {
  TempDir dir;
  Database db(dir.str());
  db.execute(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)");
  db.execute("CREATE INDEX ON t (a)");
  db.execute("CREATE INDEX ON t (b)");
  for (int i = 0; i < 50; ++i) {
    db.execute("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
               std::to_string(i % 2) + ", " + std::to_string(i) + ")");
  }
  // `b = 7` (IN-list of 1) is more selective than `a IN (0, 1)`.
  auto rs = db.execute("SELECT * FROM t WHERE a IN (0, 1) AND b = 7");
  EXPECT_TRUE(rs.used_index);
  EXPECT_EQ(rs.index_probes, 1u);
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int64(), 7);
}

TEST(Database, ConjunctionSelectIdStillFetchesForRecheck) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER, g INTEGER)");
  db.execute("CREATE INDEX ON t (tag)");
  db.execute("INSERT INTO t VALUES (1, 5, 0), (2, 5, 1)");
  auto rs = db.execute("SELECT id FROM t WHERE tag = 5 AND g = 1");
  EXPECT_TRUE(rs.used_index);
  EXPECT_GT(rs.heap_fetches, 0u);  // residual predicate needs the rows
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int64(), 2);
}

TEST(Database, ConjunctionWithoutIndexedChildSeqScans) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)");
  db.execute("INSERT INTO t VALUES (1, 1, 2), (2, 1, 3)");
  auto rs = db.execute("SELECT * FROM t WHERE a = 1 AND b = 3");
  EXPECT_FALSE(rs.used_index);
  EXPECT_EQ(rs.rows.size(), 1u);
}

TEST(Database, ExplainDescribesIndexPlan) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER)");
  db.execute("CREATE INDEX ON t (tag)");
  db.execute("INSERT INTO t VALUES (1, 5)");

  auto rs = db.execute("EXPLAIN SELECT id FROM t WHERE tag IN (1, 2, 3)");
  ASSERT_EQ(rs.rows.size(), 1u);
  std::string plan = rs.rows[0][0].as_text();
  EXPECT_NE(plan.find("multi-probe index scan"), std::string::npos);
  EXPECT_NE(plan.find("3 probe(s)"), std::string::npos);
  EXPECT_NE(plan.find("index-only"), std::string::npos);

  auto seq = db.execute("EXPLAIN SELECT * FROM t");
  EXPECT_NE(seq.rows[0][0].as_text().find("sequential scan"),
            std::string::npos);

  auto conj =
      db.execute("EXPLAIN SELECT * FROM t WHERE tag = 1 AND id = 2");
  EXPECT_NE(conj.rows[0][0].as_text().find("recheck residual"),
            std::string::npos);
}

TEST(Database, ExplainDoesNotExecute) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER)");
  db.execute("INSERT INTO t VALUES (1, 5)");
  auto rs = db.execute("EXPLAIN SELECT * FROM t WHERE tag = 5");
  EXPECT_EQ(rs.heap_fetches, 0u);
  EXPECT_EQ(rs.index_probes, 0u);
  ASSERT_EQ(rs.rows.size(), 1u);  // one plan row, not one data row
  EXPECT_EQ(rs.columns, std::vector<std::string>{"plan"});
}

TEST(Database, BlobRoundTripThroughSql) {
  TempDir dir;
  Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, data BLOB)");
  db.execute("INSERT INTO t VALUES (1, X'deadbeef')");
  auto rs = db.execute("SELECT * FROM t WHERE id = 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].as_blob(), from_hex("deadbeef"));
}

}  // namespace
}  // namespace wre::sql
