// Network chaos harness: drives a real client/server pair through seeded,
// randomized fault schedules (connection resets, torn writes, delayed
// frames, failing accepts) and asserts the end-to-end fault-tolerance
// contract of DESIGN.md §5.6:
//
//   * exactly-once ingest — an acknowledged batch is present exactly once,
//     an unacknowledged batch is all-or-nothing, and no row ever appears
//     twice no matter how many times the client retried;
//   * the server survives — after the storm it still answers, the accept
//     loop never died, and shutdown is clean;
//   * the client's retry machinery fails loudly and informatively when the
//     budget, attempt cap or overall deadline runs out.
//
// Every schedule is reproduced by its seed. The sweep size and base seed
// come from the environment so scripts/chaos_smoke.sh can widen the search
// without recompiling:
//
//   WRE_CHAOS_SCHEDULES=100 WRE_CHAOS_SEED=7 ./net_chaos_test
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/net/net_fault.h"
#include "src/net/remote_connection.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/sql/database.h"
#include "tests/test_util.h"

namespace wre::net {
namespace {

using wre::testing::TempDir;

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  try {
    return std::stoull(v);
  } catch (...) {
    return fallback;
  }
}

/// Disarms the process-wide injector on scope exit so a failing schedule
/// cannot poison the tests that follow it.
struct ChaosGuard {
  ~ChaosGuard() { NetFaultInjector::instance().reset(); }
};

/// No declared primary key: an uncertain batch (client exhausted its
/// retries without an ACK) may be re-sent by a *new* logical request in a
/// later scenario, and the invariants below are about occurrence counts,
/// not key conflicts.
sql::Schema chaos_schema() {
  return sql::Schema({{"seq", sql::ValueType::kInt64, false},
                      {"tag", sql::ValueType::kInt64, false},
                      {"body", sql::ValueType::kBlob, false}});
}

RemoteOptions aggressive_retry() {
  RemoteOptions ro;
  ro.retry.max_attempts = 10;
  ro.retry.initial_backoff_ms = 1;
  ro.retry.max_backoff_ms = 16;
  ro.retry.overall_deadline_ms = 20000;
  ro.retry.budget_tokens = 1000.0;
  return ro;
}

// ---------------------------------------------------------------------------
// The main sweep: randomized schedules, exactly-once ingest.

void run_one_schedule(uint64_t seed) {
  SCOPED_TRACE("chaos schedule seed=" + std::to_string(seed));
  ChaosGuard guard;

  TempDir dir("net_chaos");
  sql::Database db(dir.str());
  ServerOptions sopts;
  sopts.worker_threads = 4;
  sopts.read_timeout_ms = 5000;
  Server server(db, sopts);
  server.start();

  {
    RemoteConnection setup("127.0.0.1", server.port());
    setup.create_table("chaos", chaos_schema());
  }

  // Vary the mix per seed so the sweep covers reset-heavy, torn-heavy and
  // delay-heavy regimes; rate is per socket operation, and one roundtrip
  // crosses several, so even 5% bites most requests eventually.
  NetFaultInjector::Config cfg;
  cfg.seed = seed;
  cfg.rate = 0.05 + 0.05 * static_cast<double>(seed % 3);
  cfg.reset = true;
  cfg.torn = (seed % 2) == 0;
  cfg.delay_ms = (seed % 3) == 0 ? 2 : 0;
  NetFaultInjector::instance().arm(cfg);

  constexpr int kBatches = 12;
  constexpr int kRowsPerBatch = 5;
  std::vector<bool> acked(kBatches, false);
  {
    RemoteConnection remote("127.0.0.1", server.port(), aggressive_retry());
    for (int b = 0; b < kBatches; ++b) {
      std::vector<sql::Row> rows;
      for (int i = 0; i < kRowsPerBatch; ++i) {
        int64_t seq = b * 100 + i;
        rows.push_back({sql::Value::int64(seq), sql::Value::int64(b),
                        sql::Value::blob(Bytes{static_cast<uint8_t>(b)})});
      }
      try {
        remote.insert_batch("chaos", rows);
        acked[b] = true;
      } catch (const RetriesExhaustedError&) {
        // Uncertain: the batch may or may not have landed — but it must
        // not have landed twice, and must have landed atomically.
      }
    }
  }

  NetFaultInjector::instance().reset();

  // Verify through a fresh, fault-free client.
  RemoteConnection verify("127.0.0.1", server.port());
  verify.ping();  // the server survived the storm
  std::map<int64_t, int> seq_count;
  verify.scan("chaos", [&](const sql::Row& row) {
    seq_count[row[0].as_int64()] += 1;
  });

  for (const auto& [seq, count] : seq_count) {
    EXPECT_EQ(count, 1) << "row seq=" << seq << " ingested " << count
                        << " times — a retry double-applied";
  }
  for (int b = 0; b < kBatches; ++b) {
    int present = 0;
    for (int i = 0; i < kRowsPerBatch; ++i) {
      present += seq_count.count(b * 100 + i) ? 1 : 0;
    }
    if (acked[b]) {
      EXPECT_EQ(present, kRowsPerBatch)
          << "batch " << b << " was acknowledged but only " << present << "/"
          << kRowsPerBatch << " rows are present";
    } else {
      EXPECT_TRUE(present == 0 || present == kRowsPerBatch)
          << "batch " << b << " applied partially (" << present << "/"
          << kRowsPerBatch << " rows)";
    }
  }

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(NetChaos, RandomizedFaultSchedulesPreserveExactlyOnce) {
  uint64_t schedules = env_u64("WRE_CHAOS_SCHEDULES", 6);
  uint64_t base_seed = env_u64("WRE_CHAOS_SEED", 1);
  for (uint64_t s = 0; s < schedules; ++s) {
    run_one_schedule(base_seed + s);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Overload protection: admission control sheds, then recovers.

TEST(NetChaos, AdmissionControlShedsBeyondMaxConnections) {
  ChaosGuard guard;
  TempDir dir("net_overload");
  sql::Database db(dir.str());
  ServerOptions sopts;
  sopts.worker_threads = 4;
  sopts.read_timeout_ms = 5000;
  sopts.max_connections = 2;
  Server server(db, sopts);
  server.start();

  // Two idle connections occupy the admission budget.
  Socket idle1 = Socket::connect("127.0.0.1", server.port());
  Socket idle2 = Socket::connect("127.0.0.1", server.port());
  for (int i = 0; i < 200 && server.live_sessions() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.live_sessions(), 2u);

  // The shed is visible on the wire: the server volunteers a kOverloaded
  // error frame before closing the connection.
  {
    Socket third = Socket::connect("127.0.0.1", server.port());
    uint8_t header[kFrameHeaderBytes];
    ASSERT_TRUE(third.recv_all_or_eof(header, sizeof(header)));
    FrameHeader fh = decode_frame_header(header, kDefaultMaxFrameBytes);
    EXPECT_EQ(fh.opcode, Opcode::kError);
    Bytes body(fh.payload_length);
    third.recv_all(body.data(), body.size());
    WireReader r(body);
    EXPECT_EQ(static_cast<StatusCode>(r.u16()), StatusCode::kOverloaded);
    EXPECT_NE(r.string().find("capacity"), std::string::npos);
  }
  EXPECT_GE(server.sessions_shed(), 1u);

  // A retrying client gives up loudly while capacity stays exhausted
  // (whether an attempt reads the shed frame or loses the race to the
  // close, the result is bounded attempts, not a hang).
  RemoteOptions ro;
  ro.retry.max_attempts = 2;
  ro.retry.initial_backoff_ms = 1;
  RemoteConnection third("127.0.0.1", server.port(), ro);
  EXPECT_THROW(third.ping(), RetriesExhaustedError);

  // Capacity freed -> the same client's retry machinery succeeds.
  idle1 = Socket();  // close
  idle2 = Socket();
  for (int i = 0; i < 200 && server.live_sessions() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  RemoteConnection again("127.0.0.1", server.port(), aggressive_retry());
  again.ping();
  server.stop();
}

// ---------------------------------------------------------------------------
// Accept-loop resilience: transient accept() failures must not kill it.

TEST(NetChaos, AcceptLoopSurvivesTransientAcceptFailures) {
  ChaosGuard guard;
  TempDir dir("net_accept");
  sql::Database db(dir.str());
  Server server(db, {});
  server.start();

  NetFaultInjector::Config cfg;
  cfg.seed = 42;
  cfg.accept_fail = 3;  // EMFILE-style storm: next 3 accepts throw
  NetFaultInjector::instance().arm(cfg);

  // The accept loop hits the injected failures on its next accept() calls
  // (connections park in the kernel backlog while it backs off). Wait for
  // all three to burn, then prove the loop survived: a fresh connection is
  // still served.
  RemoteConnection remote("127.0.0.1", server.port());
  remote.ping();
  for (int i = 0; i < 2000 && server.accept_retries() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.accept_retries(), 3u);
  RemoteConnection after("127.0.0.1", server.port());
  after.ping();
  EXPECT_GE(server.sessions_accepted(), 2u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Retry-policy failure modes: each exhaustion path is loud and specific.

TEST(NetChaos, RetriesExhaustedNamesAttemptsAndElapsed) {
  // Grab a port that nothing listens on (bind, learn, release).
  uint16_t dead_port;
  {
    TempDir dir("net_dead");
    sql::Database db(dir.str());
    Server server(db, {});
    dead_port = server.port();
  }

  RemoteOptions ro;
  ro.retry.max_attempts = 3;
  ro.retry.initial_backoff_ms = 1;
  ro.retry.max_backoff_ms = 2;
  RemoteConnection remote("127.0.0.1", dead_port, ro);
  try {
    remote.ping();
    FAIL() << "expected RetriesExhaustedError";
  } catch (const RetriesExhaustedError& e) {
    EXPECT_EQ(e.attempts(), 3);
    std::string msg = e.what();
    EXPECT_NE(msg.find("3 attempts"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ms"), std::string::npos) << msg;
    EXPECT_NE(msg.find("last error"), std::string::npos) << msg;
  }
  EXPECT_EQ(remote.stats().exhausted, 1u);
}

TEST(NetChaos, OverallDeadlineBoundsTheRetryLoop) {
  uint16_t dead_port;
  {
    TempDir dir("net_dead2");
    sql::Database db(dir.str());
    Server server(db, {});
    dead_port = server.port();
  }

  RemoteOptions ro;
  ro.retry.max_attempts = 1000000;
  ro.retry.initial_backoff_ms = 1;
  ro.retry.max_backoff_ms = 4;
  ro.retry.overall_deadline_ms = 60;
  auto start = std::chrono::steady_clock::now();
  RemoteConnection remote("127.0.0.1", dead_port, ro);
  try {
    remote.ping();
    FAIL() << "expected RetriesExhaustedError";
  } catch (const RetriesExhaustedError& e) {
    EXPECT_GE(e.elapsed_ms(), 60u);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos)
        << e.what();
  }
  auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  // The loop must not have blown far past its deadline (generous slack for
  // slow CI machines).
  EXPECT_LT(wall, 5000);
}

TEST(NetChaos, RetryBudgetExhaustsBeforeAttemptCap) {
  uint16_t dead_port;
  {
    TempDir dir("net_dead3");
    sql::Database db(dir.str());
    Server server(db, {});
    dead_port = server.port();
  }

  RemoteOptions ro;
  ro.retry.max_attempts = 100;
  ro.retry.initial_backoff_ms = 1;
  ro.retry.max_backoff_ms = 2;
  ro.retry.budget_tokens = 2.0;
  RemoteConnection remote("127.0.0.1", dead_port, ro);
  try {
    remote.ping();
    FAIL() << "expected RetriesExhaustedError";
  } catch (const RetriesExhaustedError& e) {
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos)
        << e.what();
    EXPECT_LT(e.attempts(), 100);
  }
}

// ---------------------------------------------------------------------------
// Server-side deadlines: a request whose lock wait exceeds the deadline is
// shed with kOverloaded before executing — and the client rides it out.

TEST(NetChaos, ServerDeadlineShedsLockWaitersAndClientRetries) {
  ChaosGuard guard;
  TempDir dir("net_deadline");
  sql::Database db(dir.str());
  ServerOptions sopts;
  sopts.worker_threads = 4;
  sopts.request_deadline_ms = 1;  // shed after a 1 ms lock wait
  Server server(db, sopts);
  server.start();

  {
    RemoteConnection setup("127.0.0.1", server.port());
    setup.create_table("chaos", chaos_schema());
  }

  // Writer: a stream of fat batches, each holding the db lock exclusively
  // for well over the 1 ms deadline. The tiny deadline sheds the writer's
  // *own* lock waits too when reads contend, so exhaustion is a legitimate
  // outcome — and safe to re-send: every shed happened before execution
  // (the dedup claim is aborted), so no attempt can have landed.
  std::atomic<bool> writer_done{false};
  std::string writer_error;
  std::thread writer([&] {
    try {
      RemoteConnection w("127.0.0.1", server.port(), aggressive_retry());
      Bytes fat(2048, 0xCD);
      for (int b = 0; b < 5; ++b) {
        std::vector<sql::Row> rows;
        for (int i = 0; i < 2000; ++i) {
          rows.push_back({sql::Value::int64(b * 10000 + i),
                          sql::Value::int64(b), sql::Value::blob(fat)});
        }
        for (;;) {
          try {
            w.insert_batch("chaos", rows);
            break;
          } catch (const RetriesExhaustedError&) {
            // Every attempt was shed pre-execution; resending cannot
            // double-apply.
          }
        }
      }
    } catch (const std::exception& e) {
      writer_error = e.what();
    }
    writer_done.store(true);
  });

  // Reader: keeps querying under the tiny server deadline; individual
  // requests get shed (kOverloaded) while a batch holds the lock, and the
  // retry loop absorbs the sheds (or gives up loudly and tries again).
  uint64_t reads = 0;
  {
    RemoteConnection r("127.0.0.1", server.port(), aggressive_retry());
    while (!writer_done.load()) {
      try {
        r.row_count("chaos");
        ++reads;
      } catch (const RetriesExhaustedError&) {
      }
    }
  }
  writer.join();
  EXPECT_EQ(writer_error, "");

  EXPECT_GT(reads, 0u);
  EXPECT_GE(server.deadline_rejects(), 1u);
  RemoteConnection verify("127.0.0.1", server.port());
  EXPECT_EQ(verify.row_count("chaos"), 10000u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Dedup-cache bounds: eviction keeps memory bounded without breaking
// exactly-once for retries inside the retain window.

Bytes insert_frame_with_key(uint8_t key_tag, int64_t seq) {
  WireWriter w;
  w.string("chaos");
  w.u32(1);
  w.row({sql::Value::int64(seq), sql::Value::int64(0),
         sql::Value::blob(Bytes{key_tag})});
  RequestExt ext;
  ext.has_key = true;
  ext.key.fill(key_tag);
  return encode_request_frame(Opcode::kInsertBatch, w.bytes(), ext);
}

Bytes raw_roundtrip(Socket& s, const Bytes& frame, Opcode expected) {
  s.send_all(frame);
  uint8_t header[kFrameHeaderBytes];
  s.recv_all(header, sizeof(header));
  FrameHeader fh = decode_frame_header(header, kDefaultMaxFrameBytes);
  EXPECT_EQ(fh.opcode, expected);
  Bytes body(fh.payload_length);
  if (fh.payload_length > 0) s.recv_all(body.data(), body.size());
  return body;
}

TEST(NetChaos, DedupEvictionIsBoundedAndKeepsRecentKeysExact) {
  ChaosGuard guard;
  TempDir dir("net_dedup");
  sql::Database db(dir.str());
  ServerOptions sopts;
  sopts.dedup.max_entries = 4;  // tiny cache to force eviction pressure
  Server server(db, sopts);
  server.start();

  {
    RemoteConnection setup("127.0.0.1", server.port());
    setup.create_table("chaos", chaos_schema());
  }

  Socket s = Socket::connect("127.0.0.1", server.port());
  // 20 distinct keys: far over max_entries, but the retain window may hold
  // up to 2x while entries are young — never more.
  for (uint8_t k = 1; k <= 20; ++k) {
    raw_roundtrip(s, insert_frame_with_key(k, k), Opcode::kOkIds);
  }

  // The freshest key is still cached: replaying it is a hit, not a second
  // execution — in-budget retries stay exactly-once under eviction.
  Bytes replay = raw_roundtrip(s, insert_frame_with_key(20, 20),
                               Opcode::kOkIds);
  EXPECT_FALSE(replay.empty());
  EXPECT_GE(server.dedup_hits(), 1u);

  RemoteConnection verify("127.0.0.1", server.port());
  EXPECT_EQ(verify.row_count("chaos"), 20u);  // 21 sends, 20 executions
  server.stop();
}

}  // namespace
}  // namespace wre::net
