// Shared helpers for the test suites.
#pragma once

#include <filesystem>
#include <random>
#include <string>

namespace wre::testing {

/// RAII temporary directory; removed recursively on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "wre_test") {
    auto base = std::filesystem::temp_directory_path();
    std::random_device rd;
    for (int attempt = 0; attempt < 100; ++attempt) {
      auto candidate = base / (prefix + "_" + std::to_string(rd()));
      std::error_code ec;
      if (std::filesystem::create_directory(candidate, ec)) {
        path_ = candidate;
        return;
      }
    }
    throw std::runtime_error("TempDir: cannot create temporary directory");
  }

  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

}  // namespace wre::testing
