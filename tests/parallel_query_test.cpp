// The concurrent read path, fast tier: parallel-vs-serial executor
// determinism (plain SQL and encrypted), concurrent readers sharing one
// connection while pages evict, and shared-latch behavior of the buffer
// pool itself. The heavier many-thread soak lives in
// concurrency_stress_test.cpp under the `stress` label.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/core/encrypted_client.h"
#include "src/sql/database.h"
#include "src/storage/buffer_pool.h"
#include "src/util/error.h"
#include "tests/test_util.h"

namespace wre {
namespace {

using core::EncryptedColumnSpec;
using core::EncryptedConnection;
using core::PlaintextDistribution;
using core::SaltMethod;
using sql::Column;
using sql::Row;
using sql::Schema;
using sql::Value;
using sql::ValueType;
using wre::testing::TempDir;

// ------------------------------------------------------- plain SQL engine

// A WHERE clause with enough IN values to cross the executor's parallel
// threshold, executed serially and with a worker pool: identical rows in
// identical order, identical executor counters.
TEST(ParallelQuery, PlainSqlMatchesSerial) {
  TempDir dir("pq_plain");
  sql::Database db(dir.str());
  Schema schema({Column{"id", ValueType::kInt64, true},
                 Column{"k", ValueType::kInt64},
                 Column{"s", ValueType::kText}});
  db.create_table("t", schema);
  db.create_index("t", "k");
  for (int64_t id = 0; id < 500; ++id) {
    db.table("t").insert({Value::int64(id), Value::int64(id % 97),
                          Value::text("row" + std::to_string(id))});
  }

  std::string in_list;
  for (int k = 0; k < 60; ++k) {
    if (k > 0) in_list += ", ";
    in_list += std::to_string(k);  // includes values with no matches (>96)
  }
  for (const char* query :
       {"SELECT id FROM t WHERE k IN (%)", "SELECT * FROM t WHERE k IN (%)",
        "SELECT count(*) FROM t WHERE k IN (%)"}) {
    std::string sql(query);
    sql.replace(sql.find('%'), 1, in_list);

    db.set_query_threads(1);
    sql::ResultSet serial = db.execute(sql);
    db.set_query_threads(4);
    sql::ResultSet parallel = db.execute(sql);
    db.set_query_threads(1);

    EXPECT_TRUE(parallel.used_index);
    EXPECT_EQ(parallel.rows, serial.rows) << sql;
    EXPECT_EQ(parallel.index_probes, serial.index_probes) << sql;
    EXPECT_EQ(parallel.heap_fetches, serial.heap_fetches) << sql;
  }
}

// LIMIT must keep its serial semantics (the parallel record-fetch phase is
// bypassed so no row past the limit is ever fetched twice differently).
TEST(ParallelQuery, LimitMatchesSerial) {
  TempDir dir("pq_limit");
  sql::Database db(dir.str());
  Schema schema({Column{"id", ValueType::kInt64, true},
                 Column{"k", ValueType::kInt64}});
  db.create_table("t", schema);
  db.create_index("t", "k");
  for (int64_t id = 0; id < 300; ++id) {
    db.table("t").insert({Value::int64(id), Value::int64(id % 20)});
  }
  std::string sql = "SELECT * FROM t WHERE k IN (";
  for (int k = 0; k < 20; ++k) sql += (k ? ", " : "") + std::to_string(k);
  sql += ") LIMIT 37";

  db.set_query_threads(1);
  sql::ResultSet serial = db.execute(sql);
  db.set_query_threads(3);
  sql::ResultSet parallel = db.execute(sql);

  EXPECT_EQ(serial.rows.size(), 37u);
  EXPECT_EQ(parallel.rows, serial.rows);
}

TEST(ParallelQuery, QueryThreadsOptionAndSetter) {
  TempDir dir("pq_opts");
  sql::DatabaseOptions options;
  options.query_threads = 3;
  sql::Database db(dir.str(), options);
  EXPECT_EQ(db.query_threads(), 3u);
  db.set_query_threads(1);
  EXPECT_EQ(db.query_threads(), 1u);
  db.set_query_threads(0);  // 0 = one per hardware thread
  EXPECT_GE(db.query_threads(), 1u);
}

// ----------------------------------------------------- encrypted queries

EncryptedConnection make_encrypted(sql::Database& db, int64_t rows) {
  EncryptedConnection conn(db, Bytes(32, 0x42));
  Schema schema({Column{"id", ValueType::kInt64, true},
                 Column{"name", ValueType::kText}});
  std::unordered_map<std::string, uint64_t> counts;
  for (int i = 0; i < 10; ++i) {
    counts["name" + std::to_string(i)] = static_cast<uint64_t>(1 + 3 * i);
  }
  std::map<std::string, PlaintextDistribution> dists;
  dists.emplace("name", PlaintextDistribution::from_counts(counts));
  std::vector<EncryptedColumnSpec> specs{{"name", SaltMethod::kPoisson, 60}};
  conn.create_table("t", schema, specs, dists);
  for (int64_t id = 0; id < rows; ++id) {
    conn.insert("t", {Value::int64(id),
                      Value::text("name" + std::to_string(id % 10))});
  }
  return conn;
}

TEST(ParallelQuery, EncryptedSelectMatchesSerial) {
  TempDir dir("pq_enc");
  sql::Database db(dir.str());
  EncryptedConnection conn = make_encrypted(db, 400);

  for (int i = 0; i < 10; ++i) {
    std::string value = "name" + std::to_string(i);
    db.set_query_threads(1);
    auto serial_ids = conn.select_ids("t", "name", value);
    auto serial_rows = conn.select_star("t", "name", value);
    db.set_query_threads(4);
    auto parallel_ids = conn.select_ids("t", "name", value);
    auto parallel_rows = conn.select_star("t", "name", value);
    db.set_query_threads(1);

    EXPECT_EQ(parallel_ids.ids, serial_ids.ids) << value;
    EXPECT_EQ(parallel_rows.rows, serial_rows.rows) << value;
    EXPECT_EQ(parallel_rows.false_positives, serial_rows.false_positives);
  }
}

// Repeated searches hit the client-side tag cache: the rewritten SQL (and
// thus the tag expansion) must be bit-identical across calls, and results
// unchanged.
TEST(ParallelQuery, TagCacheStableAcrossRepeatedSearches) {
  TempDir dir("pq_cache");
  sql::Database db(dir.str());
  EncryptedConnection conn = make_encrypted(db, 120);

  std::string first = conn.rewrite_select("t", "name", "name3", false);
  auto ids = conn.select_ids("t", "name", "name3");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(conn.rewrite_select("t", "name", "name3", false), first);
    auto again = conn.select_ids("t", "name", "name3");
    EXPECT_EQ(again.ids, ids.ids);
    EXPECT_EQ(again.sql, ids.sql);
    EXPECT_EQ(again.tags_in_query, ids.tags_in_query);
  }
}

// N reader threads issue mixed SELECT id / SELECT * against one shared
// connection while a deliberately tiny buffer pool forces evictions and
// re-reads under them. Every thread must see exactly the loaded rows.
TEST(ParallelQuery, ConcurrentReadersUnderEviction) {
  TempDir dir("pq_readers");
  sql::DatabaseOptions options;
  options.buffer_pool_pages = 16;  // working set far exceeds this
  sql::Database db(dir.str(), options);
  EncryptedConnection conn = make_encrypted(db, 400);
  db.set_query_threads(2);  // nested parallelism inside each reader's query

  std::map<std::string, size_t> expected;
  for (int64_t id = 0; id < 400; ++id) ++expected["name" + std::to_string(id % 10)];

  constexpr int kReaders = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < 12; ++i) {
        std::string value = "name" + std::to_string((r + i) % 10);
        size_t n = (i % 2 == 0)
                       ? conn.select_ids("t", "name", value).ids.size()
                       : conn.select_star("t", "name", value).rows.size();
        if (n != expected[value]) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ------------------------------------------------------------ buffer pool

// Many threads fetch the same pages with shared latches; each page's
// content must read back consistently while eviction churns the pool.
TEST(BufferPoolConcurrency, SharedFetchesSeeConsistentPages) {
  TempDir dir("pq_pool");
  storage::DiskManager disk;
  storage::FileId file = disk.open_file(dir.str() + "/pages.db");
  constexpr int kPages = 32;
  std::vector<storage::PageNumber> pages;
  {
    storage::BufferPool writer(disk, kPages + 1);
    for (int i = 0; i < kPages; ++i) {
      storage::PageGuard g = writer.allocate(file);
      pages.push_back(g.id().page);
      uint8_t* p = g.mutable_data();
      for (size_t b = 0; b < storage::kPageSize; ++b) {
        p[b] = static_cast<uint8_t>((i + b) & 0xff);
      }
    }
    writer.flush_all();
  }

  storage::BufferPool pool(disk, 8);  // forces miss/evict churn
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        int i = (t * 7 + round) % kPages;
        storage::PageGuard g = pool.fetch(storage::PageId{file, pages[i]},
                                          storage::LatchMode::kShared);
        const uint8_t* p = g.data();
        for (size_t b = 0; b < storage::kPageSize; b += 997) {
          if (p[b] != static_cast<uint8_t>((i + b) & 0xff)) {
            failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto stats = pool.stats();
  EXPECT_GT(stats.evictions, 0u);  // the churn actually happened
}

// mutable_data through a shared guard is a contract violation and throws.
TEST(BufferPoolConcurrency, SharedGuardRejectsMutableAccess) {
  TempDir dir("pq_shared_guard");
  storage::DiskManager disk;
  storage::FileId file = disk.open_file(dir.str() + "/pages.db");
  storage::BufferPool pool(disk, 4);
  { storage::PageGuard g = pool.allocate(file); }
  storage::PageGuard g =
      pool.fetch(storage::PageId{file, 0}, storage::LatchMode::kShared);
  EXPECT_THROW(g.mutable_data(), StorageError);
}

}  // namespace
}  // namespace wre
