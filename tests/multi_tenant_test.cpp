// Multi-tenant regression suite: per-tenant key derivation (locked by
// golden KATs), cross-tenant search isolation on a shared physical table,
// tenant-scoped idempotency replay, and the wire/tooling glue that routes a
// tenant id from client to server.
//
// The KATs here are load-bearing beyond normal regression value: every
// tenant's data is encrypted under keys reachable only through the exact
// derivation spec in src/crypto/tenant_keys.h. If an edit changes these
// outputs, it orphans all existing multi-tenant data — the fixture failing
// is the alarm, not an invitation to regenerate the constants.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <thread>

#include "src/core/tenant.h"
#include "src/crypto/cpu_features.h"
#include "src/crypto/hkdf.h"
#include "src/crypto/keys.h"
#include "src/crypto/tenant_keys.h"
#include "src/net/dedup_cache.h"
#include "src/net/remote_connection.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/net/wire.h"

namespace wre {
namespace {

Bytes fixed_master() {
  Bytes master(32);
  for (size_t i = 0; i < master.size(); ++i) {
    master[i] = static_cast<uint8_t>(i);
  }
  return master;
}

std::string to_hex(ByteView b) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t x : b) {
    out.push_back(kDigits[x >> 4]);
    out.push_back(kDigits[x & 0xF]);
  }
  return out;
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name) {
    path = std::filesystem::temp_directory_path() /
           ("wre_mt_" + name + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

// ---------------------------------------------------------------------------
// Key derivation: golden KATs + spec cross-checks.

TEST(TenantKeys, GoldenDerivation) {
  // Golden vectors for master = 00 01 ... 1f. Changing tenant_keys.cpp in a
  // way that breaks these orphans every deployed tenant's data.
  crypto::TenantKeyring ring(fixed_master());
  struct Vector {
    uint64_t tenant;
    const char* secret_hex;
    const char* tag_key_hex;
  };
  const Vector vectors[] = {
      {0,
       "3359de7d9f98a4e15b4edce36d292f04cc66a9cb0f40bd791a2d195363b237b1",
       "2465cc1c695ab2b2ee8044d7747145104efe64501ca6f0ae096f425df17cb019"},
      {1,
       "cf8bdf69347cd2305248866ca34dc0d8988d1d5e9186c77fc60e95743f3a39c3",
       "f9dda24e36092825cffa92fdd538186a9cc3114e7ffb6ab0092fa2ee63fbcca1"},
      {42,
       "94b9254cf9bf020fd11a48f29a4986e5c194fa24a1156dc28c7c0a27d053d6a8",
       "257e91a3cbed0915ac98c64a7d399a2e1bbfecf45751d9dcb819d4182544aa88"},
      {0xFFFFFFFFFFFFFFFFull,
       "9dfd47fb63d16f09899fc7a7a1edc71e2b0885d8e5f5ec40632c8006b40d0bd8",
       "8b702a8038bf367b764fad52ea9e335c68ab766e2341f1ca2e873724f4c6f374"},
  };
  for (const auto& v : vectors) {
    Bytes secret = ring.tenant_secret(v.tenant);
    EXPECT_EQ(to_hex(secret), v.secret_hex) << "tenant " << v.tenant;
    auto bundle = ring.bundle(v.tenant);
    EXPECT_EQ(to_hex(bundle->tag_key), v.tag_key_hex) << "tenant " << v.tenant;
    // The bundle is exactly KeyBundle::derive of the tenant secret: a tenant
    // handed its secret behaves like a standalone deployment.
    auto standalone = crypto::KeyBundle::derive(secret);
    EXPECT_EQ(bundle->payload_key, standalone.payload_key);
    EXPECT_EQ(bundle->tag_key, standalone.tag_key);
    EXPECT_EQ(bundle->shuffle_key, standalone.shuffle_key);
  }
}

TEST(TenantKeys, MatchesSpecViaPublicHkdf) {
  // The documented derivation, written out with the public HKDF functions —
  // the spec-as-code twin of the hardcoded goldens above.
  Bytes master = fixed_master();
  crypto::TenantKeyring ring(master);
  const std::string salt = "wre-tenant-keyring-v1";
  Bytes prk = crypto::hkdf_extract(
      ByteView(reinterpret_cast<const uint8_t*>(salt.data()), salt.size()),
      master);
  for (uint64_t tenant : {7ull, 123456789ull}) {
    Bytes info;
    const char* label = "tenant";
    info.insert(info.end(), label, label + 6);
    for (int i = 0; i < 8; ++i) {
      info.push_back(static_cast<uint8_t>(tenant >> (8 * i)));
    }
    EXPECT_EQ(ring.tenant_secret(tenant),
              crypto::hkdf_expand(prk, info, 32));
  }
}

TEST(TenantKeys, HardwareAndScalarPathsAgree) {
  // The keyring rides on HMAC midstates; the SHA-256 compression under them
  // has a SHA-NI and a scalar implementation. Derivations must be
  // bit-identical across both, or a fleet with mixed hardware would derive
  // different keys for the same tenant.
  Bytes master = fixed_master();
  bool prev = crypto::set_hwcrypto_enabled(true);
  std::vector<Bytes> hw;
  {
    crypto::TenantKeyring ring(master);
    for (uint64_t t = 0; t < 64; ++t) hw.push_back(ring.tenant_secret(t));
  }
  crypto::set_hwcrypto_enabled(false);
  {
    crypto::TenantKeyring ring(master);
    for (uint64_t t = 0; t < 64; ++t) {
      EXPECT_EQ(ring.tenant_secret(t), hw[static_cast<size_t>(t)])
          << "tenant " << t;
    }
  }
  crypto::set_hwcrypto_enabled(prev);
}

TEST(TenantKeys, SecretsAreDistinctAndCached) {
  crypto::TenantKeyring ring(fixed_master());
  std::set<std::string> seen;
  for (uint64_t t = 0; t < 256; ++t) {
    seen.insert(to_hex(ring.tenant_secret(t)));
  }
  EXPECT_EQ(seen.size(), 256u);  // no collisions across adjacent ids

  auto first = ring.bundle(99);
  auto second = ring.bundle(99);
  EXPECT_EQ(first.get(), second.get());  // cache hit: same object
  EXPECT_GE(ring.cached_bundles(), 1u);
}

TEST(TenantKeys, ConcurrentDerivationIsSafe) {
  crypto::TenantKeyring ring(fixed_master());
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int k = 0; k < 8; ++k) {
    threads.emplace_back([&ring, &ok] {
      for (uint64_t t = 0; t < 128; ++t) {
        auto bundle = ring.bundle(t % 16);  // heavy overlap across threads
        if (bundle->tag_key.size() != 32) ok = false;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok);
}

// ---------------------------------------------------------------------------
// Cross-tenant isolation on one shared physical table (in-process).

core::TenantTableConfig small_config() {
  core::TenantTableConfig cfg;
  cfg.table = "shared";
  cfg.logical = sql::Schema({sql::Column{"id", sql::ValueType::kInt64, true},
                             sql::Column{"city", sql::ValueType::kText}});
  cfg.specs.push_back(
      core::EncryptedColumnSpec{"city", core::SaltMethod::kPoisson, 8});
  cfg.distributions.emplace(
      "city", core::PlaintextDistribution::from_probabilities(
                  {{"rome", 0.5}, {"oslo", 0.3}, {"lima", 0.2}}));
  return cfg;
}

TEST(TenantPool, CrossTenantSearchIsolation) {
  TempDir dir("isolation");
  sql::Database db(dir.str());
  core::LocalTransport transport(db);
  core::TenantPool pool(transport, fixed_master(), small_config());

  // Tenants insert the SAME plaintext values into the SAME physical table.
  // Id ranges identify the owner: tenant t owns [100t, 100t + n).
  const std::vector<std::string> values = {"rome", "oslo", "lima"};
  for (uint64_t t = 0; t < 3; ++t) {
    auto& conn = pool.connection(t);
    for (int64_t i = 0; i < 9; ++i) {
      sql::Row row{sql::Value::int64(static_cast<int64_t>(t) * 100 + i),
                   sql::Value::text(values[static_cast<size_t>(i) % 3])};
      conn.insert("shared", row);
    }
  }
  EXPECT_EQ(pool.open_tenants(), 3u);
  EXPECT_EQ(transport.row_count("shared"), 27u);  // one interleaved table

  // Every tenant's search returns exactly its own rows — never a row of
  // another tenant, even though all 27 rows encode the same three values.
  for (uint64_t t = 0; t < 3; ++t) {
    auto& conn = pool.connection(t);
    for (const auto& v : values) {
      auto result = conn.select_ids("shared", "city", v);
      EXPECT_EQ(result.ids.size(), 3u) << "tenant " << t << " value " << v;
      for (int64_t id : result.ids) {
        EXPECT_GE(id, static_cast<int64_t>(t) * 100);
        EXPECT_LT(id, static_cast<int64_t>(t) * 100 + 9);
      }
    }
    // IN-scans stay isolated too (the union path dedups tags client-side).
    auto in_result = conn.select_ids_in("shared", "city", {"rome", "oslo"});
    EXPECT_EQ(in_result.ids.size(), 6u);
    for (int64_t id : in_result.ids) {
      EXPECT_GE(id, static_cast<int64_t>(t) * 100);
      EXPECT_LT(id, static_cast<int64_t>(t) * 100 + 9);
    }
  }

  // What the server stores: tag integers and ciphertext blobs. No cell of
  // the physical table contains a searchable plaintext.
  sql::Schema physical = transport.table_schema("shared");
  EXPECT_TRUE(physical.index_of("city_tag").has_value());
  EXPECT_TRUE(physical.index_of("city_enc").has_value());
  EXPECT_FALSE(physical.index_of("city").has_value());
}

TEST(TenantPool, RemoteEndToEndWithTenantStamping) {
  // The full deployment shape: one wre_server, one shared table, tenants
  // multiplexed over one TCP transport with on_switch stamping the wire
  // tenant id (scoping only the idempotency cache — isolation above came
  // from keys alone, with no tenant id on the wire at all).
  TempDir dir("remote_mt");
  sql::Database db(dir.str());
  net::ServerOptions options;
  options.worker_threads = 2;
  net::Server server(db, options);
  server.start();
  {
    net::RemoteConnection remote("127.0.0.1", server.port());
    core::TenantPool pool(
        remote, fixed_master(), small_config(),
        [&remote](uint64_t t) { remote.set_tenant_id(t); });

    for (uint64_t t = 1; t <= 4; ++t) {
      auto& conn = pool.connection(t);
      for (int64_t i = 0; i < 4; ++i) {
        conn.insert("shared",
                    sql::Row{sql::Value::int64(static_cast<int64_t>(t) * 10 + i),
                             sql::Value::text("rome")});
      }
    }
    for (uint64_t t = 1; t <= 4; ++t) {
      auto result = pool.connection(t).select_ids("shared", "city", "rome");
      EXPECT_EQ(result.ids.size(), 4u) << "tenant " << t;
      for (int64_t id : result.ids) {
        EXPECT_EQ(id / 10, static_cast<int64_t>(t));
      }
    }

    // A second pool (fresh client process, same master) attaches to the
    // existing table and sees the same per-tenant views.
    net::RemoteConnection remote2("127.0.0.1", server.port());
    core::TenantPool pool2(
        remote2, fixed_master(), small_config(),
        [&remote2](uint64_t t) { remote2.set_tenant_id(t); });
    auto reopened = pool2.connection(2).select_ids("shared", "city", "rome");
    EXPECT_EQ(reopened.ids.size(), 4u);
  }
  server.stop();
}

// ---------------------------------------------------------------------------
// Tenant-scoped idempotency: the dedup cache and the server's use of it.

TEST(DedupCache, KeysAreTenantScoped) {
  net::DedupCache cache;
  net::IdempotencyKey raw{};
  raw.fill(0xAB);
  net::DedupKey tenant_a{1, raw};
  net::DedupKey tenant_b{2, raw};  // same 16 bytes, different tenant

  net::Frame cached;
  ASSERT_TRUE(cache.begin(tenant_a, &cached));
  net::Frame response;
  response.opcode = net::Opcode::kOkUnit;
  cache.complete(tenant_a, response);

  // Tenant A replays; tenant B with the identical key bytes does not.
  EXPECT_FALSE(cache.begin(tenant_a, &cached));
  EXPECT_EQ(cached.opcode, net::Opcode::kOkUnit);
  EXPECT_TRUE(cache.begin(tenant_b, &cached));
}

// Sends one raw v2 request frame and reads back the response frame.
net::Frame roundtrip_raw(net::Socket& sock, net::Opcode op, ByteView payload,
                         const net::RequestExt& ext) {
  sock.send_all(net::encode_request_frame(op, payload, ext));
  uint8_t header[net::kFrameHeaderBytes];
  sock.recv_all(header, sizeof(header));
  auto fh = net::decode_frame_header(header, net::kDefaultMaxFrameBytes);
  net::Frame frame;
  frame.opcode = fh.opcode;
  frame.payload.resize(fh.payload_length);
  if (fh.payload_length > 0) {
    sock.recv_all(frame.payload.data(), frame.payload.size());
  }
  return frame;
}

TEST(Server, DedupIsScopedByTenant) {
  // Replay tenant 1's exact idempotency key as tenant 2: the mutation must
  // execute again (different tenant, different dedup slot), while tenant 1's
  // own retry replays the recorded response without re-executing.
  TempDir dir("dedup_mt");
  sql::Database db(dir.str());
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  net::Server server(db, {});
  server.start();
  {
    net::Socket sock = net::Socket::connect("127.0.0.1", server.port());
    net::RequestExt ext;
    ext.has_key = true;
    ext.key.fill(0x5C);

    net::WireWriter insert1;
    insert1.string("INSERT INTO t VALUES (1, 7)");
    ext.tenant_id = 1;
    auto r1 = roundtrip_raw(sock, net::Opcode::kExecSql, insert1.bytes(), ext);
    EXPECT_EQ(r1.opcode, net::Opcode::kOkResult);
    EXPECT_EQ(db.table("t").row_count(), 1u);

    // Same tenant, same key, CONFLICTING statement: the recorded response
    // replays and nothing executes — proof the dedup hit, since executing
    // this statement would throw a duplicate-PK error.
    net::WireWriter conflict;
    conflict.string("INSERT INTO t VALUES (1, 8)");
    auto r2 = roundtrip_raw(sock, net::Opcode::kExecSql, conflict.bytes(), ext);
    EXPECT_EQ(r2.opcode, net::Opcode::kOkResult);
    EXPECT_EQ(db.table("t").row_count(), 1u);
    EXPECT_EQ(server.dedup_hits(), 1u);

    // Different tenant, identical key bytes: executes as a fresh request.
    net::WireWriter insert2;
    insert2.string("INSERT INTO t VALUES (2, 9)");
    ext.tenant_id = 2;
    auto r3 = roundtrip_raw(sock, net::Opcode::kExecSql, insert2.bytes(), ext);
    EXPECT_EQ(r3.opcode, net::Opcode::kOkResult);
    EXPECT_EQ(db.table("t").row_count(), 2u);
    EXPECT_EQ(server.dedup_hits(), 1u);  // no new hit
  }
  server.stop();
}

}  // namespace
}  // namespace wre
