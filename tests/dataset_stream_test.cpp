// Streaming dataset generator: determinism, resumability, and the bounded
// memory property that makes a 10M-record SPARTA-style load possible
// without ever materializing the dataset.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>

#ifdef __linux__
#include <unistd.h>
#endif

#include "src/core/distribution.h"
#include "src/datagen/dataset_stream.h"

namespace wre {
namespace {

datagen::GeneratorOptions small_options() {
  datagen::GeneratorOptions options;
  options.seed = 2024;
  options.first_name_vocab = 40;
  options.last_name_vocab = 60;
  options.city_vocab = 40;
  options.zip_vocab = 50;
  options.notes_bytes = 24;
  return options;
}

TEST(DatasetStream, MatchesDirectGeneration) {
  auto options = small_options();
  datagen::RecordGenerator direct(options);
  datagen::DatasetStream stream(options, /*total=*/1000, /*start=*/0,
                                /*chunk_records=*/64);
  std::vector<sql::Row> chunk;
  int64_t id = 0;
  while (stream.next_chunk(&chunk)) {
    for (const auto& row : chunk) {
      ASSERT_LT(id, 1000);
      EXPECT_EQ(row, direct.record(id)) << "record " << id;
      ++id;
    }
  }
  EXPECT_EQ(id, 1000);
  EXPECT_TRUE(stream.exhausted());
  EXPECT_EQ(stream.position(), 1000);
}

TEST(DatasetStream, ResumeFromOffsetIsEquivalent) {
  // Splitting one range into [0, 400) + [400, 1000) — a crashed loader
  // resuming, or tenants partitioning the id space — yields byte-identical
  // records, because record(id) depends only on (seed, id).
  auto options = small_options();
  std::vector<sql::Row> whole;
  {
    datagen::DatasetStream stream(options, 1000, 0, 128);
    std::vector<sql::Row> chunk;
    while (stream.next_chunk(&chunk)) {
      whole.insert(whole.end(), chunk.begin(), chunk.end());
    }
  }
  std::vector<sql::Row> split;
  for (auto [start, end] : {std::pair<int64_t, int64_t>{0, 400},
                            std::pair<int64_t, int64_t>{400, 1000}}) {
    datagen::DatasetStream stream(options, end, start, 97);  // odd chunk size
    std::vector<sql::Row> chunk;
    while (stream.next_chunk(&chunk)) {
      split.insert(split.end(), chunk.begin(), chunk.end());
    }
  }
  EXPECT_EQ(whole, split);
}

TEST(DatasetStream, ChunkSizeDoesNotChangeContent) {
  auto options = small_options();
  std::vector<sql::Row> a, b;
  for (auto [out, chunk_size] :
       {std::pair<std::vector<sql::Row>*, size_t>{&a, 1},
        std::pair<std::vector<sql::Row>*, size_t>{&b, 333}}) {
    datagen::DatasetStream stream(options, 500, 0, chunk_size);
    std::vector<sql::Row> chunk;
    while (stream.next_chunk(&chunk)) {
      out->insert(out->end(), chunk.begin(), chunk.end());
    }
  }
  EXPECT_EQ(a, b);
}

TEST(DatasetStream, RejectsInvalidRanges) {
  auto options = small_options();
  EXPECT_THROW(datagen::DatasetStream(options, 10, 20), Error);
  EXPECT_THROW(datagen::DatasetStream(options, 10, -1), Error);
  EXPECT_THROW(datagen::DatasetStream(options, 10, 0, 0), Error);
}

TEST(DatasetStream, TenantOptionsDecorrelateSeeds) {
  auto base = small_options();
  std::set<uint64_t> seeds;
  seeds.insert(base.seed);
  for (uint64_t t = 0; t < 100; ++t) {
    auto opts = datagen::tenant_options(base, t);
    // Only the seed changes; the vocabulary shape (and therefore the shared
    // plaintext distribution P_M) stays identical across tenants.
    EXPECT_EQ(opts.first_name_vocab, base.first_name_vocab);
    EXPECT_EQ(opts.last_name_vocab, base.last_name_vocab);
    EXPECT_EQ(opts.notes_bytes, base.notes_bytes);
    seeds.insert(opts.seed);
  }
  EXPECT_EQ(seeds.size(), 101u);  // all distinct, none equal to the base

  // Deterministic: the same tenant always gets the same stream.
  EXPECT_EQ(datagen::tenant_options(base, 7).seed,
            datagen::tenant_options(base, 7).seed);

  // Different tenants produce different data (first record already differs
  // with overwhelming probability for any two of these seeds).
  datagen::RecordGenerator g1(datagen::tenant_options(base, 1));
  datagen::RecordGenerator g2(datagen::tenant_options(base, 2));
  EXPECT_NE(g1.record(0), g2.record(0));
}

TEST(DatasetStream, VocabularyDistributionIsExact) {
  auto options = small_options();
  datagen::RecordGenerator gen(options);
  auto probabilities = datagen::vocabulary_distribution(gen.first_names());
  double sum = 0;
  for (const auto& [value, p] : probabilities) {
    EXPECT_GT(p, 0.0) << value;
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // And it is accepted verbatim as a registered WRE distribution — the
  // multi-tenant path registers exactly this, never a sampled estimate.
  auto dist = core::PlaintextDistribution::from_probabilities(probabilities);
  (void)dist;
}

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define WRE_ASAN_BUILD 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define WRE_ASAN_BUILD 1
#endif

#if defined(__linux__) && !defined(WRE_ASAN_BUILD)
// Resident-set ceiling while streaming ~200k ~1KB records (~200 MB of
// plaintext if materialized): the stream must hold only one chunk. Gated to
// Linux for /proc/self/statm and skipped under ASan, whose quarantine keeps
// freed allocations resident and makes the bound meaningless.
TEST(DatasetStream, BoundedMemoryWhileStreaming) {
  auto rss_bytes = [] {
    std::ifstream statm("/proc/self/statm");
    long total = 0, resident = 0;
    statm >> total >> resident;
    return static_cast<size_t>(resident) *
           static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  };
  datagen::GeneratorOptions options;
  options.seed = 9;
  options.notes_bytes = 1024;
  size_t before = rss_bytes();
  datagen::DatasetStream stream(options, 200000, 0, 1024);
  std::vector<sql::Row> chunk;
  size_t rows = 0, peak = before;
  while (stream.next_chunk(&chunk)) {
    rows += chunk.size();
    if (rows % (1024 * 32) == 0) peak = std::max(peak, rss_bytes());
  }
  peak = std::max(peak, rss_bytes());
  EXPECT_EQ(rows, 200000u);
  EXPECT_LT(peak - before, 64u << 20)
      << "streaming generator grew RSS by " << (peak - before) / (1 << 20)
      << " MB — is it materializing the dataset?";
}
#endif

}  // namespace
}  // namespace wre
