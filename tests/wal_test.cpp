// The write-ahead log (DESIGN.md §5.5): record round-trips through crash
// recovery, CRC rejection of bit flips, torn-tail truncation, segment
// rotation, group-commit batching, fault-injected torn writes, and the
// Database-level durability contract (acknowledged writes survive a copy
// taken before any data-file flush; unacknowledged ones never leak).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "src/net/remote_connection.h"
#include "src/net/server.h"
#include "src/sql/database.h"
#include "src/storage/fault_injector.h"
#include "src/storage/wal.h"
#include "src/util/crc32c.h"
#include "src/util/error.h"
#include "tests/test_util.h"

using namespace wre;
using namespace wre::storage;
using wre::testing::TempDir;

namespace fs = std::filesystem;

namespace {

Bytes page_filled(uint8_t value) {
  Bytes b(kPageSize, value);
  return b;
}

Bytes read_all(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

/// Reads a replayed data file, verifies each physical page's CRC32C header
/// and returns the concatenated logical (kPageSize) images — so assertions
/// below keep speaking in logical page offsets.
Bytes logical_pages(const fs::path& path) {
  Bytes raw = read_all(path);
  EXPECT_EQ(raw.size() % kPhysicalPageBytes, 0u) << path;
  Bytes out;
  out.reserve(raw.size() / kPhysicalPageBytes * kPageSize);
  for (size_t off = 0; off + kPhysicalPageBytes <= raw.size();
       off += kPhysicalPageBytes) {
    EXPECT_EQ(load_le32(raw.data() + off),
              util::crc32c(raw.data() + off + kPageDiskHeaderBytes, kPageSize))
        << path << " page " << off / kPhysicalPageBytes;
    out.insert(out.end(),
               raw.begin() + static_cast<ptrdiff_t>(off + kPageDiskHeaderBytes),
               raw.begin() + static_cast<ptrdiff_t>(off + kPhysicalPageBytes));
  }
  return out;
}

std::vector<fs::path> wal_segments(const fs::path& wal_dir) {
  std::vector<fs::path> out;
  if (!fs::exists(wal_dir)) return out;
  for (const auto& e : fs::directory_iterator(wal_dir)) {
    if (e.path().filename().string().rfind("wal-", 0) == 0) {
      out.push_back(e.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// One-page-per-commit workload: commit i writes page 0 of "t.heap" filled
/// with byte i+1 and extends the file to 1 page. After recovering any
/// prefix of the log, page 0 holds the byte of the last applied commit.
void append_counter_commits(Wal& wal, int n) {
  for (int i = 0; i < n; ++i) {
    WalCommitRequest req;
    req.pages.push_back(
        WalPageImage{"t.heap", 0, page_filled(static_cast<uint8_t>(i + 1))});
    req.extents.push_back(WalFileExtent{"t.heap", 1});
    wal.commit_sync(std::move(req));
  }
}

/// Copies `from` into a fresh directory under `to` (recursive).
void copy_dir(const fs::path& from, const fs::path& to) {
  fs::create_directories(to);
  fs::copy(from, to, fs::copy_options::recursive);
}

}  // namespace

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().reset(); }
};

// ---------------------------------------------------------------------------
// Record round-trips.

TEST_F(WalTest, CommitRoundTripsThroughRecovery) {
  TempDir dir("wal_rt");
  fs::path wal_dir = dir.path() / "wal";
  fs::path data_dir = dir.path() / "data";
  fs::create_directories(data_dir);

  {
    Wal wal(wal_dir.string());
    WalCommitRequest req;
    req.pages.push_back(WalPageImage{"a.heap", 0, page_filled(0x11)});
    req.pages.push_back(WalPageImage{"a.heap", 2, page_filled(0x22)});
    req.pages.push_back(WalPageImage{"b.idx", 1, page_filled(0x33)});
    req.extents.push_back(WalFileExtent{"a.heap", 3});
    req.extents.push_back(WalFileExtent{"b.idx", 2});
    req.catalog = "table t 1\ncol id INTEGER 1\n";
    wal.commit_sync(std::move(req));

    WalStats stats = wal.stats();
    EXPECT_EQ(stats.commits, 1u);
    EXPECT_EQ(stats.records, 7u);  // 3 pages + 2 extents + catalog + commit
    EXPECT_GE(stats.fsyncs, 1u);
  }

  WalRecoveryStats rec = Wal::recover(wal_dir.string(), data_dir.string());
  EXPECT_EQ(rec.commits_applied, 1u);
  EXPECT_EQ(rec.pages_replayed, 3u);
  EXPECT_EQ(rec.extents_applied, 2u);
  EXPECT_EQ(rec.catalogs_replayed, 1u);
  EXPECT_FALSE(rec.tail_truncated);
  EXPECT_EQ(rec.uncommitted_records_discarded, 0u);

  Bytes a = logical_pages(data_dir / "a.heap");
  ASSERT_EQ(a.size(), 3 * kPageSize);
  EXPECT_EQ(a[0], 0x11);
  EXPECT_EQ(a[2 * kPageSize], 0x22);
  EXPECT_EQ(a[kPageSize], 0x00);  // untouched page stays zero (from extent)
  Bytes b = logical_pages(data_dir / "b.idx");
  ASSERT_EQ(b.size(), 2 * kPageSize);
  EXPECT_EQ(b[kPageSize], 0x33);
  std::string catalog(reinterpret_cast<const char*>(
                          read_all(data_dir / "catalog.wre").data()),
                      read_all(data_dir / "catalog.wre").size());
  EXPECT_EQ(catalog, "table t 1\ncol id INTEGER 1\n");

  // The log is spent: segments are deleted, a second recovery is a no-op.
  EXPECT_TRUE(wal_segments(wal_dir).empty());
  WalRecoveryStats again = Wal::recover(wal_dir.string(), data_dir.string());
  EXPECT_EQ(again.commits_applied, 0u);
}

TEST_F(WalTest, RecoveryOfMissingDirIsNoOp) {
  TempDir dir("wal_none");
  WalRecoveryStats rec =
      Wal::recover((dir.path() / "wal").string(), dir.str());
  EXPECT_EQ(rec.segments_scanned, 0u);
  EXPECT_EQ(rec.commits_applied, 0u);
  EXPECT_FALSE(rec.tail_truncated);
}

TEST_F(WalTest, OversizedPageImageIsRejected) {
  TempDir dir("wal_bad");
  Wal wal((dir.path() / "wal").string());
  WalCommitRequest req;
  req.pages.push_back(WalPageImage{"t.heap", 0, Bytes(kPageSize - 1, 0xff)});
  EXPECT_THROW(wal.commit(std::move(req)), StorageError);
}

// ---------------------------------------------------------------------------
// Corruption: bit flips and torn tails. Property: recovery applies exactly
// a prefix of the committed sequence, never throws, and never replays a
// record at or after the corruption point.

TEST_F(WalTest, TornTailTruncationSweep) {
  TempDir master("wal_torn_master");
  fs::path wal_dir = master.path() / "wal";
  constexpr int kCommits = 8;
  {
    Wal wal(wal_dir.string());
    append_counter_commits(wal, kCommits);
  }
  auto segments = wal_segments(wal_dir);
  ASSERT_EQ(segments.size(), 1u);
  Bytes full = read_all(segments[0]);

  // Truncate the segment at every 97-byte stride (plus the exact end).
  for (size_t cut = 17; cut <= full.size(); cut += 97) {
    TempDir trial("wal_torn_trial");
    fs::path twal = trial.path() / "wal";
    fs::path tdata = trial.path() / "data";
    fs::create_directories(twal);
    fs::create_directories(tdata);
    {
      std::ofstream out(twal / segments[0].filename(), std::ios::binary);
      out.write(reinterpret_cast<const char*>(full.data()),
                static_cast<std::streamsize>(cut));
    }

    WalRecoveryStats rec = Wal::recover(twal.string(), tdata.string());
    EXPECT_LE(rec.commits_applied, static_cast<uint64_t>(kCommits));
    if (cut < full.size()) {
      // Something was cut off: either mid-record (tail_truncated) or on a
      // record boundary after the last commit marker of the prefix.
      EXPECT_LT(rec.commits_applied, static_cast<uint64_t>(kCommits));
    }
    if (rec.commits_applied > 0) {
      Bytes heap = logical_pages(tdata / "t.heap");
      ASSERT_EQ(heap.size(), kPageSize);
      // Last-applied commit's byte — proof that exactly the prefix ran.
      EXPECT_EQ(heap[0], static_cast<uint8_t>(rec.commits_applied));
    } else {
      EXPECT_FALSE(fs::exists(tdata / "t.heap"));
    }
  }
}

TEST_F(WalTest, BitFlipSweepNeverReplaysCorruptRecords) {
  TempDir master("wal_flip_master");
  fs::path wal_dir = master.path() / "wal";
  constexpr int kCommits = 6;
  {
    Wal wal(wal_dir.string());
    append_counter_commits(wal, kCommits);
  }
  auto segments = wal_segments(wal_dir);
  ASSERT_EQ(segments.size(), 1u);
  Bytes full = read_all(segments[0]);

  // Flip one bit at every 211-byte stride past the segment header.
  for (size_t pos = 16; pos < full.size(); pos += 211) {
    TempDir trial("wal_flip_trial");
    fs::path twal = trial.path() / "wal";
    fs::path tdata = trial.path() / "data";
    fs::create_directories(twal);
    fs::create_directories(tdata);
    Bytes flipped = full;
    flipped[pos] ^= 0x40;
    {
      std::ofstream out(twal / segments[0].filename(), std::ios::binary);
      out.write(reinterpret_cast<const char*>(flipped.data()),
                static_cast<std::streamsize>(flipped.size()));
    }

    WalRecoveryStats rec = Wal::recover(twal.string(), tdata.string());
    // The flip lands inside some record; everything before it replays,
    // nothing from it onward does.
    EXPECT_TRUE(rec.tail_truncated) << "flip at " << pos;
    EXPECT_LT(rec.commits_applied, static_cast<uint64_t>(kCommits));
    if (rec.commits_applied > 0) {
      Bytes heap = logical_pages(tdata / "t.heap");
      ASSERT_EQ(heap.size(), kPageSize);
      EXPECT_EQ(heap[0], static_cast<uint8_t>(rec.commits_applied));
    }
  }
}

TEST_F(WalTest, CorruptSegmentHeaderReplaysNothing) {
  TempDir dir("wal_hdr");
  fs::path wal_dir = dir.path() / "wal";
  fs::path data_dir = dir.path() / "data";
  fs::create_directories(data_dir);
  {
    Wal wal(wal_dir.string());
    append_counter_commits(wal, 3);
  }
  auto segments = wal_segments(wal_dir);
  ASSERT_EQ(segments.size(), 1u);
  Bytes full = read_all(segments[0]);
  full[0] ^= 0xff;  // clobber the magic
  {
    std::ofstream out(segments[0], std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(full.data()),
              static_cast<std::streamsize>(full.size()));
  }
  WalRecoveryStats rec = Wal::recover(wal_dir.string(), data_dir.string());
  EXPECT_TRUE(rec.tail_truncated);
  EXPECT_EQ(rec.commits_applied, 0u);
  EXPECT_FALSE(fs::exists(data_dir / "t.heap"));
}

// ---------------------------------------------------------------------------
// Segment rotation.

TEST_F(WalTest, SegmentsRotateAndAllReplay) {
  TempDir dir("wal_rot");
  fs::path wal_dir = dir.path() / "wal";
  fs::path data_dir = dir.path() / "data";
  fs::create_directories(data_dir);
  constexpr int kCommits = 24;
  {
    WalOptions opts;
    opts.segment_bytes = 8 * kPageSize;  // rotate every couple of commits
    Wal wal(wal_dir.string(), opts);
    append_counter_commits(wal, kCommits);
    EXPECT_GE(wal.stats().segments_created, 3u);
  }
  EXPECT_GE(wal_segments(wal_dir).size(), 3u);

  WalRecoveryStats rec = Wal::recover(wal_dir.string(), data_dir.string());
  EXPECT_GE(rec.segments_scanned, 3u);
  EXPECT_EQ(rec.commits_applied, static_cast<uint64_t>(kCommits));
  EXPECT_FALSE(rec.tail_truncated);
  Bytes heap = logical_pages(data_dir / "t.heap");
  EXPECT_EQ(heap[0], static_cast<uint8_t>(kCommits));
}

TEST_F(WalTest, TruncateAllResetsReplayBound) {
  TempDir dir("wal_trunc");
  fs::path wal_dir = dir.path() / "wal";
  Wal wal(wal_dir.string());
  append_counter_commits(wal, 10);
  uint64_t before = wal.live_bytes();
  EXPECT_GT(before, 10 * kPageSize);
  wal.truncate_all();
  EXPECT_LT(wal.live_bytes(), 64u);  // fresh segment header only
  // The log keeps accepting commits afterwards.
  append_counter_commits(wal, 2);
  EXPECT_GT(wal.live_bytes(), 2 * kPageSize);
}

// ---------------------------------------------------------------------------
// Group commit.

TEST_F(WalTest, GroupCommitBatchesConcurrentCommits) {
  TempDir dir("wal_group");
  WalOptions opts;
  opts.group_window_us = 20000;  // linger so the enqueue burst shares syncs
  Wal wal((dir.path() / "wal").string(), opts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        WalCommitRequest req;
        req.pages.push_back(WalPageImage{
            "t.heap", static_cast<PageNumber>(t), page_filled(0xcd)});
        wal.commit_sync(std::move(req));
      }
    });
  }
  for (auto& t : threads) t.join();

  WalStats stats = wal.stats();
  EXPECT_EQ(stats.commits, static_cast<uint64_t>(kThreads * kPerThread));
  // The linger window guarantees near-simultaneous commits share a group:
  // strictly fewer sync rounds than commits, and at least one real batch.
  EXPECT_LT(stats.groups, stats.commits);
  EXPECT_GE(stats.max_group, 2u);
  EXPECT_EQ(stats.fsyncs, stats.groups);
}

// ---------------------------------------------------------------------------
// Fault injection: torn writes.

TEST_F(WalTest, InjectedTornWriteBreaksLogButKeepsPrefix) {
  TempDir dir("wal_fault");
  fs::path wal_dir = dir.path() / "wal";
  fs::path data_dir = dir.path() / "data";
  fs::create_directories(data_dir);
  {
    Wal wal(wal_dir.string());
    append_counter_commits(wal, 2);  // durable prefix

    // The next record write persists only 10 bytes, then fails — like a
    // crash mid-write.
    FaultInjector::instance().arm_wal_torn_after(10);
    WalCommitRequest req;
    req.pages.push_back(WalPageImage{"t.heap", 0, page_filled(0xee)});
    EXPECT_THROW(wal.commit(std::move(req)).wait(), StorageError);

    // The log is broken: later commits must fail fast, not silently lose
    // durability.
    FaultInjector::instance().reset();
    WalCommitRequest after;
    after.pages.push_back(WalPageImage{"t.heap", 0, page_filled(0xdd)});
    EXPECT_THROW(wal.commit(std::move(after)), StorageError);
  }

  WalRecoveryStats rec = Wal::recover(wal_dir.string(), data_dir.string());
  EXPECT_EQ(rec.commits_applied, 2u);
  EXPECT_TRUE(rec.tail_truncated);  // the 10-byte torn prefix is detected
  Bytes heap = logical_pages(data_dir / "t.heap");
  EXPECT_EQ(heap[0], 2);  // never 0xee
}

// ---------------------------------------------------------------------------
// Database-level durability: the log-before-data contract end to end.

namespace {

sql::Schema kv_schema() {
  return sql::Schema({{"id", sql::ValueType::kInt64, /*primary_key=*/true},
                      {"tag", sql::ValueType::kInt64, false},
                      {"body", sql::ValueType::kText, false}});
}

std::vector<sql::Row> make_rows(int from, int count) {
  std::vector<sql::Row> rows;
  for (int i = from; i < from + count; ++i) {
    rows.push_back({sql::Value::int64(i), sql::Value::int64(i % 7),
                    sql::Value::text("row-" + std::to_string(i))});
  }
  return rows;
}

}  // namespace

TEST_F(WalTest, CommittedWritesSurviveSimulatedCrash) {
  TempDir dir("wal_db");
  sql::DatabaseOptions opts;
  opts.durability = true;
  sql::Database db(dir.str(), opts);
  db.create_table("kv", kv_schema());
  db.create_index("kv", "tag");
  db.insert_batch("kv", make_rows(0, 100));
  db.commit();

  // Simulated crash: snapshot the directory while the database is still
  // open — no checkpoint, no destructor flush. The data files in the copy
  // may be arbitrarily stale (the catalog file may not even exist); only
  // the WAL carries the committed state.
  TempDir crashed("wal_db_crash");
  fs::path copy = crashed.path() / "db";
  copy_dir(dir.path(), copy);

  sql::Database reopened(copy.string());
  EXPECT_GE(reopened.recovery_stats().commits_applied, 1u);
  EXPECT_GT(reopened.recovery_stats().pages_replayed, 0u);
  ASSERT_TRUE(reopened.has_table("kv"));
  auto rs = reopened.execute("SELECT count(*) FROM kv");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int64(), 100);
  // The index came back too (catalog replay), and it works.
  auto by_tag = reopened.execute("SELECT id FROM kv WHERE tag = 3");
  EXPECT_TRUE(by_tag.used_index);
  EXPECT_FALSE(by_tag.rows.empty());
}

TEST_F(WalTest, UncommittedWritesAreNeverVisibleAfterCrash) {
  TempDir dir("wal_db_unc");
  sql::DatabaseOptions opts;
  opts.durability = true;
  sql::Database db(dir.str(), opts);
  db.create_table("kv", kv_schema());
  db.insert_batch("kv", make_rows(0, 50));
  db.commit();
  // 50 more rows, deliberately not committed: never acknowledged, so a
  // crash must roll them away entirely.
  db.insert_batch("kv", make_rows(50, 50));

  TempDir crashed("wal_db_unc_crash");
  fs::path copy = crashed.path() / "db";
  copy_dir(dir.path(), copy);

  sql::Database reopened(copy.string());
  auto rs = reopened.execute("SELECT count(*) FROM kv");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int64(), 50);
  auto ids = reopened.execute("SELECT id FROM kv WHERE id = 75");
  EXPECT_TRUE(ids.rows.empty());
}

TEST_F(WalTest, CheckpointTruncatesLogAndPreservesData) {
  TempDir dir("wal_db_ckpt");
  sql::DatabaseOptions opts;
  opts.durability = true;
  {
    sql::Database db(dir.str(), opts);
    db.create_table("kv", kv_schema());
    db.insert_batch("kv", make_rows(0, 200));
    db.commit();
    ASSERT_NE(db.wal(), nullptr);
    uint64_t before = db.wal()->live_bytes();
    EXPECT_GT(before, static_cast<uint64_t>(kPageSize));
    db.checkpoint();
    EXPECT_LT(db.wal()->live_bytes(), 64u);
  }
  // Clean reopen: nothing to replay, data served straight from the files.
  sql::Database reopened(dir.str(), opts);
  EXPECT_EQ(reopened.recovery_stats().commits_applied, 0u);
  auto rs = reopened.execute("SELECT count(*) FROM kv");
  EXPECT_EQ(rs.rows[0][0].as_int64(), 200);
}

TEST_F(WalTest, DestructorCheckpointsDurableDatabase) {
  TempDir dir("wal_db_dtor");
  sql::DatabaseOptions opts;
  opts.durability = true;
  {
    sql::Database db(dir.str(), opts);
    db.create_table("kv", kv_schema());
    db.insert_batch("kv", make_rows(0, 25));
    // No explicit commit: the destructor's checkpoint covers it.
  }
  sql::Database reopened(dir.str());
  EXPECT_EQ(reopened.recovery_stats().commits_applied, 0u);
  auto rs = reopened.execute("SELECT count(*) FROM kv");
  EXPECT_EQ(rs.rows[0][0].as_int64(), 25);
}

TEST_F(WalTest, ClearCacheCommitsBeforeFlushing) {
  // clear_cache() flushes every frame to the data files; under WAL it must
  // commit first, or the files would receive unlogged (unacknowledged)
  // mutations — breaking both directions of the durability contract.
  TempDir dir("wal_db_cc");
  sql::DatabaseOptions opts;
  opts.durability = true;
  sql::Database db(dir.str(), opts);
  db.create_table("kv", kv_schema());
  db.insert_batch("kv", make_rows(0, 10));
  db.clear_cache();  // implicit commit; would throw on no-steal violation
  EXPECT_GE(db.wal()->stats().commits, 1u);
  auto rs = db.execute("SELECT count(*) FROM kv");
  EXPECT_EQ(rs.rows[0][0].as_int64(), 10);
}

// ---------------------------------------------------------------------------
// Server integration: the periodic checkpoint bounds recovery replay.

TEST_F(WalTest, PeriodicServerCheckpointBoundsReplay) {
  TempDir dir("wal_srv_ckpt");
  sql::DatabaseOptions db_opts;
  db_opts.durability = true;
  sql::Database db(dir.str(), db_opts);

  net::ServerOptions srv_opts;
  srv_opts.port = 0;
  srv_opts.worker_threads = 2;
  srv_opts.checkpoint_interval_ms = 50;
  net::Server server(db, srv_opts);
  server.start();

  net::RemoteConnection client("127.0.0.1", server.port());
  client.create_table("kv", kv_schema());
  client.insert_batch("kv", make_rows(0, 300));

  // Wait for at least one background checkpoint tick.
  for (int i = 0; i < 100 && server.checkpoints() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.checkpoints(), 1u);
  // The checkpoint truncated the log: a crash now would replay (almost)
  // nothing, regardless of how much was ingested.
  EXPECT_LT(db.wal()->live_bytes(), static_cast<uint64_t>(kPageSize));

  // Reads keep working throughout (the checkpoint holds only a shared
  // lock), and the data is all there.
  EXPECT_EQ(client.row_count("kv"), 300u);
  server.stop();
}

// ---------------------------------------------------------------------------
// No-steal window: collected frames must stay unevictable (and unflushable)
// until their commit group's fdatasync lands. Clearing the mark at enqueue
// time let concurrent evictions push not-yet-durable mutations into the
// data files — a crash in the pending-fsync window then left a partially
// applied, unacknowledged batch that redo-only recovery cannot undo.

TEST_F(WalTest, CollectedFramesStayNoStealUntilDurable) {
  TempDir dir("wal_nosteal");
  DiskManager disk;
  FileId f = disk.open_file((dir.path() / "a.db").string());
  BufferPool pool(disk, 2);
  pool.set_wal_tracking(true);

  PageNumber p = disk.allocate_page(f);
  {
    PageGuard g = pool.fetch({f, p});
    g.mutable_data()[0] = 0x77;
  }
  auto set = pool.collect_wal_dirty();
  ASSERT_EQ(set.images.size(), 1u);

  // Enqueued but not durable: neither eviction pressure (clean pages
  // churning a 2-frame pool) nor an explicit flush may write the frame.
  for (int i = 0; i < 4; ++i) {
    PageNumber q = disk.allocate_page(f);
    PageGuard g = pool.fetch({f, q});
  }
  pool.flush_all();
  uint8_t back[kPageSize];
  disk.read_page({f, p}, back);
  EXPECT_EQ(back[0], 0x00);

  // Once the group is durable the frame flushes normally.
  pool.wal_durable(set.epoch);
  pool.flush_all();
  disk.read_page({f, p}, back);
  EXPECT_EQ(back[0], 0x77);
}

TEST_F(WalTest, AbortedCollectionIsRecollected) {
  // If Wal::commit throws before enqueueing (broken log, oversized
  // record), the harvested images are unlogged again: wal_abort puts the
  // frames back on the dirty list so the next collection re-captures them.
  TempDir dir("wal_abort");
  DiskManager disk;
  FileId f = disk.open_file((dir.path() / "a.db").string());
  BufferPool pool(disk, 4);
  pool.set_wal_tracking(true);

  PageNumber p = disk.allocate_page(f);
  {
    PageGuard g = pool.fetch({f, p});
    g.mutable_data()[0] = 0x42;
  }
  auto first = pool.collect_wal_dirty();
  ASSERT_EQ(first.images.size(), 1u);
  EXPECT_TRUE(pool.collect_wal_dirty().images.empty());  // already harvested

  pool.wal_abort(first.epoch);
  auto second = pool.collect_wal_dirty();
  ASSERT_EQ(second.images.size(), 1u);
  EXPECT_EQ(second.images[0].first, (PageId{f, p}));
  EXPECT_EQ(second.images[0].second[0], 0x42);
}

TEST_F(WalTest, OnDurableRunsBeforeHandleReady) {
  // The engine releases frames from their no-steal window via the
  // on_durable callback; a waiter observing its commit acknowledged must
  // also observe the release, so the callback fires strictly before the
  // handle becomes ready. sync() is the queue barrier checkpoint uses to
  // wait out *other* writers' in-flight groups.
  TempDir dir("wal_ondur");
  Wal wal((dir.path() / "wal").string());
  std::atomic<bool> durable{false};
  WalCommitRequest req;
  req.pages.push_back(WalPageImage{"t.heap", 0, page_filled(0x01)});
  req.on_durable = [&] { durable.store(true); };
  CommitHandle h = wal.commit(std::move(req));
  h.wait();
  EXPECT_TRUE(durable.load());
  wal.sync();  // barrier returns on a drained queue too
}

TEST_F(WalTest, OversizedCatalogRecordIsRejectedAtCommitTime) {
  // Recovery treats any record body over its 1 MiB bound as corruption and
  // truncates the tail there. The writer must enforce the same bound: a
  // larger catalog would commit, be acknowledged, and then be silently
  // discarded — along with every later commit — on the next recovery.
  TempDir dir("wal_bigcat");
  Wal wal((dir.path() / "wal").string());
  WalCommitRequest big;
  big.catalog = std::string(2u << 20, 'x');
  EXPECT_THROW(wal.commit(std::move(big)), StorageError);
  // Rejected before enqueue: the log itself stays healthy.
  WalCommitRequest ok;
  ok.pages.push_back(WalPageImage{"t.heap", 0, page_filled(0x01)});
  ok.extents.push_back(WalFileExtent{"t.heap", 1});
  wal.commit_sync(std::move(ok));
  EXPECT_EQ(wal.stats().commits, 1u);
}

TEST_F(WalTest, SevenDigitSegmentNamesRecover) {
  // segment_name() zero-pads to six digits but emits seven or more once
  // the monotonically growing sequence passes 999999; a parser capped at
  // six digits misread the name, failed the header seq check, and threw
  // away the segment's committed records.
  TempDir dir("wal_seq7");
  fs::path wal_dir = dir.path() / "wal";
  fs::path data_dir = dir.path() / "data";
  fs::create_directories(data_dir);
  {
    Wal wal(wal_dir.string());
    append_counter_commits(wal, 3);
  }
  auto segs = wal_segments(wal_dir);
  ASSERT_EQ(segs.size(), 1u);
  Bytes data = read_all(segs[0]);
  ASSERT_GE(data.size(), 16u);
  constexpr uint64_t kBigSeq = 1234567;
  for (int i = 0; i < 8; ++i) {
    data[8 + i] = static_cast<uint8_t>((kBigSeq >> (8 * i)) & 0xff);
  }
  fs::remove(segs[0]);
  {
    std::ofstream out(wal_dir / "wal-1234567.log", std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }

  WalRecoveryStats rec = Wal::recover(wal_dir.string(), data_dir.string());
  EXPECT_EQ(rec.commits_applied, 3u);
  EXPECT_FALSE(rec.tail_truncated);
  Bytes page = logical_pages(data_dir / "t.heap");
  ASSERT_EQ(page.size(), kPageSize);
  EXPECT_EQ(page[0], 3);  // last committed counter value
}
