// End-to-end WRE over the network service layer: an EncryptedConnection
// whose transport is a net::RemoteConnection must behave identically to one
// wrapping the database in-process — same ids, same decrypted rows, same
// manifest lifecycle — because the scheme runs entirely client-side and the
// transport only moves tags and ciphertext.
//
// The last suite (ExternalServer) targets a wre_server process started by
// the harness (the CI loopback smoke job): it activates only when
// WRE_SERVER_PORT is set and is skipped otherwise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/encrypted_client.h"
#include "src/net/remote_connection.h"
#include "src/net/server.h"
#include "src/sql/database.h"
#include "tests/test_util.h"

using namespace wre;
using wre::testing::TempDir;

namespace {

sql::Schema people_schema() {
  return sql::Schema({{"id", sql::ValueType::kInt64, /*primary_key=*/true},
                      {"name", sql::ValueType::kText, false},
                      {"city", sql::ValueType::kText, false},
                      {"age", sql::ValueType::kInt64, false}});
}

core::PlaintextDistribution uniform_over(
    const std::vector<std::string>& values) {
  std::unordered_map<std::string, uint64_t> counts;
  for (const auto& v : values) counts[v] = 10;
  return core::PlaintextDistribution::from_counts(counts);
}

const std::vector<std::string> kNames = {"alice", "bob", "carol", "dave"};
const std::vector<std::string> kCities = {"oslo", "lima", "pune"};

sql::Row person(int64_t id) {
  return {sql::Value::int64(id),
          sql::Value::text(kNames[static_cast<size_t>(id) % kNames.size()]),
          sql::Value::text(kCities[static_cast<size_t>(id) % kCities.size()]),
          sql::Value::int64(20 + id % 50)};
}

void create_people_table(core::EncryptedConnection& conn) {
  std::vector<core::EncryptedColumnSpec> specs = {
      {"name", core::SaltMethod::kPoisson, 50},
      {"city", core::SaltMethod::kFixed, 10},
  };
  std::map<std::string, core::PlaintextDistribution> dists;
  dists.emplace("name", uniform_over(kNames));
  conn.create_table("people", people_schema(), specs, dists);
}

std::vector<int64_t> sorted(std::vector<int64_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// In-process loopback fixture: database + server + remote client.
class RemoteWreTest : public ::testing::Test {
 protected:
  RemoteWreTest()
      : db_(dir_.str()),
        server_(db_, {}),
        remote_("127.0.0.1", [this] {
          server_.start();
          return server_.port();
        }()) {}

  ~RemoteWreTest() override { server_.stop(); }

  TempDir dir_;
  sql::Database db_;
  net::Server server_;
  net::RemoteConnection remote_;
  crypto::SecureRandom entropy_;
};

TEST_F(RemoteWreTest, RemoteMatchesInProcessExactly) {
  Bytes secret = entropy_.bytes(32);
  core::EncryptedConnection remote_conn(remote_, secret);
  create_people_table(remote_conn);
  for (int64_t id = 0; id < 120; ++id) remote_conn.insert("people", person(id));

  // Independent in-process client over the same physical database, state
  // rebuilt from the encrypted manifest alone.
  core::EncryptedConnection local_conn(db_, secret);
  local_conn.open_table("people");

  for (const auto& name : kNames) {
    auto remote_res = remote_conn.select_ids("people", "name", name);
    auto local_res = local_conn.select_ids("people", "name", name);
    EXPECT_EQ(sorted(remote_res.ids), sorted(local_res.ids)) << name;
    EXPECT_FALSE(remote_res.ids.empty()) << name;

    auto remote_star = remote_conn.select_star("people", "name", name);
    auto local_star = local_conn.select_star("people", "name", name);
    EXPECT_EQ(remote_star.rows.size(), local_star.rows.size()) << name;
    for (const auto& row : remote_star.rows) {
      EXPECT_EQ(row[1].as_text(), name);
    }
  }
  for (const auto& city : kCities) {
    auto remote_res = remote_conn.select_ids("people", "city", city);
    auto local_res = local_conn.select_ids("people", "city", city);
    EXPECT_EQ(sorted(remote_res.ids), sorted(local_res.ids)) << city;
  }
}

TEST_F(RemoteWreTest, OnlyTagsAndCiphertextReachTheServer) {
  Bytes secret = entropy_.bytes(32);
  core::EncryptedConnection conn(remote_, secret);
  create_people_table(conn);
  for (int64_t id = 0; id < 30; ++id) conn.insert("people", person(id));

  // Inspect the server-side table directly: encrypted columns must exist
  // only as <col>_tag integers and <col>_enc blobs, and no stored blob may
  // contain a plaintext name.
  sql::Schema server_schema = db_.table("people").schema();
  std::vector<std::string> names;
  for (const auto& col : server_schema.columns()) names.push_back(col.name);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "name_tag") == 1);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "name_enc") == 1);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "name") == 0);

  auto idx = server_schema.index_of("name_enc");
  ASSERT_TRUE(idx.has_value());
  db_.table("people").scan([&](int64_t, const sql::Row& row) {
    const Bytes& enc = row[*idx].as_blob();
    std::string as_str(enc.begin(), enc.end());
    for (const auto& name : kNames) {
      EXPECT_EQ(as_str.find(name), std::string::npos);
    }
  });
}

TEST_F(RemoteWreTest, RemoteManifestReopens) {
  Bytes secret = entropy_.bytes(32);
  {
    core::EncryptedConnection conn(remote_, secret);
    create_people_table(conn);
    for (int64_t id = 0; id < 40; ++id) conn.insert("people", person(id));
  }
  // A fresh remote client with the same secret reopens via the manifest
  // fetched over the wire and keeps querying the same tags.
  net::RemoteConnection remote2("127.0.0.1", server_.port());
  core::EncryptedConnection conn2(remote2, secret);
  conn2.open_table("people");
  auto res = conn2.select_ids("people", "name", "alice");
  EXPECT_EQ(res.ids.size(), 10u);

  // And it can keep writing: new rows remain searchable.
  conn2.insert("people", person(1000));
  EXPECT_EQ(conn2.select_ids("people", "city", kCities[1000 % 3]).ids.size(),
            14u);
}

TEST_F(RemoteWreTest, BulkIngestOverTheWire) {
  Bytes secret = entropy_.bytes(32);
  core::EncryptedConnection conn(remote_, secret);
  create_people_table(conn);

  std::vector<sql::Row> rows;
  for (int64_t id = 0; id < 500; ++id) rows.push_back(person(id));
  core::IngestOptions options;
  options.threads = 2;
  conn.insert_bulk("people", rows, options);

  EXPECT_EQ(remote_.row_count("people"), 500u);
  EXPECT_EQ(conn.select_ids("people", "name", "alice").ids.size(), 125u);
}

TEST_F(RemoteWreTest, DrainFinishesInFlightWork) {
  Bytes secret = entropy_.bytes(32);
  core::EncryptedConnection conn(remote_, secret);
  create_people_table(conn);
  for (int64_t id = 0; id < 50; ++id) conn.insert("people", person(id));

  server_.stop();
  // Post-drain: the database is consistent and immediately reusable
  // in-process (the wre_server binary checkpoints at this point).
  core::EncryptedConnection local(db_, secret);
  local.open_table("people");
  EXPECT_EQ(local.select_ids("people", "name", "bob").ids.size(), 13u);

  // New remote requests fail cleanly rather than hanging. (The drained
  // listener's descriptor lingers until the Server is destroyed, so the
  // connect itself may still complete — bound the probe instead of waiting
  // out the default 60 s response timeout.)
  net::RemoteOptions probe_options;
  probe_options.response_timeout_ms = 1000;
  EXPECT_THROW(
      {
        net::RemoteConnection dead("127.0.0.1", server_.port(), probe_options);
        dead.ping();
      },
      NetworkError);
}

// ---------------------------------------------------------------------------
// External-server mode: drives a wre_server *process* (not an in-process
// Server) on 127.0.0.1:$WRE_SERVER_PORT. The CI smoke job launches the
// binary, runs this suite, then sends SIGTERM and asserts a clean drain.

class ExternalServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* port = std::getenv("WRE_SERVER_PORT");
    if (port == nullptr) {
      GTEST_SKIP() << "WRE_SERVER_PORT not set; external smoke mode only";
    }
    port_ = static_cast<uint16_t>(std::stoi(port));
  }

  uint16_t port_ = 0;
};

TEST_F(ExternalServerTest, FullWreRoundTripAgainstProcess) {
  net::RemoteConnection remote("127.0.0.1", port_);
  remote.ping();

  crypto::SecureRandom entropy;
  Bytes secret = entropy.bytes(32);
  core::EncryptedConnection conn(remote, secret);
  create_people_table(conn);
  for (int64_t id = 0; id < 60; ++id) conn.insert("people", person(id));

  EXPECT_EQ(conn.select_ids("people", "name", "alice").ids.size(), 15u);
  auto star = conn.select_star("people", "city", "oslo");
  EXPECT_EQ(star.rows.size(), 20u);
  for (const auto& row : star.rows) EXPECT_EQ(row[2].as_text(), "oslo");

  // Errors cross the process boundary typed.
  EXPECT_THROW(remote.execute("SELEC nonsense"), SqlError);

  // A second client (fresh TCP session) reopens the manifest.
  net::RemoteConnection remote2("127.0.0.1", port_);
  core::EncryptedConnection conn2(remote2, secret);
  conn2.open_table("people");
  EXPECT_EQ(conn2.select_ids("people", "name", "bob").ids.size(), 15u);
}

}  // namespace
